"""Benchmark: the multi-GPU extension (paper Section VI future work).

Not a paper figure -- DESIGN.md lists it as the implemented extension.
Reports modeled training time on 1/2/4 simulated Titan Xs for a susy-like
workload and asserts sane scaling (sublinear, monotone).
"""

import pytest

from repro import GBDTParams
from repro.bench.report import format_series
from repro.data import make_dataset
from repro.ext.multigpu import MultiGpuGBDTTrainer


@pytest.mark.benchmark(group="multigpu")
def test_multigpu_scaling(benchmark, quick):
    ds = make_dataset("susy", run_rows=300 if quick else 1500)
    p = GBDTParams(n_trees=4 if quick else 10, max_depth=5)

    def run():
        times = {}
        for k in (1, 2, 4):
            trainer = MultiGpuGBDTTrainer(
                p, n_devices=k,
                work_scale=ds.work_scale, seg_scale=ds.seg_scale, row_scale=ds.row_scale,
            )
            trainer.fit(ds.X, ds.y)
            times[k] = trainer.elapsed_seconds()
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    speedups = [times[1] / times[k] for k in (1, 2, 4)]
    print("\n" + format_series(
        "devices", [1, 2, 4],
        {"seconds": [times[k] for k in (1, 2, 4)], "speedup": speedups},
        title="Multi-GPU scaling (Section VI extension)",
    ))

    assert times[2] < times[1]
    assert times[4] < times[2]
    # attribute-parallelism is communication-bound: sublinear scaling
    assert speedups[2] < 4.0
    assert speedups[1] > 1.2
