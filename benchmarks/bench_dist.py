"""Benchmark: distributed data-parallel scaling + layout comm comparison.

Runs :mod:`repro.bench.distbench`: the W ∈ {1,2,4,8} scaling curve of the
row-sharded histogram trainer (modeled seconds, collective traffic,
byte-identity assertions) and the data-parallel vs attribute-parallel
comm-volume table.  ``--quick-bench`` shrinks the workload and worker set.
"""

import pytest

from repro.bench.distbench import run_dist_bench, write_dist_json

from conftest import print_result


@pytest.mark.benchmark(group="dist")
def test_dist(benchmark, quick):
    result = benchmark.pedantic(
        lambda: run_dist_bench(quick=quick), rounds=1, iterations=1
    )
    print_result(
        result, "Distributed training -- scaling and comm volume", bench="dist"
    )
    path = write_dist_json(result)
    print(f"[dist json -> {path}]")

    # sharding must never change the trees, at any W
    for row in result.scaling:
        assert row.identical_model, f"W={row.workers} diverged"

    # data-parallel must move (much) less than attribute-parallel here
    by_layout = {r.layout: r for r in result.layouts}
    assert (
        by_layout["data-parallel"].comm_mb < by_layout["attribute-parallel"].comm_mb
    )

    # sibling subtraction must shrink the allreduce payload without
    # changing the trees (exact saving pinned in tests/test_dist_trainer.py)
    for row in result.subtraction:
        assert row.identical_model, f"W={row.workers} subtraction diverged"
        assert row.ratio < 0.9, f"W={row.workers} saved too little: {row.ratio:.3f}"
