"""Benchmark: hot-path wall-clock speedup of the workspace arena.

Unlike the figure/table benchmarks (modeled seconds), this one measures
real wall time: the same training runs with the arena off and on, asserting
byte-identical models and reporting the speedup.  ``--quick-bench`` runs
only the tiny smoke workload.
"""

import json
from pathlib import Path

import pytest

from repro.bench.hotpath import run_hotpath, write_hotpath_json

from conftest import print_result


@pytest.mark.benchmark(group="hotpath")
def test_hotpath(benchmark, quick):
    workloads = ["smoke"] if quick else ["medium", "rle", "deep"]
    result = benchmark.pedantic(
        lambda: run_hotpath(workloads, repeats=1 if quick else 3),
        rounds=1,
        iterations=1,
    )
    print_result(result, "Hot path -- wall-clock, arena off vs. on", bench="hotpath")

    path = write_hotpath_json(result)
    print(f"[hotpath json -> {path}]")

    # the arena must never change the trees, at any scale
    for row in result.rows:
        assert row.identical_models, row.workload
    # neither may sibling subtraction in the histogram trainer
    for row in result.hist_rows:
        assert row.identical_models, f"{row.workload} (subtraction)"

    if not quick:
        baseline = json.loads(
            (Path(__file__).resolve().parent.parent / "results" / "perf_baseline.json").read_text()
        )
        floor = float(baseline["gates"]["min_medium_speedup"])
        medium = result.row("medium")
        assert medium.speedup >= floor, (
            f"medium arena speedup {medium.speedup:.2f}x below gate {floor}x"
        )
        # subtraction must actually cut the find_split phase where it is on
        # (modeled device seconds: deterministic, unlike the wall numbers)
        hist_medium = result.hist_row("medium")
        assert hist_medium.find_split_model_speedup > 1.0, (
            "subtraction did not reduce modeled find_split time: "
            f"{hist_medium.find_split_model_full_s:.6f}s -> "
            f"{hist_medium.find_split_model_subtract_s:.6f}s"
        )
