"""Benchmark: out-of-core (column-streamed) training overhead.

Beyond-paper extension bench (DESIGN.md): quantifies what the paper's
"reduce data transferring between CPUs and GPUs" advice is worth by
training the same full-scale workload in-memory vs. streamed through
1/4/16 column groups.
"""

import numpy as np
import pytest

from repro import GBDTParams
from repro.bench.harness import run_gpu_gbdt
from repro.bench.report import format_series
from repro.data import make_dataset
from repro.ext.outofcore import OutOfCoreGBDTTrainer


@pytest.mark.benchmark(group="extensions")
def test_outofcore_overhead(benchmark, quick):
    ds = make_dataset("susy", run_rows=300 if quick else 1500)
    p = GBDTParams(n_trees=2 if quick else 8, max_depth=5)
    col_bytes = int(np.diff(ds.X.to_csc().indptr).max()) * 8 * ds.work_scale
    d = ds.X.n_cols

    def run():
        times = {}
        inmem = run_gpu_gbdt(ds, p)
        times["in-memory"] = inmem.seconds
        for groups in (4, 16):
            cols_per_group = max(1, d // groups)
            ooc = OutOfCoreGBDTTrainer(
                p, work_scale=ds.work_scale, seg_scale=ds.seg_scale,
                row_scale=ds.row_scale,
                group_budget_bytes=col_bytes * cols_per_group + 1,
            )
            ooc.fit(ds.X, ds.y)
            times[f"{ooc.n_groups_} groups"] = ooc.elapsed_seconds()
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    labels = list(times)
    print("\n" + format_series(
        "configuration", labels, {"modeled seconds": [times[k] for k in labels]},
        title="Out-of-core streaming overhead (susy profile, full scale)",
    ))

    series = [times[k] for k in labels]
    # streaming costs PCIe traffic: strictly slower than in-memory, and
    # more groups never helps
    assert series[0] < series[1] <= series[2] * 1.001
    # but the overhead is bounded: PCIe streaming, not recomputation
    assert series[-1] < series[0] * 25
