"""Benchmark: regenerate Fig. 10b (test error for a training-time budget)."""

import pytest

from repro.bench.experiments import run_fig10b

from conftest import print_result


@pytest.mark.benchmark(group="fig10")
def test_fig10b(benchmark, quick):
    result = benchmark.pedantic(lambda: run_fig10b(quick=quick), rounds=1, iterations=1)
    print_result(result, "Fig. 10b -- test error vs. time budget, susy (paper Section IV-E)", bench="fig10b")

    # "for the same time budget ... GPU-GBDT obtains the model that clearly
    # has smaller test error": the GPU curve sits at or below the CPU curve
    # while the CPU ensemble is still catching up (the first half of the
    # budget axis), and never meaningfully above it afterwards (test error
    # is not perfectly monotone in the number of trees)
    half = len(result.budgets) // 2
    assert all(
        g <= c + 1e-9 for g, c in zip(result.gpu_error[:half], result.cpu_error[:half])
    )
    assert all(g <= c + 0.03 for g, c in zip(result.gpu_error, result.cpu_error))
    # and strictly better somewhere
    assert any(g < c - 1e-6 for g, c in zip(result.gpu_error, result.cpu_error))
    # error decreases as the budget grows
    assert result.gpu_error[-1] <= result.gpu_error[0]
