"""Benchmarks for the extension experiments: exact-vs-approximate training
and the small-n crossover study (DESIGN.md's ablation-bench items)."""

import pytest

from repro.bench.experiments import run_crossover, run_exact_vs_approx

from conftest import print_result


@pytest.mark.benchmark(group="extensions")
def test_exact_vs_approx(benchmark, quick):
    result = benchmark.pedantic(lambda: run_exact_vs_approx(quick=quick), rounds=1, iterations=1)
    print_result(result, "Extension -- exact vs. histogram (approximate) training", bench="exact_vs_approx")

    for r in result.rows:
        # histograms are cheaper per level on every dataset
        assert r["speedup"] > 1.0, r["dataset"]
        # and accuracy stays in the same neighbourhood
        assert r["hist_rmse"] < r["exact_rmse"] * 1.25, r["dataset"]
    # on the quantized dataset the candidate sets coincide, so the learned
    # partitions match; held-out RMSE may differ microscopically because
    # thresholds sit at bin edges (unseen values between bins can route
    # differently), so assert near-equality here -- exact training-set
    # equality is asserted in tests/test_approx.py
    cov = next(r for r in result.rows if r["dataset"] == "covtype")
    assert abs(cov["exact_rmse"] - cov["hist_rmse"]) < 5e-3


@pytest.mark.benchmark(group="extensions")
def test_crossover(benchmark, quick):
    result = benchmark.pedantic(lambda: run_crossover(quick=quick), rounds=1, iterations=1)
    print_result(result, "Extension -- training time vs. dataset cardinality", bench="cardinality")

    gpu = result.series["GPU-GBDT (s)"]
    cpu1 = result.series["xgbst-1 (s)"]
    # at scale the GPU wins clearly over sequential XGBoost...
    assert cpu1[-1] / gpu[-1] > 8.0
    # ...while at the smallest size fixed overheads eat most of the gap
    assert cpu1[0] / gpu[0] < cpu1[-1] / gpu[-1]
    # all series grow monotonically with cardinality
    for name, series in result.series.items():
        assert all(a <= b * 1.001 for a, b in zip(series, series[1:])), name
