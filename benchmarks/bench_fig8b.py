"""Benchmark: regenerate Fig. 8b (speedup over xgbst-40 vs. number of trees)."""

import pytest

from repro.bench.experiments import run_fig8b

from conftest import print_result


@pytest.mark.benchmark(group="fig8")
def test_fig8b(benchmark, quick):
    result = benchmark.pedantic(lambda: run_fig8b(quick=quick), rounds=1, iterations=1)
    print_result(result, "Fig. 8b -- speedup vs. number of trees (paper Section IV-B)", bench="fig8b")

    for name, series in result.series.items():
        assert all(s > 1.0 for s in series), name
        # "the speedup ... is rather stable as the number of trees
        # increases" -- trees are sequentially dependent, so more trees do
        # not bring better parallelism
        assert max(series) / min(series) < 1.4, name
