"""Benchmark: regenerate Fig. 8a (speedup over xgbst-40 vs. tree depth)."""

import pytest

from repro.bench.experiments import run_fig8a

from conftest import print_result


@pytest.mark.benchmark(group="fig8")
def test_fig8a(benchmark, quick):
    result = benchmark.pedantic(lambda: run_fig8a(quick=quick), rounds=1, iterations=1)
    print_result(result, "Fig. 8a -- speedup vs. tree depth (paper Section IV-B)", bench="fig8a")

    for name, series in result.series.items():
        # GPU-GBDT consistently beats xgbst-40 at every depth
        assert all(s > 1.0 for s in series), name
        # the paper: best at depth 2, then relatively stable
        assert series[0] >= max(series[1:]) * 0.9, name
        tail = series[2:]
        if len(tail) >= 2:
            assert max(tail) / min(tail) < 1.6, name
