"""Benchmark: the multi-replica serving cluster (`repro.serve.cluster`).

Drives the same deterministic burst storm at a 1-replica and a 4-replica
front door, then runs the rolling-deploy drill mid-storm.  Asserts the PR's
acceptance criteria: the cluster sustains strictly higher goodput at the
same offered load, the deploy drops nothing, and swap + rollback serve
byte-identical predictions.
"""

import pytest

from repro.bench.clusterbench import run_cluster_bench

from conftest import print_result


@pytest.mark.benchmark(group="serving")
def test_serving_cluster_bench(benchmark, quick):
    result = benchmark.pedantic(
        lambda: run_cluster_bench(quick=quick, emit=False), rounds=1, iterations=1
    )
    print_result(
        result,
        "Serving cluster bench -- goodput scaling + rolling deploy drill",
        bench="serving_cluster",
    )

    # horizontal scale must pay: strictly higher goodput at the same load
    assert result.cluster.goodput_qps > result.single.goodput_qps
    # the single replica was actually saturated (or the comparison is vacuous)
    assert result.single.degrade_rate > 0.0 or result.single.reject_rate > 0.0
    # the storm produced a real latency distribution on both configurations
    assert result.cluster.p99_ms > 0.0 and result.single.p99_ms > 0.0
    # mid-storm rolling deploy: every replica swapped, nothing dropped
    assert result.deploy_report["swapped"] == result.cluster.n_replicas
    assert result.deploy_report["dropped"] == 0
    # byte-identity: post-swap serves the new version exactly, and the
    # failed-deploy drill rolled back without changing a single prediction
    assert result.deploy_report["swap_identical"]
    assert result.deploy_report["rollback_ok"]
    assert result.deploy_report["active_unmoved_after_rollback"]
