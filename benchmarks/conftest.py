"""Shared configuration for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_*`` file regenerates one table or figure of the paper.  The
experiment functions are deterministic (the trainer is exact and the clock
is a cost model), so the interesting output is the printed table itself --
wall time measures how long the reproduction harness takes, which the
pytest-benchmark columns report.

``--quick-bench`` shrinks datasets for CI-speed smoke runs.

Each benchmark also emits its numeric results as a structured
``BENCH_<name>.json`` document (:mod:`repro.bench.output`), the format the
run store consumes (``python -m repro runs submit --bench <name>``), so
per-run numbers can be diffed and gated across commits without scraping the
printed tables.  Files land in the standard bench output location:
``$BENCH_METRICS_DIR`` when set, otherwise the repository root.
"""

from pathlib import Path

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--quick-bench",
        action="store_true",
        default=False,
        help="run the benchmark experiments at smoke scale",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    return request.config.getoption("--quick-bench")


def emit_bench_metrics(result, name: str) -> Path:
    """Write ``result`` as the structured ``BENCH_<name>.json`` document the
    run store consumes; returns the file path.  Results that render their
    own payload (``.payload()``) keep their phase breakdown; anything else
    goes through :func:`repro.bench.regress.to_payload`."""
    import dataclasses

    from repro.bench.output import write_bench_json
    from repro.bench.regress import to_payload

    if hasattr(result, "payload") and callable(result.payload):
        payload = result.payload()
    elif dataclasses.is_dataclass(result) and not isinstance(result, type):
        payload = to_payload(dataclasses.asdict(result))
    else:
        payload = to_payload(result)
    return write_bench_json(name, payload)


def print_result(result, header: str, bench: str | None = None) -> None:
    """Echo an experiment's table under a visible banner; when ``bench`` is
    given, also emit the run's numbers as a ``BENCH_<bench>.json`` file."""
    bar = "=" * 72
    print(f"\n{bar}\n{header}\n{bar}")
    print(result.text)
    if bench is not None:
        path = emit_bench_metrics(result, bench)
        print(f"[bench metrics -> {path}]")
