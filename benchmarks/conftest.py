"""Shared configuration for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_*`` file regenerates one table or figure of the paper.  The
experiment functions are deterministic (the trainer is exact and the clock
is a cost model), so the interesting output is the printed table itself --
wall time measures how long the reproduction harness takes, which the
pytest-benchmark columns report.

``--quick-bench`` shrinks datasets for CI-speed smoke runs.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--quick-bench",
        action="store_true",
        default=False,
        help="run the benchmark experiments at smoke scale",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    return request.config.getoption("--quick-bench")


def print_result(result, header: str) -> None:
    """Echo an experiment's table under a visible banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{header}\n{bar}")
    print(result.text)
