"""Shared configuration for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_*`` file regenerates one table or figure of the paper.  The
experiment functions are deterministic (the trainer is exact and the clock
is a cost model), so the interesting output is the printed table itself --
wall time measures how long the reproduction harness takes, which the
pytest-benchmark columns report.

``--quick-bench`` shrinks datasets for CI-speed smoke runs.

Each benchmark also emits its numeric results as a JSONL metrics file
(``BENCH_<name>.jsonl``) through the shared observability registry
(:mod:`repro.obs`), so per-run numbers can be diffed across commits without
scraping the printed tables.  Files land in the standard bench output
location (:mod:`repro.bench.output`): ``$BENCH_METRICS_DIR`` when set,
otherwise the repository root.
"""

from pathlib import Path

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--quick-bench",
        action="store_true",
        default=False,
        help="run the benchmark experiments at smoke scale",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    return request.config.getoption("--quick-bench")


def _numeric_leaves(payload, prefix=""):
    """Yield ``(dotted.path, float)`` for every numeric leaf of a payload."""
    if isinstance(payload, bool):
        yield prefix, float(payload)
    elif isinstance(payload, (int, float)):
        yield prefix, float(payload)
    elif isinstance(payload, dict):
        for k in sorted(payload):
            sub = f"{prefix}.{k}" if prefix else str(k)
            yield from _numeric_leaves(payload[k], sub)
    elif isinstance(payload, (list, tuple)):
        for i, v in enumerate(payload):
            sub = f"{prefix}.{i}" if prefix else str(i)
            yield from _numeric_leaves(v, sub)
    # strings / None / everything else: not a metric


def emit_bench_metrics(result, name: str) -> Path:
    """Flatten ``result``'s numeric fields into gauges and write them as
    ``BENCH_<name>.jsonl`` via the obs registry; returns the file path."""
    from repro.bench.output import bench_output_dir
    from repro.bench.regress import to_payload
    from repro.obs import MetricsRegistry, write_jsonl

    registry = MetricsRegistry(max_label_sets=8192)
    for key, value in _numeric_leaves(to_payload(result)):
        registry.gauge(
            "bench_value", "flattened benchmark scalar", bench=name, key=key
        ).set(value)
    path = bench_output_dir() / f"BENCH_{name}.jsonl"
    write_jsonl(path, registry=registry)
    return path


def print_result(result, header: str, bench: str | None = None) -> None:
    """Echo an experiment's table under a visible banner; when ``bench`` is
    given, also emit the run's numbers as a JSONL metrics file."""
    bar = "=" * 72
    print(f"\n{bar}\n{header}\n{bar}")
    print(result.text)
    if bench is not None:
        path = emit_bench_metrics(result, bench)
        print(f"[bench metrics -> {path}]")
