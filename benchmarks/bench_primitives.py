"""Micro-benchmarks of the device primitives (real wall time).

Unlike the table/figure benches (which report *modeled* device seconds),
these measure the actual NumPy execution speed of the functional kernels --
useful for keeping the reproduction harness itself fast.
"""

import numpy as np
import pytest

from repro.gpusim import GpuDevice, TITAN_X_PASCAL
from repro.gpusim.primitives import (
    segment_sort_desc,
    segmented_argmax,
    segmented_inclusive_cumsum,
    two_way_partition,
)

N = 200_000
N_SEG = 512


@pytest.fixture(scope="module")
def arrays():
    rng = np.random.default_rng(0)
    values = rng.normal(size=N)
    bounds = np.sort(rng.choice(N, size=N_SEG - 1, replace=False))
    offsets = np.concatenate(([0], bounds, [N])).astype(np.int64)
    side = rng.integers(0, 2, size=N).astype(np.int8)
    return values, offsets, side


@pytest.mark.benchmark(group="primitives")
def test_segmented_cumsum_speed(benchmark, arrays):
    values, offsets, _ = arrays
    d = GpuDevice(TITAN_X_PASCAL)
    out = benchmark(lambda: segmented_inclusive_cumsum(d, values, offsets))
    assert out.size == N


@pytest.mark.benchmark(group="primitives")
def test_segmented_argmax_speed(benchmark, arrays):
    values, offsets, _ = arrays
    d = GpuDevice(TITAN_X_PASCAL)
    mx, am = benchmark(lambda: segmented_argmax(d, values, offsets))
    assert mx.size == N_SEG


@pytest.mark.benchmark(group="primitives")
def test_two_way_partition_speed(benchmark, arrays):
    values, offsets, side = arrays
    d = GpuDevice(TITAN_X_PASCAL)
    dest, new_off = benchmark(lambda: two_way_partition(d, offsets, side))
    assert new_off[-1] == N


@pytest.mark.benchmark(group="primitives")
def test_segment_sort_speed(benchmark, arrays):
    values, offsets, _ = arrays
    d = GpuDevice(TITAN_X_PASCAL)
    payload = np.arange(N)
    sv, sp = benchmark(lambda: segment_sort_desc(d, values, payload, offsets))
    assert sv.size == N


@pytest.mark.benchmark(group="primitives")
def test_end_to_end_training_wall_time(benchmark):
    """Wall time of one real (reduced-scale) training run -- the unit of
    work every experiment repeats."""
    from repro import GBDTParams, GPUGBDTTrainer
    from repro.data import make_dataset

    ds = make_dataset("covtype", run_rows=1000)
    p = GBDTParams(n_trees=5, max_depth=5)
    model = benchmark.pedantic(
        lambda: GPUGBDTTrainer(p).fit(ds.X, ds.y), rounds=1, iterations=2
    )
    assert model.n_trees == 5
