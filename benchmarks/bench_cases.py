"""Benchmark: regenerate the Section IV-E case studies (i)-(iii)."""

import pytest

from repro.bench.experiments import run_case_studies

from conftest import print_result


@pytest.mark.benchmark(group="cases")
def test_case_studies(benchmark, quick):
    result = benchmark.pedantic(lambda: run_case_studies(quick=quick), rounds=1, iterations=1)
    print_result(result, "Section IV-E case studies (credit risk / malware / Kaggle)", bench="cases")

    assert len(result.rows) == 3
    # every application-level scenario benefits from the GPU
    for r in result.rows:
        assert r["speedup"] > 1.2, r["case"]
    # the Kaggle search covers the paper's grid when not in quick mode
    if not quick:
        assert "144 configs" in result.rows[2]["workload"]
