"""Benchmark: regenerate Table II (overall comparison, 8 datasets x 4 systems).

Prints the table and asserts the paper's shape claims:
who wins, by what factors, where the dense baseline OOMs, and that the
RMSE columns agree/disagree exactly as the paper reports.
"""

import pytest

from repro.bench.experiments import run_table2
from repro.bench.report import PAPER_BANDS

from conftest import print_result


@pytest.mark.benchmark(group="table2")
def test_table2(benchmark, quick):
    result = benchmark.pedantic(lambda: run_table2(quick=quick), rounds=1, iterations=1)
    print_result(result, "Table II -- overall comparison (paper Section IV-A)", bench="table2")

    lo40, hi40 = PAPER_BANDS["speedup_vs_xgbst40"]
    oom = {r["dataset"] for r in result.rows if r["xgbstgpu"] is None}
    ok_rows = [r for r in result.rows if r["ours"] is not None]

    # GPU-GBDT handles every dataset (the point of RLE + sparse layout)
    assert len(ok_rows) == len(result.rows)
    # the dense baseline loses the large sparse datasets
    assert {"e2006", "log1p", "news20"} <= oom
    # speedups inside (a tolerance of) the paper's bands
    for r in ok_rows:
        assert 1.2 < r["speedup40"] < 2.4, r["dataset"]
        assert 9.0 < r["speedup1"] < 26.0, r["dataset"]
    # RMSE: ours == xgbst-40 everywhere; xgbst-gpu drifts on sparse data
    for r in ok_rows:
        assert abs(r["rmse_ours"] - r["rmse_x40"]) < 1e-9
    drift = [
        r for r in result.rows
        if r["xgbstgpu"] is not None and abs(r["rmse_xgpu"] - r["rmse_ours"]) > 1e-6
    ]
    assert any(r["dataset"] in ("covtype", "real-sim") for r in drift)
