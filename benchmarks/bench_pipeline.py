"""Benchmark: the continual-training pipeline (`repro.pipeline`).

Refreshes a serving model over a sliding window two ways -- warm-start
boosting a few more rounds vs retraining from scratch -- and asserts the
warm-start path is substantially cheaper in modeled device time while the
underlying resume primitive stays bit-identical to uninterrupted training.
"""

import pytest

from repro.bench.experiments import run_pipeline_bench

from conftest import print_result


@pytest.mark.benchmark(group="pipeline")
def test_pipeline_bench(benchmark, quick):
    result = benchmark.pedantic(
        lambda: run_pipeline_bench(quick=quick), rounds=1, iterations=1
    )
    print_result(
        result,
        "Pipeline bench -- warm-start refresh vs from-scratch retrain",
        bench="pipeline",
    )

    # the whole point of warm-start refreshes: adding refresh_trees rounds
    # must be far cheaper than retraining base_trees rounds from scratch
    assert result.speedup >= 2.0
    assert result.refreshes_per_hour_warm > result.refreshes_per_hour_scratch
    # the guarantee the pipeline rests on: train(k) + resume(m) serializes
    # byte-identically to train(k+m)
    assert result.warmstart_bitidentical
    # every refresh grows the ensemble by exactly refresh_trees rounds
    trees = [r["trees"] for r in result.rows]
    assert trees == [
        result.base_trees + (i + 1) * result.refresh_trees
        for i in range(result.n_refreshes)
    ]
    # warm-start refreshes track from-scratch quality on the holdout
    last = result.rows[-1]
    assert last["val_warm"] <= last["val_scratch"] * 1.25
