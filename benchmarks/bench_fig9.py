"""Benchmark: regenerate Fig. 9 (impact of each individual optimization)."""

import pytest

from repro.bench.experiments import run_fig9

from conftest import print_result


@pytest.mark.benchmark(group="fig9")
def test_fig9(benchmark, quick):
    result = benchmark.pedantic(lambda: run_fig9(quick=quick), rounds=1, iterations=1)
    print_result(result, "Fig. 9 -- ablation of the five optimizations (paper Section IV-C)", bench="fig9")

    slow = result.slowdowns
    # "Two techniques (including SmartGD and Directly Split RLE) have quite
    # significant impact": somewhere they must cost > 10%
    assert max(slow["SmartGD"].values()) > 0.10
    assert max(slow["Directly Split RLE"].values()) > 0.10
    # "Customized SetKey ... 10% to 20% for ... datasets of high
    # dimensionality (e.g., log1p and news20)"
    if not quick and "news20" in slow["Customized SetKey"]:
        assert 0.05 < slow["Customized SetKey"]["news20"] < 0.30
    # disabling an optimization never makes training meaningfully faster
    for ab, per_ds in slow.items():
        for ds_name, s in per_ds.items():
            assert s > -0.05, (ab, ds_name, s)
