"""Benchmark: regenerate Fig. 10a (performance-price ratio vs. the CPUs)."""

import pytest

from repro.bench.experiments import run_fig10a
from repro.bench.report import PAPER_BANDS

from conftest import print_result


@pytest.mark.benchmark(group="fig10")
def test_fig10a(benchmark, quick):
    result = benchmark.pedantic(lambda: run_fig10a(quick=quick), rounds=1, iterations=1)
    print_result(result, "Fig. 10a -- performance-price ratio (paper Section IV-D)", bench="fig10a")

    lo, hi = PAPER_BANDS["perf_price_vs_cpu"]
    ratios = result.series["perf-price vs CPU"]
    assert len(ratios) == 8  # every dataset GPU-GBDT can train (all of them)
    # "consistently outperforms its CPU counterpart by 1.5 to 3 times"
    for name, r in zip(result.xs, ratios):
        assert lo <= r < hi + 0.8, (name, r)
