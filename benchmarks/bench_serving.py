"""Benchmark: the inference-serving subsystem (`repro.serve`).

Serves one request stream three ways -- the legacy per-request per-tree
loop, one flattened batch sweep, and the micro-batched serving path -- and
asserts the batched serving path beats per-request serving by an order of
magnitude while predicting identically.
"""

import pytest

from repro.bench.experiments import run_serving_bench

from conftest import print_result


@pytest.mark.benchmark(group="serving")
def test_serving_bench(benchmark, quick):
    result = benchmark.pedantic(lambda: run_serving_bench(quick=quick), rounds=1, iterations=1)
    print_result(result, "Serving bench -- flattened ensemble + micro-batching", bench="serving")

    # the whole point of the subsystem: batched serving must be at least an
    # order of magnitude faster than serving each request through the
    # per-tree Python loop
    assert result.speedup_vs_per_request >= 10.0
    # the flattened sweep never loses to the per-tree loop on a full batch
    assert result.speedup_batch_vs_loop > 0.8
    # differential safety on everything served: flat == per-tree to 1e-6
    assert result.max_abs_dev < 1e-6
    # the serving path charged the simulated device for its batches
    assert result.modeled_gpu_seconds > 0.0
    # the cache demo produced hits and nothing was lost to overload
    assert result.metrics["cache_hits"] > 0
    assert result.metrics["rejected"] == 0
