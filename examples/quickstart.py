"""Quickstart: train GPU-GBDT on a Table-II dataset and inspect the run.

Run with::

    python examples/quickstart.py

Covers the core public API: dataset generation, the estimator facade, the
three backends, prediction, and the simulated device's profile -- the
things a new user touches first.
"""

from repro import (
    GBDTParams,
    GpuDevice,
    GradientBoostedTrees,
    TITAN_X_PASCAL,
    make_dataset,
    models_equal,
    rmse,
)
from repro.gpusim import format_profile


def main() -> None:
    # 1. a covtype-like dataset (binary targets, heavy value repetition)
    ds = make_dataset("covtype", run_rows=2000, seed=1)
    print(ds.describe())

    # 2. train with the paper's defaults (depth 6, 40 trees, MSE) -- scaled
    #    down to 10 trees so this demo runs in a couple of seconds
    params = GBDTParams(n_trees=10, max_depth=6)
    device = GpuDevice(TITAN_X_PASCAL, work_scale=ds.work_scale, seg_scale=ds.seg_scale)
    est = GradientBoostedTrees(params, device=device, row_scale=ds.row_scale)
    est.fit(ds.X, ds.y)

    print(f"\ntrained {est.model_.n_trees} trees; "
          f"RLE used: {est.report_.used_rle} "
          f"(compression ratio {est.report_.compression_ratio:.1f}x)")

    # 3. evaluate
    print(f"train RMSE: {rmse(ds.y, est.predict(ds.X)):.4f}")
    print(f"test  RMSE: {rmse(ds.y_test, est.predict(ds.X_test)):.4f}")

    # 4. where did the (modeled) device time go? Section IV-A style profile
    print()
    print(format_profile(device, title=f"modeled Titan X profile ({ds.name})"))

    # 5. the trees are identical to the sequential CPU reference -- the
    #    paper's Table-II verification, in two lines
    ref = GradientBoostedTrees(params, backend="cpu-reference").fit(ds.X, ds.y)
    print(f"\ntrees identical to the CPU reference: "
          f"{models_equal(est.model_, ref.model_)}")

    # 6. dump the first tree
    print("\nfirst tree:")
    print(est.model_.trees[0].dump_text())


if __name__ == "__main__":
    main()
