"""Beyond the 12 GB wall: out-of-core streaming and newer silicon.

Two answers to "my dataset's sorted lists don't fit on the Titan X":

1. **Stream it** (`repro.ext.outofcore`): shard the attribute lists into
   device-sized column groups kept in host memory and stream them over
   PCIe every level.  Still exact -- identical trees -- just slower by the
   PCIe traffic.
2. **Buy a bigger card** (the A100 what-if preset): 80 GB of HBM2e holds
   the lists outright and its 2 TB/s bandwidth shortens the memory-bound
   kernels.

This example builds a 60M x 142 categorical workload (Kaggle-scale), shows
the in-memory Titan X run dying with OOM, then both remedies working.
"""

import dataclasses

from repro import GBDTParams, GPUGBDTTrainer, make_dataset, models_equal
from repro.bench.harness import run_gpu_gbdt
from repro.ext.outofcore import OutOfCoreGBDTTrainer
from repro.gpusim.device import A100_80GB, GIB, TITAN_X_PASCAL


def main() -> None:
    base = make_dataset("insurance", run_rows=1000, seed=13)
    huge = dataclasses.replace(
        base,
        spec=dataclasses.replace(
            base.spec, name="kaggle-60M", n_full=60_000_000, d_full=142,
            density_full=0.9,
        ),
    )
    params = GBDTParams(n_trees=4, max_depth=6)
    print(huge.describe())
    approx_bytes = huge.spec.nnz_full * 8
    print(f"sorted lists at full scale: ~{approx_bytes / GIB:.0f} GiB "
          f"(Titan X has {TITAN_X_PASCAL.global_mem_bytes / GIB:.0f} GiB)\n")

    # 1. in-memory on the Titan X: OOM
    inmem = run_gpu_gbdt(huge, params, spec=TITAN_X_PASCAL)
    print(f"Titan X in-memory : {inmem.status.upper()} -- {inmem.notes}")

    # 2. out-of-core on the Titan X: works, pays PCIe
    ooc = OutOfCoreGBDTTrainer(
        params, TITAN_X_PASCAL,
        work_scale=huge.work_scale, seg_scale=huge.seg_scale,
        row_scale=huge.row_scale,
    )
    ooc_model = ooc.fit(huge.X, huge.y)
    print(f"Titan X streamed  : OK in {ooc.elapsed_seconds():8.1f} modeled s "
          f"({ooc.n_groups_} column groups)")

    # 3. A100 what-if: fits in memory, and the bandwidth shows
    a100 = run_gpu_gbdt(huge, params, spec=A100_80GB)
    print(f"A100 in-memory    : OK in {a100.seconds:8.1f} modeled s")

    # exactness is never traded away
    same = models_equal(ooc_model, a100.model)
    print(f"\nstreamed and A100 trees identical: {same}")
    print("out-of-core overhead vs A100: "
          f"{ooc.elapsed_seconds() / a100.seconds:.1f}x "
          "(PCIe is the new bottleneck -- Section II-C's point, one order of "
          "magnitude slower than device memory)")


if __name__ == "__main__":
    main()
