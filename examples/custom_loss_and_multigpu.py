"""Two extension features in one script: user-defined losses and multi-GPU.

* "our algorithm supports user defined loss functions" (Section III-B):
  train with a hand-written Huber-style loss via :class:`CustomLoss`.
* "Our algorithm is naturally applicable to multiple GPUs" (Section VI):
  train the same model on 1/2/4 simulated Titan Xs and verify the trees
  are identical while the modeled time shrinks.
"""

import numpy as np

from repro import CustomLoss, GBDTParams, GradientBoostedTrees, make_dataset, models_equal, rmse
from repro.core.trainer import GPUGBDTTrainer
from repro.ext.multigpu import MultiGpuGBDTTrainer


def huber_gradients(delta: float):
    """g, h of the Huber loss (quadratic near 0, linear in the tails)."""

    def grad(y, yhat):
        r = yhat - y
        g = np.where(np.abs(r) <= delta, 2.0 * r, 2.0 * delta * np.sign(r))
        h = np.where(np.abs(r) <= delta, 2.0, 1e-2)  # small positive tail curvature
        return g, h

    return grad


def main() -> None:
    ds = make_dataset("e2006", run_rows=1200, run_cols=300, seed=6)

    # ---- custom loss -----------------------------------------------------
    huber = CustomLoss(grad_fn=huber_gradients(delta=1.0), name="huber")
    p_huber = GBDTParams(n_trees=10, max_depth=5, loss=huber)
    est = GradientBoostedTrees(p_huber).fit(ds.X, ds.y)
    p_mse = GBDTParams(n_trees=10, max_depth=5)
    est_mse = GradientBoostedTrees(p_mse).fit(ds.X, ds.y)

    # inject outliers into the evaluation to show Huber's robustness angle
    y_noisy = ds.y_test.copy()
    y_noisy[:5] += 25.0
    print("regression with a user-defined Huber loss:")
    print(f"  huber test RMSE (clean targets): {rmse(ds.y_test, est.predict(ds.X_test)):.4f}")
    print(f"  mse   test RMSE (clean targets): {rmse(ds.y_test, est_mse.predict(ds.X_test)):.4f}")

    # ---- multi-GPU -------------------------------------------------------
    print("\nmulti-GPU (Section VI future work, implemented):")
    susy = make_dataset("susy", run_rows=1500, seed=6)
    p = GBDTParams(n_trees=6, max_depth=5)
    single = GPUGBDTTrainer(p).fit(susy.X, susy.y)
    for k in (1, 2, 4):
        trainer = MultiGpuGBDTTrainer(
            p, n_devices=k,
            work_scale=susy.work_scale, seg_scale=susy.seg_scale, row_scale=susy.row_scale,
        )
        model = trainer.fit(susy.X, susy.y)
        same = models_equal(model, single)
        print(f"  {k} device(s): {trainer.elapsed_seconds():7.2f} modeled s, "
              f"trees identical to single-GPU: {same}")


if __name__ == "__main__":
    main()
