"""Case study (iii): hyper-parameter search under a time budget.

The paper's Kaggle scenario (Section IV-E iii) sweeps 144 configurations
(T x depth x gamma x eta) of a 17M x 142 product-recommendation dataset:
~22.3 days on the 20-core workstation, ~10 days with GPU-GBDT.

This example does both things the scenario implies:

1. *estimate* the full 144-model grid cost on each platform (per-depth
   probe trainings, extrapolated by tree count);
2. *actually run* a budget-capped search on the reduced-scale data and
   report the best configuration found.
"""

import dataclasses

from repro import make_dataset
from repro.ext.hyperband import TimeBudgetSearch, paper_search_grid


def human(seconds: float) -> str:
    if seconds >= 86_400:
        return f"{seconds / 86_400:.1f} days"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f} h"
    if seconds >= 60:
        return f"{seconds / 60:.1f} min"
    return f"{seconds:.1f} s"


def main() -> None:
    # Santander-shaped data: engineered categorical features -> compressible
    base = make_dataset("insurance", run_rows=1200, seed=4)
    ds = dataclasses.replace(
        base,
        spec=dataclasses.replace(
            base.spec, name="kaggle-santander", n_full=17_000_000, d_full=142,
            density_full=0.9,
        ),
    )

    # 1. cost out the paper's full grid
    grid = paper_search_grid()
    search = TimeBudgetSearch(ds, grid)
    print(f"estimating the {len(grid)}-configuration grid "
          f"(probing {len({c.max_depth for c in grid})} depths)...")
    summary = search.estimate()
    print(f"  GPU-GBDT : {human(summary.gpu_seconds_total)}")
    print(f"  xgbst-40 : {human(summary.cpu_seconds_total)}")
    print(f"  speedup  : {summary.cpu_seconds_total / summary.gpu_seconds_total:.2f}x")
    print("  (paper: ~22.3 days -> ~10 days)\n")

    # 2. run a real search within a small modeled budget on a small grid
    small_grid = paper_search_grid(quick=True)
    budget = 60.0  # modeled GPU seconds
    print(f"running {len(small_grid)} configs within a {budget:.0f}s modeled budget...")
    run = TimeBudgetSearch(ds, small_grid).run_within_budget(budget)
    print(f"  trained {run.configs_trained} configs in {run.seconds_spent:.1f} modeled s")
    c = run.best_config
    print(
        f"  best: T={c.n_trees} depth={c.max_depth} gamma={c.gamma} "
        f"eta={c.learning_rate} -> holdout RMSE {run.best_rmse:.4f}"
    )


if __name__ == "__main__":
    main()
