"""Why RLE + sparse layout matters: training where the dense baseline dies.

Section III-C's claim in one script: on a news20-like dataset (20k x 1.36M,
0.034% dense) the dense-representation GPU XGBoost needs hundreds of GB and
aborts with device OOM, while GPU-GBDT's compressed sorted lists fit in the
Titan X's 12 GB with room to spare.  Also contrasts the Fig. 6 vs Fig. 7
splitting strategies on a compressible dataset.
"""

from repro import GBDTParams, make_dataset
from repro.bench.harness import run_gpu_gbdt, run_xgb_gpu
from repro.cpu.gpu_xgboost import dense_device_bytes
from repro.gpusim.device import GIB, TITAN_X_PASCAL


def main() -> None:
    params = GBDTParams(n_trees=8, max_depth=6)

    # --- the memory story on news20 -------------------------------------
    ds = make_dataset("news20", seed=2)
    print(ds.describe())
    need = dense_device_bytes(ds.spec.n_full, ds.spec.d_full, params.max_depth)
    print(f"\ndense representation would need {need / GIB:,.0f} GiB "
          f"(device has {TITAN_X_PASCAL.global_mem_bytes / GIB:.0f} GiB)")

    dense_res = run_xgb_gpu(ds, params)
    print(f"xgbst-gpu: {dense_res.status.upper()} -- {dense_res.notes}")

    ours = run_gpu_gbdt(ds, params)
    mem = ours.device.memory
    print(f"GPU-GBDT : trained in {ours.seconds:.2f} modeled s, "
          f"peak device memory {mem.peak_bytes / GIB:.2f} GiB")
    print(ours.device.memory.report())

    # --- RLE splitting strategies on compressible data -------------------
    print("\n--- Directly-Split-RLE (Fig. 7) vs decompress/recompress (Fig. 6) ---")
    ins = make_dataset("insurance", run_rows=2000, seed=2)
    direct = run_gpu_gbdt(ins, params.replace(rle_policy="always"))
    decomp = run_gpu_gbdt(ins, params.replace(rle_policy="always", use_direct_rle=False))
    print(f"{ins.name}: direct {direct.seconds:.2f}s vs decompress {decomp.seconds:.2f}s "
          f"(+{(decomp.seconds / direct.seconds - 1) * 100:.0f}% without the Fig. 7 trick)")

    norle = run_gpu_gbdt(ins, params.replace(use_rle=False))
    print(f"{ins.name}: disabling RLE entirely costs "
          f"+{(norle.seconds / direct.seconds - 1) * 100:.0f}%")


if __name__ == "__main__":
    main()
