"""Exact vs. approximate split finding (Section V positioning, runnable).

The paper trains with *exact* split finding and notes that LightGBM "only
supports finding the best split points approximately".  This example trains
the same workloads with both families on the simulated device:

* on a quantized dataset (covtype-like: binary indicators + coarse levels)
  the histogram trainer's candidate set coincides with the exact trainer's,
  so the learned partitions — and the training predictions — are identical;
* on a continuous dataset (susy-like) the bins genuinely approximate, so
  trees differ while held-out accuracy stays close and training gets
  cheaper.
"""

import numpy as np

from repro import GBDTParams, GPUGBDTTrainer, GpuDevice, TITAN_X_PASCAL, make_dataset, rmse
from repro.approx import HistogramGBDTTrainer


def modeled(ds, trainer_cls, params, **kw):
    dev = GpuDevice(TITAN_X_PASCAL, work_scale=ds.work_scale, seg_scale=ds.seg_scale)
    model = trainer_cls(params, dev, row_scale=ds.row_scale, **kw).fit(ds.X, ds.y)
    return model, dev.elapsed_seconds()


def main() -> None:
    params = GBDTParams(n_trees=10, max_depth=6)

    print("--- quantized data (covtype profile): approximation is free ---")
    cov = make_dataset("covtype", run_rows=2000, seed=3)
    exact, t_exact = modeled(cov, GPUGBDTTrainer, params)
    hist, t_hist = modeled(cov, HistogramGBDTTrainer, params, max_bins=256)
    same_train = np.allclose(exact.predict(cov.X), hist.predict(cov.X))
    print(f"  exact: {t_exact:6.2f} modeled s | histogram-256: {t_hist:6.2f} s")
    print(f"  identical training predictions: {same_train}")

    print("\n--- continuous data (susy profile): a real trade-off ---")
    susy = make_dataset("susy", run_rows=2000, seed=3)
    exact, t_exact = modeled(susy, GPUGBDTTrainer, params)
    for bins in (8, 32, 128):
        hist, t_hist = modeled(susy, HistogramGBDTTrainer, params, max_bins=bins)
        err = rmse(susy.y_test, hist.predict(susy.X_test))
        print(f"  histogram-{bins:<3d}: {t_hist:6.2f} s  test RMSE {err:.4f}")
    err_exact = rmse(susy.y_test, exact.predict(susy.X_test))
    print(f"  exact       : {t_exact:6.2f} s  test RMSE {err_exact:.4f}")
    print("\nGPU-GBDT's selling point: exactness at GPU speed; histograms buy")
    print("further speed by coarsening the candidate set.")


if __name__ == "__main__":
    main()
