"""Case study (i): frequent model updates for credit-risk prediction.

The paper (Section IV-E i) motivates GPU-GBDT with online learning: a card
processor retrains on a rolling window as transactions stream in, and the
work [18] it cites needs ~27 CPU-minutes per refresh at 211,357 x 8,990 --
too slow to react to fraud.

This example simulates the rolling-window loop: every "hour" a batch of new
transactions arrives, the window slides, and the model is refreshed.  Each
refresh is served three ways -- **warm-start** boosting a few more rounds
onto the serving ensemble (the `repro.pipeline` refresh path), retraining
from scratch on the simulated Titan X, and retraining on the 40-thread CPU
model -- so the output shows how many refreshes per hour each strategy
sustains.
"""

import dataclasses

import numpy as np

from repro import GBDTParams, make_dataset, rmse
from repro.bench.harness import run_cpu_baseline, run_gpu_gbdt
from repro.data.matrix import CSRMatrix

REFRESHES = 3
REFRESH_TREES = 2


def sliding_window(X: CSRMatrix, y, start: int, size: int):
    idx = np.arange(start, start + size) % X.n_rows
    idx = np.sort(idx)
    return X.select_rows(idx), y[idx]


def main() -> None:
    # a credit-card-shaped dataset: sparse engineered features
    base = make_dataset("real-sim", run_rows=1600, seed=8)
    ds = dataclasses.replace(
        base,
        spec=dataclasses.replace(
            base.spec, name="credit-risk", n_full=211_357, d_full=8_990, density_full=0.05
        ),
    )
    params = GBDTParams(n_trees=10, max_depth=6)

    window = ds.X.n_rows // 2
    print(f"rolling-window refresh loop ({REFRESHES} refreshes):")
    print(f"  window = {window} rows (stands in for ~105k full-scale rows)")
    print(
        f"  warm-start adds {REFRESH_TREES} trees per refresh; "
        f"from-scratch retrains all {params.n_trees}\n"
    )

    # the serving model everyone starts from (common cost, not timed below)
    Xw, yw = sliding_window(ds.X, ds.y, 0, window)
    serving = run_gpu_gbdt(dataclasses.replace(ds, X=Xw, y=yw), params).model

    warm_total = gpu_total = cpu_total = 0.0
    for step in range(1, REFRESHES + 1):
        Xw, yw = sliding_window(ds.X, ds.y, step * window // 2, window)
        wds = dataclasses.replace(ds, X=Xw, y=yw)
        warm = run_gpu_gbdt(
            wds, params.replace(n_trees=REFRESH_TREES), init_model=serving
        )
        serving = warm.model
        gpu = run_gpu_gbdt(wds, params)
        _, forty, _ = run_cpu_baseline(wds, params)
        warm_total += warm.seconds
        gpu_total += gpu.seconds
        cpu_total += forty.seconds
        err_warm = rmse(ds.y_test, serving.predict(ds.X_test))
        err_gpu = rmse(ds.y_test, gpu.model.predict(ds.X_test))
        print(
            f"  refresh {step}: warm-start {warm.seconds:6.2f}s "
            f"| GPU scratch {gpu.seconds:6.2f}s | xgbst-40 {forty.seconds:6.2f}s "
            f"| holdout RMSE {err_warm:.4f} (warm) vs {err_gpu:.4f} (scratch)"
        )

    def per_hour(total: float) -> float:
        return 3600 / (total / REFRESHES)

    print(
        f"\nper refresh: warm-start {warm_total / REFRESHES:.2f}s vs "
        f"GPU scratch {gpu_total / REFRESHES:.2f}s vs CPU {cpu_total / REFRESHES:.2f}s"
    )
    print(
        f"refreshes/hour: {per_hour(warm_total):,.0f} warm-start vs "
        f"{per_hour(gpu_total):,.0f} GPU scratch vs {per_hour(cpu_total):,.0f} CPU "
        f"({gpu_total / warm_total:.1f}x more than scratch, "
        f"{cpu_total / warm_total:.1f}x more than CPU)"
    )
    print("paper's framing: GPU-GBDT 'can respond new credit risk and prevent "
          "invalid transactions more timely'")


if __name__ == "__main__":
    main()
