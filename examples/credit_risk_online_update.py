"""Case study (i): frequent model updates for credit-risk prediction.

The paper (Section IV-E i) motivates GPU-GBDT with online learning: a card
processor retrains on a rolling window as transactions stream in, and the
work [18] it cites needs ~27 CPU-minutes per refresh at 211,357 x 8,990 --
too slow to react to fraud.

This example simulates the rolling-window loop: every "hour" a batch of new
transactions arrives, the window slides, and the model is refreshed.  Each
refresh is timed with both the simulated Titan X and the 40-thread CPU
model, so the output shows how many refreshes per hour each platform
sustains.
"""

import dataclasses

import numpy as np

from repro import GBDTParams, make_dataset, rmse
from repro.bench.harness import run_cpu_baseline, run_gpu_gbdt
from repro.data.matrix import CSRMatrix


def sliding_window(X: CSRMatrix, y, start: int, size: int):
    idx = np.arange(start, start + size) % X.n_rows
    idx = np.sort(idx)
    return X.select_rows(idx), y[idx]


def main() -> None:
    # a credit-card-shaped dataset: sparse engineered features
    base = make_dataset("real-sim", run_rows=1600, seed=8)
    ds = dataclasses.replace(
        base,
        spec=dataclasses.replace(
            base.spec, name="credit-risk", n_full=211_357, d_full=8_990, density_full=0.05
        ),
    )
    params = GBDTParams(n_trees=10, max_depth=6)

    window = ds.X.n_rows // 2
    print("rolling-window refresh loop (3 refreshes):")
    print(f"  window = {window} rows (stands in for ~105k full-scale rows)\n")

    gpu_total = cpu_total = 0.0
    for step in range(3):
        Xw, yw = sliding_window(ds.X, ds.y, step * window // 2, window)
        wds = dataclasses.replace(ds, X=Xw, y=yw)
        gpu = run_gpu_gbdt(wds, params)
        _, forty, _ = run_cpu_baseline(wds, params)
        gpu_total += gpu.seconds
        cpu_total += forty.seconds
        err = rmse(ds.y_test, gpu.model.predict(ds.X_test))
        print(
            f"  refresh {step}: GPU {gpu.seconds:6.2f}s | xgbst-40 {forty.seconds:6.2f}s "
            f"| holdout RMSE {err:.4f}"
        )

    print(
        f"\nper refresh: GPU {gpu_total / 3:.2f}s vs CPU {cpu_total / 3:.2f}s "
        f"({cpu_total / gpu_total:.2f}x) -> "
        f"{3600 / (gpu_total / 3):,.0f} vs {3600 / (cpu_total / 3):,.0f} refreshes/hour"
    )
    print("paper's framing: GPU-GBDT 'can respond new credit risk and prevent "
          "invalid transactions more timely'")


if __name__ == "__main__":
    main()
