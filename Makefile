# Developer entry points. Everything also works as plain commands; see README.

PYTHON ?= python

.PHONY: install test test-fast bench bench-quick experiments experiments-quick \
        baseline compare docs-check loc clean

install:
	PIP_NO_BUILD_ISOLATION=0 pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-fast:  ## skip the slower end-to-end/calibration files
	$(PYTHON) -m pytest tests/ --ignore=tests/test_calibration.py \
	    --ignore=tests/test_examples_smoke.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only --quick-bench

experiments:
	$(PYTHON) -m repro all

experiments-quick:
	$(PYTHON) -m repro all --quick

baseline:  ## save the current numeric results for regression tracking
	mkdir -p results
	$(PYTHON) -m repro all --save results/baseline.json

compare:  ## compare against the saved baseline
	$(PYTHON) -m repro all --compare results/baseline.json

experiments-md:  ## regenerate EXPERIMENTS.md from full-scale runs
	$(PYTHON) scripts/generate_experiments_md.py

loc:
	@find src tests benchmarks examples scripts -name "*.py" | xargs wc -l | tail -1

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
