"""Transposed, per-attribute **sorted** value lists (Section II-A).

Exact split finding enumerates every attribute value as a candidate split,
so the training matrix is transposed and each attribute's values are stored
in sorted order next to the owning instance id -- "a common and efficient
approach used in training decision trees" [3], [7].  The paper's worked
example sorts descending (``a1: (x2: 1.2); (x4: 1.2); (x3: 0.5)``) and so do
we; ties keep ascending instance-id order (stable sort), which pins down
every later tie-break deterministically.

During training the trainer re-segments these flat arrays by tree node; this
module only builds the initial one-segment-per-attribute layout and offers
pure-NumPy accessors used across the trainers and the tests.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from ..gpusim.kernel import GpuDevice
from ..gpusim.primitives import segment_sort_desc
from .matrix import CSCMatrix

__all__ = ["SortedColumns", "build_sorted_columns"]


@dataclasses.dataclass
class SortedColumns:
    """Flat sorted attribute lists.

    Attributes
    ----------
    col_offsets:
        ``(d + 1,)`` int64; attribute ``j`` occupies
        ``[col_offsets[j], col_offsets[j+1])`` in the flat arrays.
    values:
        ``(nnz,)`` float64, descending within each attribute.
    inst:
        ``(nnz,)`` int64 owning-instance ids (ascending among equal values).
    n_rows, n_cols:
        Logical matrix shape.
    """

    col_offsets: np.ndarray
    values: np.ndarray
    inst: np.ndarray
    n_rows: int
    n_cols: int

    def __post_init__(self) -> None:
        self.col_offsets = np.asarray(self.col_offsets, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float64)
        self.inst = np.asarray(self.inst, dtype=np.int64)
        if self.col_offsets.size != self.n_cols + 1:
            raise ValueError("col_offsets must have n_cols + 1 entries")
        if self.col_offsets[0] != 0 or self.col_offsets[-1] != self.values.size:
            raise ValueError("col_offsets must span the flat arrays")
        if self.values.size != self.inst.size:
            raise ValueError("values and inst must align")

    @property
    def nnz(self) -> int:
        return self.values.size

    def column(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(values, instance ids)`` views of attribute ``j``."""
        lo, hi = self.col_offsets[j], self.col_offsets[j + 1]
        return self.values[lo:hi], self.inst[lo:hi]

    def missing_count(self, j: int) -> int:
        """Instances with no entry for attribute ``j`` (missing values)."""
        return self.n_rows - int(self.col_offsets[j + 1] - self.col_offsets[j])

    def check_sorted(self) -> bool:
        """True iff every attribute segment is descending (test invariant)."""
        for j in range(self.n_cols):
            vals, _ = self.column(j)
            if vals.size > 1 and np.any(np.diff(vals) > 0):
                return False
        return True

    @property
    def nbytes_device(self) -> int:
        """Device footprint: fp32 value + int32 instance id per entry, plus
        the attribute offsets."""
        return self.nnz * 8 + self.col_offsets.size * 8


def build_sorted_columns(csc: CSCMatrix, device: GpuDevice | None = None) -> SortedColumns:
    """Sort each CSC column by descending value (stable in instance id).

    When a ``device`` is given the sort is executed through the simulator's
    segmented radix-sort primitive (one-time cost the paper notes is
    amortized across all trees); otherwise a pure host sort is used.
    """
    offsets = csc.indptr.copy()
    if device is not None:
        values, inst = segment_sort_desc(
            device, csc.data, csc.indices, offsets, name="build_sorted_attr_lists"
        )
    else:
        sid = np.repeat(np.arange(csc.n_cols, dtype=np.int64), np.diff(offsets))
        order = np.lexsort((-csc.data, sid))
        values, inst = csc.data[order], csc.indices[order]
    return SortedColumns(
        col_offsets=offsets,
        values=values,
        inst=inst,
        n_rows=csc.n_rows,
        n_cols=csc.n_cols,
    )
