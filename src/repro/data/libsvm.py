"""LibSVM text-format I/O.

The paper's datasets all come from the LibSVM repository; this module reads
and writes that format so the harness can run on the *real* files when a
user has them on disk (the synthetic generators in
:mod:`repro.data.datasets` are only the offline stand-in).

Format: one instance per line, ``<label> <index>:<value> ...`` with indices
conventionally 1-based.  Comments after ``#`` are ignored, blank lines are
skipped.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Tuple

import numpy as np

from .matrix import CSRMatrix

__all__ = ["load_libsvm", "dump_libsvm", "loads_libsvm", "dumps_libsvm"]


def loads_libsvm(
    text: str, *, n_cols: int | None = None, zero_based: bool = False
) -> Tuple[CSRMatrix, np.ndarray]:
    """Parse LibSVM-formatted text into ``(CSRMatrix, labels)``."""
    return _read(io.StringIO(text), n_cols=n_cols, zero_based=zero_based)


def load_libsvm(
    path: str | Path, *, n_cols: int | None = None, zero_based: bool = False
) -> Tuple[CSRMatrix, np.ndarray]:
    """Read a LibSVM file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return _read(fh, n_cols=n_cols, zero_based=zero_based)


def _read(
    fh: TextIO, *, n_cols: int | None, zero_based: bool
) -> Tuple[CSRMatrix, np.ndarray]:
    labels: list[float] = []
    indptr: list[int] = [0]
    cols: list[int] = []
    vals: list[float] = []
    offset = 0 if zero_based else 1
    for lineno, raw in enumerate(fh, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        try:
            labels.append(float(parts[0]))
        except ValueError:
            raise ValueError(f"line {lineno}: bad label {parts[0]!r}") from None
        row: list[tuple[int, float]] = []
        for tok in parts[1:]:
            try:
                idx_s, val_s = tok.split(":", 1)
                idx = int(idx_s) - offset
                val = float(val_s)
            except ValueError:
                raise ValueError(f"line {lineno}: bad feature token {tok!r}") from None
            if idx < 0:
                raise ValueError(f"line {lineno}: feature index below {offset}")
            row.append((idx, val))
        row.sort(key=lambda cv: cv[0])
        for idx, val in row:
            cols.append(idx)
            vals.append(val)
        indptr.append(len(cols))
    inferred = (max(cols) + 1) if cols else 0
    if n_cols is None:
        n_cols = inferred
    elif n_cols < inferred:
        raise ValueError(f"n_cols={n_cols} smaller than max feature index + 1 = {inferred}")
    X = CSRMatrix(
        np.asarray(indptr, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals, dtype=np.float64),
        n_cols=n_cols,
    )
    return X, np.asarray(labels, dtype=np.float64)


def dumps_libsvm(X: CSRMatrix, y: np.ndarray, *, zero_based: bool = False) -> str:
    """Serialize to LibSVM text."""
    y = np.asarray(y, dtype=np.float64)
    if y.size != X.n_rows:
        raise ValueError("label count must match rows")
    offset = 0 if zero_based else 1
    out: list[str] = []
    for i in range(X.n_rows):
        cols, vals = X.row(i)
        # repr() gives the shortest exact round-trip decimal for a float
        feats = " ".join(
            f"{int(c) + offset}:{float(v)!r}" for c, v in zip(cols, vals)
        )
        label = repr(float(y[i]))
        out.append(f"{label} {feats}".rstrip())
    return "\n".join(out) + ("\n" if out else "")


def dump_libsvm(path: str | Path, X: CSRMatrix, y: np.ndarray, *, zero_based: bool = False) -> None:
    """Write a LibSVM file to disk."""
    Path(path).write_text(dumps_libsvm(X, y, zero_based=zero_based), encoding="utf-8")
