"""Dense and sparse training-set representations (Section II-A of the paper).

The paper contrasts a *dense* representation (an ``n x d`` matrix -- cheap
random access, huge memory) with a *sparse* one that stores only the present
``(attribute, value)`` pairs per instance.  A crucial semantic difference
drives one of Table II's findings: in the sparse form an absent entry is a
**missing value** whose branch direction is *learned* (Section II-A,
"Missing values"), while the dense form must fill it with a number -- the
GPU XGBoost baseline fills with 0, which changes the trained trees and its
RMSE ("probably because of dense representation which considers missing
values as 0").

These classes are implemented from scratch (no ``scipy.sparse``) because the
representation details -- layouts, conversion algorithms, byte accounting --
are part of what the paper's design space is about.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = ["DenseMatrix", "CSRMatrix", "CSCMatrix"]


class DenseMatrix:
    """Row-major dense ``n x d`` matrix with an explicit fill for absences."""

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError("DenseMatrix requires a 2-D array")
        self.values = values

    @property
    def n_rows(self) -> int:
        return self.values.shape[0]

    @property
    def n_cols(self) -> int:
        return self.values.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        return self.values.shape  # type: ignore[return-value]

    @property
    def nbytes_fp32(self) -> int:
        """Device footprint of the dense values at float32, as the GPU
        XGBoost baseline would allocate them."""
        return self.n_rows * self.n_cols * 4

    def to_csr(self, *, absent_value: float = 0.0) -> "CSRMatrix":
        """Sparsify: entries equal to ``absent_value`` become absent."""
        mask = self.values != absent_value
        counts = mask.sum(axis=1)
        indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        indices = np.nonzero(mask)[1].astype(np.int64)
        data = self.values[mask].astype(np.float64)
        return CSRMatrix(indptr, indices, data, n_cols=self.n_cols)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DenseMatrix) and np.array_equal(self.values, other.values)

    def __repr__(self) -> str:
        return f"DenseMatrix(shape={self.shape})"


def _validate_compressed(
    indptr: np.ndarray, indices: np.ndarray, data: np.ndarray, n_minor: int, axis_name: str
) -> None:
    if indptr.ndim != 1 or indptr.size < 1:
        raise ValueError("indptr must be 1-D and non-empty")
    if indptr[0] != 0 or indptr[-1] != indices.size:
        raise ValueError("indptr must start at 0 and end at nnz")
    if np.any(np.diff(indptr) < 0):
        raise ValueError("indptr must be non-decreasing")
    if indices.size != data.size:
        raise ValueError("indices and data must have equal length")
    if indices.size and (indices.min() < 0 or indices.max() >= n_minor):
        raise ValueError(f"{axis_name} index out of range [0, {n_minor})")
    if data.size and not np.all(np.isfinite(data)):
        raise ValueError(
            "non-finite value in matrix data; encode missing values as absent "
            "entries, not as nan/inf"
        )
    # minor indices must be strictly increasing within each major slice --
    # binary-search accessors and the stable transpose depend on it
    if indices.size > 1:
        same_major = np.repeat(
            np.arange(indptr.size - 1), np.diff(indptr)
        )
        interior = same_major[1:] == same_major[:-1]
        if np.any(interior & (np.diff(indices) <= 0)):
            raise ValueError(
                f"{axis_name} indices must be strictly increasing within each "
                "row/column (duplicates are not allowed)"
            )


class CSRMatrix:
    """Compressed sparse rows: per-instance (attribute, value) pairs.

    Absent entries are *missing* (not zero) -- see the module docstring.
    Within each row, column indices are kept sorted ascending.
    """

    def __init__(
        self, indptr: np.ndarray, indices: np.ndarray, data: np.ndarray, *, n_cols: int
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        if n_cols < 0:
            raise ValueError("n_cols must be non-negative")
        self.n_cols = int(n_cols)
        _validate_compressed(self.indptr, self.indices, self.data, self.n_cols, "column")

    # ------------------------------------------------------------- factories
    @classmethod
    def from_rows(
        cls, rows: Sequence[Iterable[Tuple[int, float]]], n_cols: int | None = None
    ) -> "CSRMatrix":
        """Build from per-row iterables of ``(col, value)`` pairs.

        >>> m = CSRMatrix.from_rows([[(2, 0.1)], [(0, 1.2), (2, 0.1), (3, 0.6)]])
        >>> m.shape
        (2, 4)
        """
        indptr = [0]
        cols: list[int] = []
        vals: list[float] = []
        for row in rows:
            pairs = sorted(row, key=lambda cv: cv[0])
            for c, v in pairs:
                cols.append(int(c))
                vals.append(float(v))
            indptr.append(len(cols))
        inferred = (max(cols) + 1) if cols else 0
        if n_cols is None:
            n_cols = inferred
        elif n_cols < inferred:
            raise ValueError(f"n_cols={n_cols} smaller than max column index {inferred - 1}")
        return cls(
            np.asarray(indptr, dtype=np.int64),
            np.asarray(cols, dtype=np.int64),
            np.asarray(vals, dtype=np.float64),
            n_cols=n_cols,
        )

    @classmethod
    def from_coo(
        cls, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray, *, n_rows: int, n_cols: int
    ) -> "CSRMatrix":
        """Build from unsorted coordinate triplets (duplicates not allowed)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (rows.size == cols.size == vals.size):
            raise ValueError("COO arrays must align")
        if rows.size and (rows.min() < 0 or rows.max() >= n_rows):
            raise ValueError("row index out of range")
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if rows.size > 1:
            dup = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
            if np.any(dup):
                raise ValueError("duplicate (row, col) entries in COO input")
        indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(rows, minlength=n_rows)))
        ).astype(np.int64)
        return cls(indptr, cols, vals, n_cols=n_cols)

    # ------------------------------------------------------------ properties
    @property
    def n_rows(self) -> int:
        return self.indptr.size - 1

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return self.data.size

    @property
    def density(self) -> float:
        cells = self.n_rows * self.n_cols
        return self.nnz / cells if cells else 0.0

    # -------------------------------------------------------------- accessors
    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(column indices, values)`` views of row ``i``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def get(self, i: int, j: int) -> float | None:
        """Value at ``(i, j)`` or ``None`` if absent/missing."""
        cols, vals = self.row(i)
        k = np.searchsorted(cols, j)
        if k < cols.size and cols[k] == j:
            return float(vals[k])
        return None

    # ------------------------------------------------------------ conversions
    def to_dense(self, fill: float = 0.0) -> DenseMatrix:
        """Materialize, filling absences with ``fill`` (0 = the xgbst-gpu
        semantics; ``np.nan`` keeps missingness explicit)."""
        out = np.full((self.n_rows, self.n_cols), fill, dtype=np.float64)
        row_of = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        out[row_of, self.indices] = self.data
        return DenseMatrix(out)

    def to_csc(self) -> "CSCMatrix":
        """Transpose to column-compressed form via the counting-sort
        algorithm (a stable scatter -- rows stay sorted within columns)."""
        order = np.argsort(self.indices, kind="stable")
        row_of = np.repeat(np.arange(self.n_rows, dtype=np.int64), np.diff(self.indptr))
        col_counts = np.bincount(self.indices, minlength=self.n_cols)
        indptr = np.concatenate(([0], np.cumsum(col_counts))).astype(np.int64)
        return CSCMatrix(indptr, row_of[order], self.data[order], n_rows=self.n_rows)

    def select_rows(self, idx: np.ndarray) -> "CSRMatrix":
        """New CSR with the given rows, in the given order (for train/test
        splits and the online-update example)."""
        idx = np.asarray(idx, dtype=np.int64)
        lens = np.diff(self.indptr)[idx]
        indptr = np.concatenate(([0], np.cumsum(lens))).astype(np.int64)
        gather = np.concatenate(
            [np.arange(self.indptr[i], self.indptr[i + 1]) for i in idx]
        ) if idx.size else np.empty(0, dtype=np.int64)
        return CSRMatrix(indptr, self.indices[gather], self.data[gather], n_cols=self.n_cols)

    @property
    def nbytes_sparse(self) -> int:
        """Device footprint as (value fp32 + column index int32) pairs plus
        the row pointer -- what GPU-GBDT ships over PCIe before sorting."""
        return self.nnz * 8 + self.indptr.size * 8

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CSRMatrix)
            and self.n_cols == other.n_cols
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"


class CSCMatrix:
    """Compressed sparse columns: per-attribute (instance, value) pairs.

    This is the layout split finding wants ("the matrix is transposed",
    Section II-A); :class:`~repro.data.sorted_columns.SortedColumns` is built
    directly from it.
    """

    def __init__(
        self, indptr: np.ndarray, indices: np.ndarray, data: np.ndarray, *, n_rows: int
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        if n_rows < 0:
            raise ValueError("n_rows must be non-negative")
        self.n_rows = int(n_rows)
        _validate_compressed(self.indptr, self.indices, self.data, self.n_rows, "row")

    @property
    def n_cols(self) -> int:
        return self.indptr.size - 1

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return self.data.size

    def column(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(row indices, values)`` views of column ``j``."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def to_csr(self) -> CSRMatrix:
        """Transpose back (counting-sort, stable)."""
        order = np.argsort(self.indices, kind="stable")
        col_of = np.repeat(np.arange(self.n_cols, dtype=np.int64), np.diff(self.indptr))
        row_counts = np.bincount(self.indices, minlength=self.n_rows)
        indptr = np.concatenate(([0], np.cumsum(row_counts))).astype(np.int64)
        return CSRMatrix(indptr, col_of[order], self.data[order], n_cols=self.n_cols)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CSCMatrix)
            and self.n_rows == other.n_rows
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )

    def __repr__(self) -> str:
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"
