"""Synthetic stand-ins for the paper's eight LibSVM datasets (Table II).

The paper trains on covtype, e2006, higgs, an insurance-claim set, log1p,
news20, real-sim and susy, downloaded from the LibSVM repository.  Those
files are not available offline, so each dataset is replaced by a generator
that matches the statistics its performance behaviour depends on:

* **cardinality / dimensionality** -- declared at full scale (driving the
  memory model, the SetKey segment counts, and work-scale extrapolation)
  while the functional run uses a reduced ``run_rows x run_cols`` sample;
* **density** -- what separates the dense (higgs, susy, insurance) from the
  sparse text datasets (news20, log1p, real-sim, e2006), and hence which
  ones the dense GPU baseline can hold in 12 GB;
* **value repetition** -- attributes draw from a configurable number of
  distinct levels; binary/categorical-heavy sets (covtype, insurance)
  compress well under RLE, continuous sets (higgs, susy) do not;
* **task type** -- binary {0,1} targets trained with MSE (as the paper
  does) or real-valued regression targets.

Targets are a sparse linear-plus-interaction function of a few signal
attributes with noise, so trees genuinely reduce training RMSE and test
error falls with the time budget (Fig. 10b).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

import numpy as np

from .matrix import CSRMatrix

__all__ = ["DatasetSpec", "Dataset", "TABLE2_SPECS", "TABLE2_NAMES", "make_dataset", "table1_example"]


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """Full-scale statistics of one Table-II dataset plus generator knobs."""

    name: str
    n_full: int
    d_full: int
    density_full: float
    task: str  # "binary" | "regression"
    #: distinct values per attribute; 0 means continuous (no repetition)
    levels: int
    #: fraction of attributes that are binary indicators (levels = 2)
    binary_frac: float
    #: default reduced-scale run shape
    run_rows: int
    run_cols: int
    #: density used at run scale (kept >= density_full so reduced columns
    #: still contain enough entries to grow depth-6 trees)
    run_density: float

    def __post_init__(self) -> None:
        if self.task not in ("binary", "regression"):
            raise ValueError(f"bad task {self.task!r}")
        if not (0 < self.density_full <= 1 and 0 < self.run_density <= 1):
            raise ValueError("densities must be in (0, 1]")

    @property
    def nnz_full(self) -> int:
        """Estimated full-scale non-zero count."""
        return int(round(self.n_full * self.d_full * self.density_full))


#: Full-scale statistics follow the LibSVM repository's published numbers.
TABLE2_SPECS: Dict[str, DatasetSpec] = {
    "covtype": DatasetSpec(
        name="covtype", n_full=581_012, d_full=54, density_full=0.22, task="binary",
        levels=64, binary_frac=0.80, run_rows=3000, run_cols=54, run_density=0.22,
    ),
    "e2006": DatasetSpec(
        name="e2006", n_full=16_087, d_full=150_360, density_full=0.0081, task="regression",
        levels=0, binary_frac=0.0, run_rows=2500, run_cols=600, run_density=0.02,
    ),
    "higgs": DatasetSpec(
        name="higgs", n_full=11_000_000, d_full=28, density_full=0.92, task="binary",
        levels=0, binary_frac=0.0, run_rows=4000, run_cols=28, run_density=0.92,
    ),
    "insurance": DatasetSpec(
        name="insurance", n_full=13_184_290, d_full=35, density_full=1.0, task="regression",
        levels=8, binary_frac=0.40, run_rows=3000, run_cols=35, run_density=1.0,
    ),
    "log1p": DatasetSpec(
        name="log1p", n_full=16_087, d_full=4_272_227, density_full=0.0014, task="regression",
        levels=0, binary_frac=0.0, run_rows=2000, run_cols=900, run_density=0.018,
    ),
    "news20": DatasetSpec(
        name="news20", n_full=19_996, d_full=1_355_191, density_full=0.00034, task="binary",
        levels=24, binary_frac=0.30, run_rows=2500, run_cols=1000, run_density=0.012,
    ),
    "real-sim": DatasetSpec(
        name="real-sim", n_full=72_309, d_full=20_958, density_full=0.0024, task="binary",
        levels=24, binary_frac=0.30, run_rows=3000, run_cols=600, run_density=0.015,
    ),
    "susy": DatasetSpec(
        name="susy", n_full=5_000_000, d_full=18, density_full=0.98, task="binary",
        levels=0, binary_frac=0.0, run_rows=4000, run_cols=18, run_density=0.98,
    ),
}

TABLE2_NAMES = tuple(TABLE2_SPECS)


@dataclasses.dataclass
class Dataset:
    """A generated dataset plus its full-scale declaration.

    ``work_scale`` and ``seg_scale`` feed the simulator's extrapolation (see
    :mod:`repro.gpusim.kernel`): element-linear kernel work recorded on the
    reduced run is multiplied by ``work_scale`` and segment-count-driven
    grids by ``seg_scale``.
    """

    spec: DatasetSpec
    X: CSRMatrix
    y: np.ndarray
    X_test: CSRMatrix
    y_test: np.ndarray
    seed: int

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def task(self) -> str:
        return self.spec.task

    @property
    def work_scale(self) -> float:
        nnz_run = max(self.X.nnz, 1)
        return max(1.0, self.spec.nnz_full / nnz_run)

    @property
    def seg_scale(self) -> float:
        return max(1.0, self.spec.d_full / max(self.X.n_cols, 1))

    @property
    def row_scale(self) -> float:
        """Full rows per run row (for per-instance buffers such as g/h)."""
        return max(1.0, self.spec.n_full / max(self.X.n_rows, 1))

    def describe(self) -> str:
        """One-line run-scale vs full-scale summary."""
        return (
            f"{self.name}: run {self.X.n_rows}x{self.X.n_cols} (nnz={self.X.nnz}), "
            f"full {self.spec.n_full}x{self.spec.d_full} "
            f"(nnz~{self.spec.nnz_full:.3g}), task={self.task}"
        )


def _column_values(
    rng: np.random.Generator, count: int, j: int, spec: DatasetSpec
) -> np.ndarray:
    """Draw ``count`` present values for column ``j`` under the spec's
    repetition profile.  Binary columns emit the constant 1.0 (bag-of-words
    style); quantized columns draw from ``levels`` distinct values;
    continuous columns are uniform floats (no repetition)."""
    n_binary = int(round(spec.run_cols * spec.binary_frac))
    if j < n_binary:
        return np.ones(count)
    if spec.levels > 0:
        grid = np.round(np.linspace(0.1, 4.0, spec.levels), 6)
        return rng.choice(grid, size=count)
    return np.round(rng.uniform(0.0, 4.0, size=count), 9)


def _generate_matrix(rng: np.random.Generator, n: int, spec: DatasetSpec) -> CSRMatrix:
    rows_list = []
    cols_list = []
    vals_list = []
    for j in range(spec.run_cols):
        present = np.flatnonzero(rng.random(n) < spec.run_density)
        if present.size == 0:
            # keep every column non-empty so it is a real split candidate
            present = rng.integers(0, n, size=1)
        rows_list.append(present)
        cols_list.append(np.full(present.size, j, dtype=np.int64))
        vals_list.append(_column_values(rng, present.size, j, spec))
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    vals = np.concatenate(vals_list)
    return CSRMatrix.from_coo(rows, cols, vals, n_rows=n, n_cols=spec.run_cols)


def _make_targets(
    rng: np.random.Generator, X: CSRMatrix, spec: DatasetSpec
) -> np.ndarray:
    """Sparse linear + pairwise-interaction target with noise."""
    d = X.n_cols
    k = min(12, d)
    signal_cols = rng.choice(d, size=k, replace=False)
    weights = rng.normal(0.0, 1.0, size=k)
    dense_signal = X.to_dense(fill=0.0).values[:, signal_cols]
    score = dense_signal @ weights
    if k >= 2:
        score = score + 0.5 * dense_signal[:, 0] * dense_signal[:, 1]
    score = score + rng.normal(0.0, 0.25 * (np.std(score) + 1e-9), size=X.n_rows)
    if spec.task == "binary":
        return (score > np.median(score)).astype(np.float64)
    # normalized regression target (keeps RMSEs in the paper's 0.2-0.5 range)
    return (score - score.mean()) / (score.std() + 1e-12)


def make_dataset(
    name: str,
    *,
    run_rows: int | None = None,
    run_cols: int | None = None,
    test_fraction: float = 0.25,
    seed: int = 7,
) -> Dataset:
    """Generate a Table-II dataset stand-in at reduced scale.

    Parameters
    ----------
    name:
        One of :data:`TABLE2_NAMES`.
    run_rows, run_cols:
        Override the spec's default reduced shape (tests use tiny values).
    test_fraction:
        Rows held out for the Fig. 10b test-error-vs-budget experiment.
    seed:
        Generator seed; identical arguments reproduce identical datasets.
    """
    try:
        base = TABLE2_SPECS[name]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; choose from {TABLE2_NAMES}") from None
    spec = dataclasses.replace(
        base,
        run_rows=run_rows if run_rows is not None else base.run_rows,
        run_cols=min(run_cols if run_cols is not None else base.run_cols, base.d_full),
    )
    if spec.run_rows < 8:
        raise ValueError("run_rows must be at least 8")
    rng = np.random.default_rng(seed)
    n_total = spec.run_rows
    X_all = _generate_matrix(rng, n_total, spec)
    y_all = _make_targets(rng, X_all, spec)
    n_test = int(round(n_total * test_fraction))
    perm = rng.permutation(n_total)
    test_idx, train_idx = perm[:n_test], perm[n_test:]
    return Dataset(
        spec=spec,
        X=X_all.select_rows(np.sort(train_idx)),
        y=y_all[np.sort(train_idx)],
        X_test=X_all.select_rows(np.sort(test_idx)),
        y_test=y_all[np.sort(test_idx)],
        seed=seed,
    )


def table1_example() -> Tuple[CSRMatrix, np.ndarray]:
    """The paper's 4-instance worked example (Table I) with toy targets.

    >>> X, y = table1_example()
    >>> X.get(3, 2)   # a3 of x4 in the paper's 1-based notation
    2.0
    """
    X = CSRMatrix.from_rows(
        [
            [(2, 0.1)],
            [(0, 1.2), (2, 0.1), (3, 0.6)],
            [(0, 0.5), (1, 1.0)],
            [(0, 1.2), (2, 2.0)],
        ],
        n_cols=4,
    )
    y = np.array([0.0, 1.0, 0.0, 1.0])
    return X, y
