"""Data substrate: matrix representations, sorted attribute lists, RLE
compression, LibSVM I/O and the Table-II synthetic dataset generators."""

from .analysis import DatasetStats, analyze
from .datasets import TABLE2_NAMES, TABLE2_SPECS, Dataset, DatasetSpec, make_dataset, table1_example
from .libsvm import dump_libsvm, dumps_libsvm, load_libsvm, loads_libsvm
from .matrix import CSCMatrix, CSRMatrix, DenseMatrix
from .rle import (
    RLE_POLICIES,
    RunLengthColumns,
    decide_compression,
    decode_segments,
    encode_segments,
    estimated_ratio,
    measured_ratio,
)
from .sorted_columns import SortedColumns, build_sorted_columns

__all__ = [
    "DatasetStats",
    "analyze",
    "TABLE2_NAMES",
    "TABLE2_SPECS",
    "Dataset",
    "DatasetSpec",
    "make_dataset",
    "table1_example",
    "dump_libsvm",
    "dumps_libsvm",
    "load_libsvm",
    "loads_libsvm",
    "CSCMatrix",
    "CSRMatrix",
    "DenseMatrix",
    "RLE_POLICIES",
    "RunLengthColumns",
    "decide_compression",
    "decode_segments",
    "encode_segments",
    "estimated_ratio",
    "measured_ratio",
    "SortedColumns",
    "build_sorted_columns",
]
