"""Run-Length Encoding of sorted attribute values (Section III-C).

Sorted attribute lists are full of repeated values (binary indicators,
quantized sensor readings, categorical codes), so the paper compresses each
segment's *values* with RLE: ``1.2, 1.2, 1.2, 3.4, 3.4, 3.4, 3.4`` becomes
``(1.2, 3), (3.4, 4)``.  Instance ids are not compressible (each entry names
a distinct instance) and stay in the full-length array.

Benefits reproduced here (and measured by the Fig. 9 ablation):

* memory + PCIe traffic shrink by the compression ratio;
* each run is exactly one split candidate, so the duplicated-split-point
  problem (same value, different prefix gains) disappears by construction;
* node splitting can operate on runs directly ("Directly Split RLE").

The compression *decision* follows the paper: compress when the estimated
ratio ``dimensionality / cardinality`` exceeds a user constant ``R``; a
``"measured"`` policy (actual runs/nnz) and forced on/off modes are also
provided, since the estimate is coarse.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from ..gpusim.primitives import check_offsets

__all__ = [
    "RunLengthColumns",
    "encode_segments",
    "decode_segments",
    "estimated_ratio",
    "measured_ratio",
    "decide_compression",
    "RLE_POLICIES",
]

RLE_POLICIES = ("paper", "measured", "always", "never")


@dataclasses.dataclass
class RunLengthColumns:
    """RLE view of segmented sorted values.

    Attributes
    ----------
    run_values:
        ``(n_runs,)`` value of each run.
    run_lengths:
        ``(n_runs,)`` int64 length of each run (all >= 1).
    run_offsets:
        ``(S + 1,)`` int64 segmentation of the run arrays mirroring the
        original ``offsets`` over elements: segment ``s`` owns runs
        ``[run_offsets[s], run_offsets[s+1])``.
    """

    run_values: np.ndarray
    run_lengths: np.ndarray
    run_offsets: np.ndarray

    def __post_init__(self) -> None:
        self.run_values = np.asarray(self.run_values, dtype=np.float64)
        self.run_lengths = np.asarray(self.run_lengths, dtype=np.int64)
        self.run_offsets = np.asarray(self.run_offsets, dtype=np.int64)
        if self.run_values.size != self.run_lengths.size:
            raise ValueError("run arrays must align")
        if self.run_lengths.size and self.run_lengths.min() < 1:
            raise ValueError("runs must have length >= 1")
        check_offsets(self.run_offsets, self.run_values.size)

    @property
    def n_runs(self) -> int:
        return self.run_values.size

    @property
    def n_elements(self) -> int:
        return int(self.run_lengths.sum())

    @property
    def compression_ratio(self) -> float:
        """elements per run -- > 1 means RLE shrinks the value array."""
        return self.n_elements / self.n_runs if self.n_runs else 1.0

    def element_offsets(self) -> np.ndarray:
        """Reconstruct the per-segment *element* offsets (S + 1 entries)."""
        ends = np.concatenate(([0], np.cumsum(self.run_lengths)))
        return ends[self.run_offsets]

    def run_starts(self) -> np.ndarray:
        """Element index where each run begins."""
        return np.concatenate(([0], np.cumsum(self.run_lengths[:-1]))) if self.n_runs else np.empty(0, np.int64)

    @property
    def nbytes_device(self) -> int:
        """Device bytes for the compressed values: fp32 value + int32 length
        per run, plus run offsets; instance ids are accounted separately."""
        return self.n_runs * 8 + self.run_offsets.size * 8


def encode_segments(values: np.ndarray, offsets: np.ndarray) -> RunLengthColumns:
    """RLE-compress each segment of a flat sorted-values array.

    Runs never cross segment boundaries, matching Fig. 4 where each
    attribute is compressed independently.  Linear time -- the paper notes
    compression is cheap *because* the values are already sorted.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.size
    offsets = check_offsets(offsets, n)
    if n == 0:
        return RunLengthColumns(
            run_values=np.empty(0),
            run_lengths=np.empty(0, np.int64),
            run_offsets=np.zeros(offsets.size, np.int64),
        )
    sid = np.repeat(np.arange(offsets.size - 1, dtype=np.int64), np.diff(offsets))
    new_run = np.empty(n, dtype=bool)
    new_run[0] = True
    new_run[1:] = (values[1:] != values[:-1]) | (sid[1:] != sid[:-1])
    starts = np.flatnonzero(new_run)
    run_values = values[starts]
    run_lengths = np.diff(np.concatenate((starts, [n])))
    # number of runs beginning before each segment boundary
    run_offsets = np.searchsorted(starts, offsets, side="left")
    return RunLengthColumns(run_values=run_values, run_lengths=run_lengths, run_offsets=run_offsets)


def decode_segments(rle: RunLengthColumns) -> Tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`encode_segments`: ``(values, element offsets)``."""
    values = np.repeat(rle.run_values, rle.run_lengths)
    return values, rle.element_offsets()


def estimated_ratio(n_rows: int, n_cols: int) -> float:
    """The paper's compression-ratio estimate: ``dimensionality / cardinality``.

    A tall-and-narrow dataset (large n, few attributes) yields a small
    ratio, a short-and-wide one a large ratio.  The paper compresses when
    the estimate exceeds ``R``.
    """
    if n_rows <= 0:
        raise ValueError("cardinality must be positive")
    return n_cols / n_rows


def measured_ratio(values: np.ndarray, offsets: np.ndarray) -> float:
    """Actual repetition: elements per run over the sorted segments."""
    return encode_segments(values, offsets).compression_ratio


def decide_compression(
    policy: str,
    *,
    n_rows: int,
    n_cols: int,
    values: np.ndarray | None = None,
    offsets: np.ndarray | None = None,
    paper_threshold: float = 1e-3,
    measured_threshold: float = 4.0,
) -> bool:
    """Decide whether to RLE-compress under the given policy.

    ``"paper"`` uses the dimensionality/cardinality estimate with threshold
    ``R = paper_threshold``; ``"measured"`` compresses when the real sorted
    data repeats at least ``measured_threshold`` elements per run (requires
    ``values``/``offsets``); ``"always"``/``"never"`` force the choice.
    """
    if policy not in RLE_POLICIES:
        raise ValueError(f"unknown RLE policy {policy!r}; choose from {RLE_POLICIES}")
    if policy == "always":
        return True
    if policy == "never":
        return False
    if policy == "paper":
        return estimated_ratio(n_rows, n_cols) > paper_threshold
    if values is None or offsets is None:
        raise ValueError("policy 'measured' requires the sorted values and offsets")
    return measured_ratio(values, offsets) >= measured_threshold
