"""Dataset statistics: the quantities the paper's design decisions key on.

Section III's adaptive choices are driven by measurable dataset properties:
the RLE policy needs the repetition profile, the SetKey formula needs the
dimensionality, the memory planner needs nnz and density.  This module
computes a one-stop report of those statistics for any CSR matrix -- used
by the examples and useful when pointing the library at real LibSVM files.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .matrix import CSRMatrix
from .rle import encode_segments
from .sorted_columns import build_sorted_columns

__all__ = ["DatasetStats", "analyze"]


@dataclasses.dataclass
class DatasetStats:
    """Summary statistics of a training matrix."""

    n_rows: int
    n_cols: int
    nnz: int
    density: float
    missing_rate: float  # fraction of (row, attr) cells that are absent
    rle_ratio: float  # elements per run over all sorted columns
    mean_distinct_per_attr: float
    max_distinct_per_attr: int
    binary_attr_frac: float  # attributes with a single distinct value
    rows_per_attr_mean: float  # mean present entries per attribute
    estimated_sparse_bytes: int  # (value fp32 + id int32) per entry
    estimated_rle_bytes: int  # runs * 8 + ids

    def format(self) -> str:
        """Readable multi-line report."""
        return "\n".join(
            [
                f"shape            : {self.n_rows} x {self.n_cols}",
                f"nnz / density    : {self.nnz} / {self.density:.4%}",
                f"missing rate     : {self.missing_rate:.4%}",
                f"RLE ratio        : {self.rle_ratio:.2f} elements/run",
                f"distinct per attr: mean {self.mean_distinct_per_attr:.1f}, "
                f"max {self.max_distinct_per_attr}",
                f"binary attrs     : {self.binary_attr_frac:.1%}",
                f"sorted-list bytes: {self.estimated_sparse_bytes:,} "
                f"(RLE: {self.estimated_rle_bytes:,})",
            ]
        )


def analyze(X: CSRMatrix) -> DatasetStats:
    """Compute :class:`DatasetStats` for ``X`` (one pass + one sort)."""
    n, d = X.shape
    cols = build_sorted_columns(X.to_csc())
    rle = encode_segments(cols.values, cols.col_offsets)
    distinct = np.diff(rle.run_offsets)
    lens = np.diff(cols.col_offsets)
    nonzero_attrs = distinct[lens > 0]
    cells = max(n * d, 1)
    return DatasetStats(
        n_rows=n,
        n_cols=d,
        nnz=X.nnz,
        density=X.nnz / cells,
        missing_rate=1.0 - X.nnz / cells,
        rle_ratio=rle.compression_ratio,
        mean_distinct_per_attr=float(nonzero_attrs.mean()) if nonzero_attrs.size else 0.0,
        max_distinct_per_attr=int(distinct.max()) if distinct.size else 0,
        binary_attr_frac=float(np.mean(nonzero_attrs == 1)) if nonzero_attrs.size else 0.0,
        rows_per_attr_mean=float(lens.mean()) if lens.size else 0.0,
        estimated_sparse_bytes=int(X.nnz * 8),
        estimated_rle_bytes=int(rle.n_runs * 8 + X.nnz * 4),
    )
