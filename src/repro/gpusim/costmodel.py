"""Analytic cost model: ledgers -> modeled seconds.

Each kernel's time is the classic roofline form::

    t = launch_latency * launches
      + dispatch_overhead(blocks)
      + max(compute_time, memory_time) / utilization

with ``compute_time = flops / (sustained GFLOP/s)`` and ``memory_time``
splitting traffic into coalesced streams (at ``stream_efficiency`` of peak
DRAM bandwidth) and irregular gathers/scatters (at ``irregular_efficiency``
-- a 128-byte line fetched for one useful word).  PCIe transfers are charged
at the link bandwidth plus a fixed per-transfer latency.

Calibration
-----------
``COMPUTE_EFFICIENCY`` reflects that data-dependent tree kernels sustain a
small fraction of peak arithmetic throughput.  The constants were chosen so
the modeled end-to-end ratios on the Table-II workloads land inside the
paper's reported bands (asserted by ``tests/test_calibration.py``); no
per-dataset fudge factors exist -- every number is derived from the recorded
per-kernel work.
"""

from __future__ import annotations

from .device import DeviceSpec, DiskSpec, NVME_SSD
from .kernel import CostLedger, KernelLaunch, Transfer
from .scheduler import occupancy

__all__ = [
    "COMPUTE_EFFICIENCY",
    "PCIE_LATENCY_S",
    "kernel_time",
    "transfer_time",
    "total_time",
    "phase_times",
]

#: sustained fraction of peak arithmetic throughput for irregular,
#: data-dependent kernels (gain evaluation, partitioning, scans)
COMPUTE_EFFICIENCY = 0.12

#: fixed latency of one PCIe transaction (driver + DMA setup)
PCIE_LATENCY_S = 20e-6


def kernel_time(spec: DeviceSpec, k: KernelLaunch) -> float:
    """Modeled seconds for one recorded (possibly multi-) launch."""
    occ = occupancy(spec, k.blocks, k.threads_per_block)

    gflops = spec.peak_gflops * COMPUTE_EFFICIENCY
    compute_s = k.work.total_flops / (gflops * 1e9)

    bw = spec.mem_bandwidth_gbs * 1e9
    memory_s = k.work.coalesced_bytes / (bw * spec.stream_efficiency) + k.work.irregular_bytes / (
        bw * spec.irregular_efficiency
    )

    body_s = max(compute_s, memory_s) / max(occ.utilization, 1e-9)
    overhead_s = k.launches * spec.kernel_launch_us * 1e-6 + occ.dispatch_seconds
    return overhead_s + body_s


def transfer_time(spec: DeviceSpec, t: Transfer, disk: DiskSpec = NVME_SSD) -> float:
    """Modeled seconds for one transfer (PCIe copy or disk IO).

    ``channel == "disk"`` transfers are charged against ``disk`` (latency +
    bytes over the direction's bandwidth); everything else is a PCIe
    transaction at the link bandwidth plus the fixed setup latency.
    """
    if t.channel == "disk":
        if t.direction == "read":
            return disk.read_seconds(t.nbytes)
        return disk.write_seconds(t.nbytes)
    return PCIE_LATENCY_S + t.nbytes / (spec.pcie_bandwidth_gbs * 1e9)


def total_time(spec: DeviceSpec, ledger: CostLedger, disk: DiskSpec = NVME_SSD) -> float:
    """Modeled wall time for everything in the ledger (no overlap assumed)."""
    s = sum(kernel_time(spec, k) for k in ledger.kernels)
    s += sum(transfer_time(spec, t, disk) for t in ledger.transfers)
    return s


def phase_times(
    spec: DeviceSpec, ledger: CostLedger, disk: DiskSpec = NVME_SSD
) -> dict[str, float]:
    """Modeled seconds per phase label, in first-appearance order."""
    out: dict[str, float] = {}
    for k in ledger.kernels:
        out[k.phase] = out.get(k.phase, 0.0) + kernel_time(spec, k)
    for t in ledger.transfers:
        out[t.phase] = out.get(t.phase, 0.0) + transfer_time(spec, t, disk)
    return out
