"""Hardware specifications for the simulated devices.

The paper's testbed (Section IV): a workstation with two Xeon E5-2640v4
10-core CPUs (40 hardware threads), 256 GB of RAM, and an NVIDIA Titan X
Pascal with 12 GB of device memory; GPU-GBDT was additionally validated on a
Tesla P100 and a Tesla K20.  The specs below encode the published hardware
parameters of those parts; the cost model (:mod:`repro.gpusim.costmodel`)
converts recorded kernel work into modeled seconds using these numbers.

Prices are the ones the paper itself uses for the performance-price study
(Fig. 10a): $1,200 for the Titan X and $1,878 for the pair of Xeons, "at the
time of writing" (2017).
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "DeviceSpec",
    "CpuSpec",
    "DiskSpec",
    "A100_80GB",
    "NVME_SSD",
    "SATA_SSD",
    "TITAN_X_PASCAL",
    "TESLA_P100",
    "TESLA_K20",
    "XEON_E5_2640V4_X2",
    "GIB",
]

GIB = 1024**3


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated CUDA device.

    Attributes mirror the quantities the paper's design reasons about:
    SM count (the Customized SetKey formula divides segments over SMs),
    global-memory capacity (RLE exists to fit datasets into it), memory
    bandwidth with an irregular-access penalty (the paper's first challenge),
    kernel-launch latency (why one-block-per-segment is slow), and PCIe
    bandwidth ("one order of magnitude slower than accessing the GPU global
    memory").
    """

    name: str
    sm_count: int
    cores_per_sm: int
    clock_ghz: float
    global_mem_bytes: int
    mem_bandwidth_gbs: float
    pcie_bandwidth_gbs: float
    kernel_launch_us: float
    price_usd: float
    warp_size: int = 32
    max_threads_per_block: int = 1024
    max_blocks_per_sm: int = 32
    #: fraction of a fully-coalesced cache line that an irregular (gather/
    #: scatter) access actually uses; 128-byte lines serving 8-byte words
    #: give 1/16, but L2 hits soften that in practice.
    irregular_efficiency: float = 0.085
    #: sustained fraction of peak DRAM bandwidth for streaming kernels
    stream_efficiency: float = 0.55

    def __post_init__(self) -> None:
        if self.sm_count <= 0 or self.cores_per_sm <= 0:
            raise ValueError("SM geometry must be positive")
        if self.global_mem_bytes <= 0:
            raise ValueError("global memory must be positive")
        if not (0 < self.irregular_efficiency <= 1):
            raise ValueError("irregular_efficiency must be in (0, 1]")

    @property
    def total_cores(self) -> int:
        """Total CUDA cores on the device."""
        return self.sm_count * self.cores_per_sm

    @property
    def peak_gflops(self) -> float:
        """Single-precision peak throughput in GFLOP/s (1 FMA = 2 flops)."""
        return self.total_cores * self.clock_ghz * 2.0

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: {self.sm_count} SMs x {self.cores_per_sm} cores @ "
            f"{self.clock_ghz:.3f} GHz, {self.global_mem_bytes / GIB:.0f} GiB @ "
            f"{self.mem_bandwidth_gbs:.0f} GB/s, PCIe {self.pcie_bandwidth_gbs:.0f} GB/s, "
            f"${self.price_usd:.0f}"
        )


@dataclasses.dataclass(frozen=True)
class CpuSpec:
    """Static description of the (simulated) CPU host.

    ``per_thread_bandwidth_gbs`` models the well-known fact that a single
    core cannot saturate the socket's DRAM controllers -- it is what makes a
    40-thread run roughly 6-10x faster than 1 thread on memory-bound scans,
    matching the xgbst-1 / xgbst-40 gap in Table II.
    """

    name: str
    cores: int
    threads: int  # hardware threads (with SMT)
    clock_ghz: float
    flops_per_cycle: float  # per core, scalar+SIMD sustained
    mem_bandwidth_gbs: float  # aggregate, all sockets
    per_thread_bandwidth_gbs: float
    price_usd: float
    #: overhead of entering/leaving an OpenMP-style parallel region
    parallel_region_us: float = 4.0
    #: SMT yield: extra throughput from threads beyond physical cores
    smt_yield: float = 0.25
    #: efficiency loss from load imbalance / NUMA when using many threads
    scaling_efficiency: float = 0.78
    #: Amdahl serial fraction of each parallel region (bookkeeping, reduction
    #: tails) -- what keeps 40-thread XGBoost at ~6-10x over 1 thread
    serial_fraction: float = 0.015
    #: effective fraction of bandwidth for data-dependent gathers (caches
    #: make CPU gathers far cheaper than GPU uncoalesced accesses)
    random_access_efficiency: float = 0.5

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.threads <= 0:
            raise ValueError("core counts must be positive")
        if self.threads < self.cores:
            raise ValueError("threads must be >= physical cores")

    def effective_cores(self, threads: int) -> float:
        """Effective parallel compute capacity for a given thread count."""
        if threads <= 0:
            raise ValueError("threads must be positive")
        threads = min(threads, self.threads)
        if threads <= self.cores:
            base = float(threads)
        else:
            base = self.cores + (threads - self.cores) * self.smt_yield
        if threads == 1:
            return 1.0
        return base * self.scaling_efficiency

    def effective_bandwidth(self, threads: int) -> float:
        """Aggregate memory bandwidth reachable by ``threads`` threads (GB/s)."""
        if threads <= 0:
            raise ValueError("threads must be positive")
        threads = min(threads, self.threads)
        return min(threads * self.per_thread_bandwidth_gbs, self.mem_bandwidth_gbs)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: {self.cores} cores / {self.threads} threads @ "
            f"{self.clock_ghz:.1f} GHz, {self.mem_bandwidth_gbs:.0f} GB/s, "
            f"${self.price_usd:.0f}"
        )


@dataclasses.dataclass(frozen=True)
class DiskSpec:
    """Static description of the host's secondary storage.

    Out-of-core training (:mod:`repro.stream`) spills compressed column
    blocks to disk and streams them back, so disk IO joins PCIe as a
    first-class transfer class in the cost ledger: a block read of ``B``
    bytes is modeled as ``latency_s + B / (read_bandwidth_gbs * 1e9)``
    (writes use the write bandwidth).  Like PCIe -- "one order of magnitude
    slower than accessing the GPU global memory" -- disk is another order
    down again, which is exactly why the prefetch pipeline that overlaps
    block IO with compute matters (Ou, arXiv:2005.09148).
    """

    name: str
    read_bandwidth_gbs: float
    write_bandwidth_gbs: float
    latency_s: float

    def __post_init__(self) -> None:
        if self.read_bandwidth_gbs <= 0 or self.write_bandwidth_gbs <= 0:
            raise ValueError("disk bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("disk latency must be non-negative")

    def read_seconds(self, nbytes: float) -> float:
        """Modeled seconds to read ``nbytes`` in one request."""
        return self.latency_s + nbytes / (self.read_bandwidth_gbs * 1e9)

    def write_seconds(self, nbytes: float) -> float:
        """Modeled seconds to write ``nbytes`` in one request."""
        return self.latency_s + nbytes / (self.write_bandwidth_gbs * 1e9)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: {self.read_bandwidth_gbs:.1f}/"
            f"{self.write_bandwidth_gbs:.1f} GB/s r/w, "
            f"{self.latency_s * 1e6:.0f} us latency"
        )


#: A PCIe 3.0 x4 NVMe SSD of the paper's era -- the default spill target.
NVME_SSD = DiskSpec(
    name="NVMe SSD (PCIe 3.0 x4)",
    read_bandwidth_gbs=3.0,
    write_bandwidth_gbs=1.8,
    latency_s=90e-6,
)

#: A SATA SSD: the pessimistic spill target for sensitivity studies.
SATA_SSD = DiskSpec(
    name="SATA SSD",
    read_bandwidth_gbs=0.52,
    write_bandwidth_gbs=0.48,
    latency_s=150e-6,
)


#: The paper's main GPU: NVIDIA Titan X (Pascal), 28 SMs x 128 cores,
#: 12 GB GDDR5X at 480 GB/s.
TITAN_X_PASCAL = DeviceSpec(
    name="Titan X (Pascal)",
    sm_count=28,
    cores_per_sm=128,
    clock_ghz=1.417,
    global_mem_bytes=12 * GIB,
    mem_bandwidth_gbs=480.0,
    pcie_bandwidth_gbs=12.0,
    kernel_launch_us=5.0,
    price_usd=1200.0,
)

#: Tesla P100 (16 GB HBM2) -- the paper reports nearly sublinear scaling in
#: core count across K20 / Titan X / P100.
TESLA_P100 = DeviceSpec(
    name="Tesla P100",
    sm_count=56,
    cores_per_sm=64,
    clock_ghz=1.328,
    global_mem_bytes=16 * GIB,
    mem_bandwidth_gbs=732.0,
    pcie_bandwidth_gbs=12.0,
    kernel_launch_us=5.0,
    price_usd=5899.0,
)

#: A "what-if" modern datacenter part (A100 80GB, 2020): not in the paper,
#: used by the forward-looking device experiments to ask what GPU-GBDT's
#: margins become on newer silicon.
A100_80GB = DeviceSpec(
    name="A100 80GB",
    sm_count=108,
    cores_per_sm=64,
    clock_ghz=1.41,
    global_mem_bytes=80 * GIB,
    mem_bandwidth_gbs=2039.0,
    pcie_bandwidth_gbs=25.0,
    kernel_launch_us=4.0,
    price_usd=15_000.0,
)

#: Tesla K20 (Kepler, 5 GB GDDR5).
TESLA_K20 = DeviceSpec(
    name="Tesla K20",
    sm_count=13,
    cores_per_sm=192,
    clock_ghz=0.706,
    global_mem_bytes=5 * GIB,
    mem_bandwidth_gbs=208.0,
    pcie_bandwidth_gbs=8.0,
    kernel_launch_us=7.0,
    price_usd=3000.0,
)

#: The paper's CPU host: 2x Xeon E5-2640 v4 (Broadwell, 10 cores each,
#: 2.4 GHz base, ~68.3 GB/s per socket).
XEON_E5_2640V4_X2 = CpuSpec(
    name="2x Xeon E5-2640 v4",
    cores=20,
    threads=40,
    clock_ghz=2.4,
    flops_per_cycle=8.0,
    mem_bandwidth_gbs=136.6,
    per_thread_bandwidth_gbs=11.0,
    price_usd=1878.0,
)
