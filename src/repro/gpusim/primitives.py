"""Device primitives used by the GBDT kernels.

These are the GPU building blocks the paper leans on (Section III-B):
segmented prefix sum ("available in CUDA Thrust"), segmented reduction for
best-split selection, parallel reduction, order-preserving scatter for node
partitioning (Fig. 2/3), prefix-sum stream compaction for Directly-Split-RLE
(Fig. 7), and segmented radix sort for the initial attribute-list build.

Every primitive executes functionally on NumPy arrays *and* charges the
simulated device with a :class:`~repro.gpusim.kernel.Work` estimate.  The
functional results are exact -- tests compare them against per-segment
NumPy references, and hypothesis drives them with adversarial segmentations
(empty segments, singleton segments, all-one-segment).

Conventions
-----------
* A *segmentation* of an array of length ``n`` is an int64 ``offsets`` array
  of length ``S + 1`` with ``offsets[0] == 0``, ``offsets[-1] == n`` and
  non-decreasing entries; segment ``s`` occupies ``[offsets[s], offsets[s+1])``.
* Segments may be empty.
* All argmax-style reductions return the **first** maximising index, which
  is the tie-breaking rule the split-selection logic relies on.
"""

from __future__ import annotations

import numpy as np

from .kernel import GpuDevice

__all__ = [
    "check_offsets",
    "seg_ids",
    "exclusive_cumsum",
    "segmented_inclusive_cumsum",
    "segmented_sum",
    "segmented_argmax",
    "argmax_first",
    "gather",
    "bincount_sum",
    "two_way_partition",
    "stream_compact",
    "segment_sort_desc",
]


def check_offsets(offsets: np.ndarray, n: int) -> np.ndarray:
    """Validate a segmentation over ``n`` elements and return it as int64."""
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.size < 1:
        raise ValueError("offsets must be a 1-D array with at least one entry")
    if offsets[0] != 0 or offsets[-1] != n:
        raise ValueError(f"offsets must span [0, {n}], got [{offsets[0]}, {offsets[-1]}]")
    if np.any(np.diff(offsets) < 0):
        raise ValueError("offsets must be non-decreasing")
    return offsets


def seg_ids(offsets: np.ndarray, n: int) -> np.ndarray:
    """Element -> segment-id map (int64 array of length ``n``)."""
    offsets = check_offsets(offsets, n)
    return np.repeat(np.arange(offsets.size - 1, dtype=np.int64), np.diff(offsets))


# --------------------------------------------------------------------- scans
def exclusive_cumsum(device: GpuDevice, values: np.ndarray, name: str = "exclusive_scan") -> np.ndarray:
    """Exclusive prefix sum (Blelchsum): ``out[i] = sum(values[:i])``."""
    values = np.asarray(values)
    acc_dtype = np.int64 if values.dtype.kind in "biu" else np.float64
    out = np.zeros(values.size, dtype=acc_dtype)
    if values.size > 1:
        out[1:] = np.cumsum(values[:-1].astype(acc_dtype, copy=False))
    device.launch(
        name,
        elements=values.size,
        flops_per_element=1.0,
        coalesced_bytes=2.0 * values.size * max(values.dtype.itemsize, out.dtype.itemsize),
    )
    return out


def segmented_inclusive_cumsum(
    device: GpuDevice,
    values: np.ndarray,
    offsets: np.ndarray,
    name: str = "seg_prefix_sum",
    charge: bool = True,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Segmented inclusive prefix sum (Fig. 1 of the paper).

    Implemented the way a single-pass GPU segmented scan behaves: a global
    scan whose carry is cancelled at segment heads.  ``out`` (optional,
    matching accumulator dtype) receives the result without allocating.
    """
    values = np.asarray(values)
    n = values.size
    offsets = check_offsets(offsets, n)
    if values.dtype.kind in "biu":
        acc = values.astype(np.int64, copy=False)
    else:
        acc = values.astype(np.float64, copy=False)
    if out is None:
        out = np.cumsum(acc)
    else:
        np.cumsum(acc, out=out)
    if n > 0:
        starts = offsets[:-1]
        lens = np.diff(offsets)
        # carry entering a segment = inclusive scan value just before its start
        base = np.where(starts > 0, out[np.maximum(starts - 1, 0)], 0)
        np.subtract(out, np.repeat(base, lens), out=out)
    if charge:
        device.launch(
            name,
            elements=n,
            flops_per_element=2.0,
            coalesced_bytes=2.0 * n * acc.dtype.itemsize + offsets.size * 8,
        )
    return out


def segmented_sum(
    device: GpuDevice,
    values: np.ndarray,
    offsets: np.ndarray,
    name: str = "seg_reduce_sum",
    charge: bool = True,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Per-segment totals; empty segments sum to 0.

    ``scratch`` (optional, ``n + 1`` elements of the accumulator dtype)
    holds the intermediate exclusive prefix sum so only the small
    per-segment result is allocated; totals are bit-identical either way
    (the same prefix values are subtracted).
    """
    values = np.asarray(values)
    n = values.size
    offsets = check_offsets(offsets, n)
    if values.dtype.kind in "iu":
        acc = values.astype(np.int64, copy=False)
        zero = np.int64(0)
    else:
        acc = values.astype(np.float64, copy=False)
        zero = np.float64(0.0)
    if scratch is None:
        c = np.concatenate(([zero], np.cumsum(acc)))
        out = c[offsets[1:]] - c[offsets[:-1]]
    else:
        if scratch.size < n + 1:
            raise ValueError("scratch must hold n + 1 accumulator elements")
        c = scratch[: n + 1]
        c[0] = zero
        np.cumsum(acc, out=c[1:])
        out = c[offsets[1:]] - c[offsets[:-1]]
    if charge:
        device.launch(
            name,
            elements=n,
            flops_per_element=1.0,
            coalesced_bytes=n * acc.dtype.itemsize + 2 * offsets.size * 8,
        )
    return out


# ---------------------------------------------------------------- reductions
def segmented_argmax(
    device: GpuDevice,
    values: np.ndarray,
    offsets: np.ndarray,
    name: str = "seg_reduce_argmax",
    blocks: int | None = None,
    blocks_scale: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment ``(max, first global argmax)``.

    Empty segments yield ``(-inf, -1)``.  ``blocks`` lets the caller impose
    the Customized-SetKey grid (or the naive one-block-per-segment grid when
    the optimization is disabled, with ``blocks_scale=True``).
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.size
    offsets = check_offsets(offsets, n)
    n_seg = offsets.size - 1
    best_val = np.full(n_seg, -np.inf)
    best_idx = np.full(n_seg, -1, dtype=np.int64)
    lens = np.diff(offsets)
    nonempty = lens > 0
    if n > 0 and np.any(nonempty):
        starts = offsets[:-1][nonempty]
        # reduceat over non-empty starts: each range ends at the next start
        # (empty segments contribute no range), last range runs to the end.
        best_val[nonempty] = np.maximum.reduceat(values, starts)
        sid = np.repeat(np.arange(n_seg, dtype=np.int64), lens)
        hit = np.flatnonzero(values == best_val[sid])
        hit_seg = sid[hit]
        segs, first = np.unique(hit_seg, return_index=True)
        best_idx[segs] = hit[first]
    device.launch(
        name,
        elements=n,
        flops_per_element=2.0,
        coalesced_bytes=n * 8 + n_seg * 16,
        blocks=blocks,
        blocks_scale=blocks_scale,
    )
    return best_val, best_idx


def argmax_first(device: GpuDevice, values: np.ndarray, name: str = "reduce_argmax") -> int:
    """Whole-array first-argmax via the GPU parallel-reduction pattern [12]."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("argmax of empty array")
    device.launch(name, elements=values.size, flops_per_element=1.0, coalesced_bytes=values.size * 8)
    return int(np.argmax(values))


# ------------------------------------------------------------------- gathers
def gather(
    device: GpuDevice,
    src: np.ndarray,
    idx: np.ndarray,
    name: str = "gather",
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``src[idx]`` with irregular-access cost (the paper's challenge 1).

    ``out`` (optional, ``idx``-shaped, ``src``-dtyped) receives the gathered
    values without allocating.
    """
    src = np.asarray(src)
    idx = np.asarray(idx)
    if out is None:
        out = src[idx]
    else:
        np.take(src, idx, out=out)
    device.launch(
        name,
        elements=idx.size,
        flops_per_element=0.5,
        coalesced_bytes=idx.size * (idx.dtype.itemsize + out.dtype.itemsize),
        irregular_bytes=idx.size * src.dtype.itemsize,
    )
    return out


def bincount_sum(
    device: GpuDevice,
    groups: np.ndarray,
    weights: np.ndarray,
    n_groups: int,
    name: str = "atomic_group_sum",
) -> np.ndarray:
    """Per-group float64 sums via atomic adds (``out[g] += w``)."""
    groups = np.asarray(groups, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if groups.shape != weights.shape:
        raise ValueError("groups and weights must align")
    if groups.size and (groups.min() < 0 or groups.max() >= n_groups):
        raise ValueError("group id out of range")
    out = np.bincount(groups, weights=weights, minlength=n_groups)
    device.launch(
        name,
        elements=groups.size,
        flops_per_element=1.0,
        coalesced_bytes=groups.size * 16,
        irregular_bytes=groups.size * 8,  # atomic scatter into the group table
    )
    return out


# ------------------------------------------------------------- partitioning
def two_way_partition(
    device: GpuDevice,
    offsets: np.ndarray,
    side: np.ndarray,
    name: str = "order_preserving_partition",
) -> tuple[np.ndarray, np.ndarray]:
    """Order-preserving two-way split of every segment (paper Fig. 2/3).

    Parameters
    ----------
    offsets:
        Segmentation of the current array (``S + 1`` entries).
    side:
        Per-element destination: ``0`` -> left child segment, ``1`` -> right
        child segment, ``-1`` -> dropped (instances that landed in a leaf).

    Returns
    -------
    dest:
        Per-element destination position in the new array (``-1`` if
        dropped).  Within each child segment the original relative order is
        preserved -- this is what keeps attribute values sorted (the
        "Scatter" row of Fig. 2), verified by property tests.
    new_offsets:
        Segmentation of the new array with ``2 S + 1`` entries; old segment
        ``s`` maps to children ``2 s`` (left) and ``2 s + 1`` (right).
    """
    side = np.asarray(side, dtype=np.int8)
    n = side.size
    offsets = check_offsets(offsets, n)
    n_seg = offsets.size - 1
    if side.size and (side.min() < -1 or side.max() > 1):
        raise ValueError("side entries must be -1, 0 or 1")

    is_left = (side == 0).astype(np.int64)
    is_right = (side == 1).astype(np.int64)
    rank_left = segmented_inclusive_cumsum(device, is_left, offsets, name=f"{name}/rank_left") - 1
    rank_right = segmented_inclusive_cumsum(device, is_right, offsets, name=f"{name}/rank_right") - 1
    left_counts = segmented_sum(device, is_left, offsets, name=f"{name}/count_left")
    right_counts = segmented_sum(device, is_right, offsets, name=f"{name}/count_right")

    counts = np.empty(2 * n_seg, dtype=np.int64)
    counts[0::2] = left_counts
    counts[1::2] = right_counts
    new_offsets = np.concatenate(([0], np.cumsum(counts)))

    dest = np.full(n, -1, dtype=np.int64)
    sid = seg_ids(offsets, n)
    lmask = side == 0
    rmask = side == 1
    dest[lmask] = new_offsets[2 * sid[lmask]] + rank_left[lmask]
    dest[rmask] = new_offsets[2 * sid[rmask] + 1] + rank_right[rmask]
    device.launch(
        name,
        elements=n,
        flops_per_element=3.0,
        coalesced_bytes=n * (1 + 8 + 8),
        irregular_bytes=n * 8,  # the scatter write itself
    )
    return dest, new_offsets


def stream_compact(
    device: GpuDevice, mask: np.ndarray, name: str = "stream_compact"
) -> tuple[np.ndarray, int]:
    """Prefix-sum compaction: destinations of kept elements.

    Returns ``(dest, count)`` where ``dest[i]`` is the output slot of element
    ``i`` if ``mask[i]`` else ``-1``.  This is the "use prefix sum to remove
    the RLE element with length of 0" step of Directly-Split-RLE (Fig. 7).
    """
    mask = np.asarray(mask, dtype=bool)
    n = mask.size
    ranks = np.cumsum(mask.astype(np.int64))
    count = int(ranks[-1]) if n else 0
    dest = np.where(mask, ranks - 1, -1)
    device.launch(
        name,
        elements=n,
        flops_per_element=2.0,
        coalesced_bytes=n * (1 + 8 + 8),
    )
    return dest, count


# -------------------------------------------------------------------- sorts
def segment_sort_desc(
    device: GpuDevice,
    values: np.ndarray,
    payload: np.ndarray,
    offsets: np.ndarray,
    name: str = "seg_radix_sort",
) -> tuple[np.ndarray, np.ndarray]:
    """Stable per-segment sort by descending value, carrying a payload.

    Used once per training run to build the sorted attribute lists of
    Section II-A (descending order, as in the paper's ``a1`` example:
    ``1.2, 1.2, 0.5``).  Stability fixes the tie order to the original
    (instance-id) order, making every later step deterministic.
    """
    values = np.asarray(values)
    payload = np.asarray(payload)
    n = values.size
    if payload.size != n:
        raise ValueError("values and payload must align")
    offsets = check_offsets(offsets, n)
    sid = seg_ids(offsets, n)
    order = np.lexsort((-values, sid))
    log_n = max(1.0, np.log2(max(n, 2)))
    device.launch(
        name,
        elements=n,
        flops_per_element=2.0 * log_n,
        coalesced_bytes=2.0 * n * (values.dtype.itemsize + payload.dtype.itemsize) * (log_n / 8.0 + 1.0),
    )
    return values[order], payload[order]
