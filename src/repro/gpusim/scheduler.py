"""Block-to-SM scheduling and occupancy accounting.

A CUDA grid executes in *waves*: each SM holds a limited number of resident
blocks (bounded by a per-SM thread budget and a hardware block cap), and the
grid drains wave by wave.  Two consequences matter for the paper:

* **Under-occupancy** -- a grid with fewer blocks than SMs leaves SMs idle.
  This is why the data-parallel granularity challenge (Section III-A, third
  challenge) exists: late-stage nodes are small, so naive one-node-at-a-time
  kernels under-fill the device.
* **Block-dispatch overhead** -- launching one block per segment creates
  grids of millions of tiny blocks on high-dimensional datasets; the
  hardware dispatch cost then becomes visible (10-20% in Fig. 9's
  "Customized SetKey" ablation).
"""

from __future__ import annotations

import dataclasses

from .device import DeviceSpec

__all__ = ["Occupancy", "occupancy"]

#: per-SM resident-thread budget (Pascal/Kepler-era hardware)
THREADS_PER_SM = 2048

#: amortized GigaThread-engine cycles to dispatch one thread block to an SM
#: (the cost model divides by sm_count, so this is cycles per block *per SM
#: lane*; calibrated so one-block-per-segment grids cost 10-20% end-to-end
#: on the high-dimensional datasets, the paper's Customized-SetKey effect)
CYCLES_PER_BLOCK_DISPATCH = 10.0


@dataclasses.dataclass(frozen=True)
class Occupancy:
    """Result of scheduling a grid on a device."""

    resident_blocks: int  # blocks co-resident across the whole device
    waves: int  # ceil(blocks / resident_blocks)
    utilization: float  # fraction of device compute the grid can use
    dispatch_seconds: float  # block dispatch overhead for the whole grid


def occupancy(spec: DeviceSpec, blocks: int, threads_per_block: int) -> Occupancy:
    """Schedule ``blocks`` blocks of ``threads_per_block`` threads on ``spec``.

    Utilization combines two effects: SMs left idle when the last (or only)
    wave is partially filled, and intra-block slack when the block is smaller
    than a warp.
    """
    if blocks <= 0 or threads_per_block <= 0:
        raise ValueError("grid geometry must be positive")
    tpb = min(threads_per_block, spec.max_threads_per_block)
    blocks_per_sm = min(spec.max_blocks_per_sm, max(1, THREADS_PER_SM // tpb))
    resident = spec.sm_count * blocks_per_sm
    waves = max(1, -(-blocks // resident))

    # SM-level utilization: with fewer blocks than SMs, only `blocks` SMs work.
    if blocks >= spec.sm_count:
        sm_util = 1.0
    else:
        sm_util = blocks / spec.sm_count
    # warp-level slack for very small blocks
    warp_util = min(1.0, tpb / spec.warp_size)
    util = sm_util * warp_util

    # Dispatch overhead: blocks are issued by the GigaThread engine; the cost
    # is amortized across SMs (they dispatch concurrently).
    dispatch_s = blocks * CYCLES_PER_BLOCK_DISPATCH / (spec.clock_ghz * 1e9 * spec.sm_count)

    return Occupancy(
        resident_blocks=resident,
        waves=waves,
        utilization=util,
        dispatch_seconds=dispatch_s,
    )
