"""Simulated GPU substrate: device specs, memory, kernels, cost model.

See DESIGN.md Section 2 for why a simulator is the right substrate here:
the paper's kernels execute functionally (exact arithmetic) while their
resource demands are charged to an analytic Titan-X-class cost model.
"""

from .device import (
    A100_80GB,
    GIB,
    NVME_SSD,
    SATA_SSD,
    TESLA_K20,
    TESLA_P100,
    TITAN_X_PASCAL,
    XEON_E5_2640V4_X2,
    CpuSpec,
    DeviceSpec,
    DiskSpec,
)
from .kernel import CostLedger, GpuDevice, KernelLaunch, Transfer, Work
from .memory import Allocation, DeviceOutOfMemory, GlobalMemory
from .scheduler import Occupancy, occupancy
from .timeline import PhaseSlice, format_profile, kernel_breakdown, profile
from .trace import chrome_trace_events, export_chrome_trace

__all__ = [
    "A100_80GB",
    "GIB",
    "NVME_SSD",
    "SATA_SSD",
    "TESLA_K20",
    "TESLA_P100",
    "TITAN_X_PASCAL",
    "XEON_E5_2640V4_X2",
    "CpuSpec",
    "DeviceSpec",
    "DiskSpec",
    "CostLedger",
    "GpuDevice",
    "KernelLaunch",
    "Transfer",
    "Work",
    "Allocation",
    "DeviceOutOfMemory",
    "GlobalMemory",
    "Occupancy",
    "occupancy",
    "PhaseSlice",
    "format_profile",
    "kernel_breakdown",
    "profile",
    "chrome_trace_events",
    "export_chrome_trace",
]
