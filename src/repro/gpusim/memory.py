"""Device global-memory accounting.

The simulator executes kernels functionally on host NumPy arrays, but every
device-resident buffer the algorithm *would* allocate on a real GPU is
registered here with its **full-scale** size in bytes.  This is what lets the
reproduction exhibit the paper's memory phenomena for real:

* the dense-representation baseline (xgbst-gpu) exceeds 12 GB on the large
  sparse datasets of Table II and aborts with :class:`DeviceOutOfMemory`;
* RLE compression shrinks the sorted attribute lists so GPU-GBDT fits;
* the Customized-IdxComp-Workload formula exists precisely to bound the
  histogram-partition counter memory (Section III-B).
"""

from __future__ import annotations

import dataclasses
from typing import Dict

__all__ = ["DeviceOutOfMemory", "Allocation", "GlobalMemory"]


class DeviceOutOfMemory(RuntimeError):
    """Raised when an allocation would exceed device global-memory capacity."""


@dataclasses.dataclass
class Allocation:
    """A live device buffer."""

    name: str
    nbytes: int


class GlobalMemory:
    """A bump allocator with capacity enforcement and peak tracking.

    Buffers are identified by name; allocating an existing name resizes it
    (free + alloc), which models reallocation between boosting iterations.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._live: Dict[str, Allocation] = {}
        self._in_use = 0
        self._peak = 0
        self._n_allocs = 0
        self._n_oom = 0

    # ------------------------------------------------------------------ api
    def alloc(self, name: str, nbytes: int | float) -> Allocation:
        """Allocate (or resize) the named buffer.

        Raises
        ------
        DeviceOutOfMemory
            if the new total footprint would exceed capacity.  The failed
            request is *not* recorded as live.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"negative allocation for {name!r}")
        previous = self._live.get(name)
        prev_bytes = previous.nbytes if previous is not None else 0
        new_total = self._in_use - prev_bytes + nbytes
        if new_total > self.capacity_bytes:
            self._n_oom += 1
            raise DeviceOutOfMemory(
                f"allocating {name!r} ({nbytes / 2**30:.2f} GiB) would use "
                f"{new_total / 2**30:.2f} GiB of {self.capacity_bytes / 2**30:.2f} GiB"
            )
        alloc = Allocation(name=name, nbytes=nbytes)
        self._live[name] = alloc
        self._in_use = new_total
        self._peak = max(self._peak, self._in_use)
        self._n_allocs += 1
        return alloc

    def free(self, name: str) -> None:
        """Release the named buffer; freeing an unknown name is an error."""
        try:
            alloc = self._live.pop(name)
        except KeyError:
            raise KeyError(f"no live allocation named {name!r}") from None
        self._in_use -= alloc.nbytes

    def free_all(self) -> None:
        """Release every live buffer (device reset between experiments)."""
        self._live.clear()
        self._in_use = 0

    def would_fit(self, nbytes: int | float) -> bool:
        """True if an additional ``nbytes`` allocation would succeed."""
        return self._in_use + int(nbytes) <= self.capacity_bytes

    # ------------------------------------------------------------ inspection
    @property
    def in_use_bytes(self) -> int:
        """Bytes currently allocated."""
        return self._in_use

    @property
    def peak_bytes(self) -> int:
        """High-water mark over the lifetime of this memory object."""
        return self._peak

    @property
    def free_bytes(self) -> int:
        """Bytes still available."""
        return self.capacity_bytes - self._in_use

    @property
    def oom_count(self) -> int:
        """Number of failed allocations observed."""
        return self._n_oom

    def live_allocations(self) -> Dict[str, int]:
        """Mapping of live buffer name -> bytes (a copy)."""
        return {name: alloc.nbytes for name, alloc in self._live.items()}

    def report(self) -> str:
        """Multi-line usage report, largest buffers first."""
        lines = [
            f"device memory: {self._in_use / 2**30:.3f} GiB in use, "
            f"peak {self._peak / 2**30:.3f} GiB of {self.capacity_bytes / 2**30:.1f} GiB"
        ]
        for name, alloc in sorted(self._live.items(), key=lambda kv: -kv[1].nbytes):
            lines.append(f"  {name:<32s} {alloc.nbytes / 2**20:12.2f} MiB")
        return "\n".join(lines)
