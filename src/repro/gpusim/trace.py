"""Chrome-trace export of a device's kernel timeline.

Writes the recorded ledger as a ``chrome://tracing`` / Perfetto-compatible
JSON document: one row per phase, one slice per kernel launch (duration =
the cost model's time), PCIe transfers on their own row.  Handy for eyeball
profiling of a training run::

    from repro.gpusim.trace import export_chrome_trace
    export_chrome_trace(device, "train.trace.json")

Open the file at https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

from .costmodel import kernel_time, transfer_time
from .kernel import GpuDevice

__all__ = ["chrome_trace_events", "export_chrome_trace"]


def chrome_trace_events(device: GpuDevice) -> List[dict]:
    """Ledger -> list of Chrome Trace Event Format dicts (``X`` events).

    Events are laid out back-to-back in recorded order (the cost model
    assumes no overlap), with per-phase thread ids so the viewer groups
    rows by training phase.
    """
    spec = device.spec
    events: List[dict] = []
    phase_tid: dict = {}
    t_us = 0.0
    if not device.ledger.kernels and not device.ledger.transfers:
        # an empty ledger exports as an empty (but valid) trace -- no
        # orphaned metadata rows for tracks that hold no slices
        return events
    for k in device.ledger.kernels:
        dur = kernel_time(spec, k) * 1e6
        tid = phase_tid.setdefault(k.phase, len(phase_tid) + 1)
        events.append(
            {
                "name": k.name,
                "cat": k.phase,
                "ph": "X",
                "ts": round(t_us, 3),
                "dur": round(dur, 3),
                "pid": 1,
                "tid": tid,
                "args": {
                    "elements": k.work.elements,
                    "coalesced_bytes": k.work.coalesced_bytes,
                    "irregular_bytes": k.work.irregular_bytes,
                    "blocks": k.blocks,
                    "launches": k.launches,
                },
            }
        )
        t_us += dur
    pcie_tid = len(phase_tid) + 1
    for t in device.ledger.transfers:
        dur = transfer_time(spec, t) * 1e6
        events.append(
            {
                "name": f"{t.name} ({t.direction})",
                "cat": "pcie",
                "ph": "X",
                "ts": round(t_us, 3),
                "dur": round(dur, 3),
                "pid": 1,
                "tid": pcie_tid,
                "args": {"bytes": t.nbytes},
            }
        )
        t_us += dur
    # row labels (the pcie row only exists if a transfer was recorded)
    rows = list(phase_tid.items())
    if device.ledger.transfers:
        rows.append(("pcie", pcie_tid))
    for phase, tid in rows:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": phase},
            }
        )
    return events


def export_chrome_trace(device: GpuDevice, path: Path | str) -> int:
    """Write the trace JSON to ``path``; returns the number of slice events.

    An empty ledger writes a valid document with an empty ``traceEvents``
    list (and returns 0) rather than a trace with orphaned metadata rows.
    """
    events = chrome_trace_events(device)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}), encoding="utf-8"
    )
    return sum(1 for e in events if e.get("ph") == "X")
