"""Profiling views over a device's cost ledger.

The paper's Section IV-A analyses where training time goes ("the most
expensive operation is finding the best split point: ... around 95% of that
for GPU-GBDT").  These helpers reproduce that style of breakdown from the
recorded ledger.
"""

from __future__ import annotations

import dataclasses
from typing import List

from .costmodel import kernel_time, phase_times, transfer_time
from .kernel import GpuDevice

__all__ = ["PhaseSlice", "profile", "format_profile", "kernel_breakdown"]


@dataclasses.dataclass(frozen=True)
class PhaseSlice:
    """One phase's share of the modeled runtime."""

    phase: str
    seconds: float
    fraction: float
    launches: int


def profile(device: GpuDevice) -> List[PhaseSlice]:
    """Per-phase modeled time, ordered by first appearance."""
    times = phase_times(device.spec, device.ledger)
    total = sum(times.values()) or 1.0
    launches_by_phase: dict[str, int] = {}
    for k in device.ledger.kernels:
        launches_by_phase[k.phase] = launches_by_phase.get(k.phase, 0) + k.launches
    return [
        PhaseSlice(phase=p, seconds=s, fraction=s / total, launches=launches_by_phase.get(p, 0))
        for p, s in times.items()
    ]


def kernel_breakdown(device: GpuDevice) -> dict[str, float]:
    """Modeled seconds per kernel name (aggregated), plus PCIe under 'pcie'."""
    out: dict[str, float] = {}
    for k in device.ledger.kernels:
        out[k.name] = out.get(k.name, 0.0) + kernel_time(device.spec, k)
    pcie = sum(transfer_time(device.spec, t) for t in device.ledger.transfers)
    if pcie:
        out["pcie"] = pcie
    return out


def format_profile(device: GpuDevice, title: str = "device profile") -> str:
    """ASCII profile table: phase, seconds, percentage, launch count."""
    slices = profile(device)
    lines = [title, f"{'phase':<24s} {'seconds':>12s} {'share':>8s} {'launches':>9s}"]
    for sl in slices:
        lines.append(f"{sl.phase:<24s} {sl.seconds:>12.6f} {sl.fraction:>7.1%} {sl.launches:>9d}")
    total = sum(sl.seconds for sl in slices)
    lines.append(f"{'total':<24s} {total:>12.6f}")
    return "\n".join(lines)
