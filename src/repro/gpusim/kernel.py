"""Kernel-launch recording and the simulated GPU device object.

Execution model
---------------
The trainer's "kernels" run functionally on host NumPy arrays (bit-for-bit
the arithmetic a CUDA kernel would perform), and every launch is recorded in
a :class:`CostLedger` with a :class:`Work` descriptor.  The cost model
(:mod:`repro.gpusim.costmodel`) later converts the ledger into modeled
seconds for a given :class:`~repro.gpusim.device.DeviceSpec`.

Scale extrapolation
-------------------
Datasets are *generated* at a reduced cardinality so the functional run is
fast, but declared with their full-scale cardinality (see
:mod:`repro.data.datasets`).  ``GpuDevice.work_scale`` multiplies
element-linear quantities (elements, bytes) and ``GpuDevice.seg_scale``
multiplies segment-count-linear quantities (grid sizes driven by
``#nodes x #attributes``).  Kernel-launch *counts* depend only on tree depth
and the number of trees, so they are never scaled.  DESIGN.md Section 2
discusses why this extrapolation preserves the paper's performance shape.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Iterator, List

from .device import DeviceSpec, DiskSpec, NVME_SSD, TITAN_X_PASCAL
from .memory import GlobalMemory

__all__ = ["Work", "KernelLaunch", "Transfer", "CostLedger", "GpuDevice"]


@dataclasses.dataclass(frozen=True)
class Work:
    """Resource demand of one (logical) kernel launch.

    Quantities are totals over the whole grid, *after* scale extrapolation.

    Attributes
    ----------
    elements:
        Number of work items processed.
    flops_per_element:
        Arithmetic per item (floating or integer ops).
    coalesced_bytes:
        DRAM traffic with fully-coalesced access (streams, scans).
    irregular_bytes:
        DRAM traffic through data-dependent gathers/scatters -- the paper's
        "irregular memory accesses" (challenge 1, Section III-A).
    """

    elements: float
    flops_per_element: float = 1.0
    coalesced_bytes: float = 0.0
    irregular_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.elements < 0 or self.coalesced_bytes < 0 or self.irregular_bytes < 0:
            raise ValueError("work quantities must be non-negative")

    @property
    def total_flops(self) -> float:
        return self.elements * self.flops_per_element

    @property
    def total_bytes(self) -> float:
        return self.coalesced_bytes + self.irregular_bytes


@dataclasses.dataclass(frozen=True)
class KernelLaunch:
    """One recorded kernel launch (possibly standing for ``launches`` real ones)."""

    name: str
    work: Work
    blocks: int
    threads_per_block: int
    launches: int
    phase: str

    def __post_init__(self) -> None:
        if self.blocks <= 0 or self.threads_per_block <= 0 or self.launches <= 0:
            raise ValueError("launch geometry must be positive")


@dataclasses.dataclass(frozen=True)
class Transfer:
    """One recorded data movement.

    ``channel`` selects the link the bytes move over: ``"pcie"`` is the
    classic host<->device copy (directions ``h2d`` / ``d2h``); ``"disk"``
    is secondary-storage IO recorded by the out-of-core block store
    (directions ``read`` / ``write``), costed against a
    :class:`~repro.gpusim.device.DiskSpec` instead of the PCIe link.
    """

    name: str
    nbytes: float
    direction: str  # pcie: "h2d" | "d2h"; disk: "read" | "write"
    phase: str
    channel: str = "pcie"

    _DIRECTIONS = {"pcie": ("h2d", "d2h"), "disk": ("read", "write")}

    def __post_init__(self) -> None:
        if self.channel not in self._DIRECTIONS:
            raise ValueError(f"bad transfer channel {self.channel!r}")
        if self.direction not in self._DIRECTIONS[self.channel]:
            raise ValueError(
                f"bad {self.channel} transfer direction {self.direction!r}"
            )
        if self.nbytes < 0:
            raise ValueError("transfer size must be non-negative")


class CostLedger:
    """Append-only record of kernel launches and PCIe transfers."""

    def __init__(self) -> None:
        self.kernels: List[KernelLaunch] = []
        self.transfers: List[Transfer] = []

    def clear(self) -> None:
        """Drop every recorded launch and transfer."""
        self.kernels.clear()
        self.transfers.clear()

    @property
    def n_launches(self) -> int:
        """Total number of physical kernel launches recorded."""
        return sum(k.launches for k in self.kernels)

    @property
    def total_elements(self) -> float:
        return sum(k.work.elements for k in self.kernels)

    @property
    def total_bytes(self) -> float:
        return sum(k.work.total_bytes for k in self.kernels)

    @property
    def transfer_bytes(self) -> float:
        return sum(t.nbytes for t in self.transfers)

    @property
    def disk_bytes(self) -> float:
        """Total bytes moved over the disk channel."""
        return sum(t.nbytes for t in self.transfers if t.channel == "disk")

    def phases(self) -> List[str]:
        """Distinct phase labels in first-appearance order."""
        seen: dict[str, None] = {}
        for k in self.kernels:
            seen.setdefault(k.phase)
        for t in self.transfers:
            seen.setdefault(t.phase)
        return list(seen)


class GpuDevice:
    """A simulated CUDA device: spec + global memory + cost ledger.

    Parameters
    ----------
    spec:
        Hardware description (defaults to the paper's Titan X Pascal).
    work_scale:
        Multiplier applied to element-linear work (see module docstring).
    seg_scale:
        Multiplier applied to segment-count-driven grid sizes.
    """

    def __init__(
        self,
        spec: DeviceSpec = TITAN_X_PASCAL,
        *,
        work_scale: float = 1.0,
        seg_scale: float = 1.0,
        disk: DiskSpec = NVME_SSD,
    ) -> None:
        if work_scale <= 0 or seg_scale <= 0:
            raise ValueError("scales must be positive")
        self.spec = spec
        self.disk = disk
        self.memory = GlobalMemory(spec.global_mem_bytes)
        self.ledger = CostLedger()
        self.work_scale = float(work_scale)
        self.seg_scale = float(seg_scale)
        self._phase_stack: List[str] = []

    # ----------------------------------------------------------------- phase
    @property
    def current_phase(self) -> str:
        return self._phase_stack[-1] if self._phase_stack else "unphased"

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Tag all launches inside the block with ``name`` (for Fig.-style
        phase breakdowns such as "95% of time in finding the best split")."""
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()

    # ---------------------------------------------------------------- launch
    def launch(
        self,
        name: str,
        elements: float,
        *,
        flops_per_element: float = 1.0,
        coalesced_bytes: float = 0.0,
        irregular_bytes: float = 0.0,
        threads_per_block: int = 256,
        blocks: int | None = None,
        blocks_scale: bool = False,
        launches: int = 1,
        scale: bool = True,
    ) -> KernelLaunch:
        """Record one logical kernel launch.

        ``blocks=None`` derives the grid from the (scaled) element count.
        An explicit ``blocks`` is taken as-is unless ``blocks_scale`` is set,
        in which case it is multiplied by ``seg_scale`` (grids proportional
        to ``#segments``, e.g. one-block-per-segment with SetKey disabled).
        """
        s = self.work_scale if scale else 1.0
        eff_elements = elements * s
        work = Work(
            elements=eff_elements,
            flops_per_element=flops_per_element,
            coalesced_bytes=coalesced_bytes * s,
            irregular_bytes=irregular_bytes * s,
        )
        if blocks is None:
            grid = max(1, int(-(-eff_elements // threads_per_block)))
        else:
            grid = max(1, int(blocks * (self.seg_scale if blocks_scale else 1.0)))
        launch = KernelLaunch(
            name=name,
            work=work,
            blocks=grid,
            threads_per_block=threads_per_block,
            launches=launches,
            phase=self.current_phase,
        )
        self.ledger.kernels.append(launch)
        return launch

    def transfer(
        self, name: str, nbytes: float, direction: str = "h2d", *, scale: bool = True
    ) -> Transfer:
        """Record a PCIe transfer (scaled like element-linear work)."""
        t = Transfer(
            name=name,
            nbytes=nbytes * (self.work_scale if scale else 1.0),
            direction=direction,
            phase=self.current_phase,
        )
        self.ledger.transfers.append(t)
        return t

    def disk_transfer(
        self,
        name: str,
        nbytes: float,
        direction: str = "read",
        *,
        scale: bool = True,
        phase: str | None = None,
    ) -> Transfer:
        """Record disk IO (block spill/fetch), costed against :attr:`disk`.

        ``phase`` overrides the phase-stack label: the prefetch pipeline
        issues these from a background thread, which must not read the main
        thread's phase stack mid-mutation.
        """
        t = Transfer(
            name=name,
            nbytes=nbytes * (self.work_scale if scale else 1.0),
            direction=direction,
            phase=phase if phase is not None else self.current_phase,
            channel="disk",
        )
        self.ledger.transfers.append(t)
        return t

    # ---------------------------------------------------------------- timing
    def elapsed_seconds(self) -> float:
        """Modeled wall time of everything recorded so far."""
        from .costmodel import total_time

        return total_time(self.spec, self.ledger, self.disk)

    def reset(self) -> None:
        """Clear ledger and free all device memory (new experiment)."""
        self.ledger.clear()
        self.memory.free_all()
        self._phase_stack.clear()
