"""Customized SetKey: segments-per-block allocation (Section III-B).

Segmented reductions need a key per segment.  The naive grid uses one thread
block per segment, but the number of segments is ``#attributes x #nodes``
and explodes on high-dimensional datasets as the tree grows -- "using one
block per segment results in low efficiency, due to the overhead of
scheduling and launching a large number of GPU thread blocks".

The paper's remedy is a simple formula for how many segments each block
handles::

    segments_per_block = 1 + #segments / (#SM * C)        (C = 1000)

so the grid stays near ``#SM * C`` blocks no matter how many segments exist.
The paper reports a 10-20% end-to-end win on the high-dimensional datasets
(log1p, news20), which the Fig. 9 ablation bench reproduces.
"""

from __future__ import annotations

import dataclasses

from ..gpusim.device import DeviceSpec

__all__ = ["SetKeyPlan", "plan_segment_grid"]


@dataclasses.dataclass(frozen=True)
class SetKeyPlan:
    """Grid assignment for a segmented kernel."""

    n_segments: int
    segments_per_block: int
    blocks: int
    custom: bool  # True = paper's formula, False = one block per segment


def plan_segment_grid(
    spec: DeviceSpec,
    n_segments: int,
    *,
    enabled: bool = True,
    c: int = 1000,
) -> SetKeyPlan:
    """Choose the grid for a kernel over ``n_segments`` segments.

    With ``enabled=False`` this degrades to the naive one-block-per-segment
    assignment the paper ablates against.
    """
    if n_segments < 1:
        raise ValueError("n_segments must be >= 1")
    if c < 1:
        raise ValueError("C must be >= 1")
    if not enabled:
        return SetKeyPlan(
            n_segments=n_segments, segments_per_block=1, blocks=n_segments, custom=False
        )
    spb = 1 + n_segments // (spec.sm_count * c)
    blocks = -(-n_segments // spb)  # ceil
    return SetKeyPlan(
        n_segments=n_segments, segments_per_block=spb, blocks=blocks, custom=True
    )
