"""The GPU prediction kernel (Section III-D).

Although SmartGD removes prediction from the *training* loop, the paper
still ships a parallel predictor for scoring unseen data: "we do both
instance level and tree level parallelism (i.e., one GPU thread predicts the
partial target value of an instance using one tree)", followed by a
reduction summing the per-tree partial predictions.

This module runs that kernel on the simulator: functionally it is the
ensemble's exact traversal; the cost charged is one thread per
(instance, tree) pair doing depth-many irregular node fetches -- precisely
the traffic SmartGD avoids during training.
"""

from __future__ import annotations

import numpy as np

from ..data.matrix import CSRMatrix, DenseMatrix
from ..gpusim.kernel import GpuDevice
from .booster_model import GBDTModel

__all__ = ["charge_prediction_kernels", "predict_on_device"]


def charge_prediction_kernels(
    device: GpuDevice,
    *,
    n_rows: float,
    n_trees: int,
    avg_depth: float,
    row_scale: float = 1.0,
) -> None:
    """Record the Section III-D prediction kernels on ``device``'s ledger.

    Shared by :func:`predict_on_device` and the serving path
    (:class:`~repro.serve.batcher.MicroBatcher`), so a batched flush is
    charged exactly what the ad-hoc predictor would have been.
    """
    rows = n_rows * row_scale
    n_trees = max(n_trees, 1)
    with device.phase("predict"):
        # one thread per (instance, tree): traversal fetches a node record
        # (~24 B) and an attribute value (~8 B) per level, data-dependent
        device.launch(
            "predict_instance_x_tree",
            elements=rows * n_trees,
            flops_per_element=4.0 * avg_depth,
            coalesced_bytes=rows * n_trees * 4,
            irregular_bytes=rows * n_trees * avg_depth * 32,
            scale=False,
        )
        # sum the per-tree partial predictions (parallel reduction [12])
        device.launch(
            "reduce_partial_predictions",
            elements=rows * n_trees,
            flops_per_element=1.0,
            coalesced_bytes=rows * n_trees * 4 + rows * 4,
            scale=False,
        )
        device.transfer("download_predictions", rows * 4, direction="d2h", scale=False)


def predict_on_device(
    device: GpuDevice,
    model: GBDTModel,
    X: CSRMatrix | DenseMatrix | np.ndarray,
    *,
    row_scale: float = 1.0,
    transform: bool = False,
) -> np.ndarray:
    """Predict for all rows of ``X`` using instance x tree parallelism."""
    if isinstance(X, (CSRMatrix, DenseMatrix)):
        n = X.n_rows
    else:
        n = np.asarray(X).shape[0]
    avg_depth = max(
        1.0, float(np.mean([t.max_depth() for t in model.trees])) if model.trees else 1.0
    )
    charge_prediction_kernels(
        device,
        n_rows=n,
        n_trees=model.n_trees,
        avg_depth=avg_depth,
        row_scale=row_scale,
    )
    return model.predict(X, transform=transform)
