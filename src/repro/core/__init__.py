"""The paper's primary contribution: the GPU-GBDT training algorithm."""

from .booster import BACKENDS, GradientBoostedTrees, as_csr
from .booster_model import GBDTModel, models_equal
from .importance import IMPORTANCE_KINDS, feature_importance
from .params import GBDTParams
from .partition import PartitionPlan, partition_segments, plan_partition
from .predictor import charge_prediction_kernels, predict_on_device
from .rle_split import split_runs_direct, split_runs_with_decompression
from .sampling import TreeSample, sample_tree
from .setkey import SetKeyPlan, plan_segment_grid
from .smartgd import GradientComputer
from .split import (
    NodeBestSplits,
    SegmentLayout,
    eq2_gain,
    find_best_splits_rle,
    find_best_splits_sparse,
)
from .trainer import GPUGBDTTrainer, TrainReport
from .tree import DecisionTree, trees_equal

__all__ = [
    "BACKENDS",
    "GradientBoostedTrees",
    "as_csr",
    "GBDTModel",
    "models_equal",
    "IMPORTANCE_KINDS",
    "feature_importance",
    "GBDTParams",
    "PartitionPlan",
    "partition_segments",
    "plan_partition",
    "charge_prediction_kernels",
    "predict_on_device",
    "split_runs_direct",
    "split_runs_with_decompression",
    "TreeSample",
    "sample_tree",
    "SetKeyPlan",
    "plan_segment_grid",
    "GradientComputer",
    "NodeBestSplits",
    "SegmentLayout",
    "eq2_gain",
    "find_best_splits_rle",
    "find_best_splits_sparse",
    "GPUGBDTTrainer",
    "TrainReport",
    "DecisionTree",
    "trees_equal",
]
