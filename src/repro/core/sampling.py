"""Per-tree stochastic sampling (row subsample / column subsample).

Stochastic gradient boosting is standard GBDT-library surface (XGBoost's
``subsample`` / ``colsample_bytree``); the paper trains deterministically,
so sampling defaults to off and every reproduction experiment keeps it off.

The draw is a pure function of ``(seed, tree_index, n, d)``, shared by the
GPU trainer and the CPU reference, so the identical-trees property extends
to stochastic runs (asserted by tests): both implementations see exactly
the same rows and columns for every tree.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["TreeSample", "sample_tree"]


@dataclasses.dataclass(frozen=True)
class TreeSample:
    """Rows/columns one boosting round trains on."""

    inst_mask: np.ndarray  # (n,) bool; True = instance participates
    attrs: np.ndarray  # (d_used,) global attribute ids, ascending

    @property
    def n_included(self) -> int:
        return int(self.inst_mask.sum())

    # total attribute count, stored so is_trivial needs no recomputation
    _d: int = 0

    @property
    def is_trivial(self) -> bool:
        """True when nothing is actually sampled out."""
        return bool(self.inst_mask.all()) and self.attrs.size == self._d


def sample_tree(
    seed: int,
    tree_index: int,
    n: int,
    d: int,
    subsample: float,
    colsample_bytree: float,
) -> TreeSample:
    """Deterministic per-tree row/column draw.

    At least 2 rows and 1 column are always kept so a tree can exist.
    ``subsample == colsample_bytree == 1.0`` returns the all-true sample
    without consuming randomness (bit-stable against the paper runs).
    """
    if not (0 < subsample <= 1) or not (0 < colsample_bytree <= 1):
        raise ValueError("sampling rates must be in (0, 1]")
    if subsample == 1.0 and colsample_bytree == 1.0:
        return TreeSample(
            inst_mask=np.ones(n, dtype=bool),
            attrs=np.arange(d, dtype=np.int64),
            _d=d,
        )
    rng = np.random.default_rng((int(seed) & 0x7FFFFFFF) * 1_000_003 + tree_index)
    if subsample < 1.0:
        k = max(2, int(round(n * subsample)))
        rows = rng.choice(n, size=k, replace=False)
        inst_mask = np.zeros(n, dtype=bool)
        inst_mask[rows] = True
    else:
        inst_mask = np.ones(n, dtype=bool)
    if colsample_bytree < 1.0:
        kc = max(1, int(round(d * colsample_bytree)))
        attrs = np.sort(rng.choice(d, size=kc, replace=False)).astype(np.int64)
    else:
        attrs = np.arange(d, dtype=np.int64)
    return TreeSample(inst_mask=inst_mask, attrs=attrs, _d=d)
