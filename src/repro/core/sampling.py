"""Per-tree stochastic sampling (row/column subsample, GOSS).

Stochastic gradient boosting is standard GBDT-library surface (XGBoost's
``subsample`` / ``colsample_bytree``); the paper trains deterministically,
so sampling defaults to off and every reproduction experiment keeps it off.

The draw is a pure function of ``(seed, tree_index, n, d)``, shared by the
GPU trainer and the CPU reference, so the identical-trees property extends
to stochastic runs (asserted by tests): both implementations see exactly
the same rows and columns for every tree.

:func:`goss_sample` adds gradient-based one-side sampling (GOSS; Ke et al.
LightGBM, Ou 2005.09148): unlike :func:`sample_tree`'s uniform draw it looks
at the round's gradients, keeping every high-|g| row and only a random
fraction of the low-|g| rest.  It too is a pure function of its arguments
(the rng stream is keyed by ``(seed, round_index)`` on a multiplier disjoint
from :func:`sample_tree`'s), which is what makes GOSS training
seed-deterministic across warm-start resume: the resumed round recomputes
bit-identical gradients, hence draws the identical sample.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["TreeSample", "sample_tree", "GossSample", "goss_sample"]


@dataclasses.dataclass(frozen=True)
class TreeSample:
    """Rows/columns one boosting round trains on."""

    inst_mask: np.ndarray  # (n,) bool; True = instance participates
    attrs: np.ndarray  # (d_used,) global attribute ids, ascending

    @property
    def n_included(self) -> int:
        return int(self.inst_mask.sum())

    # total attribute count, stored so is_trivial needs no recomputation
    _d: int = 0

    @property
    def is_trivial(self) -> bool:
        """True when nothing is actually sampled out."""
        return bool(self.inst_mask.all()) and self.attrs.size == self._d


def sample_tree(
    seed: int,
    tree_index: int,
    n: int,
    d: int,
    subsample: float,
    colsample_bytree: float,
) -> TreeSample:
    """Deterministic per-tree row/column draw.

    At least 2 rows and 1 column are always kept so a tree can exist.
    ``subsample == colsample_bytree == 1.0`` returns the all-true sample
    without consuming randomness (bit-stable against the paper runs).
    """
    if not (0 < subsample <= 1) or not (0 < colsample_bytree <= 1):
        raise ValueError("sampling rates must be in (0, 1]")
    if subsample == 1.0 and colsample_bytree == 1.0:
        return TreeSample(
            inst_mask=np.ones(n, dtype=bool),
            attrs=np.arange(d, dtype=np.int64),
            _d=d,
        )
    rng = np.random.default_rng((int(seed) & 0x7FFFFFFF) * 1_000_003 + tree_index)
    if subsample < 1.0:
        k = max(2, int(round(n * subsample)))
        rows = rng.choice(n, size=k, replace=False)
        inst_mask = np.zeros(n, dtype=bool)
        inst_mask[rows] = True
    else:
        inst_mask = np.ones(n, dtype=bool)
    if colsample_bytree < 1.0:
        kc = max(1, int(round(d * colsample_bytree)))
        attrs = np.sort(rng.choice(d, size=kc, replace=False)).astype(np.int64)
    else:
        attrs = np.arange(d, dtype=np.int64)
    return TreeSample(inst_mask=inst_mask, attrs=attrs, _d=d)


@dataclasses.dataclass(frozen=True)
class GossSample:
    """One round's gradient-based one-side sample."""

    #: (n,) bool; True = instance participates in this round's tree
    inst_mask: np.ndarray
    #: (n,) bool; True = low-|g| row that was sampled in and must have its
    #: gradient/hessian amplified by :attr:`factor` (subset of inst_mask)
    amplified: np.ndarray
    #: the (1 - a) / b amplification applied to sampled low-|g| rows
    factor: float

    @property
    def n_kept(self) -> int:
        return int(self.inst_mask.sum())


def goss_sample(
    seed: int,
    round_index: int,
    g: np.ndarray,
    top_rate: float,
    other_rate: float,
) -> GossSample | None:
    """Deterministic GOSS row draw for one boosting round.

    Keeps the ``top_rate`` fraction of rows with the largest ``|g|``
    (stable argsort, so ties resolve by ascending row id on every platform)
    and a uniform ``other_rate`` fraction of the remaining rows, which get
    their gradients amplified by ``(1 - top_rate) / other_rate`` to keep
    histogram totals approximately unbiased (Ke et al., Thm. 3.2 keeps the
    split-gain estimator consistent under this reweighting).

    Returns ``None`` when ``top_rate == 1`` -- GOSS off is *exactly* the
    unsampled code path, consuming no randomness, which the byte-identity
    property tests pin.
    """
    if not (0 < top_rate <= 1):
        raise ValueError("top_rate must be in (0, 1]")
    if top_rate == 1.0:
        return None
    if other_rate <= 0 or top_rate + other_rate > 1:
        raise ValueError("need other_rate > 0 and top_rate + other_rate <= 1")
    n = g.shape[0]
    n_top = max(1, int(round(n * top_rate)))
    # stable sort on -|g|: largest gradients first, ties by row id
    order = np.argsort(-np.abs(g), kind="stable")
    top = order[:n_top]
    rest = order[n_top:]
    n_other = min(rest.size, max(1, int(round(n * other_rate))))
    # rng stream disjoint from sample_tree's (different multiplier)
    rng = np.random.default_rng(
        (int(seed) & 0x7FFFFFFF) * 2_000_003 + int(round_index)
    )
    sampled = rng.choice(rest.size, size=n_other, replace=False) if rest.size else []
    inst_mask = np.zeros(n, dtype=bool)
    inst_mask[top] = True
    amplified = np.zeros(n, dtype=bool)
    if rest.size:
        amplified[rest[sampled]] = True
        inst_mask |= amplified
    return GossSample(
        inst_mask=inst_mask,
        amplified=amplified,
        factor=(1.0 - top_rate) / other_rate,
    )
