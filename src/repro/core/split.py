"""Finding the best split point for every node at once (Section III-B).

This is the paper's fine-grained multi-level parallelism: **one kernel
sequence evaluates every candidate split of every attribute of every active
node**.  The flat sorted arrays are segmented by (node, attribute); the
steps map one-to-one onto the paper's:

1. gather per-entry gradients ``g_i, h_i`` (the irregular access SmartGD
   keeps cheap to *compute* but which still must be *read* here);
2. segmented prefix sums give ``G_L/H_L`` at every candidate (Fig. 1);
3. per-candidate gains via Eq. (2), with the missing-value mass tried on
   both sides ("the instances with missing values ... either go to the left
   or right node, depending on which way results in larger gain");
4. duplicated split points are suppressed -- sparse path: candidates where
   the value equals its predecessor are invalidated ("reset gain of repeated
   split points"); RLE path: each run *is* one candidate, so the problem
   vanishes (Section III-C);
5. segmented reduction selects the best candidate per segment (grid chosen
   by the Customized SetKey formula), then a per-node reduction picks the
   best attribute [12].

Candidate semantics (shared with the CPU reference so trees are identical):

* Candidates of a segment are ordered: interior positions ascending, then
  the present|missing boundary split.  Earlier candidates win ties
  (strict ``>``); across attributes the lowest attribute wins ties.
  (A "missing|present" boundary candidate would be the *same partition* as
  present|missing with sides relabeled, so it is not enumerated.)
* An interior candidate *before* element ``e`` sends elements ``< e`` left.
* ``default_left = (gain with missing left) >= (gain with missing right)``.
* Thresholds are midpoints of adjacent distinct values; the boundary
  candidate uses ``nextafter(min_value, -inf)``.
* Gains are **quantized to float32** before any comparison.  Different
  implementations sum gradients in different orders (a segmented scan's
  carry-cancellation vs. a per-node sequential scan), so algebraically-tied
  candidates carry ~1e-16 relative noise; quantization collapses such ties
  so the deterministic ordering above resolves them identically everywhere.
  This is what makes the paper's "trees are identical" check reproducible.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..data.rle import RunLengthColumns
from ..gpusim.kernel import GpuDevice
from ..gpusim.primitives import (
    check_offsets,
    gather,
    seg_ids,
    segmented_argmax,
    segmented_inclusive_cumsum,
    segmented_sum,
)
from .setkey import plan_segment_grid
from .workspace import IDX_DTYPE, WorkspaceArena

__all__ = ["SegmentLayout", "NodeBestSplits", "eq2_gain", "find_best_splits_sparse", "find_best_splits_rle"]


@dataclasses.dataclass
class SegmentLayout:
    """Node-major segmentation of the flat attribute lists.

    Segment ``local_node * n_attrs + attr`` holds the (sorted, descending)
    present values of ``attr`` restricted to instances of ``local_node``.
    """

    offsets: np.ndarray  # (n_nodes * n_attrs + 1,) element offsets
    n_nodes: int
    n_attrs: int

    def __post_init__(self) -> None:
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        if self.offsets.size != self.n_nodes * self.n_attrs + 1:
            raise ValueError("offsets must have n_nodes * n_attrs + 1 entries")
        # descriptor cache: seg_node/seg_attr/node_offsets are pure functions
        # of (n_nodes, n_attrs) and get asked for several times per level
        # (split finding, selection, and the trainer's routing step), so they
        # are materialized at most once per layout instance
        self._descriptors: dict = {}

    @property
    def n_segments(self) -> int:
        return self.n_nodes * self.n_attrs

    @property
    def n_elements(self) -> int:
        return int(self.offsets[-1])

    def _cached(self, key: str, build) -> np.ndarray:
        arr = self._descriptors.get(key)
        if arr is None:
            arr = build()
            arr.setflags(write=False)  # shared across callers
            self._descriptors[key] = arr
        return arr

    def seg_node(self) -> np.ndarray:
        """Segment -> local node index (cached, read-only)."""
        return self._cached(
            "seg_node",
            lambda: np.repeat(np.arange(self.n_nodes, dtype=np.int64), self.n_attrs),
        )

    def seg_attr(self) -> np.ndarray:
        """Segment -> attribute index (cached, read-only)."""
        return self._cached(
            "seg_attr",
            lambda: np.tile(np.arange(self.n_attrs, dtype=np.int64), self.n_nodes),
        )

    def node_offsets(self) -> np.ndarray:
        """Segmentation of the *segment* axis by node (for the node reduce)."""
        return self._cached(
            "node_offsets",
            lambda: np.arange(0, self.n_segments + 1, self.n_attrs, dtype=np.int64),
        )


@dataclasses.dataclass
class NodeBestSplits:
    """Best split per active node (arrays indexed by local node id).

    ``attr == -1`` means no valid candidate existed.  ``left_*`` are the
    totals routed to the left child *including* the missing-value mass when
    ``default_left`` -- exactly the child statistics the trainer needs.
    ``elem_pos`` is the global flat-array index where the right part of the
    chosen segment begins (a positional split: present entries of the
    segment with index < ``elem_pos`` go left).
    """

    gain: np.ndarray
    attr: np.ndarray
    seg: np.ndarray
    elem_pos: np.ndarray
    threshold: np.ndarray
    default_left: np.ndarray
    left_g: np.ndarray
    left_h: np.ndarray
    left_n: np.ndarray

    @property
    def found(self) -> np.ndarray:
        return self.attr >= 0


def eq2_gain(
    gl: np.ndarray,
    hl: np.ndarray,
    g: np.ndarray,
    h: np.ndarray,
    lambda_: float,
    *,
    out: np.ndarray | None = None,
    scratch: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """The split gain of Eq. (2) (with the standard ``+ lambda`` in the
    parent term -- the paper's ``-`` is a typo against its reference [3]).

    With ``out`` and two same-shaped float64 ``scratch`` buffers the gain is
    computed allocation-free in **exactly the same elementary-operation
    order** as the expression below, so the result is bit-identical.
    """
    gl = np.asarray(gl, dtype=np.float64)
    hl = np.asarray(hl, dtype=np.float64)
    g = np.asarray(g, dtype=np.float64)
    h = np.asarray(h, dtype=np.float64)
    if out is None or scratch is None:
        gr = g - gl
        hr = h - hl
        with np.errstate(divide="ignore", invalid="ignore"):
            out = 0.5 * (gl * gl / (hl + lambda_) + gr * gr / (hr + lambda_) - g * g / (h + lambda_))
        return np.where(np.isfinite(out), out, -np.inf)
    s1, s2 = scratch
    with np.errstate(divide="ignore", invalid="ignore"):
        np.subtract(h, hl, out=s1)       # hr
        np.add(s1, lambda_, out=s1)      # hr + lambda
        np.subtract(g, gl, out=s2)       # gr
        np.multiply(s2, s2, out=s2)      # gr^2
        np.divide(s2, s1, out=s2)        # gr^2 / (hr + lambda)
        np.multiply(gl, gl, out=out)     # gl^2
        np.add(hl, lambda_, out=s1)      # hl + lambda
        np.divide(out, s1, out=out)      # gl^2 / (hl + lambda)
        np.add(out, s2, out=out)         # left + right child terms
        np.multiply(g, g, out=s1)        # g^2
        np.add(h, lambda_, out=s2)       # h + lambda
        np.divide(s1, s2, out=s1)        # parent term
        np.subtract(out, s1, out=out)
        np.multiply(out, 0.5, out=out)
    mask = np.isfinite(out)
    np.logical_not(mask, out=mask)
    np.copyto(out, -np.inf, where=mask)
    return out


def quantize_gain(
    gain: np.ndarray,
    *,
    out: np.ndarray | None = None,
    f32: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Collapse sub-float32 noise before gain comparisons (module docstring).

    Magnitudes below 1e-10 are flushed to exactly 0 so an algebraically-zero
    gain (whose summation noise may land on either side of 0) compares
    against the ``> gamma`` split threshold identically in every
    implementation.  ``out``/``scratch`` (float64) and ``f32`` (a float32
    staging buffer) make the round-trip allocation-free; the flush
    comparison stays in float64 so results are bit-identical.
    """
    if out is None or f32 is None or scratch is None:
        q = np.asarray(gain, dtype=np.float32).astype(np.float64)
        return np.where(np.abs(q) < 1e-10, 0.0, q)
    f32[...] = gain          # float64 -> float32 rounding
    out[...] = f32           # widen back: exactly representable
    np.abs(out, out=scratch)
    np.copyto(out, 0.0, where=scratch < 1e-10)
    return out


def _last_valid(cum: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment inclusive-scan value at the segment's last element
    (0 for empty segments)."""
    lens = np.diff(offsets)
    idx = np.maximum(offsets[1:] - 1, 0)
    return np.where(lens > 0, cum[idx] if cum.size else 0.0, 0.0)


def _select_splits(
    device: GpuDevice,
    *,
    cand_gain: np.ndarray,
    cand_dir: np.ndarray,
    cand_elem_pos: np.ndarray,
    cand_thr: np.ndarray,
    cand_gl: np.ndarray,
    cand_hl: np.ndarray,
    cand_nl: np.ndarray,
    cand_offsets: np.ndarray,
    seg_elem_offsets: np.ndarray,
    seg_g: np.ndarray,
    seg_h: np.ndarray,
    seg_min_value: np.ndarray,
    miss_g: np.ndarray,
    miss_h: np.ndarray,
    miss_n: np.ndarray,
    node_g: np.ndarray,
    node_h: np.ndarray,
    layout: SegmentLayout,
    lambda_: float,
    setkey_enabled: bool,
    setkey_c: int,
) -> NodeBestSplits:
    """Shared tail of split finding: per-segment argmax over interior
    candidates, boundary (missing) candidates, then the per-node reduce."""
    S = layout.n_segments
    seg_node = layout.seg_node()
    lens = np.diff(seg_elem_offsets)
    has_missing = miss_n > 0
    nonempty = lens > 0
    node_g_seg = node_g[seg_node]
    node_h_seg = node_h[seg_node]

    # -- interior candidates: segmented argmax with the SetKey grid ----------
    plan = plan_segment_grid(device.spec, max(S, 1), enabled=setkey_enabled, c=setkey_c)
    best_gain, best_cand = segmented_argmax(
        device,
        cand_gain,
        cand_offsets,
        name="seg_reduce_best_split",
        blocks=plan.blocks,
        blocks_scale=not plan.custom,
    )

    seg_gain = best_gain.copy()
    hit = best_cand >= 0
    safe = np.maximum(best_cand, 0)
    if cand_elem_pos.size:
        seg_pos = np.where(hit, cand_elem_pos[safe], -1)
        seg_thr = np.where(hit, cand_thr[safe], np.nan)
        seg_dir = np.where(hit, cand_dir[safe], False)
        base_gl = np.where(hit, cand_gl[safe], 0.0)
        base_hl = np.where(hit, cand_hl[safe], 0.0)
        base_nl = np.where(hit, cand_nl[safe], 0)
    else:
        # no interior candidates exist anywhere (e.g. every segment empty
        # after a stochastic round's staging): boundary candidates may still
        # apply below
        seg_pos = np.full(S, -1, dtype=np.int64)
        seg_thr = np.full(S, np.nan)
        seg_dir = np.zeros(S, dtype=bool)
        base_gl = np.zeros(S)
        base_hl = np.zeros(S)
        base_nl = np.zeros(S, dtype=np.int64)
    seg_lg = base_gl + np.where(seg_dir, miss_g, 0.0)
    seg_lh = base_hl + np.where(seg_dir, miss_h, 0.0)
    seg_ln = base_nl + np.where(seg_dir, miss_n, 0)

    # -- boundary candidate: all present left | missing right ----------------
    sp1_ok = has_missing & nonempty
    sp1_gain = np.where(
        sp1_ok,
        quantize_gain(eq2_gain(seg_g, seg_h, node_g_seg, node_h_seg, lambda_)),
        -np.inf,
    )
    take = sp1_gain > seg_gain
    seg_gain = np.where(take, sp1_gain, seg_gain)
    seg_pos = np.where(take, seg_elem_offsets[1:], seg_pos)
    seg_thr = np.where(take, np.nextafter(seg_min_value, -np.inf), seg_thr)
    seg_dir = np.where(take, False, seg_dir)
    seg_lg = np.where(take, seg_g, seg_lg)
    seg_lh = np.where(take, seg_h, seg_lh)
    seg_ln = np.where(take, lens, seg_ln)

    device.launch(
        "combine_boundary_candidates",
        elements=S,
        flops_per_element=20.0,
        coalesced_bytes=S * 8 * 10,
        blocks=plan.blocks,
        blocks_scale=not plan.custom,
    )

    # -- node-level reduce: best attribute per node (first max = lowest) -----
    node_best_gain, node_best_seg = segmented_argmax(
        device, seg_gain, layout.node_offsets(), name="node_reduce_best_attr"
    )
    found = node_best_seg >= 0
    sel = np.maximum(node_best_seg, 0)
    no_candidate = found & ~np.isfinite(node_best_gain)
    found = found & ~no_candidate

    return NodeBestSplits(
        gain=np.where(found, node_best_gain, -np.inf),
        attr=np.where(found, layout.seg_attr()[sel], -1),
        seg=np.where(found, sel, -1),
        elem_pos=np.where(found, seg_pos[sel], -1),
        threshold=np.where(found, seg_thr[sel], np.nan),
        default_left=np.where(found, seg_dir[sel], False).astype(bool),
        left_g=np.where(found, seg_lg[sel], 0.0),
        left_h=np.where(found, seg_lh[sel], 0.0),
        left_n=np.where(found, seg_ln[sel], 0).astype(np.int64),
    )


def find_best_splits_sparse(
    device: GpuDevice,
    values: np.ndarray,
    inst: np.ndarray,
    layout: SegmentLayout,
    g: np.ndarray,
    h: np.ndarray,
    node_g: np.ndarray,
    node_h: np.ndarray,
    node_n: np.ndarray,
    *,
    lambda_: float,
    setkey_enabled: bool = True,
    setkey_c: int = 1000,
    workspace: WorkspaceArena | None = None,
    sid: np.ndarray | None = None,
) -> NodeBestSplits:
    """Split finding on uncompressed sorted attribute lists (Section III-B).

    ``workspace`` routes every per-entry temporary through arena views; the
    arena branch repeats the legacy branch's elementary operations in the
    same order, so candidate gains (and hence the chosen splits) are
    bit-identical.  ``sid`` optionally supplies the element -> segment map
    (the trainer shares one per level with the partition step).
    """
    ws = workspace if workspace is not None and workspace.enabled else None
    n = values.size
    offsets = check_offsets(layout.offsets, n)
    with device.phase(device.current_phase):
        if ws is None:
            g_ent = gather(device, g, inst, name="gather_gradients")
            h_ent = gather(device, h, inst, name="gather_hessians")
            cg = segmented_inclusive_cumsum(device, g_ent, offsets, name="seg_prefix_sum_g")
            ch = segmented_inclusive_cumsum(device, h_ent, offsets, name="seg_prefix_sum_h")
        else:
            g_ent = gather(device, g, inst, name="gather_gradients",
                           out=ws.buf("split/g_ent", n, np.float64))
            h_ent = gather(device, h, inst, name="gather_hessians",
                           out=ws.buf("split/h_ent", n, np.float64))
            cg = segmented_inclusive_cumsum(device, g_ent, offsets, name="seg_prefix_sum_g",
                                            out=ws.buf("split/cg", n, np.float64))
            ch = segmented_inclusive_cumsum(device, h_ent, offsets, name="seg_prefix_sum_h",
                                            out=ws.buf("split/ch", n, np.float64))

    if sid is None:
        sid = ws.seg_ids("split/sid", offsets, n) if ws is not None else seg_ids(offsets, n)
    seg_node = layout.seg_node()
    lens = np.diff(offsets)

    seg_g = _last_valid(cg, offsets)
    seg_h = _last_valid(ch, offsets)
    miss_g = node_g[seg_node] - seg_g
    miss_h = node_h[seg_node] - seg_h
    miss_n = node_n[seg_node] - lens

    if ws is None:
        # exclusive prefix at each entry = "everything strictly above this value"
        gl = cg - g_ent
        hl = ch - h_ent

        pos = np.arange(n, dtype=np.int64) - offsets[:-1][sid]
        valid = pos > 0
        if n > 1:
            same_as_prev = np.empty(n, dtype=bool)
            same_as_prev[0] = False
            same_as_prev[1:] = values[1:] == values[:-1]
            # "reset gain of repeated split points": only the first occurrence
            # of each value group is a real candidate
            valid &= ~same_as_prev

        node_of_ent = seg_node[sid]
        g_tot = node_g[node_of_ent]
        h_tot = node_h[node_of_ent]
        gain_mr = quantize_gain(eq2_gain(gl, hl, g_tot, h_tot, lambda_))
        gain_ml = quantize_gain(
            eq2_gain(gl + miss_g[sid], hl + miss_h[sid], g_tot, h_tot, lambda_)
        )
        cand_dir = gain_ml >= gain_mr
        cand_gain = np.where(valid, np.maximum(gain_ml, gain_mr), -np.inf)

        prev = np.empty(n, dtype=np.float64)
        if n:
            prev[0] = values[0]
            prev[1:] = values[:-1]
        cand_thr = (prev + values) / 2.0
        cand_elem_pos = np.arange(n, dtype=np.int64)
    else:
        # the cumsum buffers become the exclusive prefixes in place (the
        # inclusive scans are not read again)
        gl = cg
        np.subtract(cg, g_ent, out=gl)
        hl = ch
        np.subtract(ch, h_ent, out=hl)

        pos = ws.buf("split/pos", n, IDX_DTYPE)
        np.take(offsets, sid, out=pos)  # == offsets[:-1][sid]: sid < S
        np.subtract(ws.arange(n), pos, out=pos)
        valid = ws.buf("split/valid", n, bool)
        np.greater(pos, 0, out=valid)
        if n > 1:
            same_as_prev = ws.buf("split/sap", n, bool)
            same_as_prev[0] = False
            np.equal(values[1:], values[:-1], out=same_as_prev[1:])
            np.logical_not(same_as_prev, out=same_as_prev)
            np.logical_and(valid, same_as_prev, out=valid)

        node_of_ent = ws.buf("split/noe", n, IDX_DTYPE)
        np.take(seg_node, sid, out=node_of_ent)
        g_tot = ws.buf("split/g_tot", n, np.float64)
        h_tot = ws.buf("split/h_tot", n, np.float64)
        np.take(node_g, node_of_ent, out=g_tot)
        np.take(node_h, node_of_ent, out=h_tot)

        s1 = ws.buf("split/s1", n, np.float64)
        s2 = ws.buf("split/s2", n, np.float64)
        f32 = ws.buf("split/f32", n, np.float32)
        gain_mr = ws.buf("split/gmr", n, np.float64)
        eq2_gain(gl, hl, g_tot, h_tot, lambda_, out=gain_mr, scratch=(s1, s2))
        quantize_gain(gain_mr, out=gain_mr, f32=f32, scratch=s1)
        glm = ws.buf("split/glm", n, np.float64)
        hlm = ws.buf("split/hlm", n, np.float64)
        np.take(miss_g, sid, out=glm)
        np.add(gl, glm, out=glm)
        np.take(miss_h, sid, out=hlm)
        np.add(hl, hlm, out=hlm)
        gain_ml = ws.buf("split/gml", n, np.float64)
        eq2_gain(glm, hlm, g_tot, h_tot, lambda_, out=gain_ml, scratch=(s1, s2))
        quantize_gain(gain_ml, out=gain_ml, f32=f32, scratch=s1)
        cand_dir = ws.buf("split/dir", n, bool)
        np.greater_equal(gain_ml, gain_mr, out=cand_dir)
        cand_gain = ws.buf("split/cgain", n, np.float64)
        np.maximum(gain_ml, gain_mr, out=cand_gain)
        np.logical_not(valid, out=valid)
        np.copyto(cand_gain, -np.inf, where=valid)

        cand_thr = ws.buf("split/thr", n, np.float64)
        if n:
            prev = ws.buf("split/prev", n, np.float64)
            prev[0] = values[0]
            prev[1:] = values[:-1]
            np.add(prev, values, out=cand_thr)
            np.divide(cand_thr, 2.0, out=cand_thr)
        cand_elem_pos = ws.arange(n)

    device.launch(
        "compute_split_gains",
        elements=n,
        flops_per_element=30.0,
        coalesced_bytes=n * 8 * 6,
    )

    seg_min_value = np.where(
        lens > 0, values[np.maximum(offsets[1:] - 1, 0)] if n else 0.0, np.nan
    )

    return _select_splits(
        device,
        cand_gain=cand_gain,
        cand_dir=cand_dir,
        cand_elem_pos=cand_elem_pos,
        cand_thr=cand_thr,
        cand_gl=gl,
        cand_hl=hl,
        cand_nl=pos,
        cand_offsets=offsets,
        seg_elem_offsets=offsets,
        seg_g=seg_g,
        seg_h=seg_h,
        seg_min_value=seg_min_value,
        miss_g=miss_g,
        miss_h=miss_h,
        miss_n=miss_n,
        node_g=node_g,
        node_h=node_h,
        layout=layout,
        lambda_=lambda_,
        setkey_enabled=setkey_enabled,
        setkey_c=setkey_c,
    )


def find_best_splits_rle(
    device: GpuDevice,
    rle: RunLengthColumns,
    inst: np.ndarray,
    layout: SegmentLayout,
    g: np.ndarray,
    h: np.ndarray,
    node_g: np.ndarray,
    node_h: np.ndarray,
    node_n: np.ndarray,
    *,
    lambda_: float,
    setkey_enabled: bool = True,
    setkey_c: int = 1000,
    workspace: WorkspaceArena | None = None,
) -> NodeBestSplits:
    """Split finding on RLE-compressed values (Section III-C, Fig. 5).

    Per-run gradient sums replace per-entry gradients; each run is exactly
    one candidate, so no duplicate suppression is needed and the reductions
    shrink from ``nnz`` to ``n_runs`` items.  Functionally equivalent to the
    sparse path (a run's first element is the group's first occurrence).

    ``workspace`` enables the arena branch -- same elementary operations in
    the same order as the legacy branch, so the chosen splits are
    bit-identical.  (The run -> segment map is over ``rle.run_offsets``, not
    the element segmentation, so it is always derived here.)
    """
    ws = workspace if workspace is not None and workspace.enabled else None
    n = inst.size
    offsets = check_offsets(layout.offsets, n)
    if rle.n_elements != n:
        raise ValueError("RLE element count must match the instance array")
    n_runs = rle.n_runs
    run_starts = rle.run_starts()
    if ws is None:
        run_elem_offsets = np.concatenate((run_starts, [n])).astype(np.int64)
    else:
        run_elem_offsets = ws.buf("split/reo", n_runs + 1, IDX_DTYPE)
        run_elem_offsets[:n_runs] = run_starts
        run_elem_offsets[n_runs] = n

    with device.phase(device.current_phase):
        if ws is None:
            g_ent = gather(device, g, inst, name="gather_gradients")
            h_ent = gather(device, h, inst, name="gather_hessians")
            # Fig. 5: aggregate gradients of instances sharing an attribute value
            g_run = segmented_sum(device, g_ent, run_elem_offsets, name="rle_aggregate_g")
            h_run = segmented_sum(device, h_ent, run_elem_offsets, name="rle_aggregate_h")
            cgr = segmented_inclusive_cumsum(device, g_run, rle.run_offsets, name="seg_prefix_sum_g_rle")
            chr_ = segmented_inclusive_cumsum(device, h_run, rle.run_offsets, name="seg_prefix_sum_h_rle")
        else:
            g_ent = gather(device, g, inst, name="gather_gradients",
                           out=ws.buf("split/g_ent", n, np.float64))
            h_ent = gather(device, h, inst, name="gather_hessians",
                           out=ws.buf("split/h_ent", n, np.float64))
            sum_scratch = ws.buf("split/scan", n + 1, np.float64)
            g_run = segmented_sum(device, g_ent, run_elem_offsets,
                                  name="rle_aggregate_g", scratch=sum_scratch)
            h_run = segmented_sum(device, h_ent, run_elem_offsets,
                                  name="rle_aggregate_h", scratch=sum_scratch)
            cgr = segmented_inclusive_cumsum(device, g_run, rle.run_offsets,
                                             name="seg_prefix_sum_g_rle",
                                             out=ws.buf("split/cg", n_runs, np.float64))
            chr_ = segmented_inclusive_cumsum(device, h_run, rle.run_offsets,
                                              name="seg_prefix_sum_h_rle",
                                              out=ws.buf("split/ch", n_runs, np.float64))

    seg_node = layout.seg_node()
    lens = np.diff(offsets)

    seg_g = _last_valid(cgr, rle.run_offsets)
    seg_h = _last_valid(chr_, rle.run_offsets)
    miss_g = node_g[seg_node] - seg_g
    miss_h = node_h[seg_node] - seg_h
    miss_n = node_n[seg_node] - lens

    if ws is None:
        gl = cgr - g_run
        hl = chr_ - h_run

        rid_seg = seg_ids(rle.run_offsets, n_runs)  # run -> segment
        run_pos = np.arange(n_runs, dtype=np.int64) - rle.run_offsets[:-1][rid_seg]
        valid = run_pos > 0

        node_of_run = seg_node[rid_seg]
        g_tot = node_g[node_of_run]
        h_tot = node_h[node_of_run]
        gain_mr = quantize_gain(eq2_gain(gl, hl, g_tot, h_tot, lambda_))
        gain_ml = quantize_gain(
            eq2_gain(gl + miss_g[rid_seg], hl + miss_h[rid_seg], g_tot, h_tot, lambda_)
        )
        cand_dir = gain_ml >= gain_mr
        cand_gain = np.where(valid, np.maximum(gain_ml, gain_mr), -np.inf)

        prev = np.empty(n_runs, dtype=np.float64)
        if n_runs:
            prev[0] = rle.run_values[0]
            prev[1:] = rle.run_values[:-1]
        cand_thr = (prev + rle.run_values) / 2.0

        # element count strictly above each run = its run start within the segment
        cand_nl = run_starts - offsets[:-1][rid_seg] if n_runs else np.empty(0, np.int64)
    else:
        gl = cgr
        np.subtract(cgr, g_run, out=gl)
        hl = chr_
        np.subtract(chr_, h_run, out=hl)

        rid_seg = ws.seg_ids("split/sid", rle.run_offsets, n_runs)  # run -> segment
        run_pos = ws.buf("split/pos", n_runs, IDX_DTYPE)
        np.take(rle.run_offsets, rid_seg, out=run_pos)  # == run_offsets[:-1][rid_seg]
        np.subtract(ws.arange(n_runs), run_pos, out=run_pos)
        valid = ws.buf("split/valid", n_runs, bool)
        np.greater(run_pos, 0, out=valid)

        node_of_run = ws.buf("split/noe", n_runs, IDX_DTYPE)
        np.take(seg_node, rid_seg, out=node_of_run)
        g_tot = ws.buf("split/g_tot", n_runs, np.float64)
        h_tot = ws.buf("split/h_tot", n_runs, np.float64)
        np.take(node_g, node_of_run, out=g_tot)
        np.take(node_h, node_of_run, out=h_tot)

        s1 = ws.buf("split/s1", n_runs, np.float64)
        s2 = ws.buf("split/s2", n_runs, np.float64)
        f32 = ws.buf("split/f32", n_runs, np.float32)
        gain_mr = ws.buf("split/gmr", n_runs, np.float64)
        eq2_gain(gl, hl, g_tot, h_tot, lambda_, out=gain_mr, scratch=(s1, s2))
        quantize_gain(gain_mr, out=gain_mr, f32=f32, scratch=s1)
        glm = ws.buf("split/glm", n_runs, np.float64)
        hlm = ws.buf("split/hlm", n_runs, np.float64)
        np.take(miss_g, rid_seg, out=glm)
        np.add(gl, glm, out=glm)
        np.take(miss_h, rid_seg, out=hlm)
        np.add(hl, hlm, out=hlm)
        gain_ml = ws.buf("split/gml", n_runs, np.float64)
        eq2_gain(glm, hlm, g_tot, h_tot, lambda_, out=gain_ml, scratch=(s1, s2))
        quantize_gain(gain_ml, out=gain_ml, f32=f32, scratch=s1)
        cand_dir = ws.buf("split/dir", n_runs, bool)
        np.greater_equal(gain_ml, gain_mr, out=cand_dir)
        cand_gain = ws.buf("split/cgain", n_runs, np.float64)
        np.maximum(gain_ml, gain_mr, out=cand_gain)
        np.logical_not(valid, out=valid)
        np.copyto(cand_gain, -np.inf, where=valid)

        cand_thr = ws.buf("split/thr", n_runs, np.float64)
        if n_runs:
            prev = ws.buf("split/prev", n_runs, np.float64)
            prev[0] = rle.run_values[0]
            prev[1:] = rle.run_values[:-1]
            np.add(prev, rle.run_values, out=cand_thr)
            np.divide(cand_thr, 2.0, out=cand_thr)

        # element count strictly above each run = its run start within the segment
        cand_nl = ws.buf("split/nl", n_runs, IDX_DTYPE)
        np.take(offsets, rid_seg, out=cand_nl)  # == offsets[:-1][rid_seg]
        np.subtract(run_starts, cand_nl, out=cand_nl)

    device.launch(
        "compute_split_gains_rle",
        elements=n_runs,
        flops_per_element=30.0,
        coalesced_bytes=n_runs * 8 * 6,
    )

    run_lens_per_seg = np.diff(rle.run_offsets)
    seg_min_value = np.where(
        run_lens_per_seg > 0,
        rle.run_values[np.maximum(rle.run_offsets[1:] - 1, 0)] if n_runs else 0.0,
        np.nan,
    )

    return _select_splits(
        device,
        cand_gain=cand_gain,
        cand_dir=cand_dir,
        cand_elem_pos=run_starts,
        cand_thr=cand_thr,
        cand_gl=gl,
        cand_hl=hl,
        cand_nl=cand_nl,
        cand_offsets=rle.run_offsets,
        seg_elem_offsets=offsets,
        seg_g=seg_g,
        seg_h=seg_h,
        seg_min_value=seg_min_value,
        miss_g=miss_g,
        miss_h=miss_h,
        miss_n=miss_n,
        node_g=node_g,
        node_h=node_h,
        layout=layout,
        lambda_=lambda_,
        setkey_enabled=setkey_enabled,
        setkey_c=setkey_c,
    )
