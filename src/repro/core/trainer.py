"""The GPU-GBDT training loop: Algorithm 1 on the simulated device.

Per boosting round the trainer:

1. computes gradients (SmartGD or traversal, :mod:`repro.core.smartgd`);
2. grows the tree level by level; at each level one kernel sequence finds
   the best split of **every** active node (:mod:`repro.core.split`) --
   the paper's node x attribute x split-point parallelism;
3. splits the nodes: instances are routed by *position* in the chosen
   segment (entries before the split point go left, matching the sorted
   enumeration exactly), the attribute lists are partitioned
   order-preservingly (:mod:`repro.core.partition`), and the RLE runs are
   split directly or via decompression (:mod:`repro.core.rle_split`);
4. finalizes leaves with weight ``-eta * G / (H + lambda)`` and reports
   them to the gradient computer (SmartGD's "intermediate results").

Every Fig. 9 optimization switch in :class:`~repro.core.params.GBDTParams`
changes the *recorded work* (and sometimes the code path) but never the
resulting trees -- ``tests/test_trainer.py`` asserts tree identity across
all switch combinations and against the independent CPU reference.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List

import numpy as np

from ..data.matrix import CSRMatrix
from ..data.rle import RunLengthColumns, decide_compression, encode_segments
from ..data.sorted_columns import build_sorted_columns
from ..gpusim.kernel import GpuDevice
from ..gpusim.primitives import bincount_sum
from ..obs import get_registry, span
from .booster_model import GBDTModel
from .params import GBDTParams
from .partition import partition_segments, plan_partition
from .rle_split import split_runs_direct, split_runs_with_decompression
from .sampling import TreeSample, sample_tree
from .smartgd import GradientComputer
from .split import SegmentLayout, find_best_splits_rle, find_best_splits_sparse
from .tree import DecisionTree
from .workspace import IDX_DTYPE, WorkspaceArena, arena_enabled_default

__all__ = ["GPUGBDTTrainer", "TrainReport"]


@dataclasses.dataclass
class TrainReport:
    """Side information from a training run."""

    used_rle: bool
    compression_ratio: float
    n_nodes_total: int
    n_leaves_total: int
    #: per-tree node counts, in boosting order
    tree_sizes: list = dataclasses.field(default_factory=list)
    #: deepest leaf over the whole ensemble
    max_depth_seen: int = 0

    @property
    def n_trees(self) -> int:
        return len(self.tree_sizes)

    @property
    def mean_tree_size(self) -> float:
        return float(sum(self.tree_sizes) / len(self.tree_sizes)) if self.tree_sizes else 0.0


class GPUGBDTTrainer:
    """Train a GBDT on the simulated GPU.

    Parameters
    ----------
    params:
        Hyper-parameters and optimization switches.
    device:
        Simulated device (scales pre-configured by the caller/harness);
        a fresh Titan X is created when omitted.
    row_scale:
        Full-scale rows per run row, for per-instance kernel accounting.
    dense_memory_model:
        When True, device memory is registered the way the dense GPU
        XGBoost baseline allocates it (n x d cells + node-interleaved
        gradient copies) instead of GPU-GBDT's sparse/RLE layout.  Used by
        :mod:`repro.cpu.gpu_xgboost`.
    use_arena:
        Route the hot-path temporaries through a persistent
        :class:`~repro.core.workspace.WorkspaceArena` (default: the
        ``REPRO_ARENA`` environment switch, on unless set to ``0``).
        Trees, serialized models, and the device ledger are byte-identical
        either way -- the switch lives on the trainer (not
        :class:`~repro.core.params.GBDTParams`) precisely so it can never
        leak into a serialized model.
    """

    def __init__(
        self,
        params: GBDTParams | None = None,
        device: GpuDevice | None = None,
        *,
        row_scale: float = 1.0,
        dense_memory_model: bool = False,
        use_arena: bool | None = None,
    ) -> None:
        self.params = params if params is not None else GBDTParams()
        self.device = device if device is not None else GpuDevice()
        self.row_scale = float(row_scale)
        self.dense_memory_model = dense_memory_model
        self.use_arena = arena_enabled_default() if use_arena is None else bool(use_arena)
        #: persistent across fit calls: buffers warm up on the first tree and
        #: are reused for every level of every round thereafter
        self.workspace = WorkspaceArena(enabled=self.use_arena)
        self.report: TrainReport | None = None

    # ----------------------------------------------------------------- setup
    def _register_memory(self, X: CSRMatrix, used_rle: bool, rle: RunLengthColumns | None) -> None:
        """Register full-scale device buffers; raises DeviceOutOfMemory."""
        mem = self.device.memory
        nnz_full = X.nnz * self.device.work_scale
        n_full = X.n_rows * self.row_scale
        if self.dense_memory_model:
            # dense baseline: (fp32 value + int32 instance id) per cell of the
            # n x d matrix, plus node-interleaved g/h copies (Section II-D:
            # "the number of copies equals the number of nodes to split").
            # Gain evaluation reuses per-column workspace, so no separate
            # per-candidate buffer is charged (real-sim must fit, Table II).
            mem.alloc("dense_sorted_cells", nnz_full * 8)
            copies = 2 ** max(self.params.max_depth - 1, 0)
            mem.alloc("node_interleaved_gh", n_full * 8 * copies)
            mem.alloc("predictions", n_full * 4)
            mem.alloc("instance_to_node", n_full * 4)
            return
        if used_rle and rle is not None:
            runs_full = rle.n_runs * self.device.work_scale
            mem.alloc("rle_runs", runs_full * 8)
            mem.alloc("per_candidate_gains", runs_full * 4)
        else:
            mem.alloc("sorted_values", nnz_full * 4)
            mem.alloc("per_candidate_gains", nnz_full * 4)
        mem.alloc("instance_ids", nnz_full * 4)
        # the order-preserving scatter ping-pongs one attribute at a time, so
        # the workspace is two columns' worth of (value, id) pairs -- not a
        # full double buffer (that is what lets GPU-GBDT hold every Table-II
        # dataset while the dense baseline cannot)
        mem.alloc("partition_column_workspace", 2 * (nnz_full / max(X.n_cols, 1)) * 8)
        mem.alloc("gradients_gh", n_full * 8)
        mem.alloc("predictions", n_full * 4)
        mem.alloc("instance_to_node", n_full * 4)

    # ------------------------------------------------------------------- fit
    def fit(
        self,
        X: CSRMatrix,
        y: np.ndarray,
        *,
        init_model: GBDTModel | None = None,
    ) -> GBDTModel:
        """Train ``params.n_trees`` *additional* trees on ``(X, y)``.

        With ``init_model`` boosting resumes from the given ensemble: its
        margins seed ``yhat`` (replayed in boosting order, so every float
        add happens in the same sequence as uninterrupted training) and the
        per-round sampling index continues from ``init_model.n_trees``.
        Under the repo's determinism guarantees, ``fit(k trees)`` followed
        by ``fit(m trees, init_model=...)`` is **bit-identical** to a single
        ``fit(k + m trees)`` -- the differential tests assert byte-equal
        ``to_json`` payloads.  The returned model contains the resumed trees
        followed by the new ones.
        """
        with span(
            "train",
            backend="gpu-gbdt" if not self.dense_memory_model else "xgb-gpu-dense",
            n_trees=self.params.n_trees,
            n_rows=X.n_rows,
            n_cols=X.n_cols,
            warm_start_trees=0 if init_model is None else init_model.n_trees,
        ):
            return self._fit(X, y, init_model)

    def _fit(
        self, X: CSRMatrix, y: np.ndarray, init_model: GBDTModel | None = None
    ) -> GBDTModel:
        p = self.params
        device = self.device
        y = np.asarray(y, dtype=np.float64)
        n, d = X.shape
        if y.size != n:
            raise ValueError(f"y has {y.size} entries for {n} rows")
        if n < 2:
            raise ValueError("need at least 2 training instances")
        if d < 1:
            raise ValueError("need at least 1 attribute")
        if p.goss_a < 1.0:
            raise ValueError(
                "GOSS (goss_a < 1) is only implemented by the histogram "
                "trainer; the exact trainer supports uniform subsample="
            )
        init_trees: List[DecisionTree] = [] if init_model is None else list(init_model.trees)
        round_offset = len(init_trees)
        if init_model is not None:
            base = p.loss_fn.base_score(y)
            if init_model.base_score != base:
                raise ValueError(
                    f"init_model.base_score={init_model.base_score!r} does not match "
                    f"the loss base score {base!r}; resuming would shift every margin"
                )
            if init_model.params.learning_rate != p.learning_rate:
                raise ValueError(
                    "init_model was trained with a different learning_rate; "
                    "resumed rounds would not match uninterrupted training"
                )

        with device.phase("setup"), span("setup"):
            csc = X.to_csc()
            cols = build_sorted_columns(csc, device)
            base_rle: RunLengthColumns | None = None
            used_rle = False
            if p.use_rle:
                used_rle = decide_compression(
                    p.rle_policy,
                    n_rows=n,
                    n_cols=d,
                    values=cols.values,
                    offsets=cols.col_offsets,
                    paper_threshold=p.rle_paper_threshold,
                    measured_threshold=p.rle_measured_threshold,
                )
            if used_rle:
                base_rle = encode_segments(cols.values, cols.col_offsets)
                device.launch(
                    "rle_compress_initial",
                    elements=X.nnz,
                    flops_per_element=2.0,
                    coalesced_bytes=X.nnz * 8 + base_rle.n_runs * 16,
                )
            # host -> device: instance ids + (compressed) values + targets.
            # RLE shrinks the PCI-e traffic (Section III-C advantage (i)).
            value_bytes = base_rle.n_runs * 8 if used_rle else X.nnz * 4
            device.transfer("upload_training_data", X.nnz * 4 + value_bytes)
            device.transfer("upload_targets", n * 4 * self.row_scale, scale=False)
            self._register_memory(X, used_rle, base_rle)

        gc = GradientComputer(
            device,
            p.loss_fn,
            y,
            use_smartgd=p.use_smartgd,
            row_scale=self.row_scale,
            X=X,
            workspace=self.workspace,
        )
        if init_trees:
            with device.phase("gradients"):
                gc.warm_start(init_trees)

        registry = get_registry()
        rounds_total = registry.counter(
            "train_rounds_total", "boosting rounds completed"
        )
        nodes_total = registry.counter("train_nodes_total", "tree nodes grown")
        leaves_total = registry.counter("train_leaves_total", "leaves finalized")
        round_seconds = registry.histogram(
            "train_round_seconds", "wall-clock seconds per boosting round"
        )

        trees: List[DecisionTree] = []
        n_nodes_total = 0
        n_leaves_total = 0
        for t in range(p.n_trees):
            # global boosting-round index: resumed rounds continue the
            # sampling sequence exactly where the init model stopped
            t_idx = round_offset + t
            t_round = time.perf_counter()
            with span("boost_round", tree=t_idx):
                with device.phase("gradients"), span("gradients"):
                    g, h = gc.compute()
                sample = sample_tree(
                    p.seed, t_idx, n, d, p.subsample, p.colsample_bytree
                )
                tree = self._grow_tree(X, g, h, cols, base_rle, used_rle, gc, sample)
                if not sample.inst_mask.all():
                    gc.apply_tree_to(tree, np.flatnonzero(~sample.inst_mask))
                gc.on_tree_finished(tree)
            trees.append(tree)
            n_nodes_total += tree.n_nodes
            n_leaves_total += tree.n_leaves
            rounds_total.inc()
            nodes_total.inc(tree.n_nodes)
            leaves_total.inc(tree.n_leaves)
            round_seconds.observe(time.perf_counter() - t_round)
        registry.gauge(
            "train_compression_ratio", "RLE compression ratio of the last run"
        ).set(base_rle.compression_ratio if base_rle is not None else 1.0)
        self.workspace.publish_metrics()

        self.report = TrainReport(
            used_rle=used_rle,
            compression_ratio=base_rle.compression_ratio if base_rle is not None else 1.0,
            n_nodes_total=n_nodes_total,
            n_leaves_total=n_leaves_total,
            tree_sizes=[t.n_nodes for t in trees],
            max_depth_seen=max((t.max_depth() for t in trees), default=0),
        )
        return GBDTModel(
            trees=init_trees + trees, params=p, base_score=p.loss_fn.base_score(y)
        )

    # ------------------------------------------------------------- tree grow
    def _grow_tree(
        self,
        X: CSRMatrix,
        g: np.ndarray,
        h: np.ndarray,
        cols,
        base_rle: RunLengthColumns | None,
        used_rle: bool,
        gc: GradientComputer,
        sample: TreeSample | None = None,
    ) -> DecisionTree:
        p = self.params
        device = self.device
        ws = self.workspace
        n, d = X.shape
        if sample is None:
            sample = sample_tree(p.seed, 0, n, d, 1.0, 1.0)
        self._tree_attrs = sample.attrs  # local -> global attribute map

        tree = DecisionTree()

        # per-tree working copies of the (compressed) attribute lists; on the
        # device this is the first scatter into the double buffer
        if sample.is_trivial:
            inst_arr = cols.inst.copy()
            vals = None if used_rle else cols.values.copy()
            rle_state = base_rle
            layout = SegmentLayout(cols.col_offsets.copy(), 1, d)
            inst2local = np.zeros(n, dtype=np.int64)
            n_inc = n
        else:
            # stochastic round: keep only the sampled rows/columns (an extra
            # compaction pass over the staged lists)
            parts_i, parts_v, lens = [], [], []
            for a in sample.attrs:
                lo, hi = cols.col_offsets[a], cols.col_offsets[a + 1]
                inst_a = cols.inst[lo:hi]
                keep = sample.inst_mask[inst_a]
                parts_i.append(inst_a[keep])
                parts_v.append(cols.values[lo:hi][keep])
                lens.append(int(keep.sum()))
            inst_arr = (
                np.concatenate(parts_i) if parts_i else np.empty(0, np.int64)
            )
            stage_vals = (
                np.concatenate(parts_v) if parts_v else np.empty(0)
            )
            offsets = np.concatenate(([0], np.cumsum(lens))).astype(np.int64)
            layout = SegmentLayout(offsets, 1, sample.attrs.size)
            if used_rle:
                rle_state = encode_segments(stage_vals, offsets)
                vals = None
            else:
                rle_state = None
                vals = stage_vals
            inst2local = np.where(sample.inst_mask, 0, -1).astype(np.int64)
            n_inc = sample.n_included
        tree.add_root(n_inc)
        device.launch(
            "stage_attribute_lists",
            elements=X.nnz,
            flops_per_element=0.5,
            coalesced_bytes=X.nnz * 16,
        )

        node_tree_ids = np.array([0], dtype=np.int64)
        with device.phase("gradients"), span("gradients"):
            included = np.flatnonzero(sample.inst_mask)
            node_g = bincount_sum(
                device, np.zeros(included.size, np.int64), g[included], 1,
                name="node_gradient_totals",
            )
            node_h = bincount_sum(
                device, np.zeros(included.size, np.int64), h[included], 1,
                name="node_hessian_totals",
            )
        node_n = np.array([n_inc], dtype=np.int64)

        for _depth in range(p.max_depth):
            n_active = node_tree_ids.size
            if n_active == 0:
                break
            # one element -> segment map per level, shared by split finding,
            # instance routing, and the partition scatter
            sid = ws.seg_ids("tree/sid", layout.offsets, layout.n_elements) if ws.enabled else None
            with device.phase("find_split"), span("find_split", depth=_depth, nodes=n_active):
                if used_rle:
                    best = find_best_splits_rle(
                        device, rle_state, inst_arr, layout, g, h, node_g, node_h, node_n,
                        lambda_=p.lambda_, setkey_enabled=p.use_custom_setkey, setkey_c=p.setkey_c,
                        workspace=ws,
                    )
                else:
                    best = find_best_splits_sparse(
                        device, vals, inst_arr, layout, g, h, node_g, node_h, node_n,
                        lambda_=p.lambda_, setkey_enabled=p.use_custom_setkey, setkey_c=p.setkey_c,
                        workspace=ws, sid=sid,
                    )

            split_mask = best.found & (best.gain > p.gamma)

            with device.phase("split_node"), span("split_node", depth=_depth):
                # ---- finalize leaves (nodes that will not split) -----------
                leaf_locals = np.flatnonzero(~split_mask)
                if leaf_locals.size:
                    self._finalize_leaves(
                        tree, gc, node_tree_ids, node_g, node_h, leaf_locals, inst2local
                    )
                if not split_mask.any():
                    inst2local[:] = -1
                    break

                split_locals = np.flatnonzero(split_mask)
                k = split_locals.size

                # ---- tree bookkeeping -------------------------------------
                new_tree_ids = np.empty(2 * k, dtype=np.int64)
                for j, loc in enumerate(split_locals):
                    lid, rid = tree.split_node(
                        int(node_tree_ids[loc]),
                        int(self._tree_attrs[best.attr[loc]]),
                        float(best.threshold[loc]),
                        bool(best.default_left[loc]),
                        float(best.gain[loc]),
                        n_left=int(best.left_n[loc]),
                        n_right=int(node_n[loc] - best.left_n[loc]),
                    )
                    new_tree_ids[2 * j] = lid
                    new_tree_ids[2 * j + 1] = rid

                # ---- route instances (positional split) --------------------
                new_local_of = np.full(n_active, -1, dtype=np.int64)
                new_local_of[split_locals] = 2 * np.arange(k, dtype=np.int64)

                default_side = np.where(best.default_left, 0, 1).astype(np.int8)
                if ws.enabled:
                    side_inst = ws.full("tree/side_inst", n, np.int8, -1)
                    local_safe = ws.buf("tree/local_safe", n, IDX_DTYPE)
                    np.maximum(inst2local, 0, out=local_safe)
                    active = ws.buf("tree/active", n, bool)
                    np.greater_equal(inst2local, 0, out=active)
                    amask = ws.buf("tree/amask", n, bool)
                    np.take(split_mask, local_safe, out=amask)
                    np.logical_and(active, amask, out=active)
                    side_tmp = ws.buf("tree/side_tmp", n, np.int8)
                    np.take(default_side, local_safe, out=side_tmp)
                    np.copyto(side_inst, side_tmp, where=active)
                else:
                    side_inst = np.full(n, -1, dtype=np.int8)
                    local_safe = np.maximum(inst2local, 0)
                    active = (inst2local >= 0) & split_mask[local_safe]
                    side_inst[active] = default_side[inst2local[active]]

                # present entries of the chosen segments override the default
                S = layout.n_segments
                n_el = layout.n_elements
                split_pos = np.full(S, -1, dtype=np.int64)
                split_pos[best.seg[split_locals]] = best.elem_pos[split_locals]
                if ws.enabled:
                    pos_ent = ws.buf("tree/pos_ent", n_el, IDX_DTYPE)
                    np.take(split_pos, sid, out=pos_ent)
                    chosen = ws.buf("tree/chosen", n_el, bool)
                    np.greater_equal(pos_ent, 0, out=chosen)
                    elem_left = ws.buf("tree/elem_left", n_el, bool)
                    np.less(ws.arange(n_el), pos_ent, out=elem_left)
                    side_inst[inst_arr[chosen]] = np.where(elem_left[chosen], 0, 1)
                else:
                    sid = np.repeat(np.arange(S, dtype=np.int64), np.diff(layout.offsets))
                    chosen = split_pos[sid] >= 0
                    elem_idx = np.arange(n_el, dtype=np.int64)
                    elem_side = (elem_idx < split_pos[sid]).astype(np.int8)
                    side_inst[inst_arr[chosen]] = np.where(elem_side[chosen] == 1, 0, 1)
                device.launch(
                    "update_instance_to_node",
                    elements=n * self.row_scale,
                    flops_per_element=2.0,
                    coalesced_bytes=n * self.row_scale * 9,
                    irregular_bytes=node_n[split_locals].sum()
                    * (self.device.work_scale / max(d, 1))
                    * 4,
                    scale=False,
                )

                if ws.enabled:
                    # ping-pong: read the previous level's map, write this one's
                    i2l_next = ws.buf(f"tree/i2l/{_depth % 2}", n, IDX_DTYPE)
                    np.take(new_local_of, local_safe, out=i2l_next)
                    np.add(i2l_next, side_inst, out=i2l_next)
                    np.logical_not(active, out=active)
                    np.copyto(i2l_next, -1, where=active)
                    inst2local = i2l_next
                else:
                    inst2local = np.where(active, new_local_of[local_safe] + side_inst, -1)

                # ---- partition the attribute lists -------------------------
                d_used = layout.n_attrs
                seg_node = layout.seg_node()
                seg_attr = layout.seg_attr()
                splitting_seg = split_mask[seg_node]
                child_base = new_local_of[seg_node]
                left_seg = np.where(splitting_seg, child_base * d_used + seg_attr, -1)
                right_seg = np.where(splitting_seg, (child_base + 1) * d_used + seg_attr, -1)

                if ws.enabled:
                    side_ent = ws.buf("tree/side_ent", n_el, np.int8)
                    np.take(side_inst, inst_arr, out=side_ent)
                else:
                    side_ent = side_inst[inst_arr]
                plan = plan_partition(
                    int(layout.n_elements * device.work_scale),
                    k,
                    max_counter_mem_bytes=p.max_counter_mem_bytes,
                    use_custom_workload=p.use_custom_workload,
                    fixed_thread_workload=p.fixed_thread_workload,
                )
                # the decompression strategy consumes -1-coded drops, so the
                # trash-slot scatter is reserved for the other code paths
                use_trash = ws.enabled and (not used_rle or p.use_direct_rle)
                dest, new_offsets = partition_segments(
                    device,
                    layout.offsets,
                    side_ent,
                    left_seg,
                    right_seg,
                    2 * k * d_used,
                    plan,
                    bytes_per_element=8 if used_rle else 16,
                    workspace=ws,
                    sid=sid,
                    drop_to_trash=use_trash,
                )
                n_new = int(new_offsets[-1])
                if use_trash:
                    # full-array stable scatter: dropped elements pile into the
                    # single trash slot past the end, no boolean compression
                    pp = _depth % 2
                    new_inst = ws.buf(f"tree/inst/{pp}", n_new + 1, IDX_DTYPE)
                    new_inst[dest] = inst_arr
                    new_inst = new_inst[:n_new]
                    if used_rle:
                        rle_state = split_runs_direct(
                            device,
                            rle_state,
                            side_ent,
                            left_seg,
                            right_seg,
                            2 * k * d_used,
                            workspace=ws,
                            parity=_depth,
                        )
                    else:
                        val_buf = ws.buf(f"tree/vals/{pp}", n_new + 1, np.float64)
                        val_buf[dest] = vals
                        vals = val_buf[:n_new]
                else:
                    keep = dest >= 0
                    new_inst = np.empty(n_new, dtype=np.int64)
                    new_inst[dest[keep]] = inst_arr[keep]
                    if used_rle:
                        if p.use_direct_rle:
                            rle_state = split_runs_direct(
                                device, rle_state, side_ent, left_seg, right_seg, 2 * k * d_used
                            )
                        else:
                            rle_state = split_runs_with_decompression(
                                device, rle_state, dest, new_offsets
                            )
                    else:
                        new_vals = np.empty(n_new, dtype=np.float64)
                        new_vals[dest[keep]] = vals[keep]
                        vals = new_vals
                inst_arr = new_inst
                layout = SegmentLayout(new_offsets, 2 * k, d_used)

                # ---- child statistics from the chosen splits ---------------
                lg = best.left_g[split_locals]
                lh = best.left_h[split_locals]
                ln = best.left_n[split_locals]
                pg = node_g[split_locals]
                ph = node_h[split_locals]
                pn = node_n[split_locals]
                if ws.enabled:
                    pp = _depth % 2
                    node_g = ws.buf(f"tree/node_g/{pp}", 2 * k, np.float64)
                    node_h = ws.buf(f"tree/node_h/{pp}", 2 * k, np.float64)
                    node_n = ws.buf(f"tree/node_n/{pp}", 2 * k, IDX_DTYPE)
                else:
                    node_g = np.empty(2 * k)
                    node_h = np.empty(2 * k)
                    node_n = np.empty(2 * k, dtype=np.int64)
                node_g[0::2], node_g[1::2] = lg, pg - lg
                node_h[0::2], node_h[1::2] = lh, ph - lh
                node_n[0::2], node_n[1::2] = ln, pn - ln
                node_tree_ids = new_tree_ids

        # nodes still active after the depth budget become leaves
        if node_tree_ids.size and (inst2local >= 0).any():
            with device.phase("split_node"), span("split_node", depth=p.max_depth):
                self._finalize_leaves(
                    tree,
                    gc,
                    node_tree_ids,
                    node_g,
                    node_h,
                    np.arange(node_tree_ids.size),
                    inst2local,
                )
            inst2local[:] = -1
        return tree

    def _finalize_leaves(
        self,
        tree: DecisionTree,
        gc: GradientComputer,
        node_tree_ids: np.ndarray,
        node_g: np.ndarray,
        node_h: np.ndarray,
        leaf_locals: np.ndarray,
        inst2local: np.ndarray,
    ) -> None:
        """Set leaf weights ``-eta G/(H + lambda)`` and report to SmartGD."""
        p = self.params
        values = np.zeros(node_tree_ids.size)
        values[leaf_locals] = (
            -p.learning_rate * node_g[leaf_locals] / (node_h[leaf_locals] + p.lambda_)
        )
        for loc in leaf_locals:
            tree.set_leaf(int(node_tree_ids[loc]), float(values[loc]))
        is_leaf_local = np.zeros(node_tree_ids.size, dtype=bool)
        is_leaf_local[leaf_locals] = True
        ws = self.workspace
        if ws.enabled:
            local_safe = ws.buf("leaf/local_safe", inst2local.size, IDX_DTYPE)
            np.maximum(inst2local, 0, out=local_safe)
            settled = ws.buf("leaf/settled", inst2local.size, bool)
            np.greater_equal(inst2local, 0, out=settled)
            lmask = ws.buf("leaf/lmask", inst2local.size, bool)
            np.take(is_leaf_local, local_safe, out=lmask)
            np.logical_and(settled, lmask, out=settled)
        else:
            local_safe = np.maximum(inst2local, 0)
            settled = (inst2local >= 0) & is_leaf_local[local_safe]
        ids = np.flatnonzero(settled)
        gc.on_leaves(ids, values[inst2local[ids]])
        inst2local[ids] = -1
