"""Splitting nodes under RLE compression (Section III-C, Figs. 6 and 7).

When a node splits, each of its RLE runs potentially splits into two runs
(the part whose instances go left, the part going right).  The paper gives
two strategies:

* **Splitting RLE with decompression** (Fig. 6): decompress the runs,
  order-preservingly partition the raw values, recompress.  Correct but
  repeats (de)compression work at every level of every tree.
* **Directly splitting RLE elements** (Fig. 7): pre-allocate two output
  runs per input run, compute each new run's length from the
  instance-to-node mapping, and remove zero-length runs with a prefix-sum
  stream compaction.  The value array is never expanded.

Both produce identical run arrays (a property test asserts it); the Fig. 9
"Directly Split RLE" ablation measures the cost difference.

The *instance-id* array is not compressible and is partitioned by the
shared order-preserving scatter regardless of strategy, so these functions
handle only the run (value, length) arrays.
"""

from __future__ import annotations

import numpy as np

from ..data.rle import RunLengthColumns, encode_segments
from ..gpusim.kernel import GpuDevice
from ..gpusim.primitives import (
    check_offsets,
    seg_ids,
    segmented_inclusive_cumsum,
    segmented_sum,
    stream_compact,
)
from ..obs import traced
from .workspace import WorkspaceArena

__all__ = ["split_runs_direct", "split_runs_with_decompression"]


def _run_elem_offsets(rle: RunLengthColumns, n: int) -> np.ndarray:
    starts = rle.run_starts()
    return np.concatenate((starts, [n])).astype(np.int64)


@traced("rle_split_direct")
def split_runs_direct(
    device: GpuDevice,
    rle: RunLengthColumns,
    side: np.ndarray,
    left_seg: np.ndarray,
    right_seg: np.ndarray,
    n_new_segments: int,
    *,
    workspace: WorkspaceArena | None = None,
    parity: int = 0,
) -> RunLengthColumns:
    """Directly split every run (Fig. 7).

    Parameters
    ----------
    rle:
        Current compressed values, segmented over ``S`` old segments.
    side:
        Per-*element* destination: 0 left, 1 right, -1 dropped.
    left_seg, right_seg:
        Old segment -> new segment maps (``-1`` = that side is dropped).
    n_new_segments:
        New segmentation size.
    workspace:
        Optional arena; when enabled the element-linear temporaries and the
        returned run arrays are reused arena views.  All math here is
        integer counting plus value copies, so both paths produce exactly
        equal run arrays.
    parity:
        Selects which of two output buffer generations to write (the caller
        alternates per level: the input ``rle`` still views the previous
        generation while this call fills the next one).
    """
    n = int(rle.n_elements)
    side = np.asarray(side, dtype=np.int8)
    if side.size != n:
        raise ValueError("side must have one entry per element")
    S = rle.run_offsets.size - 1
    left_seg = np.asarray(left_seg, dtype=np.int64)
    right_seg = np.asarray(right_seg, dtype=np.int64)
    if left_seg.size != S or right_seg.size != S:
        raise ValueError("segment maps must have one entry per old segment")
    ws = workspace if workspace is not None and workspace.enabled else None

    nr = rle.n_runs
    if ws is None:
        elem_off = _run_elem_offsets(rle, n)
        # new run lengths from the instance-to-node mapping (one pass over the
        # elements; this is the only element-linear work of the direct strategy)
        left_len = segmented_sum(
            device, (side == 0).astype(np.int64), elem_off, name="rle_left_lengths"
        )
        right_len = segmented_sum(
            device, (side == 1).astype(np.int64), elem_off, name="rle_right_lengths"
        )
        rid_seg = seg_ids(rle.run_offsets, nr)  # run -> old segment
    else:
        elem_off = ws.buf("rled/eoff", nr + 1, np.int64)
        elem_off[0] = 0
        np.cumsum(rle.run_lengths, out=elem_off[1:])
        acc = ws.buf("rled/acc", n, np.int64)
        scan = ws.buf("rled/scan", n + 1, np.int64)
        np.equal(side, 0, out=acc)
        left_len = segmented_sum(
            device, acc, elem_off, name="rle_left_lengths", scratch=scan
        )
        np.equal(side, 1, out=acc)
        right_len = segmented_sum(
            device, acc, elem_off, name="rle_right_lengths", scratch=scan
        )
        rid_seg = ws.seg_ids("rled/rid", rle.run_offsets, nr)

    tgt_left = left_seg[rid_seg]
    tgt_right = right_seg[rid_seg]
    keep_left = (left_len > 0) & (tgt_left >= 0)
    keep_right = (right_len > 0) & (tgt_right >= 0)

    # per-(old segment, side) stable ranks among kept candidates; each new
    # segment receives candidates of exactly one (old segment, side) pair,
    # so this rank is the position within the new segment
    if ws is None:
        rank_left = (
            segmented_inclusive_cumsum(
                device, keep_left.astype(np.int64), rle.run_offsets, name="rle_compact_scan_l"
            )
            - 1
        )
        rank_right = (
            segmented_inclusive_cumsum(
                device, keep_right.astype(np.int64), rle.run_offsets, name="rle_compact_scan_r"
            )
            - 1
        )
        runs_per_new = np.zeros(n_new_segments, dtype=np.int64)
    else:
        keep64 = ws.buf("rled/keep64", nr, np.int64)
        np.copyto(keep64, keep_left)
        rank_left = ws.buf("rled/rank_l", nr, np.int64)
        segmented_inclusive_cumsum(
            device, keep64, rle.run_offsets, name="rle_compact_scan_l", out=rank_left
        )
        np.subtract(rank_left, 1, out=rank_left)
        np.copyto(keep64, keep_right)
        rank_right = ws.buf("rled/rank_r", nr, np.int64)
        segmented_inclusive_cumsum(
            device, keep64, rle.run_offsets, name="rle_compact_scan_r", out=rank_right
        )
        np.subtract(rank_right, 1, out=rank_right)
        runs_per_new = ws.zeros("rled/rpn", n_new_segments, np.int64)

    if keep_left.any():
        np.add.at(runs_per_new, tgt_left[keep_left], 1)
    if keep_right.any():
        np.add.at(runs_per_new, tgt_right[keep_right], 1)
    if ws is None:
        new_run_offsets = np.concatenate(([0], np.cumsum(runs_per_new)))
    else:
        new_run_offsets = ws.buf(f"rled/roff/{parity % 2}", n_new_segments + 1, np.int64)
        new_run_offsets[0] = 0
        np.cumsum(runs_per_new, out=new_run_offsets[1:])
    n_new_runs = int(new_run_offsets[-1])

    if ws is None:
        new_values = np.empty(n_new_runs, dtype=np.float64)
        new_lengths = np.empty(n_new_runs, dtype=np.int64)
    else:
        new_values = ws.buf(f"rled/vals/{parity % 2}", n_new_runs, np.float64)
        new_lengths = ws.buf(f"rled/lens/{parity % 2}", n_new_runs, np.int64)
    dl = new_run_offsets[tgt_left[keep_left]] + rank_left[keep_left]
    new_values[dl] = rle.run_values[keep_left]
    new_lengths[dl] = left_len[keep_left]
    dr = new_run_offsets[tgt_right[keep_right]] + rank_right[keep_right]
    new_values[dr] = rle.run_values[keep_right]
    new_lengths[dr] = right_len[keep_right]

    # pre-allocate 2 runs per run, then the compaction write-out
    device.launch(
        "direct_split_rle_scatter",
        elements=2 * nr,
        flops_per_element=3.0,
        coalesced_bytes=2 * nr * (8 + 8),
        irregular_bytes=n_new_runs * 16,
    )
    return RunLengthColumns(
        run_values=new_values, run_lengths=new_lengths, run_offsets=new_run_offsets
    )


@traced("rle_split_decompress")
def split_runs_with_decompression(
    device: GpuDevice,
    rle: RunLengthColumns,
    dest: np.ndarray,
    new_offsets: np.ndarray,
) -> RunLengthColumns:
    """Decompress -> scatter -> recompress (Fig. 6).

    ``dest``/``new_offsets`` come from the element-level order-preserving
    partition the trainer already ran for the instance-id array, so the
    scattered raw values land exactly where the sparse path would put them.
    """
    n = int(rle.n_elements)
    dest = np.asarray(dest, dtype=np.int64)
    if dest.size != n:
        raise ValueError("dest must have one entry per element")
    n_new = int(new_offsets[-1])
    check_offsets(new_offsets, n_new)

    # decompress (Fig. 6 middle row)
    raw = np.repeat(rle.run_values, rle.run_lengths)
    device.launch(
        "rle_decompress",
        elements=n,
        flops_per_element=1.0,
        coalesced_bytes=n * 8 + rle.n_runs * 16,
    )
    # order-preserving scatter of the raw values
    keep = dest >= 0
    new_vals = np.empty(n_new, dtype=np.float64)
    new_vals[dest[keep]] = raw[keep]
    device.launch(
        "rle_scatter_raw_values",
        elements=n,
        flops_per_element=1.0,
        coalesced_bytes=n * 8,
        irregular_bytes=n_new * 8,
    )
    # recompress (Fig. 6 bottom row): boundary detection + compaction
    out = encode_segments(new_vals, new_offsets)
    _, _ = stream_compact(device, np.ones(max(n_new, 1), dtype=bool), name="rle_recompress_compact")
    device.launch(
        "rle_recompress",
        elements=n_new,
        flops_per_element=2.0,
        coalesced_bytes=n_new * 8 + out.n_runs * 16,
    )
    return out
