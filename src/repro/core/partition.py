"""Order-preserving node partitioning (Section III-B, Figs. 2 and 3).

When a node splits, every attribute's sorted value list must be divided into
the two children *without destroying the sorted order* -- otherwise each new
node would need a fresh sort (the bottleneck the paper criticizes in prior
work [26]).  The paper extends histogram-based partitioning [13]: each
thread counts its elements per destination partition (the histogram), an
exclusive scan over the counters yields every element's scatter position,
and a stable scatter moves the data.

Thread-workload choice ("Customized IdxComp Workload")
------------------------------------------------------
Counter memory is ``#threads x #partitions`` entries.  A fixed per-thread
workload (the naive ``b = 16``) makes that product uncontrollable -- with
many nodes it "runs out of GPU memory for large datasets".  The paper picks
the workload from the data instead::

    thread_workload = ceil(#attribute_values * #nodes / max_counter_mem)
    #threads        = ceil(#attribute_values / thread_workload)

:func:`plan_partition` reproduces both policies.  When the naive policy
exceeds the counter budget, the kernel must process the data in multiple
passes (re-reading its input each time), which is how the ablation's
slowdown arises without aborting the run.

The *functional* scatter itself is
:func:`repro.gpusim.primitives.two_way_partition` generalized to an
arbitrary old-segment -> new-segment mapping (:func:`partition_segments`),
so the trainer can keep the new layout node-major.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..gpusim.kernel import GpuDevice
from ..gpusim.primitives import (
    check_offsets,
    seg_ids,
    segmented_inclusive_cumsum,
    segmented_sum,
)
from ..obs import traced
from .workspace import IDX_DTYPE, WorkspaceArena

__all__ = ["PartitionPlan", "plan_partition", "partition_segments", "COUNTER_BYTES"]

#: bytes per histogram counter (a 32-bit count)
COUNTER_BYTES = 4


@dataclasses.dataclass(frozen=True)
class PartitionPlan:
    """Resource plan for one histogram-based partition pass."""

    n_values: int
    n_partitions: int
    thread_workload: int
    n_threads: int
    counter_bytes: int
    passes: int
    custom: bool

    def __post_init__(self) -> None:
        if self.passes < 1:
            raise ValueError("passes must be >= 1")


def plan_partition(
    n_values: int,
    n_nodes: int,
    *,
    max_counter_mem_bytes: int,
    use_custom_workload: bool = True,
    fixed_thread_workload: int = 16,
    fanout: int = 2,
) -> PartitionPlan:
    """Choose the per-thread workload for partitioning ``n_values`` elements
    of ``n_nodes`` splitting nodes into ``fanout`` children each.

    The custom policy keeps ``counter_bytes <= max_counter_mem_bytes`` by
    construction; the fixed policy may exceed the budget, in which case the
    returned plan requires multiple passes over the input.
    """
    if n_values < 0 or n_nodes < 1:
        raise ValueError("need n_values >= 0 and n_nodes >= 1")
    n_partitions = n_nodes * fanout
    if n_values == 0:
        return PartitionPlan(0, n_partitions, 1, 1, COUNTER_BYTES * n_partitions, 1, use_custom_workload)
    if use_custom_workload:
        # the paper's formula up to the bytes-per-counter constant: *grow*
        # the per-thread workload beyond the default so that
        # #threads x #partitions x 4B stays within the budget ("we allocate
        # more workload to a thread when the number of partitions is large")
        workload = max(
            int(fixed_thread_workload),
            -(-n_values * n_partitions * COUNTER_BYTES // max_counter_mem_bytes),
        )
    else:
        workload = max(1, int(fixed_thread_workload))
    n_threads = max(1, -(-n_values // workload))
    counter_bytes = n_threads * n_partitions * COUNTER_BYTES
    passes = max(1, -(-counter_bytes // max_counter_mem_bytes))
    return PartitionPlan(
        n_values=n_values,
        n_partitions=n_partitions,
        thread_workload=workload,
        n_threads=n_threads,
        counter_bytes=counter_bytes,
        passes=passes,
        custom=use_custom_workload,
    )


@traced("partition")
def partition_segments(
    device: GpuDevice,
    offsets: np.ndarray,
    side: np.ndarray,
    left_seg: np.ndarray,
    right_seg: np.ndarray,
    n_new_segments: int,
    plan: PartitionPlan,
    *,
    bytes_per_element: int = 16,
    name: str = "histogram_partition",
    workspace: WorkspaceArena | None = None,
    sid: np.ndarray | None = None,
    drop_to_trash: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Order-preserving scatter of every old segment into mapped children.

    Parameters
    ----------
    offsets:
        Current segmentation (``S + 1`` entries).
    side:
        Per-element: ``0`` left child, ``1`` right child, ``-1`` dropped
        (elements of nodes that became leaves).
    left_seg, right_seg:
        ``(S,)`` new-segment index receiving each old segment's left/right
        elements; ``-1`` means that side is dropped entirely.
    n_new_segments:
        Size of the new segmentation.
    plan:
        Cost plan from :func:`plan_partition` (functional result does not
        depend on it; modeled time does, via the pass count and counter
        traffic).
    bytes_per_element:
        Payload moved per element across all arrays being scattered.
    workspace:
        Optional :class:`~repro.core.workspace.WorkspaceArena`.  When given,
        the histogram/rank/scatter passes are fused into one arena-backed
        pass (two global cumsums instead of four segmented primitives, every
        per-element temporary a reused view) -- bit-identical ``dest`` /
        ``new_offsets``, same device charges.
    sid:
        Optional precomputed element -> segment map (the trainer computes it
        once per level anyway); only consulted on the workspace path.
    drop_to_trash:
        When True, dropped elements get ``dest == new_offsets[-1]`` (one
        past the end) instead of ``-1``, so callers can scatter *without*
        boolean compression by writing into a buffer with one trash slot.

    Returns
    -------
    dest:
        Per-element destination (``-1`` if dropped, unless
        ``drop_to_trash``).  Order within each ``(old segment, side)`` group
        is preserved -- the Fig. 2 invariant.
    new_offsets:
        ``(n_new_segments + 1,)`` segmentation of the scattered array.
    """
    if workspace is not None and workspace.enabled:
        return _partition_segments_arena(
            device, offsets, side, left_seg, right_seg, n_new_segments, plan,
            bytes_per_element=bytes_per_element, name=name,
            workspace=workspace, sid=sid, drop_to_trash=drop_to_trash,
        )
    side = np.asarray(side, dtype=np.int8)
    n = side.size
    offsets = check_offsets(offsets, n)
    n_seg = offsets.size - 1
    left_seg = np.asarray(left_seg, dtype=np.int64)
    right_seg = np.asarray(right_seg, dtype=np.int64)
    if left_seg.size != n_seg or right_seg.size != n_seg:
        raise ValueError("segment maps must have one entry per old segment")
    for m in (left_seg, right_seg):
        if m.size and m.max() >= n_new_segments:
            raise ValueError("segment map points past n_new_segments")

    # ranks/counts live in the histogram kernel's shared-memory counters on a
    # real device, so they are computed uncharged here and their (on-chip)
    # cost is folded into the fused kernel launch below
    is_left = (side == 0).astype(np.int64)
    is_right = (side == 1).astype(np.int64)
    rank_left = (
        segmented_inclusive_cumsum(device, is_left, offsets, name=f"{name}/scan_l", charge=False)
        - 1
    )
    rank_right = (
        segmented_inclusive_cumsum(device, is_right, offsets, name=f"{name}/scan_r", charge=False)
        - 1
    )
    left_counts = segmented_sum(device, is_left, offsets, name=f"{name}/hist_l", charge=False)
    right_counts = segmented_sum(device, is_right, offsets, name=f"{name}/hist_r", charge=False)

    sizes = np.zeros(n_new_segments, dtype=np.int64)
    lv = left_seg >= 0
    rv = right_seg >= 0
    np.add.at(sizes, left_seg[lv], left_counts[lv])
    np.add.at(sizes, right_seg[rv], right_counts[rv])
    new_offsets = np.concatenate(([0], np.cumsum(sizes)))

    sid = seg_ids(offsets, n)
    dest = np.full(n, -1, dtype=np.int64)
    lmask = (side == 0) & lv[sid]
    rmask = (side == 1) & rv[sid]
    dest[lmask] = new_offsets[left_seg[sid[lmask]]] + rank_left[lmask]
    dest[rmask] = new_offsets[right_seg[sid[rmask]]] + rank_right[rmask]

    if drop_to_trash:
        dest[dest < 0] = new_offsets[-1]

    _charge_partition(device, n, plan, bytes_per_element, name)
    return dest, new_offsets


def _charge_partition(
    device: GpuDevice, n: int, plan: PartitionPlan, bytes_per_element: int, name: str
) -> None:
    """The modeled device cost of one partition pass (shared by both host
    implementations -- the arena fast path must charge exactly what the
    legacy path charges)."""
    # histogram pass(es) + scatter: the naive fixed workload may need
    # several passes when its counters blow the memory budget.
    # The scatter's destinations increase monotonically within each
    # (segment, side) group, so most writes coalesce; only the interleaving
    # between groups is irregular.
    # traffic: one histogram read pass per `passes` (side byte + bookkeeping),
    # one payload read and one payload write; destinations increase
    # monotonically within each (segment, side) group so ~90% of the write
    # coalesces
    device.launch(
        name,
        elements=n * plan.passes,
        flops_per_element=5.0,
        coalesced_bytes=n * 9 * plan.passes + n * bytes_per_element * (1.0 + 0.9),
        irregular_bytes=0.1 * n * bytes_per_element,
        launches=plan.passes,
    )
    # counter traffic: the plan is computed from *full-scale* element counts
    # (the caller passes them), so it must not be rescaled by work_scale;
    # every counter is written once and scanned once regardless of passes
    device.launch(
        f"{name}/counter_scan",
        elements=float(plan.n_threads) * plan.n_partitions,
        flops_per_element=1.0,
        coalesced_bytes=2.0 * plan.counter_bytes,
        scale=False,
    )


def _partition_segments_arena(
    device: GpuDevice,
    offsets: np.ndarray,
    side: np.ndarray,
    left_seg: np.ndarray,
    right_seg: np.ndarray,
    n_new_segments: int,
    plan: PartitionPlan,
    *,
    bytes_per_element: int,
    name: str,
    workspace: WorkspaceArena,
    sid: np.ndarray | None,
    drop_to_trash: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Fused arena implementation of :func:`partition_segments`.

    One stable pass: two global int cumsums provide both the per-element
    ranks *and* (read at segment ends) the per-segment histogram counts the
    legacy path recomputed with two extra segmented reductions.  Every
    n-element temporary is a reused arena view.  ``dest`` / ``new_offsets``
    are bit-identical to the legacy path; the device is charged identically.
    """
    ws = workspace
    side = np.asarray(side, dtype=np.int8)
    n = side.size
    offsets = check_offsets(offsets, n)
    n_seg = offsets.size - 1
    left_seg = np.asarray(left_seg, dtype=IDX_DTYPE)
    right_seg = np.asarray(right_seg, dtype=IDX_DTYPE)
    if left_seg.size != n_seg or right_seg.size != n_seg:
        raise ValueError("segment maps must have one entry per old segment")
    for m in (left_seg, right_seg):
        if m.size and m.max() >= n_new_segments:
            raise ValueError("segment map points past n_new_segments")
    if sid is None:
        sid = seg_ids(offsets, n)
    if n == 0:
        new_offsets = np.zeros(n_new_segments + 1, dtype=IDX_DTYPE)
        _charge_partition(device, 0, plan, bytes_per_element, name)
        return np.empty(0, dtype=IDX_DTYPE), new_offsets
    starts = offsets[:-1]
    ends = offsets[1:]
    lens = ends - starts

    # -- fused histogram + rank: one cumsum per side -------------------------
    is_left = np.equal(side, 0, out=ws.buf(f"{name}/is_l", n, bool))
    is_right = np.equal(side, 1, out=ws.buf(f"{name}/is_r", n, bool))
    cum_left = ws.buf(f"{name}/cum_l", n, IDX_DTYPE)
    cum_right = ws.buf(f"{name}/cum_r", n, IDX_DTYPE)
    np.cumsum(is_left, out=cum_left)
    np.cumsum(is_right, out=cum_right)
    # per-segment carry cancellation (the segmented-scan behavior) and, read
    # at each segment's last element, the per-segment left/right histogram
    base_l = np.where(starts > 0, cum_left[np.maximum(starts - 1, 0)], 0)
    base_r = np.where(starts > 0, cum_right[np.maximum(starts - 1, 0)], 0)
    last = np.maximum(ends - 1, 0)
    left_counts = np.where(lens > 0, cum_left[last] - base_l, 0)
    right_counts = np.where(lens > 0, cum_right[last] - base_r, 0)
    scratch = ws.buf(f"{name}/scratch", n, IDX_DTYPE)
    np.subtract(cum_left, np.take(base_l, sid, out=scratch), out=cum_left)
    np.subtract(cum_right, np.take(base_r, sid, out=scratch), out=cum_right)
    # cum_* are now the *inclusive* within-segment ranks (rank + 1)

    # -- new segmentation (S-sized, cheap) -----------------------------------
    sizes = np.zeros(n_new_segments, dtype=IDX_DTYPE)
    lv = left_seg >= 0
    rv = right_seg >= 0
    np.add.at(sizes, left_seg[lv], left_counts[lv])
    np.add.at(sizes, right_seg[rv], right_counts[rv])
    new_offsets = np.concatenate(([0], np.cumsum(sizes)))

    # -- destinations: segment base + rank, no boolean compression -----------
    # segment base minus 1 folds the inclusive-rank -> rank correction in
    seg_base_l = np.where(lv, new_offsets[np.maximum(left_seg, 0)], 0) - 1
    seg_base_r = np.where(rv, new_offsets[np.maximum(right_seg, 0)], 0) - 1
    # candidate destination if the element went left / right
    np.add(cum_left, np.take(seg_base_l, sid, out=scratch), out=cum_left)
    np.add(cum_right, np.take(seg_base_r, sid, out=scratch), out=cum_right)
    np.logical_and(is_left, np.take(lv, sid, out=ws.buf(f"{name}/vmask", n, bool)), out=is_left)
    np.logical_and(is_right, np.take(rv, sid, out=ws.buf(f"{name}/vmask", n, bool)), out=is_right)
    fill = new_offsets[-1] if drop_to_trash else -1
    dest = ws.full(f"{name}/dest", n, IDX_DTYPE, fill)
    np.copyto(dest, cum_left, where=is_left)
    np.copyto(dest, cum_right, where=is_right)

    _charge_partition(device, n, plan, bytes_per_element, name)
    return dest, new_offsets
