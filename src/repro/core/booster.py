"""User-facing estimator facade over all trainers.

:class:`GradientBoostedTrees` is the package's sklearn-style entry point::

    from repro import GradientBoostedTrees, GBDTParams
    model = GradientBoostedTrees(GBDTParams(n_trees=40, max_depth=6))
    model.fit(X, y)            # X: CSRMatrix / DenseMatrix / ndarray
    yhat = model.predict(X)

Backends
--------
``"gpu-gbdt"``
    The paper's algorithm on the simulated device (default).
``"cpu-reference"``
    The independent sequential exact-greedy trainer
    (:mod:`repro.cpu.exact_greedy`) -- slow, loop-based, used as the
    tree-identity oracle; it stands in for ``xgbst-1``.
``"xgb-gpu-dense"``
    The dense-representation GPU baseline (:mod:`repro.cpu.gpu_xgboost`),
    reproducing xgbst-gpu's missing-as-zero semantics and memory appetite.
``"histogram"``
    The approximate (LightGBM-style) trainer
    (:mod:`repro.approx.histogram_trainer`) the paper positions against.
"""

from __future__ import annotations

import numpy as np

from ..data.matrix import CSRMatrix, DenseMatrix
from ..gpusim.kernel import GpuDevice
from ..obs import span
from .booster_model import GBDTModel
from .params import GBDTParams

__all__ = ["GradientBoostedTrees", "as_csr", "BACKENDS"]

BACKENDS = ("gpu-gbdt", "cpu-reference", "xgb-gpu-dense", "histogram")


def as_csr(X: CSRMatrix | DenseMatrix | np.ndarray) -> CSRMatrix:
    """Normalize any supported matrix type to CSR.

    Dense inputs keep **every** non-nan cell as a present entry (zeros stay
    real observations); ``nan`` cells become missing.  CSR passes through.
    """
    if isinstance(X, CSRMatrix):
        return X
    if isinstance(X, DenseMatrix):
        dense = X.values
    else:
        dense = np.asarray(X, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("expected a 2-D matrix")
    mask = ~np.isnan(dense)
    counts = mask.sum(axis=1)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    indices = np.nonzero(mask)[1].astype(np.int64)
    data = dense[mask].astype(np.float64)
    return CSRMatrix(indptr, indices, data, n_cols=dense.shape[1])


class GradientBoostedTrees:
    """Estimator facade; see module docstring.

    Parameters
    ----------
    params:
        Training hyper-parameters (defaults = the paper's main setting).
    backend:
        One of :data:`BACKENDS`.
    device:
        Simulated device for the GPU backends (fresh Titan X by default).
    row_scale:
        Full-scale rows per run row, forwarded to the cost accounting.
    **overrides:
        Convenience keyword overrides applied to ``params`` via
        :meth:`GBDTParams.replace` (e.g. ``n_trees=10``).
    """

    def __init__(
        self,
        params: GBDTParams | None = None,
        *,
        backend: str = "gpu-gbdt",
        device: GpuDevice | None = None,
        row_scale: float = 1.0,
        **overrides,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        base = params if params is not None else GBDTParams()
        self.params = base.replace(**overrides) if overrides else base
        self.backend = backend
        self.device = device
        self.row_scale = float(row_scale)
        self.model_: GBDTModel | None = None
        self.report_ = None

    # ------------------------------------------------------------------- api
    def fit(
        self,
        X,
        y,
        *,
        init_model: GBDTModel | None = None,
        eval_set=None,
        early_stopping_rounds: int | None = None,
        eval_metric=None,
    ) -> "GradientBoostedTrees":
        """Train and return self; the fitted ensemble is ``self.model_``.

        Parameters
        ----------
        init_model:
            Warm start: resume boosting from an existing ensemble instead of
            from scratch.  ``params.n_trees`` *new* trees are appended, and
            the result is bit-identical to one uninterrupted training of
            ``init_model.n_trees + params.n_trees`` trees (supported by the
            ``gpu-gbdt`` and ``cpu-reference`` backends).
        eval_set:
            Optional ``(X_val, y_val)`` pair.  When given, a per-round
            validation curve is recorded in ``self.eval_history_``.
        early_stopping_rounds:
            With an ``eval_set``: keep only the trees up to the best
            validation round if no improvement follows for this many rounds
            (``self.best_iteration_`` records the kept count).  On this
            substrate boosting is deterministic, so post-hoc truncation is
            exactly equivalent to stopping the loop.
        eval_metric:
            ``(y, yhat) -> float`` to minimize; defaults to RMSE.
        """
        Xc = as_csr(X)
        y = np.asarray(y, dtype=np.float64)
        self.eval_history_ = None
        self.best_iteration_ = None
        if init_model is not None and self.backend not in ("gpu-gbdt", "cpu-reference"):
            raise ValueError(
                f"backend {self.backend!r} does not support warm-start (init_model)"
            )
        with span("fit", backend=self.backend, n_rows=Xc.n_rows, n_cols=Xc.n_cols):
            if self.backend == "gpu-gbdt":
                from .trainer import GPUGBDTTrainer

                if self.device is None:
                    self.device = GpuDevice()
                trainer = GPUGBDTTrainer(self.params, self.device, row_scale=self.row_scale)
                self.model_ = trainer.fit(Xc, y, init_model=init_model)
                self.report_ = trainer.report
            elif self.backend == "cpu-reference":
                from ..cpu.exact_greedy import ReferenceTrainer

                trainer = ReferenceTrainer(self.params)
                self.model_ = trainer.fit(Xc, y, init_model=init_model)
                self.report_ = None
            elif self.backend == "xgb-gpu-dense":
                from ..cpu.gpu_xgboost import DenseGpuXgboostTrainer

                if self.device is None:
                    self.device = GpuDevice()
                trainer = DenseGpuXgboostTrainer(self.params, self.device, row_scale=self.row_scale)
                self.model_ = trainer.fit(Xc, y)
                self.report_ = trainer.report
            else:  # histogram
                from ..approx.histogram_trainer import HistogramGBDTTrainer

                if self.device is None:
                    self.device = GpuDevice()
                trainer = HistogramGBDTTrainer(self.params, self.device, row_scale=self.row_scale)
                self.model_ = trainer.fit(Xc, y)
                self.report_ = None

        if eval_set is not None:
            Xv, yv = eval_set
            with span("eval_history", rounds=len(self.model_.trees)):
                self.eval_history_ = self.model_.eval_history(
                    as_csr(Xv), np.asarray(yv, dtype=np.float64), metric=eval_metric
                )
            if early_stopping_rounds is not None:
                if early_stopping_rounds < 1:
                    raise ValueError("early_stopping_rounds must be >= 1")
                hist = self.eval_history_
                best = 0
                for t in range(1, hist.size):
                    if hist[t] < hist[best]:
                        best = t
                    elif t - best >= early_stopping_rounds:
                        break
                self.best_iteration_ = best + 1
                self.model_.trees = self.model_.trees[: self.best_iteration_]
        elif early_stopping_rounds is not None:
            raise ValueError("early_stopping_rounds requires an eval_set")
        return self

    def _require_model(self) -> GBDTModel:
        if self.model_ is None:
            raise RuntimeError("call fit() before predict()")
        return self.model_

    def predict(self, X, *, n_trees: int | None = None, transform: bool = False) -> np.ndarray:
        """Predict margins (or transformed outputs) for ``X``."""
        return self._require_model().predict(X, n_trees=n_trees, transform=transform)

    def staged_predict(self, X) -> np.ndarray:
        """Cumulative per-round predictions (Fig. 10b helper)."""
        return self._require_model().staged_predict(X)
