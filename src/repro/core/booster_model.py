"""The trained ensemble: a list of trees plus prediction helpers."""

from __future__ import annotations

import dataclasses
import json
from typing import List

import numpy as np

from ..data.matrix import CSRMatrix, DenseMatrix
from .params import GBDTParams
from .tree import DecisionTree, trees_equal

__all__ = ["GBDTModel", "models_equal"]


@dataclasses.dataclass
class GBDTModel:
    """An ensemble of regression trees (leaf values include the learning
    rate, so prediction is a plain sum over trees plus the base score)."""

    trees: List[DecisionTree]
    params: GBDTParams
    base_score: float = 0.0

    @property
    def n_trees(self) -> int:
        return len(self.trees)

    # ------------------------------------------------------------ flattening
    #: below this many (row, tree) pairs the per-tree loop wins -- the
    #: flattened sweep's setup cost is not worth amortizing
    _FLAT_MIN_PAIRS = 4096

    def _flat_signature(self) -> tuple:
        """Cheap content fingerprint guarding the cached flat ensemble.

        Catches every mutation the :class:`DecisionTree` API can make:
        ``split_node`` changes node counts, ``set_leaf`` changes the value
        sum.  Direct field surgery on a tree must call :meth:`flatten` with
        ``refresh=True``.
        """
        return (
            len(self.trees),
            sum(len(t.left) for t in self.trees),
            sum(sum(t.value) for t in self.trees),
            self.base_score,
        )

    def flatten(self, *, refresh: bool = False):
        """The ensemble as a :class:`~repro.serve.FlatEnsemble` (cached).

        The cache is invalidated automatically when trees are added or leaf
        values change; pass ``refresh=True`` after mutating a tree's arrays
        in place.
        """
        from ..serve.flat_model import FlatEnsemble

        sig = self._flat_signature()
        cached = getattr(self, "_flat_cache", None)
        if refresh or cached is None or cached[0] != sig:
            cached = (sig, FlatEnsemble.from_model(self))
            self._flat_cache = cached
        return cached[1]

    def predict(
        self,
        X: CSRMatrix | DenseMatrix | np.ndarray,
        *,
        n_trees: int | None = None,
        transform: bool = False,
    ) -> np.ndarray:
        """Predict with the first ``n_trees`` trees (all by default).

        ``transform=True`` maps margins through the loss's output transform
        (sigmoid for logistic; identity for MSE).
        """
        use = self.trees if n_trees is None else self.trees[: max(0, n_trees)]
        if isinstance(X, CSRMatrix):
            dense = X.to_dense(fill=np.nan).values
        elif isinstance(X, DenseMatrix):
            dense = X.values
        else:
            dense = np.asarray(X, dtype=np.float64)
        if (
            n_trees is None
            and len(use) >= 2
            and dense.shape[0] * len(use) >= self._FLAT_MIN_PAIRS
        ):
            # big batches route through the flattened ensemble in one
            # level-wise sweep instead of the per-tree Python loop
            out = self.flatten().predict(dense)
        else:
            out = np.full(dense.shape[0], self.base_score, dtype=np.float64)
            for tree in use:
                out += tree.predict(dense)
        if transform:
            out = self.params.loss_fn.transform(out)
        return out

    def predict_margin(self, X) -> np.ndarray:
        """Raw margins accumulated tree by tree, in boosting order.

        This is the warm-start path: the sum is built exactly the way the
        trainer's :class:`~repro.core.smartgd.GradientComputer` built
        ``yhat`` during training (one add per instance per round, in round
        order), so resuming boosting from these margins is bit-identical to
        never having stopped.  ``predict`` may instead route large batches
        through the flattened ensemble, whose different summation order is
        fine for serving but not for resuming.
        """
        if isinstance(X, CSRMatrix):
            dense = X.to_dense(fill=np.nan).values
        elif isinstance(X, DenseMatrix):
            dense = X.values
        else:
            dense = np.asarray(X, dtype=np.float64)
        out = np.full(dense.shape[0], self.base_score, dtype=np.float64)
        for tree in self.trees:
            out += tree.predict(dense)
        return out

    def staged_predict(self, X) -> "np.ndarray":
        """``(n_trees, n_rows)`` matrix of cumulative predictions -- one row
        per boosting round (Fig. 10b's error-vs-budget curves)."""
        if isinstance(X, CSRMatrix):
            dense = X.to_dense(fill=np.nan).values
        elif isinstance(X, DenseMatrix):
            dense = X.values
        else:
            dense = np.asarray(X, dtype=np.float64)
        out = np.empty((self.n_trees, dense.shape[0]), dtype=np.float64)
        acc = np.full(dense.shape[0], self.base_score, dtype=np.float64)
        for t, tree in enumerate(self.trees):
            acc = acc + tree.predict(dense)
            out[t] = acc
        return out

    # ------------------------------------------------------------ persistence
    def to_json(self) -> str:
        """Serialize the trees (params are not round-tripped -- they belong
        to training, not inference)."""
        return json.dumps(
            {
                "base_score": self.base_score,
                "learning_rate": self.params.learning_rate,
                "trees": [t.to_dict() for t in self.trees],
            }
        )

    @classmethod
    def from_json(cls, text: str, params: GBDTParams | None = None) -> "GBDTModel":
        d = json.loads(text)
        return cls(
            trees=[DecisionTree.from_dict(td) for td in d["trees"]],
            params=params if params is not None else GBDTParams(),
            base_score=float(d["base_score"]),
        )

    def save(self, path) -> None:
        """Write the model to a JSON file, crash-safely.

        The payload goes to a temporary file in the destination directory,
        is fsynced, and is atomically renamed into place -- a reader (or a
        restart after a crash mid-save) sees the previous model or the new
        one, never a truncated file.
        """
        from ..ioutil import atomic_write_text

        atomic_write_text(path, self.to_json())

    @classmethod
    def load(cls, path, params: GBDTParams | None = None) -> "GBDTModel":
        """Read a model written by :meth:`save`."""
        from pathlib import Path

        return cls.from_json(Path(path).read_text(encoding="utf-8"), params=params)

    def eval_history(self, X, y, metric=None) -> np.ndarray:
        """Per-boosting-round metric on ``(X, y)`` (default: RMSE).

        The budgeted-training analyses (Fig. 10b, the case studies) read
        accuracy-vs-rounds off this curve.
        """
        from ..metrics import rmse as default_metric

        metric = metric if metric is not None else default_metric
        staged = self.staged_predict(X)
        return np.array([metric(y, staged[t]) for t in range(self.n_trees)])


def models_equal(a: GBDTModel, b: GBDTModel, **tol) -> bool:
    """Tree-by-tree structural equality (the Table II 'identical trees'
    check between GPU-GBDT and the CPU reference)."""
    if a.n_trees != b.n_trees:
        return False
    return all(trees_equal(ta, tb, **tol) for ta, tb in zip(a.trees, b.trees))
