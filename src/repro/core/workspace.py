"""Reusable training workspace: preallocated, geometrically-grown buffers.

The level loop of :meth:`GPUGBDTTrainer._grow_tree
<repro.core.trainer.GPUGBDTTrainer._grow_tree>` historically allocated every
working array fresh -- ``np.empty`` / ``np.zeros`` / ``np.concatenate`` per
level, per boosting round.  The paper's own profiling argument (Section
IV-A: split finding and node splitting dominate) holds for the host
reproduction too, and most of that host time was allocator churn and
re-derived segment descriptors rather than numpy arithmetic.  Mitchell et
al. (GPU XGBoost) attribute a large share of their speedup to reusing
preallocated device workspaces across levels; this module is the host-side
analogue.

:class:`WorkspaceArena` hands out *views* into named, per-dtype buffers that
persist across levels, trees, and boosting rounds:

* a buffer is allocated once on first request and **grown geometrically**
  (never shrunk), so a training run performs O(log n) real allocations per
  buffer name instead of O(levels x rounds);
* requests are keyed by name -- two arrays that must be live at the same
  time use two names (the trainer's ping-pong pairs use ``name + "/a"`` and
  ``name + "/b"``);
* index buffers are pinned to ``int64`` (:data:`IDX_DTYPE`) so offsets and
  scatter destinations are safe past 2**31 elements on every platform
  (Windows' default ``np.intp``/platform-int would silently wrap);
* everything is observable: request/reuse/grow/allocation counters and a
  reserved-bytes gauge publish into the shared metrics registry
  (:mod:`repro.obs`).

The arena is purely a host optimization: the simulated-device ledger and
the resulting trees are byte-identical with the arena on or off (the
identity suites and ``tests/test_properties.py`` enforce this).
"""

from __future__ import annotations

import numpy as np

__all__ = ["WorkspaceArena", "IDX_DTYPE", "arena_enabled_default"]

#: the pinned dtype for every index-like buffer (offsets, destinations,
#: ranks, segment ids).  int64 keeps >2**31-element layouts safe on every
#: platform; see ``tests/test_dtype_safety.py``.
IDX_DTYPE = np.int64

#: geometric growth factor for buffer capacity
_GROWTH = 1.5

#: capacities are rounded up to a multiple of this many elements
_ALIGN = 64


def arena_enabled_default() -> bool:
    """Whether new trainers use the arena (``REPRO_ARENA=0`` disables)."""
    import os

    return os.environ.get("REPRO_ARENA", "1") != "0"


def _round_capacity(size: int) -> int:
    return -(-max(size, 1) // _ALIGN) * _ALIGN


class WorkspaceArena:
    """Named, geometrically-grown scratch buffers for hot-path reuse.

    Parameters
    ----------
    enabled:
        When False every request falls back to a fresh ``np.empty`` -- one
        code path for callers, zero behavior change when disabled.

    Notes
    -----
    Views returned by :meth:`buf` / :meth:`full` / :meth:`zeros` alias the
    arena's storage: a second request under the same name invalidates the
    first.  Callers own the naming discipline (the trainer prefixes names
    per logical array and swaps explicit ``/a``-``/b`` pairs).
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._bufs: dict[str, np.ndarray] = {}
        self._arange: np.ndarray | None = None
        # plain-int counters; published to the obs registry on demand so the
        # hot path never takes the registry lock
        self.n_requests = 0
        self.n_reuses = 0
        self.n_allocs = 0
        self.n_grows = 0
        self._published: dict[str, int] = {}

    # ------------------------------------------------------------- inventory
    @property
    def reserved_bytes(self) -> int:
        """Total bytes currently held by the arena's buffers."""
        total = sum(b.nbytes for b in self._bufs.values())
        if self._arange is not None:
            total += self._arange.nbytes
        return total

    @property
    def n_buffers(self) -> int:
        return len(self._bufs) + (self._arange is not None)

    # --------------------------------------------------------------- buffers
    def buf(self, name: str, size: int, dtype) -> np.ndarray:
        """An *uninitialized* 1-D view of ``size`` elements of ``dtype``.

        The underlying buffer is keyed by ``(name, dtype)`` and grown
        geometrically when ``size`` exceeds its capacity.  Contents are
        whatever the previous user of the buffer left behind -- fill before
        reading, exactly as with ``np.empty``.
        """
        dtype = np.dtype(dtype)
        if not self.enabled:
            return np.empty(size, dtype)
        self.n_requests += 1
        key = f"{name}|{dtype.str}"
        cur = self._bufs.get(key)
        if cur is None:
            cur = np.empty(_round_capacity(size), dtype)
            self._bufs[key] = cur
            self.n_allocs += 1
        elif cur.size < size:
            cap = max(_round_capacity(size), int(cur.size * _GROWTH))
            cur = np.empty(cap, dtype)
            self._bufs[key] = cur
            self.n_allocs += 1
            self.n_grows += 1
        else:
            self.n_reuses += 1
        return cur[:size]

    def buf2d(self, name: str, rows: int, cols: int, dtype) -> np.ndarray:
        """An *uninitialized* ``(rows, cols)`` view backed by :meth:`buf`.

        Backing storage is the flat buffer keyed by ``(name, dtype)``, so a
        table that shrinks or grows between levels (histogram node tables)
        reuses the same allocation.  The histogram trainer ping-pongs two
        names by level parity -- ``hist/gq/0`` holds even-depth tables while
        ``hist/gq/1`` holds odd-depth ones -- so a level's parent tables
        stay alive (for sibling subtraction) while its children are built.
        """
        return self.buf(name, rows * cols, dtype).reshape(rows, cols)

    def full(self, name: str, size: int, dtype, fill) -> np.ndarray:
        """Like :meth:`buf` but filled with ``fill``."""
        out = self.buf(name, size, dtype)
        out[...] = fill
        return out

    def zeros(self, name: str, size: int, dtype) -> np.ndarray:
        """Like :meth:`buf` but zero-filled."""
        return self.full(name, size, dtype, 0)

    def copy_in(self, name: str, src: np.ndarray) -> np.ndarray:
        """A reusable copy of ``src`` (same dtype, same length)."""
        out = self.buf(name, src.size, src.dtype)
        np.copyto(out, src)
        return out

    def seg_ids(self, name: str, offsets: np.ndarray, n: int) -> np.ndarray:
        """Element -> segment-id map for a segmentation, arena-backed.

        Equivalent to ``np.repeat(np.arange(S), np.diff(offsets))`` but
        computed by marking interior segment boundaries and prefix-summing
        in place, so the only storage is the reused ``name`` buffer.
        Handles empty segments (several marks accumulate on one element)
        and trailing empty segments (marks at ``n`` are dropped).
        """
        if not self.enabled:
            return np.repeat(
                np.arange(offsets.size - 1, dtype=IDX_DTYPE), np.diff(offsets)
            )
        out = self.zeros(name, n, IDX_DTYPE)
        interior = offsets[1:-1]
        np.add.at(out, interior[interior < n], 1)
        np.cumsum(out, out=out)
        return out

    def arange(self, size: int) -> np.ndarray:
        """A **read-only** view of ``[0, size)`` as :data:`IDX_DTYPE`.

        The ascending sequence is materialized once and only extended when a
        larger prefix is requested; the view is marked non-writeable because
        every caller shares it.
        """
        if not self.enabled:
            return np.arange(size, dtype=IDX_DTYPE)
        self.n_requests += 1
        if self._arange is None or self._arange.size < size:
            self._arange = np.arange(_round_capacity(size), dtype=IDX_DTYPE)
            self._arange.setflags(write=False)
            self.n_allocs += 1
        else:
            self.n_reuses += 1
        return self._arange[:size]

    # --------------------------------------------------------------- metrics
    def publish_metrics(self) -> None:
        """Flush the arena's counters into the shared obs registry.

        Counters are published as deltas since the previous flush so the
        registry totals stay monotone across repeated ``fit`` calls.
        """
        if not self.enabled:
            return
        from ..obs import get_registry

        registry = get_registry()
        for metric, value in (
            ("arena_requests_total", self.n_requests),
            ("arena_reuses_total", self.n_reuses),
            ("arena_allocs_total", self.n_allocs),
            ("arena_grows_total", self.n_grows),
        ):
            delta = value - self._published.get(metric, 0)
            if delta:
                registry.counter(metric, "workspace arena buffer events").inc(delta)
            self._published[metric] = value
        registry.gauge(
            "arena_reserved_bytes", "bytes held by the training workspace arena"
        ).set(float(self.reserved_bytes))

    def __repr__(self) -> str:
        return (
            f"WorkspaceArena(enabled={self.enabled}, buffers={self.n_buffers}, "
            f"reserved={self.reserved_bytes}B, reuses={self.n_reuses}/"
            f"{self.n_requests})"
        )
