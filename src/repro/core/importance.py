"""Feature importance for trained ensembles.

Not a paper artifact, but table stakes for a GBDT library a downstream user
would adopt: per-attribute aggregates of the recorded split statistics.

Three standard flavours:

* ``"gain"``  -- total Eq. (2) gain contributed by splits on the attribute;
* ``"cover"`` -- total number of training instances routed through those
  splits;
* ``"split"`` -- how many times the attribute was chosen.
"""

from __future__ import annotations

import numpy as np

from .booster_model import GBDTModel

__all__ = ["feature_importance", "IMPORTANCE_KINDS"]

IMPORTANCE_KINDS = ("gain", "cover", "split")


def feature_importance(
    model: GBDTModel, n_attrs: int | None = None, kind: str = "gain", normalize: bool = True
) -> np.ndarray:
    """Per-attribute importance of a trained model.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.booster_model.GBDTModel`.
    n_attrs:
        Length of the output vector; inferred from the largest split
        attribute when omitted.
    kind:
        One of :data:`IMPORTANCE_KINDS`.
    normalize:
        Scale the vector to sum to 1 (when any importance is non-zero).
    """
    if kind not in IMPORTANCE_KINDS:
        raise ValueError(f"kind must be one of {IMPORTANCE_KINDS}")
    max_attr = -1
    for t in model.trees:
        for a in t.attr:
            max_attr = max(max_attr, a)
    if n_attrs is None:
        n_attrs = max_attr + 1
    elif max_attr >= n_attrs:
        raise ValueError(f"model splits on attribute {max_attr} >= n_attrs={n_attrs}")
    out = np.zeros(max(n_attrs, 0), dtype=np.float64)
    for t in model.trees:
        for nid in range(t.n_nodes):
            a = t.attr[nid]
            if a < 0:
                continue
            if kind == "gain":
                out[a] += t.gain[nid]
            elif kind == "cover":
                out[a] += t.n_instances[nid]
            else:
                out[a] += 1.0
    if normalize:
        total = out.sum()
        if total > 0:
            out = out / total
    return out
