"""Decision-tree structure shared by every trainer.

A tree is stored as flat parallel arrays (structure-of-arrays), the layout a
GPU predictor wants: node ``i``'s children, split attribute, threshold,
missing-value default direction and leaf value are all O(1) lookups.

Split semantics (fixed across all trainers so trees are comparable):

* an instance with attribute value ``v`` goes **left iff v > threshold**
  (the sorted lists are descending, so "left" holds the larger values);
* an instance whose attribute is absent/missing follows ``default_left``
  (Section II-A: the direction is learned during training);
* thresholds are midpoints between adjacent distinct sorted values, so any
  value seen at training time routes deterministically.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..data.matrix import CSRMatrix, DenseMatrix

__all__ = ["DecisionTree", "trees_equal"]

_NO_CHILD = -1


class DecisionTree:
    """A binary regression tree built level by level.

    Nodes are appended in creation order; node 0 is the root.  Internal
    nodes carry ``(attr, threshold, default_left, gain)``; leaves carry
    ``value`` (already multiplied by the learning rate).
    """

    def __init__(self) -> None:
        self.left: List[int] = []
        self.right: List[int] = []
        self.attr: List[int] = []
        self.threshold: List[float] = []
        self.default_left: List[bool] = []
        self.value: List[float] = []
        self.gain: List[float] = []
        self.n_instances: List[int] = []
        self.depth: List[int] = []

    # ------------------------------------------------------------- building
    def add_root(self, n_instances: int = 0) -> int:
        """Create the root; a tree may only have one."""
        if self.n_nodes:
            raise RuntimeError("tree already has a root")
        return self._add_node(depth=0, n_instances=n_instances)

    def _add_node(self, depth: int, n_instances: int) -> int:
        self.left.append(_NO_CHILD)
        self.right.append(_NO_CHILD)
        self.attr.append(-1)
        self.threshold.append(np.nan)
        self.default_left.append(False)
        self.value.append(0.0)
        self.gain.append(0.0)
        self.n_instances.append(int(n_instances))
        self.depth.append(int(depth))
        return self.n_nodes - 1

    def split_node(
        self,
        nid: int,
        attr: int,
        threshold: float,
        default_left: bool,
        gain: float,
        n_left: int = 0,
        n_right: int = 0,
    ) -> tuple[int, int]:
        """Turn leaf candidate ``nid`` into an internal node; returns the new
        ``(left, right)`` child ids."""
        self._check_nid(nid)
        if self.left[nid] != _NO_CHILD:
            raise RuntimeError(f"node {nid} already split")
        if attr < 0:
            raise ValueError("split attribute must be non-negative")
        lid = self._add_node(depth=self.depth[nid] + 1, n_instances=n_left)
        rid = self._add_node(depth=self.depth[nid] + 1, n_instances=n_right)
        self.left[nid] = lid
        self.right[nid] = rid
        self.attr[nid] = int(attr)
        self.threshold[nid] = float(threshold)
        self.default_left[nid] = bool(default_left)
        self.gain[nid] = float(gain)
        return lid, rid

    def set_leaf(self, nid: int, value: float) -> None:
        """Finalize ``nid`` as a leaf with prediction ``value``."""
        self._check_nid(nid)
        if self.left[nid] != _NO_CHILD:
            raise RuntimeError(f"node {nid} is internal, cannot be a leaf")
        self.value[nid] = float(value)

    def _check_nid(self, nid: int) -> None:
        if not (0 <= nid < self.n_nodes):
            raise IndexError(f"node id {nid} out of range")

    # ------------------------------------------------------------ inspection
    @property
    def n_nodes(self) -> int:
        return len(self.left)

    def is_leaf(self, nid: int) -> bool:
        """True iff ``nid`` has no children."""
        self._check_nid(nid)
        return self.left[nid] == _NO_CHILD

    @property
    def n_leaves(self) -> int:
        return sum(1 for l in self.left if l == _NO_CHILD)

    def max_depth(self) -> int:
        """Depth of the deepest node (root = 0)."""
        return max(self.depth) if self.depth else 0

    # ------------------------------------------------------------ prediction
    def predict_row(self, cols: np.ndarray, vals: np.ndarray) -> float:
        """Traverse with one sparse row (``cols`` sorted ascending)."""
        nid = 0
        while not self.is_leaf(nid):
            a = self.attr[nid]
            k = np.searchsorted(cols, a)
            if k < cols.size and cols[k] == a:
                go_left = vals[k] > self.threshold[nid]
            else:
                go_left = self.default_left[nid]
            nid = self.left[nid] if go_left else self.right[nid]
        return self.value[nid]

    def apply(self, X: CSRMatrix | DenseMatrix | np.ndarray) -> np.ndarray:
        """Leaf node id each row lands in (sklearn's ``apply``)."""
        return self._route(X)

    def predict(self, X: CSRMatrix | DenseMatrix | np.ndarray) -> np.ndarray:
        """Vectorized level-wise traversal for a whole matrix.

        Dense inputs treat ``nan`` cells as missing; every other value is a
        real observation (including 0.0 -- the dense baseline's semantics).
        """
        return np.asarray(self.value)[self._route(X)]

    def _route(self, X: CSRMatrix | DenseMatrix | np.ndarray) -> np.ndarray:
        if isinstance(X, CSRMatrix):
            dense = X.to_dense(fill=np.nan).values
        elif isinstance(X, DenseMatrix):
            dense = X.values
        else:
            dense = np.asarray(X, dtype=np.float64)
        n = dense.shape[0]
        left = np.asarray(self.left)
        right = np.asarray(self.right)
        attr = np.asarray(self.attr)
        thr = np.asarray(self.threshold)
        dleft = np.asarray(self.default_left)
        cur = np.zeros(n, dtype=np.int64)
        for _ in range(self.max_depth() + 1):
            internal = left[cur] != _NO_CHILD
            if not internal.any():
                break
            idx = np.flatnonzero(internal)
            nids = cur[idx]
            x = dense[idx, attr[nids]]
            missing = np.isnan(x)
            with np.errstate(invalid="ignore"):
                go_left = np.where(missing, dleft[nids], x > thr[nids])
            cur[idx] = np.where(go_left, left[nids], right[nids])
        return cur

    # ----------------------------------------------------------- persistence
    def to_dict(self) -> Dict[str, list]:
        """JSON-serializable structure."""
        return {
            "left": list(self.left),
            "right": list(self.right),
            "attr": list(self.attr),
            "threshold": [float(t) for t in self.threshold],
            "default_left": list(self.default_left),
            "value": list(self.value),
            "gain": list(self.gain),
            "n_instances": list(self.n_instances),
            "depth": list(self.depth),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, list]) -> "DecisionTree":
        t = cls()
        t.left = [int(v) for v in d["left"]]
        t.right = [int(v) for v in d["right"]]
        t.attr = [int(v) for v in d["attr"]]
        t.threshold = [float(v) for v in d["threshold"]]
        t.default_left = [bool(v) for v in d["default_left"]]
        t.value = [float(v) for v in d["value"]]
        t.gain = [float(v) for v in d["gain"]]
        t.n_instances = [int(v) for v in d["n_instances"]]
        t.depth = [int(v) for v in d["depth"]]
        return t

    def dump_text(self, nid: int = 0, indent: str = "") -> str:
        """Readable nested dump (root first), for debugging small trees."""
        if self.is_leaf(nid):
            return f"{indent}leaf value={self.value[nid]:.6g} n={self.n_instances[nid]}"
        head = (
            f"{indent}node a{self.attr[nid]} > {self.threshold[nid]:.6g} "
            f"(default={'L' if self.default_left[nid] else 'R'}, gain={self.gain[nid]:.6g})"
        )
        return "\n".join(
            [
                head,
                self.dump_text(self.left[nid], indent + "  "),
                self.dump_text(self.right[nid], indent + "  "),
            ]
        )


def trees_equal(
    a: DecisionTree, b: DecisionTree, *, rtol: float = 1e-9, atol: float = 1e-8
) -> bool:
    """Structural equality with float tolerance on thresholds/values/gains.

    This is the check behind the paper's claim "we have compared the trees
    constructed by GPU-GBDT and the CPU-based XGBoost, and found that the
    trees are identical".  The absolute tolerance absorbs summation-order
    noise on effectively-zero leaves (``G ~ 0``) -- leaf values are O(0.1),
    so 1e-8 is far below anything meaningful.
    """
    if a.n_nodes != b.n_nodes:
        return False
    if a.left != b.left or a.right != b.right or a.attr != b.attr:
        return False
    if a.default_left != b.default_left or a.depth != b.depth:
        return False
    thr_a, thr_b = np.asarray(a.threshold), np.asarray(b.threshold)
    mask = ~(np.isnan(thr_a) & np.isnan(thr_b))
    if not np.allclose(thr_a[mask], thr_b[mask], rtol=rtol, atol=atol):
        return False
    if not np.allclose(a.value, b.value, rtol=rtol, atol=atol):
        return False
    return np.allclose(a.gain, b.gain, rtol=1e-6, atol=1e-9)
