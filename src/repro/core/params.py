"""Training hyper-parameters and optimization switches.

Algorithm 1 of the paper is parameterized by the maximum depth ``d``, the
number of trees ``T``, the valid-split threshold ``gamma`` and the
regularization constant ``lambda`` of Eq. (2); the case study (Section IV-E)
adds the learning rate ``eta``.  On top of those, :class:`GBDTParams`
exposes one boolean per GPU-specific optimization so the Fig. 9 ablation can
switch each off independently:

====================  =====================================================
``use_rle``           RLE compression of sorted attribute values (III-C)
``use_direct_rle``    Directly-Split-RLE instead of decompress/recompress
``use_smartgd``       gradients from intermediate results, no tree traversal
``use_custom_setkey`` Customized SetKey segment-per-block formula (III-B)
``use_custom_workload`` Customized IdxComp partition thread workload (III-B)
====================  =====================================================
"""

from __future__ import annotations

import dataclasses

from ..data.rle import RLE_POLICIES
from ..losses import Loss, get_loss

__all__ = ["GBDTParams"]


@dataclasses.dataclass
class GBDTParams:
    """Hyper-parameters for every trainer in this package.

    Defaults follow the paper's main experimental setting: depth 6, 40
    trees, MSE loss, exact (non-approximate) split finding.
    """

    # -- Algorithm 1 inputs --------------------------------------------------
    n_trees: int = 40
    max_depth: int = 6
    gamma: float = 0.0  # minimum gain for a valid split (strict >)
    lambda_: float = 1.0  # L2 regularization of Eq. (2)
    learning_rate: float = 0.3  # eta (case study, Section IV-E)
    loss: str | Loss = "squared_error"
    #: stochastic GBM (off by default -- the paper trains deterministically)
    subsample: float = 1.0  # rows per tree
    colsample_bytree: float = 1.0  # attributes per tree
    #: gradient-based one-side sampling (GOSS; Ke et al. / Ou 2005.09148).
    #: ``goss_a`` keeps the top-a fraction of rows by |gradient| each round;
    #: the remaining low-|g| rows are sampled at rate ``goss_b`` and their
    #: gradient/hessian amplified by (1-a)/b so the histogram totals stay
    #: unbiased.  a=1 disables GOSS entirely (the default: exact training).
    #: Only the histogram trainer implements GOSS (single-process, depthwise).
    goss_a: float = 1.0
    goss_b: float = 0.1

    # -- RLE compression (Section III-C) -------------------------------------
    use_rle: bool = True
    rle_policy: str = "measured"  # see repro.data.rle.RLE_POLICIES
    rle_paper_threshold: float = 1e-3  # R in the paper's dim/cardinality rule
    rle_measured_threshold: float = 4.0  # elements-per-run to justify RLE
    use_direct_rle: bool = True  # Fig. 7 vs Fig. 6 node splitting

    # -- GPU-specific optimizations (Section III-B) ---------------------------
    use_smartgd: bool = True
    use_custom_setkey: bool = True
    setkey_c: int = 1000  # C in "1 + #segments / (#SM * C)"
    use_custom_workload: bool = True
    max_counter_mem_bytes: int = 2**30  # the paper's example budget (2^30)
    fixed_thread_workload: int = 16  # the naive b = 16 workload

    # -- misc -----------------------------------------------------------------
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if self.gamma < 0:
            raise ValueError("gamma must be >= 0")
        if self.lambda_ < 0:
            raise ValueError("lambda_ must be >= 0")
        if not (0 < self.learning_rate <= 1):
            raise ValueError("learning_rate must be in (0, 1]")
        if not (0 < self.subsample <= 1):
            raise ValueError("subsample must be in (0, 1]")
        if not (0 < self.colsample_bytree <= 1):
            raise ValueError("colsample_bytree must be in (0, 1]")
        if not (0 < self.goss_a <= 1):
            raise ValueError("goss_a must be in (0, 1]")
        if self.goss_a < 1:
            if self.goss_b <= 0:
                raise ValueError("goss_b must be > 0 when goss_a < 1")
            if self.goss_a + self.goss_b > 1:
                raise ValueError("goss_a + goss_b must be <= 1")
        elif not (0 <= self.goss_b <= 1):
            raise ValueError("goss_b must be in [0, 1]")
        if self.rle_policy not in RLE_POLICIES:
            raise ValueError(f"rle_policy must be one of {RLE_POLICIES}")
        if self.setkey_c < 1:
            raise ValueError("setkey_c must be >= 1")
        if self.max_counter_mem_bytes < 1024:
            raise ValueError("max_counter_mem_bytes unreasonably small")
        if self.fixed_thread_workload < 1:
            raise ValueError("fixed_thread_workload must be >= 1")
        # resolve the loss eagerly so bad names fail at construction
        self.loss_fn: Loss = get_loss(self.loss)

    def replace(self, **kwargs) -> "GBDTParams":
        """Return a copy with the given fields changed (ablation helper)."""
        return dataclasses.replace(self, **kwargs)

    def to_config(self) -> dict:
        """JSON-serializable view of every field, for digesting/persisting.

        The ``loss`` field is normalized to the resolved loss's registry
        name so ``"mse"`` and ``"squared_error"`` (and a passed-in instance)
        digest identically.
        """
        out = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            out[f.name] = self.loss_fn.name if f.name == "loss" else value
        return out

    def ablation_name(self) -> str:
        """Short tag describing which optimizations are off (Fig. 9 labels)."""
        off = []
        if not self.use_custom_setkey:
            off.append("no-SetKey")
        if not self.use_custom_workload:
            off.append("no-IdxCompWorkload")
        if not self.use_rle:
            off.append("no-RLE")
        if not self.use_smartgd:
            off.append("no-SmartGD")
        if self.use_rle and not self.use_direct_rle:
            off.append("no-DirectSplitRLE")
        return "+".join(off) if off else "full"
