"""SmartGD: gradients from intermediate training results (Section III-B).

Computing ``g_i, h_i`` needs the current prediction ``yhat_i``.  The naive
approach re-predicts with the trained trees -- per-instance tree traversal,
which on a GPU means thread divergence and irregular memory access.  The
paper's observation: *at the end of training a tree every instance already
sits in a leaf*, so the prediction update is just "add the weight of the
leaf the instance belongs to" -- information the trainer has for free.

:class:`GradientComputer` implements both strategies behind one interface so
the Fig. 9 ablation can flip between them:

* **SmartGD** (``use_smartgd=True``): the trainer reports each finalized
  leaf's instances and value; ``yhat`` is updated with a coalesced scatter.
* **Traversal** (``use_smartgd=False``): leaf reports are ignored; at the
  next gradient computation the finished tree is walked for every instance,
  charging the irregular traffic the paper is avoiding.

Both produce bit-identical ``yhat`` (the traversal follows the same
midpoint thresholds and default directions that routed instances during
training), which ``tests/test_smartgd.py`` asserts.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..data.matrix import CSRMatrix
from ..gpusim.kernel import GpuDevice
from ..losses import Loss
from ..obs import get_registry, span
from .tree import DecisionTree
from .workspace import WorkspaceArena

__all__ = ["GradientComputer"]


class GradientComputer:
    """Maintains ``yhat`` across boosting rounds and emits ``(g, h)``.

    Parameters
    ----------
    device:
        Simulated device to charge.
    loss:
        Loss providing ``gradients`` / ``base_score``.
    y:
        Training targets.
    use_smartgd:
        Strategy switch (see module docstring).
    row_scale:
        Full-scale rows per run row; per-instance kernel work is charged in
        full-scale units (``scale=False`` launches).
    X:
        Training matrix; only required for the traversal strategy.
    workspace:
        Optional :class:`~repro.core.workspace.WorkspaceArena`; when enabled
        the per-round ``(g, h)`` arrays are reused arena views (filled via
        :meth:`repro.losses.Loss.gradients_into` when the loss supports it),
        bit-identical to the allocating path.
    """

    def __init__(
        self,
        device: GpuDevice,
        loss: Loss,
        y: np.ndarray,
        *,
        use_smartgd: bool = True,
        row_scale: float = 1.0,
        X: CSRMatrix | None = None,
        workspace: WorkspaceArena | None = None,
    ) -> None:
        self.device = device
        self.loss = loss
        self.y = np.asarray(y, dtype=np.float64)
        self.use_smartgd = use_smartgd
        self.row_scale = float(row_scale)
        self.workspace = workspace
        self._X = X
        self._dense_nan: np.ndarray | None = None
        self.yhat = np.full(self.y.size, loss.base_score(self.y), dtype=np.float64)
        self._pending: List[DecisionTree] = []
        if not use_smartgd and X is None:
            raise ValueError("traversal gradient strategy requires X")

    @property
    def n(self) -> int:
        return self.y.size

    def _full_rows(self) -> float:
        return self.n * self.row_scale

    # ------------------------------------------------------------ warm start
    def warm_start(self, trees: List[DecisionTree]) -> None:
        """Seed ``yhat`` with an existing ensemble's margins before boosting.

        The replay adds one tree at a time in boosting order -- per instance
        the identical sequence of float additions training itself performed
        (SmartGD leaf scatters and traversal flushes both add exactly the
        leaf value of the round's tree) -- so continuing to boost from here
        is bit-identical to never having stopped.  Charged to the device as
        one batched traversal over the resumed ensemble: warm-starting is
        not free, it is just far cheaper than retraining.
        """
        if not trees:
            return
        if self._X is None:
            raise ValueError("warm_start requires X")
        if self._dense_nan is None:
            self._dense_nan = self._X.to_dense(fill=np.nan).values
        with span("warm_start_replay", trees=len(trees)):
            total_depth = 0
            for tree in trees:
                self.yhat += tree.predict(self._dense_nan)
                total_depth += max(tree.max_depth(), 1)
            rows = self._full_rows()
            self.device.launch(
                "warm_start_replay",
                elements=rows * total_depth,
                flops_per_element=4.0,
                coalesced_bytes=rows * 8 * len(trees),
                irregular_bytes=rows * total_depth * 32,
                scale=False,
            )
        get_registry().counter(
            "warm_start_trees_total", "trees replayed to seed resumed boosting"
        ).inc(len(trees))

    # ------------------------------------------------------------- reporting
    def on_leaves(self, inst_ids: np.ndarray, values: np.ndarray) -> None:
        """The trainer finalized leaves holding ``inst_ids`` with per-instance
        leaf ``values`` (learning rate already applied)."""
        inst_ids = np.asarray(inst_ids, dtype=np.int64)
        if inst_ids.size == 0:
            return
        if self.use_smartgd:
            get_registry().counter(
                "smartgd_leaf_updates_total",
                "instances whose yhat was updated from an intermediate leaf",
            ).inc(inst_ids.size)
            self.yhat[inst_ids] += values
            self.device.launch(
                "smartgd_apply_leaf_weights",
                elements=inst_ids.size * self.row_scale,
                flops_per_element=1.0,
                coalesced_bytes=inst_ids.size * self.row_scale * 12,
                irregular_bytes=inst_ids.size * self.row_scale * 8,
                scale=False,
            )
        # traversal mode recomputes from the tree later; nothing to do here

    def on_tree_finished(self, tree: DecisionTree) -> None:
        """A boosting round completed."""
        if not self.use_smartgd:
            self._pending.append(tree)

    # ----------------------------------------------------------- computation
    def _flush_traversals(self) -> None:
        if not self._pending:
            return
        with span("traversal_flush", trees=len(self._pending)):
            self._flush_traversals_inner()

    def _flush_traversals_inner(self) -> None:
        for tree in self._pending:
            if self._dense_nan is None:
                assert self._X is not None
                self._dense_nan = self._X.to_dense(fill=np.nan).values
            self.yhat += tree.predict(self._dense_nan)
            depth = max(tree.max_depth(), 1)
            rows = self._full_rows()
            # per level: fetch node record (~24 B) + attribute lookup (~8 B),
            # all data-dependent, and neighbouring threads take different
            # branches -- "tree traversal results in thread branch divergence
            # and irregular memory access" -- so a warp serializes over its
            # members' distinct paths (the divergence factor below)
            divergence = 8.0
            self.device.launch(
                "predict_by_traversal",
                elements=rows * depth,
                flops_per_element=4.0 * divergence,
                coalesced_bytes=rows * 8,
                irregular_bytes=rows * depth * 32 * divergence,
                scale=False,
            )
        self._pending.clear()

    def apply_tree_to(self, tree: DecisionTree, rows: np.ndarray) -> None:
        """Add ``tree``'s predictions to ``yhat`` for out-of-sample rows.

        Stochastic GBM: instances excluded from a round never land in a
        leaf during training, so SmartGD cannot place them -- they are
        routed by traversal instead (and charged as such).  No-op in
        traversal mode, where the whole tree is replayed anyway.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if not self.use_smartgd or rows.size == 0:
            return
        if self._X is None:
            raise ValueError("apply_tree_to requires X")
        if self._dense_nan is None:
            self._dense_nan = self._X.to_dense(fill=np.nan).values
        self.yhat[rows] += tree.predict(self._dense_nan[rows])
        depth = max(tree.max_depth(), 1)
        count = rows.size * self.row_scale
        self.device.launch(
            "predict_out_of_sample_rows",
            elements=count * depth,
            flops_per_element=4.0,
            coalesced_bytes=count * 8,
            irregular_bytes=count * depth * 32,
            scale=False,
        )

    def predictions(self) -> np.ndarray:
        """Current ensemble predictions (flushes pending traversals)."""
        self._flush_traversals()
        return self.yhat.copy()

    def compute(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(g, h)`` for the next boosting round (Eq. (1))."""
        self._flush_traversals()
        ws = self.workspace
        with span("loss_gradients", strategy="smartgd" if self.use_smartgd else "traversal"):
            if ws is not None and ws.enabled:
                g = ws.buf("grad/g", self.n, np.float64)
                h = ws.buf("grad/h", self.n, np.float64)
                if not self.loss.gradients_into(self.y, self.yhat, g, h):
                    g_new, h_new = self.loss.gradients(self.y, self.yhat)
                    np.copyto(g, g_new)
                    np.copyto(h, h_new)
            else:
                g, h = self.loss.gradients(self.y, self.yhat)
        rows = self._full_rows()
        self.device.launch(
            "compute_gradients",
            elements=rows,
            flops_per_element=4.0,
            coalesced_bytes=rows * (8 + 8 + 8 + 8),
            scale=False,
        )
        return g, h
