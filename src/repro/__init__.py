"""repro -- reproduction of "Efficient Gradient Boosted Decision Tree
Training on GPUs" (Wen, He, Ramamohanarao, Lu, Shi; IPDPS 2018).

Quickstart::

    from repro import GradientBoostedTrees, GBDTParams, make_dataset

    ds = make_dataset("covtype")
    model = GradientBoostedTrees(GBDTParams(n_trees=10)).fit(ds.X, ds.y)
    yhat = model.predict(ds.X_test)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .approx import HistogramGBDTTrainer
from .core import (
    BACKENDS,
    DecisionTree,
    GBDTModel,
    GBDTParams,
    GPUGBDTTrainer,
    GradientBoostedTrees,
    as_csr,
    feature_importance,
    models_equal,
    predict_on_device,
    trees_equal,
)
from .data import (
    analyze,
    TABLE2_NAMES,
    CSCMatrix,
    CSRMatrix,
    Dataset,
    DenseMatrix,
    load_libsvm,
    make_dataset,
    table1_example,
)
from .dist import DistributedHistTrainer, FaultPlan, LinkSpec
from .gpusim import (
    TESLA_K20,
    TESLA_P100,
    TITAN_X_PASCAL,
    XEON_E5_2640V4_X2,
    DeviceOutOfMemory,
    GpuDevice,
)
from .losses import CustomLoss, HuberLoss, LogisticLoss, Loss, PoissonLoss, SquaredErrorLoss, get_loss
from .metrics import accuracy, error_rate, mean_abs_error, mse, rmse
from .obs import (
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
    span,
    traced,
    use_registry,
    use_tracer,
)
from .pipeline import (
    CheckpointStore,
    ContinualController,
    DriftMonitor,
    RetrainPolicy,
)
from .serve import (
    BatchPolicy,
    FlatEnsemble,
    MicroBatcher,
    ModelRegistry,
    ServingStats,
)

__version__ = "1.0.0"

__all__ = [
    "BACKENDS",
    "DecisionTree",
    "GBDTModel",
    "GBDTParams",
    "GPUGBDTTrainer",
    "GradientBoostedTrees",
    "as_csr",
    "feature_importance",
    "models_equal",
    "predict_on_device",
    "trees_equal",
    "TABLE2_NAMES",
    "analyze",
    "CSCMatrix",
    "CSRMatrix",
    "Dataset",
    "DenseMatrix",
    "load_libsvm",
    "make_dataset",
    "table1_example",
    "DistributedHistTrainer",
    "FaultPlan",
    "LinkSpec",
    "TESLA_K20",
    "TESLA_P100",
    "TITAN_X_PASCAL",
    "XEON_E5_2640V4_X2",
    "DeviceOutOfMemory",
    "GpuDevice",
    "CustomLoss",
    "HuberLoss",
    "PoissonLoss",
    "HistogramGBDTTrainer",
    "LogisticLoss",
    "Loss",
    "SquaredErrorLoss",
    "get_loss",
    "accuracy",
    "error_rate",
    "mean_abs_error",
    "mse",
    "rmse",
    "BatchPolicy",
    "FlatEnsemble",
    "MicroBatcher",
    "ModelRegistry",
    "ServingStats",
    "CheckpointStore",
    "ContinualController",
    "DriftMonitor",
    "RetrainPolicy",
    "MetricsRegistry",
    "Tracer",
    "get_registry",
    "get_tracer",
    "span",
    "traced",
    "use_registry",
    "use_tracer",
    "__version__",
]
