"""Performance-price accounting (Section IV-D, Fig. 10a).

The paper defines the performance-price ratio as ``1 / (time x price)`` and
normalizes GPU-GBDT's ratio by the CPU's (xgbst-40 on the two Xeons), using
the 2017 street prices it quotes: $1,200 for the Titan X and $1,878 for the
CPU pair.
"""

from __future__ import annotations

from ..gpusim.device import TITAN_X_PASCAL, XEON_E5_2640V4_X2, CpuSpec, DeviceSpec

__all__ = ["performance_price_ratio", "normalized_ratio"]


def performance_price_ratio(seconds: float, price_usd: float) -> float:
    """``1 / (time x price)`` -- bigger is better."""
    if seconds <= 0 or price_usd <= 0:
        raise ValueError("time and price must be positive")
    return 1.0 / (seconds * price_usd)


def normalized_ratio(
    gpu_seconds: float,
    cpu_seconds: float,
    gpu: DeviceSpec = TITAN_X_PASCAL,
    cpu: CpuSpec = XEON_E5_2640V4_X2,
) -> float:
    """GPU performance-price ratio divided by the CPU's (Fig. 10a bars).

    A value of 2 means each dollar spent on the GPU buys twice the training
    throughput of a dollar spent on the CPUs.
    """
    g = performance_price_ratio(gpu_seconds, gpu.price_usd)
    c = performance_price_ratio(cpu_seconds, cpu.price_usd)
    return g / c
