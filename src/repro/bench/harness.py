"""Experiment runner: one dataset x one system -> modeled seconds + RMSE.

The four systems of Table II:

=============  ==============================================================
``ours``       GPU-GBDT on the simulated Titan X (all optimizations on)
``xgbst-1``    sequential XGBoost -- functional run replayed through the CPU
               model at 1 thread
``xgbst-40``   same ledger at 40 threads
``xgbst-gpu``  dense-representation GPU baseline (may OOM at full scale)
=============  ==============================================================

Each run wires the dataset's full-scale extrapolation factors into the
simulated device so the modeled seconds and memory refer to the paper's
dataset sizes while the functional training runs at the reduced scale
(DESIGN.md Section 2).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..core.booster_model import GBDTModel
from ..core.params import GBDTParams
from ..core.trainer import GPUGBDTTrainer
from ..cpu.gpu_xgboost import DenseGpuXgboostTrainer
from ..cpu.parallel_model import XGBoostCpuRunner
from ..data.datasets import Dataset
from ..gpusim.costmodel import phase_times
from ..gpusim.device import TITAN_X_PASCAL, XEON_E5_2640V4_X2, CpuSpec, DeviceSpec
from ..gpusim.kernel import GpuDevice
from ..gpusim.memory import DeviceOutOfMemory
from ..metrics import rmse

__all__ = ["RunResult", "run_gpu_gbdt", "run_cpu_baseline", "run_xgb_gpu", "dense_scales"]


@dataclasses.dataclass
class RunResult:
    """Outcome of one system on one dataset."""

    system: str
    dataset: str
    seconds: Optional[float]  # None = did not finish (OOM)
    train_rmse: Optional[float]
    status: str  # "ok" | "oom"
    model: Optional[GBDTModel] = None
    device: Optional[GpuDevice] = None
    phase_seconds: Optional[dict] = None
    notes: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def run_gpu_gbdt(
    ds: Dataset,
    params: GBDTParams | None = None,
    spec: DeviceSpec = TITAN_X_PASCAL,
    init_model=None,
) -> RunResult:
    """Train GPU-GBDT; modeled seconds at the dataset's full scale.

    ``init_model`` warm-starts boosting from an existing ensemble (the
    continual-training refresh path), charging only the replay plus the new
    rounds."""
    p = params if params is not None else GBDTParams()
    device = GpuDevice(spec, work_scale=ds.work_scale, seg_scale=ds.seg_scale)
    trainer = GPUGBDTTrainer(p, device, row_scale=ds.row_scale)
    try:
        model = trainer.fit(ds.X, ds.y, init_model=init_model)
    except DeviceOutOfMemory as exc:
        return RunResult(
            system="ours", dataset=ds.name, seconds=None, train_rmse=None,
            status="oom", device=device, notes=str(exc),
        )
    return RunResult(
        system="ours",
        dataset=ds.name,
        seconds=device.elapsed_seconds(),
        train_rmse=rmse(ds.y, model.predict(ds.X)),
        status="ok",
        model=model,
        device=device,
        phase_seconds=phase_times(spec, device.ledger),
        notes=f"rle={trainer.report.used_rle}" if trainer.report else "",
    )


def run_cpu_baseline(
    ds: Dataset,
    params: GBDTParams | None = None,
    spec: CpuSpec = XEON_E5_2640V4_X2,
) -> tuple[RunResult, RunResult, XGBoostCpuRunner]:
    """Train the functional CPU-profile run once; return (xgbst-1, xgbst-40)."""
    p = params if params is not None else GBDTParams()
    runner = XGBoostCpuRunner(
        params=p,
        spec=spec,
        work_scale=ds.work_scale,
        seg_scale=ds.seg_scale,
        row_scale=ds.row_scale,
    )
    model = runner.fit(ds.X, ds.y)
    err = rmse(ds.y, model.predict(ds.X))
    one = RunResult(
        system="xgbst-1", dataset=ds.name, seconds=runner.modeled_seconds(1),
        train_rmse=err, status="ok", model=model,
        phase_seconds=runner.phase_seconds(1),
    )
    forty = RunResult(
        system="xgbst-40", dataset=ds.name, seconds=runner.modeled_seconds(40),
        train_rmse=err, status="ok", model=model,
        phase_seconds=runner.phase_seconds(40),
    )
    return one, forty, runner


def dense_scales(ds: Dataset) -> tuple[float, float]:
    """(work_scale, seg_scale) for the dense baseline: density plays no role
    once every cell is materialized."""
    cells_run = ds.X.n_rows * ds.X.n_cols
    cells_full = ds.spec.n_full * ds.spec.d_full
    return max(1.0, cells_full / max(cells_run, 1)), max(
        1.0, ds.spec.d_full / max(ds.X.n_cols, 1)
    )


def run_xgb_gpu(
    ds: Dataset,
    params: GBDTParams | None = None,
    spec: DeviceSpec = TITAN_X_PASCAL,
) -> RunResult:
    """Train the dense GPU baseline; OOM at full scale becomes status='oom'."""
    p = params if params is not None else GBDTParams()
    work_scale, seg_scale = dense_scales(ds)
    device = GpuDevice(spec, work_scale=work_scale, seg_scale=seg_scale)
    trainer = DenseGpuXgboostTrainer(p, device, row_scale=ds.row_scale)
    try:
        model = trainer.fit(ds.X, ds.y)
    except DeviceOutOfMemory as exc:
        return RunResult(
            system="xgbst-gpu", dataset=ds.name, seconds=None, train_rmse=None,
            status="oom", device=device, notes=str(exc),
        )
    # the dense model was trained on zero-filled data; evaluate accordingly
    dense_eval = ds.X.to_dense(fill=0.0)
    return RunResult(
        system="xgbst-gpu",
        dataset=ds.name,
        seconds=device.elapsed_seconds(),
        train_rmse=rmse(ds.y, model.predict(dense_eval)),
        status="ok",
        model=model,
        device=device,
        phase_seconds=phase_times(spec, device.ledger),
    )
