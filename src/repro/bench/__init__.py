"""Experiment harness: one driver per table/figure of the paper, plus
pricing and report formatting."""

from .experiments import (
    ABLATIONS,
    AblationResult,
    CaseStudyResult,
    Fig10bResult,
    SeriesResult,
    Table2Result,
    load_table2_datasets,
    run_case_studies,
    run_fig8a,
    run_fig8b,
    run_fig9,
    run_fig10a,
    run_fig10b,
    run_device_sweep,
    run_table2,
)
from .harness import RunResult, dense_scales, run_cpu_baseline, run_gpu_gbdt, run_xgb_gpu
from .pricing import normalized_ratio, performance_price_ratio
from .regress import compare_results, load_results, save_results, to_payload
from .report import PAPER_BANDS, format_series, format_table

__all__ = [
    "ABLATIONS",
    "AblationResult",
    "CaseStudyResult",
    "Fig10bResult",
    "SeriesResult",
    "Table2Result",
    "load_table2_datasets",
    "run_case_studies",
    "run_fig8a",
    "run_fig8b",
    "run_fig9",
    "run_fig10a",
    "run_fig10b",
    "run_device_sweep",
    "run_table2",
    "RunResult",
    "dense_scales",
    "run_cpu_baseline",
    "run_gpu_gbdt",
    "run_xgb_gpu",
    "normalized_ratio",
    "performance_price_ratio",
    "compare_results",
    "load_results",
    "save_results",
    "to_payload",
    "PAPER_BANDS",
    "format_series",
    "format_table",
]
