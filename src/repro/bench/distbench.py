"""Distributed-training benchmark: scaling curve + layout comm comparison.

Two experiments on one fixed synthetic workload:

* **Scaling curve** -- :class:`~repro.dist.DistributedHistTrainer` at
  W ∈ {1, 2, 4, 8} workers (sim backend).  Reports each run's modeled
  makespan (slowest rank's device), speedup over W=1, collective payload
  bytes and ring steps -- and asserts every W produces the byte-identical
  serialized model to the single-process histogram trainer (a benchmark
  must not report a speedup obtained by changing the trees).

* **Comm-volume comparison** -- data-parallel (row shards, allreduced
  histograms: traffic is O(bins), independent of row count) versus the
  attribute-parallel :class:`~repro.ext.multigpu.MultiGpuGBDTTrainer`
  (per-tree gradient broadcast + per-level side arrays: traffic is O(rows)).
  The crossover this table shows is the reason production systems shard
  rows, not columns, at scale.

* **Subtraction comm volume** -- the data-parallel allreduce payload with
  sibling histogram subtraction off vs. on: reducing only the smaller
  child of each sibling pair roughly halves the histogram traffic at every
  level past the root, byte-identically (``tests/test_dist_trainer.py``
  pins the exact analytic saving).

Run via pytest (``benchmarks/bench_dist.py``) or directly::

    PYTHONPATH=src python -m repro.bench.distbench

Results land as ``BENCH_dist.json`` in the standard bench output location
(repo root, or ``$BENCH_METRICS_DIR`` -- see :mod:`repro.bench.output`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from ..approx.histogram_trainer import HistogramGBDTTrainer
from ..core.params import GBDTParams
from ..dist import DistributedHistTrainer
from ..ext.multigpu import MultiGpuGBDTTrainer
from ..gpusim.timeline import profile
from .hotpath import make_hotpath_data

__all__ = [
    "DistBenchResult",
    "LayoutRow",
    "ScalingRow",
    "SubtractionRow",
    "run_dist_bench",
    "write_dist_json",
]

#: fixed workload: rows x cols, trees, depth (quick shrinks rows and W set)
_FULL = dict(n_rows=6000, n_cols=12, n_trees=6, max_depth=5)
_QUICK = dict(n_rows=1200, n_cols=8, n_trees=3, max_depth=4)
_MAX_BINS = 32

#: scale extrapolation (see repro.gpusim.kernel): the functional run uses the
#: rows above, but compute/traffic cost is declared at rows x _SCALE -- the
#: regime the paper targets.  Histogram allreduce volume does NOT grow with
#: _SCALE (it is O(bins) per level, the structural advantage of
#: data-parallel), while per-row compute and the attribute-parallel layout's
#: row-linear broadcasts do.
_SCALE = 128.0


@dataclasses.dataclass
class ScalingRow:
    """One worker count of the data-parallel scaling curve."""

    workers: int
    modeled_s: float
    speedup: float
    comm_mb: float
    comm_steps: int
    identical_model: bool


@dataclasses.dataclass
class LayoutRow:
    """Comm volume of one parallel layout at one device count."""

    layout: str
    devices: int
    comm_mb: float
    modeled_s: float


@dataclasses.dataclass
class SubtractionRow:
    """Collective payload with sibling histogram subtraction off vs. on.

    With subtraction only the smaller child of each sibling pair is
    allreduced (the sibling is derived locally as ``parent - built``), so
    every level past the root ships half its histogram tables.  The models
    must stay byte-identical -- the saving may not come from changing the
    trees."""

    workers: int
    comm_mb_full: float
    comm_mb_subtract: float
    ratio: float
    identical_model: bool


@dataclasses.dataclass
class DistBenchResult:
    """Scaling curve + layout comparison, with the rendered tables."""

    scaling: List[ScalingRow]
    layouts: List[LayoutRow]
    n_rows: int
    n_cols: int
    n_trees: int
    #: modeled seconds per training phase on the largest scaling run's
    #: slowest rank (regression attribution for the run-store gate)
    phases: Dict[str, float] = dataclasses.field(default_factory=dict)
    subtraction: List[SubtractionRow] = dataclasses.field(default_factory=list)

    @property
    def text(self) -> str:
        hdr = f"{'workers':>8} {'modeled (ms)':>13} {'speedup':>8} {'comm (MB)':>10} {'steps':>7}  identical"
        lines = [
            f"data-parallel scaling -- {self.n_rows} rows x {self.n_cols} attrs, "
            f"{self.n_trees} trees (sim backend)",
            hdr,
            "-" * len(hdr),
        ]
        for r in self.scaling:
            lines.append(
                f"{r.workers:>8} {r.modeled_s*1e3:>13.3f} {r.speedup:>7.2f}x"
                f" {r.comm_mb:>10.3f} {r.comm_steps:>7}  {'yes' if r.identical_model else 'NO'}"
            )
        lines.append("")
        hdr2 = f"{'layout':>20} {'devices':>8} {'comm (MB)':>10} {'modeled (ms)':>13}"
        lines += [
            "comm volume by parallel layout (same workload)", hdr2, "-" * len(hdr2)
        ]
        for r in self.layouts:
            lines.append(
                f"{r.layout:>20} {r.devices:>8} {r.comm_mb:>10.3f} {r.modeled_s*1e3:>13.3f}"
            )
        if self.subtraction:
            lines.append("")
            hdr3 = (
                f"{'workers':>8} {'full (MB)':>10} {'subtract (MB)':>14}"
                f" {'ratio':>7}  identical"
            )
            lines += [
                "histogram allreduce volume -- sibling subtraction off vs. on",
                hdr3,
                "-" * len(hdr3),
            ]
            for s in self.subtraction:
                lines.append(
                    f"{s.workers:>8} {s.comm_mb_full:>10.3f}"
                    f" {s.comm_mb_subtract:>14.3f} {s.ratio:>7.3f}"
                    f"  {'yes' if s.identical_model else 'NO'}"
                )
        return "\n".join(lines)


def run_dist_bench(quick: bool = False) -> DistBenchResult:
    """Run both experiments; see the module docstring."""
    cfg = _QUICK if quick else _FULL
    X, y = make_hotpath_data(cfg["n_rows"], cfg["n_cols"], seed=5)
    params = GBDTParams(
        n_trees=cfg["n_trees"], max_depth=cfg["max_depth"], seed=7
    )

    single = HistogramGBDTTrainer(params, max_bins=_MAX_BINS)
    reference = single.fit(X, y).to_json()

    worker_counts = (1, 2) if quick else (1, 2, 4, 8)
    scaling: List[ScalingRow] = []
    base_s = None
    phases: Dict[str, float] = {}
    for w in worker_counts:
        trainer = DistributedHistTrainer(
            params, n_workers=w, max_bins=_MAX_BINS, backend="sim",
            work_scale=_SCALE, row_scale=_SCALE,
        )
        model = trainer.fit(X, y)
        modeled = trainer.elapsed_seconds()
        if base_s is None:
            base_s = modeled
        scaling.append(
            ScalingRow(
                workers=w,
                modeled_s=modeled,
                speedup=base_s / modeled if modeled > 0 else float("inf"),
                comm_mb=trainer.comm_bytes() / 1e6,
                comm_steps=trainer.comm_steps(),
                identical_model=model.to_json() == reference,
            )
        )
        # phase attribution from the largest run's slowest (critical) rank
        slowest = max(trainer.devices_, key=lambda d: d.elapsed_seconds())
        phases = {s.phase: s.seconds for s in profile(slowest)}

    layouts: List[LayoutRow] = []
    k = 2 if quick else 4
    data_par = next(r for r in scaling if r.workers == k)
    layouts.append(
        LayoutRow(
            layout="data-parallel",
            devices=k,
            comm_mb=data_par.comm_mb,
            modeled_s=data_par.modeled_s,
        )
    )
    mg = MultiGpuGBDTTrainer(
        params, n_devices=k, work_scale=_SCALE, row_scale=_SCALE
    )
    mg.fit(X, y)
    mg_bytes = sum(
        t.nbytes for dev in mg.devices for t in dev.ledger.transfers
        if t.name in (
            "broadcast_gradients", "allreduce_best_splits", "broadcast_side_array"
        )
    )
    layouts.append(
        LayoutRow(
            layout="attribute-parallel",
            devices=k,
            comm_mb=mg_bytes / 1e6,
            modeled_s=mg.elapsed_seconds(),
        )
    )

    subtraction: List[SubtractionRow] = []
    for w in ((2,) if quick else (2, 4)):
        volumes = {}
        models = {}
        for use_sub in (False, True):
            t = DistributedHistTrainer(
                params, n_workers=w, max_bins=_MAX_BINS, backend="sim",
                use_subtraction=use_sub,
            )
            models[use_sub] = t.fit(X, y)
            volumes[use_sub] = t.comm_bytes()
        subtraction.append(
            SubtractionRow(
                workers=w,
                comm_mb_full=volumes[False] / 1e6,
                comm_mb_subtract=volumes[True] / 1e6,
                ratio=volumes[True] / volumes[False],
                identical_model=(
                    models[True].to_json() == models[False].to_json()
                    == reference
                ),
            )
        )

    return DistBenchResult(
        scaling=scaling,
        layouts=layouts,
        subtraction=subtraction,
        n_rows=cfg["n_rows"],
        n_cols=cfg["n_cols"],
        n_trees=cfg["n_trees"],
        phases=phases,
    )


def write_dist_json(result: DistBenchResult, path=None):
    """Write ``BENCH_dist.json`` (standard location unless ``path`` given)."""
    from .output import write_bench_json
    from .regress import to_payload

    payload: Dict = to_payload(dataclasses.asdict(result))
    if path is None:
        return write_bench_json("dist", payload)
    import json
    from pathlib import Path

    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8")
    return p


def main(argv: List[str] | None = None) -> int:
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="smoke-scale workload")
    ap.add_argument(
        "--out", default=None, help="output path (default: BENCH_dist.json at repo root)"
    )
    args = ap.parse_args(argv)
    result = run_dist_bench(quick=args.quick)
    print(result.text)
    print(f"[-> {write_dist_json(result, args.out)}]")
    if not all(r.identical_model for r in result.scaling):
        print("ERROR: sharding changed the trees")
        return 1
    if not all(s.identical_model for s in result.subtraction):
        print("ERROR: histogram subtraction changed the trees")
        return 1
    if not all(s.ratio < 1.0 for s in result.subtraction):
        print("ERROR: subtraction did not shrink the collective payload")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
