"""ASCII table / series formatting for the experiment harness.

Every experiment prints rows in the paper's shape next to the paper's
reported bands so EXPERIMENTS.md can record paper-vs-measured directly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "fmt_cell", "PAPER_BANDS"]

#: The paper's headline quantitative claims, used by the calibration test
#: and echoed in the reports.  (Table II's per-cell numbers are partially
#: corrupted in the available source text; the prose bands below are the
#: reliable ground truth.)
PAPER_BANDS = {
    "speedup_vs_xgbst1": (10.0, 20.0),  # "often 10 to 20 times faster"
    "speedup_vs_xgbst40": (1.5, 2.0),  # "1.5 to 2 times speedup"
    "perf_price_vs_cpu": (1.5, 3.0),  # "2 to 3 times" (abstract: 1.5-3)
    "setkey_gain_highdim": (0.10, 0.20),  # "10% to 20% ... log1p and news20"
    "split_share_gpu": 0.95,  # "around 95% of that for GPU-GBDT"
    "split_share_cpu": 0.75,  # "around 75% of total training time for XGBoost"
    "cpu40_vs_cpu1": (5.0, 12.0),  # implied by Table II's legible cells
}


def fmt_cell(v, width: int = 10) -> str:
    """Format one value: floats to 3 significant-ish digits, None as OOM."""
    if v is None:
        s = "OOM"
    elif isinstance(v, float):
        if v == 0:
            s = "0"
        elif abs(v) >= 1000:
            s = f"{v:,.0f}"
        elif abs(v) >= 10:
            s = f"{v:.1f}"
        else:
            s = f"{v:.3f}"
    else:
        s = str(v)
    return s.rjust(width)


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Fixed-width ASCII table."""
    rows = [list(r) for r in rows]
    widths = [max(len(str(h)), 10) for h in headers]
    for r in rows:
        for i, v in enumerate(r):
            widths[i] = max(widths[i], len(fmt_cell(v, 0).strip()))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(fmt_cell(v, w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str, xs: Sequence, series: dict[str, Sequence[float]], title: str = ""
) -> str:
    """A figure as a table: one x column plus one column per line."""
    headers = [x_label] + list(series)
    rows = [[x] + [series[k][i] for k in series] for i, x in enumerate(xs)]
    return format_table(headers, rows, title=title)
