"""One entry point per table/figure of the paper's Section IV.

Each ``run_*`` function returns a result object whose ``text`` property
prints the same rows/series the paper reports, plus the paper's bands for
comparison.  ``quick=True`` shrinks datasets/tree counts for smoke tests;
the benchmark suite and the CLI run the full (default) configuration.

Experiment index (see DESIGN.md Section 4):

==========  ===========================================================
table2      overall time/speedup/RMSE for the 8 datasets, 4 systems
fig8a       speedup over xgbst-40 vs. tree depth (2..8)
fig8b       speedup over xgbst-40 vs. number of trees (10..80)
fig9        impact of disabling each individual optimization
fig10a      performance-price ratio normalized to the CPUs
fig10b      test error against training-time budget (susy)
cases       Section IV-E case studies (i)-(iii)
==========  ===========================================================
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

import numpy as np

from ..core.params import GBDTParams
from ..data.datasets import TABLE2_NAMES, Dataset, make_dataset
from ..gpusim.device import TESLA_K20, TESLA_P100, TITAN_X_PASCAL, XEON_E5_2640V4_X2
from ..metrics import error_rate
from .harness import run_cpu_baseline, run_gpu_gbdt, run_xgb_gpu
from .pricing import normalized_ratio
from .report import PAPER_BANDS, format_series, format_table

__all__ = [
    "load_table2_datasets",
    "Table2Result",
    "run_table2",
    "SeriesResult",
    "run_fig8a",
    "run_fig8b",
    "AblationResult",
    "run_fig9",
    "run_fig10a",
    "Fig10bResult",
    "run_fig10b",
    "CaseStudyResult",
    "run_case_studies",
    "run_device_sweep",
    "ApproxResult",
    "run_exact_vs_approx",
    "run_crossover",
    "run_multigpu_scaling",
    "run_thread_sweep",
    "ServingBenchResult",
    "run_serving_bench",
    "PipelineBenchResult",
    "run_pipeline_bench",
]

#: datasets whose speedup series the sensitivity studies track (a dense, a
#: compressible and a high-dimensional representative keep runtime sane)
SENSITIVITY_DATASETS = ("covtype", "susy", "news20")


def load_table2_datasets(
    quick: bool = False, names: Sequence[str] = TABLE2_NAMES, seed: int = 7
) -> List[Dataset]:
    """Generate the Table-II dataset stand-ins."""
    if quick:
        return [
            make_dataset(n, run_rows=300, run_cols=60, seed=seed) for n in names
        ]
    return [make_dataset(n, seed=seed) for n in names]


def _params(quick: bool, **overrides) -> GBDTParams:
    base = GBDTParams(n_trees=8 if quick else 40, max_depth=4 if quick else 6)
    return base.replace(**overrides) if overrides else base


# =========================================================== Table II =======
@dataclasses.dataclass
class Table2Result:
    rows: List[Dict]

    @property
    def text(self) -> str:
        headers = [
            "dataset", "cardinality", "dimension", "ours(s)", "xgbst-1(s)",
            "xgbst-40(s)", "xgbst-gpu(s)", "vs-1", "vs-40",
            "rmse-ours", "rmse-x40", "rmse-xgpu",
        ]
        body = [
            [
                r["dataset"], r["cardinality"], r["dimension"], r["ours"],
                r["xgbst1"], r["xgbst40"], r["xgbstgpu"], r["speedup1"],
                r["speedup40"], r["rmse_ours"], r["rmse_x40"], r["rmse_xgpu"],
            ]
            for r in self.rows
        ]
        lo1, hi1 = PAPER_BANDS["speedup_vs_xgbst1"]
        lo40, hi40 = PAPER_BANDS["speedup_vs_xgbst40"]
        note = (
            f"paper bands: vs-1 in [{lo1:.0f}, {hi1:.0f}] (often), "
            f"vs-40 in [{lo40:.1f}, {hi40:.1f}]; xgbst-gpu OOMs on the "
            "large sparse datasets and drifts in RMSE on sparse data"
        )
        return format_table(headers, body, title="Table II -- overall comparison") + "\n" + note

    def row(self, dataset: str) -> Dict:
        """The row for one dataset (KeyError if absent)."""
        for r in self.rows:
            if r["dataset"] == dataset:
                return r
        raise KeyError(dataset)


#: memo for default-parameter Table-II runs (fig10a reuses table2's rows;
#: results are deterministic, so caching only saves wall time)
_TABLE2_CACHE: Dict[tuple, "Table2Result"] = {}


def run_table2(
    quick: bool = False,
    names: Sequence[str] = TABLE2_NAMES,
    params: GBDTParams | None = None,
) -> Table2Result:
    """Regenerate Table II: 8 datasets x 4 systems."""
    cache_key = (quick, tuple(names)) if params is None else None
    if cache_key is not None and cache_key in _TABLE2_CACHE:
        return _TABLE2_CACHE[cache_key]
    p = params if params is not None else _params(quick)
    rows: List[Dict] = []
    for ds in load_table2_datasets(quick, names):
        ours = run_gpu_gbdt(ds, p)
        one, forty, _ = run_cpu_baseline(ds, p)
        xgpu = run_xgb_gpu(ds, p)
        rows.append(
            {
                "dataset": ds.name,
                "cardinality": ds.spec.n_full,
                "dimension": ds.spec.d_full,
                "ours": ours.seconds,
                "xgbst1": one.seconds,
                "xgbst40": forty.seconds,
                "xgbstgpu": xgpu.seconds,
                "speedup1": (one.seconds / ours.seconds) if ours.ok else None,
                "speedup40": (forty.seconds / ours.seconds) if ours.ok else None,
                "rmse_ours": ours.train_rmse,
                "rmse_x40": forty.train_rmse,
                "rmse_xgpu": xgpu.train_rmse,
                "ours_result": ours,
                "xgbstgpu_status": xgpu.status,
            }
        )
    result = Table2Result(rows=rows)
    if cache_key is not None:
        _TABLE2_CACHE[cache_key] = result
    return result


# ===================================================== Fig. 8a / 8b =========
@dataclasses.dataclass
class SeriesResult:
    x_label: str
    xs: List
    series: Dict[str, List[float]]
    title: str
    note: str = ""

    @property
    def text(self) -> str:
        body = format_series(self.x_label, self.xs, self.series, title=self.title)
        return f"{body}\n{self.note}" if self.note else body


def _fig8_note() -> str:
    lo, hi = PAPER_BANDS["speedup_vs_xgbst40"]
    return f"paper: consistently above 1, roughly [{lo:.1f}, {hi:.1f}] at depth 6"


def _speedup_over_xgbst40(ds: Dataset, p: GBDTParams) -> float:
    ours = run_gpu_gbdt(ds, p)
    _, forty, _ = run_cpu_baseline(ds, p)
    if not ours.ok:
        raise RuntimeError(f"GPU-GBDT OOM on {ds.name}")
    return forty.seconds / ours.seconds


def run_fig8a(
    quick: bool = False,
    depths: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    names: Sequence[str] = SENSITIVITY_DATASETS,
) -> SeriesResult:
    """Fig. 8a: speedup over xgbst-40 while varying tree depth (T = 40)."""
    if quick:
        depths = (2, 4, 6)
    datasets = load_table2_datasets(quick, names)
    series: Dict[str, List[float]] = {ds.name: [] for ds in datasets}
    for depth in depths:
        p = _params(quick, max_depth=depth)
        for ds in datasets:
            series[ds.name].append(_speedup_over_xgbst40(ds, p))
    return SeriesResult(
        x_label="depth", xs=list(depths), series=series,
        title="Fig. 8a -- speedup of GPU-GBDT over xgbst-40 vs. tree depth",
        note=_fig8_note() + "; best at depth 2, then relatively stable",
    )


def run_fig8b(
    quick: bool = False,
    tree_counts: Sequence[int] = (10, 20, 40, 80),
    names: Sequence[str] = SENSITIVITY_DATASETS,
) -> SeriesResult:
    """Fig. 8b: speedup over xgbst-40 while varying #trees (depth = 6)."""
    if quick:
        tree_counts = (4, 8)
    datasets = load_table2_datasets(quick, names)
    series: Dict[str, List[float]] = {ds.name: [] for ds in datasets}
    for t in tree_counts:
        p = _params(quick, n_trees=t)
        for ds in datasets:
            series[ds.name].append(_speedup_over_xgbst40(ds, p))
    return SeriesResult(
        x_label="trees", xs=list(tree_counts), series=series,
        title="Fig. 8b -- speedup of GPU-GBDT over xgbst-40 vs. number of trees",
        note=_fig8_note() + "; rather stable as the number of trees increases",
    )


# ============================================================ Fig. 9 ========
#: ablation label -> GBDTParams override switching that optimization off
ABLATIONS: Dict[str, Dict] = {
    "Customized SetKey": {"use_custom_setkey": False},
    "Customized IdxComp Workload": {"use_custom_workload": False},
    "RLE": {"use_rle": False},
    "SmartGD": {"use_smartgd": False},
    "Directly Split RLE": {"use_direct_rle": False},
}


@dataclasses.dataclass
class AblationResult:
    datasets: List[str]
    full_seconds: Dict[str, float]
    ablated_seconds: Dict[str, Dict[str, float]]  # ablation -> dataset -> s

    @property
    def slowdowns(self) -> Dict[str, Dict[str, float]]:
        """ablation -> dataset -> relative slowdown when disabled."""
        out: Dict[str, Dict[str, float]] = {}
        for ab, per_ds in self.ablated_seconds.items():
            out[ab] = {
                d: per_ds[d] / self.full_seconds[d] - 1.0 for d in self.datasets
            }
        return out

    @property
    def text(self) -> str:
        headers = ["optimization disabled"] + list(self.datasets)
        rows = []
        slow = self.slowdowns
        for ab in self.ablated_seconds:
            rows.append([ab] + [f"+{slow[ab][d] * 100:.0f}%" for d in self.datasets])
        return (
            format_table(headers, rows, title="Fig. 9 -- execution-time increase when disabling each optimization")
            + "\npaper: SmartGD and Directly-Split-RLE have the largest impact; "
            "Customized SetKey gives 10-20% on high-dimensional datasets"
        )


def run_fig9(
    quick: bool = False, names: Sequence[str] = TABLE2_NAMES
) -> AblationResult:
    """Fig. 9: switch each optimization off and measure the slowdown."""
    if quick:
        names = SENSITIVITY_DATASETS
    # RLE ablations only speak on compressible data; force RLE on so the
    # Directly-Split-RLE switch is exercised everywhere it applies
    p_full = _params(quick)
    datasets = load_table2_datasets(quick, names)
    full_seconds: Dict[str, float] = {}
    for ds in datasets:
        full_seconds[ds.name] = run_gpu_gbdt(ds, p_full).seconds
    ablated: Dict[str, Dict[str, float]] = {}
    for label, overrides in ABLATIONS.items():
        per_ds: Dict[str, float] = {}
        for ds in datasets:
            res = run_gpu_gbdt(ds, p_full.replace(**overrides))
            per_ds[ds.name] = res.seconds
        ablated[label] = per_ds
    return AblationResult(
        datasets=[ds.name for ds in datasets],
        full_seconds=full_seconds,
        ablated_seconds=ablated,
    )


# =========================================================== Fig. 10a =======
def run_fig10a(quick: bool = False, table2: Table2Result | None = None) -> SeriesResult:
    """Fig. 10a: performance-price ratio of GPU-GBDT normalized by xgbst-40."""
    t2 = table2 if table2 is not None else run_table2(quick)
    names, ratios = [], []
    for r in t2.rows:
        if r["ours"] is None or r["xgbst40"] is None:
            continue
        names.append(r["dataset"])
        ratios.append(normalized_ratio(r["ours"], r["xgbst40"]))
    lo, hi = PAPER_BANDS["perf_price_vs_cpu"]
    return SeriesResult(
        x_label="dataset", xs=names, series={"perf-price vs CPU": ratios},
        title=(
            "Fig. 10a -- performance-price ratio (GPU $%.0f vs CPUs $%.0f), "
            "normalized to xgbst-40" % (TITAN_X_PASCAL.price_usd, XEON_E5_2640V4_X2.price_usd)
        ),
        note=f"paper: GPU-GBDT consistently better by [{lo:.1f}, {hi:.1f}]x",
    )


# =========================================================== Fig. 10b =======
@dataclasses.dataclass
class Fig10bResult:
    budgets: List[float]
    gpu_error: List[float]
    cpu_error: List[float]

    @property
    def text(self) -> str:
        return format_series(
            "budget(s)",
            [round(b, 2) for b in self.budgets],
            {"GPU-GBDT test error": self.gpu_error, "xgbst-40 test error": self.cpu_error},
            title="Fig. 10b -- test error for a given training-time budget (susy)",
        ) + "\npaper: for the same budget GPU-GBDT reaches clearly lower test error"


def run_fig10b(
    quick: bool = False,
    dataset: str = "susy",
    n_budgets: int = 10,
) -> Fig10bResult:
    """Fig. 10b: test error vs. modeled training-time budget.

    Both systems train the same trees (identical algorithms); the budget
    axis uses each system's modeled seconds, attributed uniformly across
    boosting rounds (tree costs are level-dominated and near-constant).
    Budgets are log-spaced from "GPU has a few trees" to "CPU finished" --
    the region the paper's figure covers -- and the learning rate is
    lowered so the ensembles are still improving across that region.
    """
    ds = make_dataset(dataset, run_rows=400 if quick else None)
    p = _params(quick, n_trees=16 if quick else 80, learning_rate=0.1)
    ours = run_gpu_gbdt(ds, p)
    _, forty, _ = run_cpu_baseline(ds, p)
    staged = ours.model.staged_predict(ds.X_test)
    errors = np.array([error_rate(ds.y_test, staged[t]) for t in range(p.n_trees)])
    t_gpu = ours.seconds * (np.arange(p.n_trees) + 1) / p.n_trees
    t_cpu = forty.seconds * (np.arange(p.n_trees) + 1) / p.n_trees

    start = t_gpu[min(2, p.n_trees - 1)]
    budgets = list(np.geomspace(start, t_cpu[-1], n_budgets))

    def err_at(times: np.ndarray, budget: float) -> float:
        k = int(np.searchsorted(times, budget, side="right")) - 1
        if k < 0:
            return 0.5  # no tree finished: majority-class guess
        return float(errors[k])

    return Fig10bResult(
        budgets=budgets,
        gpu_error=[err_at(t_gpu, b) for b in budgets],
        cpu_error=[err_at(t_cpu, b) for b in budgets],
    )


# ======================================================= device sweep =======
def run_device_sweep(
    quick: bool = False, names: Sequence[str] = ("covtype", "susy")
) -> SeriesResult:
    """Section IV setup note: "We have also tested GPU-GBDT on Tesla P100
    and K20, and the speedup is almost sublinear in the number of cores of
    the GPUs."  One training per (dataset, device); times normalized to the
    K20 so the series reads as speedup alongside the core ratio."""
    devices = [TESLA_K20, TITAN_X_PASCAL, TESLA_P100]
    datasets = load_table2_datasets(quick, names)
    p = _params(quick)
    series: Dict[str, List[float]] = {ds.name: [] for ds in datasets}
    for ds in datasets:
        base = None
        for spec in devices:
            res = run_gpu_gbdt(ds, p, spec=spec)
            if base is None:
                base = res.seconds
            series[ds.name].append(base / res.seconds)
    series["core ratio"] = [d.total_cores / devices[0].total_cores for d in devices]
    return SeriesResult(
        x_label="device",
        xs=[d.name for d in devices],
        series=series,
        title="Device sweep -- speedup over Tesla K20 vs. core count",
        note="paper: also validated on P100/K20; ordering K20 < Titan X < P100 "
        "(our memory-bound model tracks bandwidth ratios rather than core count)",
    )


def run_multigpu_scaling(
    quick: bool = False,
    dataset: str = "susy",
    device_counts: Sequence[int] = (1, 2, 4, 8),
) -> SeriesResult:
    """Extension (Section VI future work): strong scaling over simulated GPUs.

    Attribute-parallel training of one workload on 1..k devices; reported as
    speedup over a single device.  Identical trees are asserted by the test
    suite; here we only measure the modeled wall time (slowest device).
    """
    from ..ext.multigpu import MultiGpuGBDTTrainer

    if quick:
        device_counts = (1, 2)
    ds = make_dataset(dataset, run_rows=300 if quick else 1500)
    p = _params(quick, n_trees=4 if quick else 10)
    times: List[float] = []
    for k in device_counts:
        trainer = MultiGpuGBDTTrainer(
            p, n_devices=int(k),
            work_scale=ds.work_scale, seg_scale=ds.seg_scale, row_scale=ds.row_scale,
        )
        trainer.fit(ds.X, ds.y)
        times.append(trainer.elapsed_seconds())
    return SeriesResult(
        x_label="devices",
        xs=list(device_counts),
        series={
            "seconds": times,
            "speedup": [times[0] / t for t in times],
        },
        title="Extension -- multi-GPU strong scaling (susy profile)",
        note="attribute-parallel split finding with per-level winner allreduce "
        "and side-array broadcast; communication keeps scaling sublinear",
    )


def run_thread_sweep(
    quick: bool = False,
    dataset: str = "susy",
    thread_counts: Sequence[int] = (1, 10, 20, 40, 80),
) -> SeriesResult:
    """Section IV setup note: "We have also tried XGBoost with 10, 20, 40
    and 80 threads, and found that using 40 threads results in the shortest
    execution time."  One functional run, re-timed at every thread count.
    """
    ds = make_dataset(dataset, run_rows=300 if quick else 1500)
    p = _params(quick, n_trees=4 if quick else 10)
    _, _, runner = run_cpu_baseline(ds, p)
    times = [runner.modeled_seconds(int(t)) for t in thread_counts]
    return SeriesResult(
        x_label="threads",
        xs=list(thread_counts),
        series={"xgbst modeled seconds": times},
        title="Thread sweep -- XGBoost training time vs. OpenMP threads (susy profile)",
        note="paper: 40 threads (the hardware's SMT width) is the sweet spot; "
        "80 oversubscribes and slows down",
    )


# ======================================================== case studies ======
@dataclasses.dataclass
class CaseStudyResult:
    rows: List[Dict]

    @property
    def text(self) -> str:
        headers = ["case", "workload", "xgbst-40", "GPU-GBDT", "speedup"]
        body = [
            [r["case"], r["workload"], r["cpu_human"], r["gpu_human"], r["speedup"]]
            for r in self.rows
        ]
        return format_table(headers, body, title="Section IV-E -- case studies") + (
            "\npaper: credit-risk ~27 min on CPU; malware 43 s -> ~20 s; "
            "Kaggle 144-model search ~22.3 days -> ~10 days"
        )


def _human(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f} h"
    if seconds >= 60:
        return f"{seconds / 60:.1f} min"
    return f"{seconds:.1f} s"


def run_case_studies(quick: bool = False) -> CaseStudyResult:
    """Section IV-E: (i) credit risk, (ii) malware, (iii) Kaggle search.

    Each case is a synthetic workload with the cited shape; times are the
    cost model's full-scale estimates for one training (cases i-ii) or the
    whole 144-configuration hyper-parameter grid (case iii, via
    :mod:`repro.ext.hyperband`).
    """
    from ..ext.hyperband import TimeBudgetSearch, paper_search_grid

    rows: List[Dict] = []

    # (i) credit risk: 211,357 x 8,990 features
    credit = make_dataset("real-sim", run_rows=300 if quick else 1500)
    credit = dataclasses.replace(
        credit,
        spec=dataclasses.replace(
            credit.spec, name="credit-risk", n_full=211_357, d_full=8_990, density_full=0.05
        ),
    )
    p = _params(quick)
    ours = run_gpu_gbdt(credit, p)
    _, forty, _ = run_cpu_baseline(credit, p)
    rows.append(
        {
            "case": "(i) credit risk",
            "workload": "211,357 x 8,990, one model",
            "cpu_human": _human(forty.seconds),
            "gpu_human": _human(ours.seconds),
            "speedup": forty.seconds / ours.seconds,
        }
    )

    # (ii) malware detection: frequent small retrains
    malware = make_dataset("covtype", run_rows=300 if quick else 2000)
    malware = dataclasses.replace(
        malware,
        spec=dataclasses.replace(
            malware.spec, name="malware", n_full=500_000, d_full=120, density_full=0.3
        ),
    )
    ours_m = run_gpu_gbdt(malware, p)
    _, forty_m, _ = run_cpu_baseline(malware, p)
    rows.append(
        {
            "case": "(ii) malware update",
            "workload": "500,000 x 120, one retrain",
            "cpu_human": _human(forty_m.seconds),
            "gpu_human": _human(ours_m.seconds),
            "speedup": forty_m.seconds / ours_m.seconds,
        }
    )

    # (iii) Kaggle-style hyper-parameter search: the paper's 144-model grid.
    # The Santander features are engineered categoricals, so the insurance
    # (high-repetition) generator is the right profile -- RLE is what lets
    # the 17M x 142 sorted lists fit on the device at all.
    search_ds = make_dataset("insurance", run_rows=300 if quick else 1200)
    search_ds = dataclasses.replace(
        search_ds,
        spec=dataclasses.replace(
            search_ds.spec, name="kaggle", n_full=17_000_000, d_full=142, density_full=0.9
        ),
    )
    grid = paper_search_grid(quick=quick)
    search = TimeBudgetSearch(search_ds, grid)
    summary = search.estimate()
    rows.append(
        {
            "case": "(iii) Kaggle search",
            "workload": f"17M x 142, {summary.n_configs} configs",
            "cpu_human": _human(summary.cpu_seconds_total),
            "gpu_human": _human(summary.gpu_seconds_total),
            "speedup": summary.cpu_seconds_total / summary.gpu_seconds_total,
        }
    )
    return CaseStudyResult(rows=rows)


# ================================================= extension experiments ====
@dataclasses.dataclass
class ApproxResult:
    """Exact-vs-histogram comparison rows."""

    rows: List[Dict]
    max_bins: int

    @property
    def text(self) -> str:
        headers = ["dataset", "exact(s)", f"hist-{self.max_bins}(s)", "speedup",
                   "exact rmse", "hist rmse"]
        body = [
            [r["dataset"], r["exact_s"], r["hist_s"], r["speedup"],
             r["exact_rmse"], r["hist_rmse"]]
            for r in self.rows
        ]
        return format_table(
            headers, body,
            title="Extension -- exact GPU-GBDT vs. histogram (approximate) training",
        ) + ("\npaper context: GPU-GBDT finds splits without approximation; "
             "LightGBM-style histograms trade exactness for speed")


def run_exact_vs_approx(
    quick: bool = False,
    names: Sequence[str] = ("covtype", "susy", "higgs"),
    max_bins: int = 64,
) -> "ApproxResult":
    """Extension: exact GPU-GBDT vs. the histogram (approximate) family.

    The paper's Section V contrast ("LightGBM ... only supports finding the
    best split points approximately") made runnable: modeled training time
    and held-out RMSE for both trainers.  On quantized data (covtype) the
    histogram trainer matches the exact partitions; on continuous data
    (susy, higgs) it is faster but learns different trees.
    """
    from ..approx import HistogramGBDTTrainer
    from ..gpusim.kernel import GpuDevice
    from ..metrics import rmse as _rmse

    p = _params(quick)
    rows: List[Dict] = []
    for ds in load_table2_datasets(quick, names):
        exact = run_gpu_gbdt(ds, p)
        dev = GpuDevice(TITAN_X_PASCAL, work_scale=ds.work_scale, seg_scale=ds.seg_scale)
        hist_model = HistogramGBDTTrainer(
            p, dev, max_bins=max_bins, row_scale=ds.row_scale
        ).fit(ds.X, ds.y)
        rows.append(
            {
                "dataset": ds.name,
                "exact_s": exact.seconds,
                "hist_s": dev.elapsed_seconds(),
                "speedup": exact.seconds / dev.elapsed_seconds(),
                "exact_rmse": _rmse(ds.y_test, exact.model.predict(ds.X_test)),
                "hist_rmse": _rmse(ds.y_test, hist_model.predict(ds.X_test)),
            }
        )
    return ApproxResult(rows=rows, max_bins=max_bins)


def run_crossover(
    quick: bool = False,
    dataset: str = "susy",
    cardinalities: Sequence[int] = (2_000, 20_000, 100_000, 500_000, 2_500_000, 12_500_000),
) -> SeriesResult:
    """Extension: modeled training time vs. dataset cardinality.

    Fixed overheads (kernel launches, PCIe transactions) dominate the GPU at
    small n, so sequential XGBoost wins tiny datasets and GPU-GBDT takes
    over as n grows -- the crossover implied by the paper's "for smaller
    datasets ... use dense representation / CPU" discussion.
    """
    if quick:
        cardinalities = (20_000, 500_000)
    base = make_dataset(dataset, run_rows=300 if quick else 1000)
    p = _params(quick, n_trees=4 if quick else 10)
    gpu_times: List[float] = []
    cpu1_times: List[float] = []
    cpu40_times: List[float] = []
    for n_full in cardinalities:
        ds = dataclasses.replace(
            base, spec=dataclasses.replace(base.spec, n_full=int(n_full))
        )
        gpu = run_gpu_gbdt(ds, p)
        one, forty, _ = run_cpu_baseline(ds, p)
        gpu_times.append(gpu.seconds)
        cpu1_times.append(one.seconds)
        cpu40_times.append(forty.seconds)
    return SeriesResult(
        x_label="cardinality",
        xs=list(cardinalities),
        series={
            "GPU-GBDT (s)": gpu_times,
            "xgbst-1 (s)": cpu1_times,
            "xgbst-40 (s)": cpu40_times,
        },
        title="Extension -- modeled training time vs. dataset cardinality (susy profile)",
        note="fixed launch/PCIe overheads make the CPU competitive at small n; "
        "the GPU pulls ahead as cardinality grows",
    )


# ============================================================ serving =======
@dataclasses.dataclass
class ServingBenchResult:
    """Wall-clock serving comparison plus batched-path service metrics."""

    rows: List[Dict]
    metrics: Dict[str, float]
    #: batched micro-batcher throughput over the old per-request loop
    speedup_vs_per_request: float
    #: flattened batch sweep over the per-tree loop on the same full batch
    speedup_batch_vs_loop: float
    #: max |flat - per-tree loop| over every served row (differential guard)
    max_abs_dev: float
    modeled_gpu_seconds: float
    n_requests: int
    n_trees: int

    def payload(self) -> Dict:
        """Structured run-store payload (stable ``flatten_metrics`` paths:
        rows are keyed by ``name``, so reordering never renames a metric)."""
        return {
            "n_requests": self.n_requests,
            "n_trees": self.n_trees,
            "metrics": {
                "paths": self.rows,
                "batched": self.metrics,
                "speedup_vs_per_request": self.speedup_vs_per_request,
                "speedup_batch_vs_loop": self.speedup_batch_vs_loop,
                "max_abs_dev": self.max_abs_dev,
                "modeled_gpu_seconds": self.modeled_gpu_seconds,
            },
        }

    @property
    def text(self) -> str:
        headers = ["serving path", "total (s)", "per-request (ms)", "req/s"]
        body = [
            [r["name"], r["total_s"], r["per_request_ms"], r["rps"]] for r in self.rows
        ]
        table = format_table(
            headers,
            body,
            title=(
                f"Serving bench -- {self.n_requests} requests x "
                f"{self.n_trees} trees"
            ),
        )
        m = self.metrics
        return table + (
            f"\nbatched path: p50={m['p50_ms']:.3g} ms  p95={m['p95_ms']:.3g} ms  "
            f"p99={m['p99_ms']:.3g} ms (queue wait, simulated arrivals)"
            f"\ncache: {int(m['cache_hits'])} hits / {int(m['cache_misses'])} misses "
            f"({m['cache_hit_rate']:.1%}); shed={int(m['shed'])} rejected={int(m['rejected'])}"
            f"\nspeedup: micro-batched vs per-request loop {self.speedup_vs_per_request:.1f}x; "
            f"flat batch vs per-tree loop on one full batch {self.speedup_batch_vs_loop:.2f}x"
            f"\nmax |flat - per-tree| deviation {self.max_abs_dev:.3g}; "
            f"modeled GPU serving cost {self.modeled_gpu_seconds * 1e3:.3g} ms"
        )


def run_serving_bench(quick: bool = False) -> ServingBenchResult:
    """Benchmark the serving subsystem (:mod:`repro.serve`).

    Three ways to serve the same request stream:

    1. **per-request loop** -- the pre-serving path: ``model.predict`` on
       each single-row request, looping over trees in Python (measured on a
       sample of the stream, reported per request);
    2. **flat batch** -- one :class:`~repro.serve.FlatEnsemble` sweep over
       the whole stream as a single matrix;
    3. **micro-batched** -- the :class:`~repro.serve.MicroBatcher` fed
       request by request (simulated arrival clock, real prediction work),
       with a prediction cache and a simulated device charging the
       Section III-D kernels.
    """
    import time as _time

    from ..gpusim.kernel import GpuDevice
    from ..serve import BatchPolicy, MicroBatcher, ModelRegistry

    n_requests = 1000 if quick else 10000
    n_trees = 20 if quick else 100
    ds = make_dataset("susy", run_rows=600 if quick else 2000, seed=21)
    from ..core.trainer import GPUGBDTTrainer

    model = GPUGBDTTrainer(
        GBDTParams(n_trees=n_trees, max_depth=4 if quick else 6)
    ).fit(ds.X, ds.y)

    rng = np.random.default_rng(33)
    requests = rng.normal(size=(n_requests, ds.X.n_cols))
    # ~10% of requests repeat a recently seen feature vector (cache food:
    # close enough behind to still be resident in the LRU)
    for i in rng.integers(1, n_requests, size=n_requests // 10):
        requests[i] = requests[i - min(i, int(rng.integers(1, 400)))]

    # -- path 1: per-request per-tree loop, sampled ------------------------
    sample = min(n_requests, 100 if quick else 300)
    t0 = _time.perf_counter()
    for i in range(sample):
        model.predict(requests[i : i + 1])
    per_request_s = (_time.perf_counter() - t0) / sample

    # -- path 2: one flat sweep over the full stream -----------------------
    registry = ModelRegistry()
    registry.publish(model)
    flat = registry.active().flat
    flat.predict(requests[:64])  # warm-up
    t0 = _time.perf_counter()
    flat_pred = flat.predict(requests)
    flat_batch_s = _time.perf_counter() - t0
    t0 = _time.perf_counter()
    loop_pred = np.full(n_requests, model.base_score)
    for tree in model.trees:
        loop_pred += tree.predict(requests)
    loop_batch_s = _time.perf_counter() - t0
    max_abs_dev = float(np.abs(flat_pred - loop_pred).max())

    # -- path 3: micro-batched serving of the stream -----------------------
    arrival_gap = 20e-6  # simulated 50k req/s arrival process
    policy = BatchPolicy(
        max_batch=256, max_wait=0.002, max_queue=4096, cache_size=1024
    )
    device = GpuDevice()
    batcher = MicroBatcher(registry, policy=policy, device=device)
    now = 0.0
    t0 = _time.perf_counter()
    handles = []
    for i in range(n_requests):
        handles.append(batcher.submit(requests[i], now=now))
        batcher.poll(now=now)
        now += arrival_gap
    batcher.drain(now=now)
    batched_s = _time.perf_counter() - t0
    served = np.array([h.result() for h in handles])
    max_abs_dev = max(max_abs_dev, float(np.abs(served - flat_pred).max()))

    def row(path: str, total: float) -> Dict:
        return {
            "name": path,
            "total_s": total,
            "per_request_ms": total / n_requests * 1e3,
            "rps": n_requests / total,
        }

    rows = [
        row("per-request per-tree loop", per_request_s * n_requests),
        row("per-tree loop, one batch", loop_batch_s),
        row("flat ensemble, one batch", flat_batch_s),
        row("micro-batched (serve path)", batched_s),
    ]
    # cache accounting moved onto the batcher's FeatureCache (obs-labelled);
    # merge it back into the summary the bench reports and asserts on
    metrics = batcher.stats.summary(duration=batched_s)
    metrics.update(
        cache_hits=batcher.cache.hits,
        cache_misses=batcher.cache.misses,
        cache_hit_rate=batcher.cache.hit_rate,
    )
    return ServingBenchResult(
        rows=rows,
        metrics=metrics,
        speedup_vs_per_request=per_request_s * n_requests / batched_s,
        speedup_batch_vs_loop=loop_batch_s / flat_batch_s,
        max_abs_dev=max_abs_dev,
        modeled_gpu_seconds=device.elapsed_seconds(),
        n_requests=n_requests,
        n_trees=n_trees,
    )


# ================================================== pipeline bench ==========
@dataclasses.dataclass
class PipelineBenchResult:
    """Warm-start refresh vs from-scratch retrain over a sliding window."""

    rows: List[Dict]
    #: modeled device seconds summed over all refreshes, per strategy
    warm_total_s: float
    scratch_total_s: float
    speedup: float
    #: how many refreshes each strategy sustains per hour of device time
    refreshes_per_hour_warm: float
    refreshes_per_hour_scratch: float
    #: train(k) + resume(m) byte-identical to train(k+m) (differential guard)
    warmstart_bitidentical: bool
    n_refreshes: int
    base_trees: int
    refresh_trees: int

    @property
    def text(self) -> str:
        headers = [
            "refresh", "warm (ms)", "scratch (ms)", "trees",
            "val warm", "val scratch",
        ]
        body = [
            [
                r["refresh"], r["warm_ms"], r["scratch_ms"], r["trees"],
                r["val_warm"], r["val_scratch"],
            ]
            for r in self.rows
        ]
        table = format_table(
            headers,
            body,
            title=(
                f"Pipeline bench -- {self.n_refreshes} sliding-window "
                f"refreshes (+{self.refresh_trees} trees vs {self.base_trees} "
                "from scratch)"
            ),
        )
        return table + (
            f"\nmodeled device seconds: warm-start {self.warm_total_s:.4f} vs "
            f"from-scratch {self.scratch_total_s:.4f} ({self.speedup:.1f}x)"
            f"\nrefresh budget: {self.refreshes_per_hour_warm:,.0f}/hour warm-start "
            f"vs {self.refreshes_per_hour_scratch:,.0f}/hour from-scratch"
            f"\nwarm-start bit-identity (train(k)+resume(m) == train(k+m)): "
            f"{self.warmstart_bitidentical}"
        )


def run_pipeline_bench(quick: bool = False) -> PipelineBenchResult:
    """Benchmark the continual-training pipeline (:mod:`repro.pipeline`).

    The Section IV-E(i) scenario -- a model refreshed as new data arrives --
    served two ways:

    1. **warm-start** -- keep the serving ensemble and boost
       ``refresh_trees`` more rounds on the current window
       (``fit(..., init_model=)``), the way the
       :class:`~repro.pipeline.ContinualController` refreshes;
    2. **from-scratch** -- retrain the full ``base_trees``-round model on
       the current window each time.

    Both strategies are charged on the simulated device, so the comparison
    is modeled kernel time, not Python overhead.  The result also carries
    the differential guard the pipeline rests on: boosting ``k`` rounds,
    serializing, and resuming ``m`` more is byte-identical to boosting
    ``k + m`` rounds in one run.
    """
    from ..core.booster import as_csr
    from ..core.booster_model import GBDTModel
    from ..core.trainer import GPUGBDTTrainer
    from ..gpusim.kernel import GpuDevice

    ds = make_dataset("covtype", run_rows=400 if quick else 1200, seed=17)
    base_trees = 8 if quick else 40
    refresh_trees = 2 if quick else 5
    n_refreshes = 3 if quick else 6
    params = GBDTParams(n_trees=base_trees, max_depth=4, seed=5)

    # -- differential guard: resume-through-JSON is bit-identical ----------
    k = base_trees // 2
    full = GPUGBDTTrainer(params, GpuDevice()).fit(ds.X, ds.y)
    head = GPUGBDTTrainer(params.replace(n_trees=k), GpuDevice()).fit(ds.X, ds.y)
    head = GBDTModel.from_json(head.to_json(), params=params.replace(n_trees=k))
    resumed = GPUGBDTTrainer(
        params.replace(n_trees=base_trees - k), GpuDevice()
    ).fit(ds.X, ds.y, init_model=head)
    bitidentical = resumed.to_json() == full.to_json()

    # -- sliding-window refreshes ------------------------------------------
    dense = ds.X.to_dense(fill=np.nan).values
    X_val = ds.X_test.to_dense(fill=np.nan).values
    window = 200 if quick else 600
    stride = max((dense.shape[0] - window) // max(n_refreshes, 1), 1)

    def val_loss(model) -> float:
        return float(params.loss_fn.value(ds.y_test, model.predict(X_val)))

    # the base model is a cost common to both strategies -- not timed
    warm_model = GPUGBDTTrainer(params, GpuDevice()).fit(
        as_csr(dense[:window]), ds.y[:window]
    )

    rows: List[Dict] = []
    warm_total = scratch_total = 0.0
    for i in range(1, n_refreshes + 1):
        lo = min(i * stride, dense.shape[0] - window)
        Xw, yw = dense[lo : lo + window], ds.y[lo : lo + window]

        dev_w = GpuDevice()
        warm_model = GPUGBDTTrainer(
            params.replace(n_trees=refresh_trees), dev_w
        ).fit(as_csr(Xw), yw, init_model=warm_model)
        warm_s = dev_w.elapsed_seconds()

        dev_s = GpuDevice()
        scratch_model = GPUGBDTTrainer(params, dev_s).fit(as_csr(Xw), yw)
        scratch_s = dev_s.elapsed_seconds()

        warm_total += warm_s
        scratch_total += scratch_s
        rows.append(
            {
                "refresh": i,
                "warm_ms": warm_s * 1e3,
                "scratch_ms": scratch_s * 1e3,
                "trees": warm_model.n_trees,
                "val_warm": val_loss(warm_model),
                "val_scratch": val_loss(scratch_model),
            }
        )

    return PipelineBenchResult(
        rows=rows,
        warm_total_s=warm_total,
        scratch_total_s=scratch_total,
        speedup=scratch_total / warm_total if warm_total else float("inf"),
        refreshes_per_hour_warm=3600.0 / (warm_total / n_refreshes),
        refreshes_per_hour_scratch=3600.0 / (scratch_total / n_refreshes),
        warmstart_bitidentical=bitidentical,
        n_refreshes=n_refreshes,
        base_trees=base_trees,
        refresh_trees=refresh_trees,
    )
