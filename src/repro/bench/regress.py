"""Result persistence and regression tracking for the experiment harness.

The optimization guide's last advice -- track performance over time --
applied to the reproduction: every experiment result can be serialized to a
JSON payload, saved alongside metadata (date, package version, cost-model
constants), and compared against a previous run.  A drift in any modeled
number beyond tolerance flags either an intentional recalibration or an
accidental cost-model regression.

Used via the CLI::

    python -m repro table2 fig9 --save results/today.json
    python -m repro table2 fig9 --compare results/yesterday.json
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List

__all__ = ["to_payload", "save_results", "load_results", "compare_results", "Drift"]

_SCALARS = (str, int, float, bool, type(None))


def _clean(value: Any) -> Any:
    """Keep only JSON-friendly scalars/containers; drop everything else."""
    import numpy as np

    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_clean(v) for v in value.tolist()]
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            cv = _clean(v)
            if cv is not _DROP:
                out[str(k)] = cv
        return out
    if isinstance(value, (list, tuple)):
        cleaned = [_clean(v) for v in value]
        return [v for v in cleaned if v is not _DROP]
    return _DROP


class _Sentinel:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<drop>"


_DROP = _Sentinel()


def to_payload(result: Any) -> Dict[str, Any]:
    """Serialize any experiment result object to a JSON-safe dict.

    Works on the harness's dataclass results (rows/series/etc.); arbitrary
    attributes that are not JSON-representable (models, devices) are
    silently dropped.
    """
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        raw = {
            f.name: getattr(result, f.name) for f in dataclasses.fields(result)
        }
    elif isinstance(result, dict):
        raw = result
    else:
        raise TypeError(f"cannot serialize {type(result).__name__}")
    cleaned = _clean(raw)
    return cleaned if cleaned is not _DROP else {}


def save_results(path, payloads: Dict[str, Any], meta: Dict[str, Any] | None = None) -> None:
    """Write ``{meta, experiments}`` JSON to ``path``."""
    from .. import __version__

    doc = {
        "meta": {"version": __version__, **(meta or {})},
        "experiments": {k: to_payload(v) for k, v in payloads.items()},
    }
    Path(path).write_text(json.dumps(doc, indent=1, sort_keys=True), encoding="utf-8")


def load_results(path) -> Dict[str, Any]:
    """Read a document written by :func:`save_results`."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if "experiments" not in doc:
        raise ValueError(f"{path} is not a results document")
    return doc


@dataclasses.dataclass(frozen=True)
class Drift:
    """One numeric leaf whose value moved beyond tolerance."""

    path: str
    old: float
    new: float

    @property
    def rel(self) -> float:
        denom = max(abs(self.old), abs(self.new), 1e-12)
        return abs(self.new - self.old) / denom

    def __str__(self) -> str:
        return f"{self.path}: {self.old:.6g} -> {self.new:.6g} ({self.rel:+.1%})"


def _walk(prefix: str, old: Any, new: Any, rtol: float, out: List[Drift]) -> None:
    if isinstance(old, dict) and isinstance(new, dict):
        for k in sorted(set(old) & set(new)):
            _walk(f"{prefix}.{k}" if prefix else str(k), old[k], new[k], rtol, out)
        return
    if isinstance(old, list) and isinstance(new, list):
        for i, (a, b) in enumerate(zip(old, new)):
            _walk(f"{prefix}[{i}]", a, b, rtol, out)
        return
    if isinstance(old, bool) or isinstance(new, bool):
        return
    if isinstance(old, (int, float)) and isinstance(new, (int, float)):
        denom = max(abs(old), abs(new), 1e-12)
        if abs(new - old) / denom > rtol:
            out.append(Drift(path=prefix, old=float(old), new=float(new)))


def compare_results(old_doc: Dict, new_doc: Dict, rtol: float = 0.05) -> List[Drift]:
    """Numeric leaves present in both documents that moved more than ``rtol``
    relative -- the regression report."""
    drifts: List[Drift] = []
    _walk("", old_doc.get("experiments", {}), new_doc.get("experiments", {}), rtol, drifts)
    return drifts
