"""Serving-cluster bench: goodput scaling + rolling-deploy drill.

Answers the PR's acceptance question with numbers: at the *same offered
load* (identical :class:`~repro.serve.cluster.loadgen.LoadSpec`, identical
seed), does a 4-replica front door sustain strictly higher goodput than a
single-replica one?  The load is sized to saturate one replica -- the
single-replica run degrades/rejects the overflow (those responses do not
count as goodput), while the 4-replica run absorbs it.

The second half is the **rolling-deploy drill**, run under the same burst
storm:

1. serve probe rows through the cluster and check byte-identity against the
   old version's direct predictions;
2. mid-storm, roll the cluster to a new version (drain -> validate -> pin ->
   warm, one replica at a time) and assert zero requests were dropped
   (``offered == completed + rejected``; every admitted request resolved
   exactly once);
3. serve the probes again -- byte-identical to the *new* version;
4. attempt a deploy wired to fail validation, assert it rolls back, and
   check the probes still serve byte-identically to the pre-attempt version
   with the registry's active pointer unmoved.

Everything lands in ``BENCH_serving_cluster.json`` (via
:func:`repro.bench.output.write_bench_json`) with run-store-stable metric
paths, so ``python -m repro runs submit|diff|gate`` track serving
regressions like training ones.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..core.params import GBDTParams
from ..core.trainer import GPUGBDTTrainer
from ..data.datasets import make_dataset
from ..serve import BatchPolicy, ModelRegistry
from ..serve.cluster import (
    AdmissionPolicy,
    FrontDoor,
    LoadReport,
    LoadSpec,
    ServiceModel,
    run_load,
)
from .output import write_bench_json

__all__ = ["ClusterBenchResult", "run_cluster_bench"]

#: slower-than-real batch service model, sized so the bench's offered load
#: saturates one replica but not four (the comparison the acceptance needs)
SERVICE = ServiceModel(base_s=0.002, per_row_s=0.0001)
POLICY = BatchPolicy(max_batch=32, max_wait=0.004, max_queue=64, cache_size=0)


@dataclasses.dataclass
class ClusterBenchResult:
    single: LoadReport
    cluster: LoadReport
    goodput_ratio: float
    deploy_report: Dict[str, object]
    n_trees: int

    def payload(self) -> Dict[str, object]:
        return {
            "n_trees": self.n_trees,
            "metrics": {
                "single": self.single.payload()["metrics"],
                "cluster": self.cluster.payload()["metrics"],
                "goodput_ratio": self.goodput_ratio,
                "deploy": self.deploy_report,
            },
        }

    @property
    def text(self) -> str:
        lines = [
            "Serving cluster bench -- same offered load, 1 vs "
            f"{self.cluster.n_replicas} replicas",
            "-- single replica --",
            self.single.text(),
            f"-- {self.cluster.n_replicas} replicas --",
            self.cluster.text(),
            f"goodput ratio (cluster/single): {self.goodput_ratio:.2f}x",
            (
                "rolling deploy: swapped={swapped} dropped={dropped} "
                "rollback_drill={rollback_ok}".format(**self.deploy_report)
            ),
        ]
        return "\n".join(lines)


def _storm_spec(quick: bool) -> LoadSpec:
    return LoadSpec(
        n_clients=96,
        duration_s=0.6 if quick else 2.0,
        arrival="bursty",
        mean_gap_s=0.003,
        burst_factor=6.0,
        burst_period_s=0.2,
        burst_duty=0.4,
        slow_client_frac=0.125,
        slow_client_delay_s=0.02,
        slo_ms=25.0,
        seed=7,
    )


def _front_door(
    registry: ModelRegistry, n_replicas: int, X: np.ndarray
) -> FrontDoor:
    return FrontDoor(
        registry,
        n_replicas,
        policy=POLICY,
        admission=AdmissionPolicy(max_pending=48 * n_replicas, overload="degrade"),
        router="least-loaded",
        service=SERVICE,
        warm_rows=X[:8],
    )


def _serve_probes(fd: FrontDoor, probes: np.ndarray, t0: float) -> np.ndarray:
    """Serve ``probes`` through the front door and return their values
    (advancing simulated time past every flush)."""
    handles = [fd.submit(row, t0 + i * 1e-4) for i, row in enumerate(probes)]
    fd.quiesce(t0 + len(probes) * 1e-4)
    return np.array([h.result() for h in handles])


def run_cluster_bench(
    quick: bool = False, emit: bool = True
) -> ClusterBenchResult:
    """Run the goodput comparison + deploy drill; optionally write
    ``BENCH_serving_cluster.json``."""
    n_trees = 20 if quick else 60
    ds = make_dataset("susy", run_rows=400 if quick else 1200, seed=21)
    X = ds.X.to_dense().values

    model_v1 = GPUGBDTTrainer(GBDTParams(n_trees=n_trees, max_depth=4)).fit(
        ds.X, ds.y
    )
    model_v2 = GPUGBDTTrainer(
        GBDTParams(n_trees=n_trees, max_depth=4, learning_rate=0.2)
    ).fit(ds.X, ds.y)
    registry = ModelRegistry()
    v1 = registry.publish(model_v1)
    v2 = registry.publish(model_v2, activate=False)

    spec = _storm_spec(quick)
    single = run_load(_front_door(registry, 1, X), X, spec)
    cluster = run_load(_front_door(registry, 4, X), X, spec)

    # ---------------------------------------------------------- deploy drill
    probes = X[:32]
    flat_v1 = registry.get("default", v1).flat
    flat_v2 = registry.get("default", v2).flat
    expected_v2 = flat_v2.predict(probes)

    fd = _front_door(registry, 4, X)
    pre = _serve_probes(fd, probes, 0.0)
    assert np.array_equal(pre, flat_v1.predict(probes)), "pre-deploy mismatch"

    deploy_t = spec.duration_s * 0.35
    report = run_load(
        fd,
        X,
        spec,
        actions=[
            (
                deploy_t,
                lambda door, now: door.start_deploy(
                    v2, probes, expected_v2, now=now
                ),
            )
        ],
    )
    deploy = fd.deploy
    assert deploy is not None and deploy.done and not deploy.failed
    dropped = report.offered - report.completed - report.rejected
    post = _serve_probes(fd, probes, report.duration_s + 1.0)
    swap_identical = bool(np.array_equal(post, expected_v2))

    # rollback drill: wire validation to fail (expected values from v1 while
    # deploying v2... the registry active is v2 now, so roll "back" to v1
    # with garbage expectations) and assert the cluster converges unchanged.
    before_rollback = _serve_probes(fd, probes, report.duration_s + 2.0)
    fd.start_deploy(
        v1,
        probes,
        np.full(len(probes), np.inf),  # impossible expectation -> fails
        now=report.duration_s + 3.0,
    )
    fd.quiesce(report.duration_s + 3.0)
    bad = fd.deploy
    assert bad is not None and bad.done and bad.failed and bad.rolled_back
    after_rollback = _serve_probes(fd, probes, report.duration_s + 4.0)
    rollback_ok = bool(np.array_equal(before_rollback, after_rollback))
    active_after = registry.active().version

    deploy_report: Dict[str, object] = {
        "swapped": len(deploy.swapped),
        "dropped": int(dropped),
        "mid_storm_completed": report.completed,
        "swap_identical": swap_identical,
        "rollback_ok": rollback_ok,
        "active_unmoved_after_rollback": active_after == v2,
    }
    result = ClusterBenchResult(
        single=single,
        cluster=cluster,
        goodput_ratio=(
            cluster.goodput_qps / single.goodput_qps
            if single.goodput_qps > 0
            else float("inf")
        ),
        deploy_report=deploy_report,
        n_trees=n_trees,
    )
    if emit:
        write_bench_json("serving_cluster", result.payload())
    return result
