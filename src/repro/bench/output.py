"""Standard benchmark output location: ``BENCH_<name>.json`` at repo root.

Every bench CLI and pytest benchmark writes its machine-readable results
through this module so artifacts always land in one predictable place:

1. ``$BENCH_METRICS_DIR`` when set (CI points this at its artifact dir),
2. otherwise the repository root (the first ancestor of this file holding a
   ``pyproject.toml``),
3. otherwise the current working directory (installed-package fallback).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = ["bench_output_dir", "bench_output_path", "write_bench_json"]


def bench_output_dir() -> Path:
    """Directory benchmark artifacts belong in (see module docstring)."""
    env = os.environ.get("BENCH_METRICS_DIR")
    if env:
        return Path(env)
    for parent in Path(__file__).resolve().parents:
        if (parent / "pyproject.toml").is_file():
            return parent
    return Path.cwd()


def bench_output_path(name: str) -> Path:
    """``BENCH_<name>.json`` inside :func:`bench_output_dir`."""
    if name.endswith(".jsonl") or name.endswith(".json"):
        raise ValueError(
            f"bench name must be bare (got {name!r}); the extension is fixed"
        )
    return bench_output_dir() / f"BENCH_{name}.json"


def write_bench_json(name: str, payload: Any) -> Path:
    """Write ``payload`` as ``BENCH_<name>.json``; returns the path.

    Also removes any stale ``BENCH_<name>.jsonl`` sibling: the ``.jsonl``
    variant was retired (PR 5 standardized on one structured ``.json``
    document per bench) and must never linger next to fresh results.
    """
    path = bench_output_path(name)
    path.parent.mkdir(parents=True, exist_ok=True)
    stale = path.with_suffix(".jsonl")
    if stale.exists():
        stale.unlink()
    path.write_text(
        json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8"
    )
    return path
