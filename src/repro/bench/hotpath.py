"""Hot-path wall-clock benchmark: workspace arena on vs. off.

Unlike the rest of :mod:`repro.bench` -- which reports *modeled* seconds
from the simulated device's cost model -- this module measures the real
wall-clock time of the training hot path.  The quantity under test is the
effect of the :class:`~repro.core.workspace.WorkspaceArena`: with the arena
enabled the level loop of :meth:`GPUGBDTTrainer._grow_tree` runs on reused
preallocated buffers instead of allocating fresh ``np.empty`` /
``np.concatenate`` temporaries at every level.

Three fixed synthetic workloads:

``medium``
    The gated workload: dense-ish sparse-path training (``rle_policy
    "never"``), the regime the arena targets.  ``results/perf_baseline.json``
    records its expected speedup and absolute times, and
    ``tests/test_perf_smoke.py`` gates on them with generous slack.
``rle``
    Same trainer with RLE-compressed attribute lists (informational: run
    splitting adds run-linear work the arena only partly absorbs).
``deep``
    Many small levels (informational: Python per-call overhead dominates).

Every run also asserts that arena-on and arena-off produce **byte-identical
serialized models** -- the benchmark refuses to report a speedup obtained by
changing the trees.

Run via pytest (``benchmarks/bench_hotpath.py``) or directly::

    PYTHONPATH=src python -m repro.bench.hotpath

Results land as ``BENCH_hotpath.json`` in the standard bench output
location (repo root, or ``$BENCH_METRICS_DIR`` -- see
:mod:`repro.bench.output`); ``--out`` overrides the path.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from ..core.params import GBDTParams
from ..core.trainer import GPUGBDTTrainer
from ..data.matrix import CSRMatrix
from ..obs import Tracer, use_tracer
from ..obs.runstore import PHASES

__all__ = [
    "HOTPATH_WORKLOADS",
    "HotpathResult",
    "WorkloadSpec",
    "make_hotpath_data",
    "run_hotpath",
    "run_workload",
    "write_hotpath_json",
]


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """One fixed synthetic training configuration."""

    name: str
    n_rows: int
    n_cols: int
    n_trees: int
    max_depth: int
    rle_policy: str
    gated: bool  # participates in the perf-smoke gate

    def params(self) -> GBDTParams:
        return GBDTParams(
            n_trees=self.n_trees,
            max_depth=self.max_depth,
            learning_rate=0.3,
            lambda_=1.0,
            rle_policy=self.rle_policy,
            seed=7,
        )


#: The fixed workload set.  ``medium`` is the acceptance-gated one.
HOTPATH_WORKLOADS: Dict[str, WorkloadSpec] = {
    "medium": WorkloadSpec("medium", 8000, 16, 10, 6, "never", gated=True),
    "rle": WorkloadSpec("rle", 4000, 12, 10, 6, "always", gated=False),
    "deep": WorkloadSpec("deep", 1000, 20, 20, 8, "paper", gated=False),
    # tiny variant for CI smoke runs; same code paths, seconds not gated
    "smoke": WorkloadSpec("smoke", 600, 8, 4, 4, "never", gated=False),
}


def make_hotpath_data(
    n_rows: int, n_cols: int, seed: int = 0
) -> Tuple[CSRMatrix, np.ndarray]:
    """Deterministic synthetic regression data with the shapes the hot path
    cares about: ~80% density, quantized (RLE-friendly) columns, and one
    constant column."""
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(n_rows, n_cols))
    for j in range(0, n_cols, 3):
        dense[:, j] = np.round(dense[:, j] * 2) / 2
    dense[:, 1 % n_cols] = 1.0
    mask = rng.random((n_rows, n_cols)) < 0.8
    y = dense @ rng.normal(size=n_cols) + rng.normal(scale=0.1, size=n_rows)
    r, c = np.nonzero(mask)
    X = CSRMatrix.from_coo(r, c, dense[r, c], n_rows=n_rows, n_cols=n_cols)
    return X, y


@dataclasses.dataclass
class WorkloadResult:
    """Timing of one workload, arena off vs. on."""

    workload: str
    gated: bool
    arena_off_s: float
    arena_on_s: float
    speedup: float
    identical_models: bool
    arena_reserved_bytes: int
    arena_buffers: int
    #: per-fit mean wall seconds in each training phase during the arena-on
    #: repeats (the run store's gate attributes regressions to these)
    phases: Dict[str, float] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class HotpathResult:
    """All workload timings plus the rendered table."""

    rows: List[WorkloadResult]
    repeats: int

    @property
    def text(self) -> str:
        hdr = f"{'workload':>10} {'off (s)':>9} {'on (s)':>9} {'speedup':>8}  gated"
        lines = [hdr, "-" * len(hdr)]
        for r in self.rows:
            lines.append(
                f"{r.workload:>10} {r.arena_off_s:>9.4f} {r.arena_on_s:>9.4f}"
                f" {r.speedup:>7.2f}x  {'yes' if r.gated else 'no'}"
            )
        return "\n".join(lines)

    def row(self, workload: str) -> WorkloadResult:
        for r in self.rows:
            if r.workload == workload:
                return r
        raise KeyError(workload)

    def payload(self) -> Dict:
        """The ``BENCH_hotpath.json`` document: per-workload rows plus a
        top-level phase breakdown (summed across workloads) that the run
        store's gate uses for regression attribution."""
        from .regress import to_payload

        # asdict first: to_payload's cleaner keeps scalars/containers only
        # and would silently drop the nested WorkloadResult dataclasses
        doc = to_payload(dataclasses.asdict(self))
        doc["phases"] = {
            p: sum(r.phases.get(p, 0.0) for r in self.rows) for p in PHASES
        }
        return doc


def _time_fit(params, X, y, use_arena: bool, repeats: int):
    """Best-of-``repeats`` wall-clock fit time (best-of defeats scheduler
    noise; the work is deterministic so the minimum is the honest number).
    Returns ``(seconds, model, trainer)`` from the last repeat."""
    best = float("inf")
    trainer = model = None
    for _ in range(max(1, repeats)):
        trainer = GPUGBDTTrainer(params, use_arena=use_arena)
        t0 = time.perf_counter()
        model = trainer.fit(X, y)
        best = min(best, time.perf_counter() - t0)
    assert trainer is not None and model is not None
    return best, model, trainer


def run_workload(spec: WorkloadSpec, repeats: int = 3) -> WorkloadResult:
    """Time one workload with the arena off and on, and verify identity."""
    X, y = make_hotpath_data(spec.n_rows, spec.n_cols)
    params = spec.params()
    off_s, off_model, _ = _time_fit(params, X, y, use_arena=False, repeats=repeats)
    # a private tracer around the arena-on repeats captures the phase spans
    # the trainer emits; reported per fit so they compare against arena_on_s
    tracer = Tracer()
    with use_tracer(tracer):
        on_s, on_model, on_tr = _time_fit(params, X, y, use_arena=True, repeats=repeats)
    n_fits = max(1, repeats)
    phases = {p: tracer.total_time(p) / n_fits for p in PHASES}
    identical = off_model.to_json() == on_model.to_json()
    return WorkloadResult(
        workload=spec.name,
        gated=spec.gated,
        arena_off_s=off_s,
        arena_on_s=on_s,
        speedup=off_s / on_s if on_s > 0 else float("inf"),
        identical_models=identical,
        arena_reserved_bytes=on_tr.workspace.reserved_bytes,
        arena_buffers=on_tr.workspace.n_buffers,
        phases=phases,
    )


def run_hotpath(
    workloads: List[str] | None = None, repeats: int = 3
) -> HotpathResult:
    """Run the named workloads (default: all but ``smoke``)."""
    names = workloads if workloads is not None else ["medium", "rle", "deep"]
    rows = [run_workload(HOTPATH_WORKLOADS[name], repeats=repeats) for name in names]
    return HotpathResult(rows=rows, repeats=repeats)


def write_hotpath_json(result: HotpathResult, path: str | Path | None = None) -> Path:
    """Write ``BENCH_hotpath.json``: one document with per-workload rows.

    ``path=None`` uses the standard bench output location
    (:func:`repro.bench.output.bench_output_path`).
    """
    from .output import bench_output_path

    path = Path(path) if path is not None else bench_output_path("hotpath")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(result.payload(), indent=1, sort_keys=True), encoding="utf-8"
    )
    return path


def main(argv: List[str] | None = None) -> int:
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workloads", nargs="*", default=None, help="subset of workload names")
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_hotpath.json at the repo root)",
    )
    args = ap.parse_args(argv)
    result = run_hotpath(args.workloads, repeats=args.repeats)
    print(result.text)
    bad = [r.workload for r in result.rows if not r.identical_models]
    print(f"[-> {write_hotpath_json(result, args.out)}]")
    if bad:
        print(f"ERROR: arena changed the trees on: {', '.join(bad)}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
