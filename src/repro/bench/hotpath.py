"""Hot-path wall-clock benchmark: workspace arena on vs. off.

Unlike the rest of :mod:`repro.bench` -- which reports *modeled* seconds
from the simulated device's cost model -- this module measures the real
wall-clock time of the training hot path.  The quantity under test is the
effect of the :class:`~repro.core.workspace.WorkspaceArena`: with the arena
enabled the level loop of :meth:`GPUGBDTTrainer._grow_tree` runs on reused
preallocated buffers instead of allocating fresh ``np.empty`` /
``np.concatenate`` temporaries at every level.

Three fixed synthetic workloads:

``medium``
    The gated workload: dense-ish sparse-path training (``rle_policy
    "never"``), the regime the arena targets.  ``results/perf_baseline.json``
    records its expected speedup and absolute times, and
    ``tests/test_perf_smoke.py`` gates on them with generous slack.
``rle``
    Same trainer with RLE-compressed attribute lists (informational: run
    splitting adds run-linear work the arena only partly absorbs).
``deep``
    Many small levels (informational: Python per-call overhead dominates).

Every run also asserts that arena-on and arena-off produce **byte-identical
serialized models** -- the benchmark refuses to report a speedup obtained by
changing the trees.

Each workload additionally carries a **histogram-trainer section**
(:func:`run_hist_workload`): full sibling builds vs. sibling histogram
subtraction (exact -- byte-identity asserted) vs. GOSS sampling (holdout
RMSE ratio reported, gated by ``tests/test_goss.py``), with per-fit
``find_split``-phase wall seconds so the JSON shows the subtraction trick
cutting the histogram-build phase on the gated workload.

Run via pytest (``benchmarks/bench_hotpath.py``) or directly::

    PYTHONPATH=src python -m repro.bench.hotpath

Results land as ``BENCH_hotpath.json`` in the standard bench output
location (repo root, or ``$BENCH_METRICS_DIR`` -- see
:mod:`repro.bench.output`); ``--out`` overrides the path.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from ..approx.histogram_trainer import HistogramGBDTTrainer
from ..core.params import GBDTParams
from ..core.trainer import GPUGBDTTrainer
from ..data.matrix import CSRMatrix
from ..metrics import rmse
from ..obs import Tracer, use_tracer
from ..obs.runstore import PHASES

__all__ = [
    "HOTPATH_WORKLOADS",
    "HistWorkloadResult",
    "HotpathResult",
    "WorkloadSpec",
    "make_hotpath_data",
    "run_hist_workload",
    "run_hotpath",
    "run_workload",
    "write_hotpath_json",
]


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """One fixed synthetic training configuration."""

    name: str
    n_rows: int
    n_cols: int
    n_trees: int
    max_depth: int
    rle_policy: str
    gated: bool  # participates in the perf-smoke gate

    def params(self) -> GBDTParams:
        return GBDTParams(
            n_trees=self.n_trees,
            max_depth=self.max_depth,
            learning_rate=0.3,
            lambda_=1.0,
            rle_policy=self.rle_policy,
            seed=7,
        )


#: The fixed workload set.  ``medium`` is the acceptance-gated one.
HOTPATH_WORKLOADS: Dict[str, WorkloadSpec] = {
    "medium": WorkloadSpec("medium", 8000, 16, 10, 6, "never", gated=True),
    "rle": WorkloadSpec("rle", 4000, 12, 10, 6, "always", gated=False),
    "deep": WorkloadSpec("deep", 1000, 20, 20, 8, "paper", gated=False),
    # tiny variant for CI smoke runs; same code paths, seconds not gated
    "smoke": WorkloadSpec("smoke", 600, 8, 4, 4, "never", gated=False),
}


def make_hotpath_data(
    n_rows: int, n_cols: int, seed: int = 0
) -> Tuple[CSRMatrix, np.ndarray]:
    """Deterministic synthetic regression data with the shapes the hot path
    cares about: ~80% density, quantized (RLE-friendly) columns, and one
    constant column."""
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(n_rows, n_cols))
    for j in range(0, n_cols, 3):
        dense[:, j] = np.round(dense[:, j] * 2) / 2
    dense[:, 1 % n_cols] = 1.0
    mask = rng.random((n_rows, n_cols)) < 0.8
    y = dense @ rng.normal(size=n_cols) + rng.normal(scale=0.1, size=n_rows)
    r, c = np.nonzero(mask)
    X = CSRMatrix.from_coo(r, c, dense[r, c], n_rows=n_rows, n_cols=n_cols)
    return X, y


@dataclasses.dataclass
class WorkloadResult:
    """Timing of one workload, arena off vs. on."""

    workload: str
    gated: bool
    arena_off_s: float
    arena_on_s: float
    speedup: float
    identical_models: bool
    arena_reserved_bytes: int
    arena_buffers: int
    #: per-fit mean wall seconds in each training phase during the arena-on
    #: repeats (the run store's gate attributes regressions to these)
    phases: Dict[str, float] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class HistWorkloadResult:
    """Histogram-trainer hot path on one workload: full sibling builds vs.
    sibling subtraction vs. GOSS sampling.

    Subtraction is exact (``identical_models`` must hold); GOSS is not, so
    its row carries a holdout-RMSE ratio against full-data training instead
    of an identity bit.  ``find_split_*_s`` are best-of per-fit wall seconds
    in the ``find_split`` phase (the histogram build + scan these
    optimizations target) from the trainer's tracer spans;
    ``find_split_model_*_s`` are the simulated device's modeled seconds for
    the same phase.  The modeled number is the gated one: subtraction
    halves the atomic scatter traffic the cost model charges per histogram
    entry (the paper's regime), which the numpy host -- whose per-entry
    masking work is unchanged -- only partly reflects in wall time on
    balanced splits."""

    workload: str
    gated: bool
    full_s: float
    subtract_s: float
    speedup: float
    find_split_full_s: float
    find_split_subtract_s: float
    find_split_speedup: float
    find_split_model_full_s: float
    find_split_model_subtract_s: float
    find_split_model_speedup: float
    identical_models: bool
    goss_s: float
    goss_find_split_s: float
    goss_find_split_model_s: float
    goss_rmse_ratio: float


@dataclasses.dataclass
class HotpathResult:
    """All workload timings plus the rendered table."""

    rows: List[WorkloadResult]
    repeats: int
    hist_rows: List[HistWorkloadResult] = dataclasses.field(default_factory=list)

    @property
    def text(self) -> str:
        hdr = f"{'workload':>10} {'off (s)':>9} {'on (s)':>9} {'speedup':>8}  gated"
        lines = ["arena off vs. on (exact trainer)", hdr, "-" * len(hdr)]
        for r in self.rows:
            lines.append(
                f"{r.workload:>10} {r.arena_off_s:>9.4f} {r.arena_on_s:>9.4f}"
                f" {r.speedup:>7.2f}x  {'yes' if r.gated else 'no'}"
            )
        if self.hist_rows:
            hdr2 = (
                f"{'workload':>10} {'full fs(s)':>11} {'sub fs(s)':>10}"
                f" {'fs spdup':>9} {'model spdup':>12} {'goss (s)':>9}"
                f" {'rmse rat':>9}  identical"
            )
            lines += [
                "",
                "histogram trainer -- full build vs. sibling subtraction vs. GOSS"
                " (fs = find_split phase; model spdup = device cost model)",
                hdr2,
                "-" * len(hdr2),
            ]
            for h in self.hist_rows:
                lines.append(
                    f"{h.workload:>10} {h.find_split_full_s:>11.4f}"
                    f" {h.find_split_subtract_s:>10.4f}"
                    f" {h.find_split_speedup:>8.2f}x"
                    f" {h.find_split_model_speedup:>11.2f}x {h.goss_s:>9.4f}"
                    f" {h.goss_rmse_ratio:>9.3f}"
                    f"  {'yes' if h.identical_models else 'NO'}"
                )
        return "\n".join(lines)

    def row(self, workload: str) -> WorkloadResult:
        for r in self.rows:
            if r.workload == workload:
                return r
        raise KeyError(workload)

    def hist_row(self, workload: str) -> HistWorkloadResult:
        for r in self.hist_rows:
            if r.workload == workload:
                return r
        raise KeyError(workload)

    def payload(self) -> Dict:
        """The ``BENCH_hotpath.json`` document: per-workload rows plus a
        top-level phase breakdown (summed across workloads) that the run
        store's gate uses for regression attribution."""
        from .regress import to_payload

        # asdict first: to_payload's cleaner keeps scalars/containers only
        # and would silently drop the nested WorkloadResult dataclasses
        doc = to_payload(dataclasses.asdict(self))
        doc["phases"] = {
            p: sum(r.phases.get(p, 0.0) for r in self.rows) for p in PHASES
        }
        return doc


def _time_fit(params, X, y, use_arena: bool, repeats: int):
    """Best-of-``repeats`` wall-clock fit time (best-of defeats scheduler
    noise; the work is deterministic so the minimum is the honest number).
    Returns ``(seconds, model, trainer)`` from the last repeat."""
    best = float("inf")
    trainer = model = None
    for _ in range(max(1, repeats)):
        trainer = GPUGBDTTrainer(params, use_arena=use_arena)
        t0 = time.perf_counter()
        model = trainer.fit(X, y)
        best = min(best, time.perf_counter() - t0)
    assert trainer is not None and model is not None
    return best, model, trainer


def run_workload(spec: WorkloadSpec, repeats: int = 3) -> WorkloadResult:
    """Time one workload with the arena off and on, and verify identity."""
    X, y = make_hotpath_data(spec.n_rows, spec.n_cols)
    params = spec.params()
    off_s, off_model, _ = _time_fit(params, X, y, use_arena=False, repeats=repeats)
    # a private tracer around the arena-on repeats captures the phase spans
    # the trainer emits; reported per fit so they compare against arena_on_s
    tracer = Tracer()
    with use_tracer(tracer):
        on_s, on_model, on_tr = _time_fit(params, X, y, use_arena=True, repeats=repeats)
    n_fits = max(1, repeats)
    phases = {p: tracer.total_time(p) / n_fits for p in PHASES}
    identical = off_model.to_json() == on_model.to_json()
    return WorkloadResult(
        workload=spec.name,
        gated=spec.gated,
        arena_off_s=off_s,
        arena_on_s=on_s,
        speedup=off_s / on_s if on_s > 0 else float("inf"),
        identical_models=identical,
        arena_reserved_bytes=on_tr.workspace.reserved_bytes,
        arena_buffers=on_tr.workspace.n_buffers,
        phases=phases,
    )


_HIST_MAX_BINS = 64


def _time_hist_fit(params, X, y, repeats: int, **trainer_kw):
    """Best-of-``repeats`` wall seconds for a histogram-trainer fit plus the
    best-of per-fit ``find_split``-phase wall seconds (from the trainer's
    tracer spans; best-of defeats scheduler noise, same as the wall number)
    and the modeled ``find_split`` device seconds (deterministic, so taken
    from the last fit).  Returns ``(seconds, find_split_s,
    find_split_model_s, model)``."""
    from ..gpusim.timeline import profile

    best = float("inf")
    best_fs = float("inf")
    trainer = model = None
    for _ in range(max(1, repeats)):
        trainer = HistogramGBDTTrainer(
            params, max_bins=_HIST_MAX_BINS, **trainer_kw
        )
        tracer = Tracer()
        with use_tracer(tracer):
            t0 = time.perf_counter()
            model = trainer.fit(X, y)
            best = min(best, time.perf_counter() - t0)
        best_fs = min(best_fs, tracer.total_time("find_split"))
    assert trainer is not None and model is not None
    model_fs = sum(
        s.seconds for s in profile(trainer.device) if s.phase == "find_split"
    )
    return best, best_fs, model_fs, model


def run_hist_workload(spec: WorkloadSpec, repeats: int = 3) -> HistWorkloadResult:
    """Histogram trainer on one workload: full sibling builds, sibling
    subtraction, and GOSS (a=0.2, b=0.2), on a 75/25 train/holdout split so
    the GOSS row carries an honest generalization ratio."""
    X, y = make_hotpath_data(spec.n_rows, spec.n_cols)
    cut = (spec.n_rows * 3) // 4
    tr = np.arange(cut, dtype=np.int64)
    te = np.arange(cut, spec.n_rows, dtype=np.int64)
    Xtr, ytr = X.select_rows(tr), y[tr]
    Xte, yte = X.select_rows(te), y[te]
    params = spec.params()

    full_s, fs_full, mfs_full, full_model = _time_hist_fit(
        params, Xtr, ytr, repeats, use_subtraction=False
    )
    sub_s, fs_sub, mfs_sub, sub_model = _time_hist_fit(
        params, Xtr, ytr, repeats, use_subtraction=True
    )
    goss_s, fs_goss, mfs_goss, goss_model = _time_hist_fit(
        params.replace(goss_a=0.2, goss_b=0.2), Xtr, ytr, repeats
    )
    r_full = rmse(yte, full_model.predict(Xte))
    r_goss = rmse(yte, goss_model.predict(Xte))
    return HistWorkloadResult(
        workload=spec.name,
        gated=spec.gated,
        full_s=full_s,
        subtract_s=sub_s,
        speedup=full_s / sub_s if sub_s > 0 else float("inf"),
        find_split_full_s=fs_full,
        find_split_subtract_s=fs_sub,
        find_split_speedup=fs_full / fs_sub if fs_sub > 0 else float("inf"),
        find_split_model_full_s=mfs_full,
        find_split_model_subtract_s=mfs_sub,
        find_split_model_speedup=(
            mfs_full / mfs_sub if mfs_sub > 0 else float("inf")
        ),
        identical_models=full_model.to_json() == sub_model.to_json(),
        goss_s=goss_s,
        goss_find_split_s=fs_goss,
        goss_find_split_model_s=mfs_goss,
        goss_rmse_ratio=r_goss / r_full if r_full > 0 else float("inf"),
    )


def run_hotpath(
    workloads: List[str] | None = None, repeats: int = 3
) -> HotpathResult:
    """Run the named workloads (default: all but ``smoke``)."""
    names = workloads if workloads is not None else ["medium", "rle", "deep"]
    rows = [run_workload(HOTPATH_WORKLOADS[name], repeats=repeats) for name in names]
    hist_rows = [
        run_hist_workload(HOTPATH_WORKLOADS[name], repeats=repeats)
        for name in names
    ]
    return HotpathResult(rows=rows, repeats=repeats, hist_rows=hist_rows)


def write_hotpath_json(result: HotpathResult, path: str | Path | None = None) -> Path:
    """Write ``BENCH_hotpath.json``: one document with per-workload rows.

    ``path=None`` uses the standard bench output location
    (:func:`repro.bench.output.bench_output_path`).
    """
    from .output import bench_output_path

    path = Path(path) if path is not None else bench_output_path("hotpath")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(result.payload(), indent=1, sort_keys=True), encoding="utf-8"
    )
    return path


def main(argv: List[str] | None = None) -> int:
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workloads", nargs="*", default=None, help="subset of workload names")
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_hotpath.json at the repo root)",
    )
    args = ap.parse_args(argv)
    result = run_hotpath(args.workloads, repeats=args.repeats)
    print(result.text)
    bad = [r.workload for r in result.rows if not r.identical_models]
    bad += [
        f"{h.workload} (subtraction)"
        for h in result.hist_rows
        if not h.identical_models
    ]
    print(f"[-> {write_hotpath_json(result, args.out)}]")
    if bad:
        print(f"ERROR: optimization changed the trees on: {', '.join(bad)}")
        return 1
    slow = [
        h.workload
        for h in result.hist_rows
        if h.gated and h.find_split_model_speedup <= 1.0
    ]
    if slow:
        print(
            "ERROR: subtraction did not reduce modeled find_split time on "
            f"gated workloads: {', '.join(slow)}"
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
