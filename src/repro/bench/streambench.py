"""Out-of-core streaming bench: identity, cache behavior, modeled overlap.

Fits the streaming trainer over a grid of ``block_rows`` x cache budget x
RLE on/off on a fixed covtype sample, verifies each configuration's model
is byte-identical to the in-memory reference, and records per-configuration
cache-engagement counters plus the modeled io-vs-compute overlap.  Results
land in ``BENCH_stream.json`` (standard location, see
:func:`repro.bench.output.write_bench_json`) with run-store-stable metric
names so ``gpu-gbdt runs submit|gate`` can trend and regression-gate them.

Run with ``python -m repro.bench.streambench [--quick]``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from ..approx.histogram_trainer import HistogramGBDTTrainer
from ..core.params import GBDTParams
from ..data.datasets import make_dataset
from ..gpusim.costmodel import phase_times
from ..gpusim.kernel import GpuDevice
from ..obs import MetricsRegistry, use_registry
from ..pipeline.checkpoint import model_digest
from ..stream import StreamingHistTrainer
from ..stream.prefetch import modeled_overlap

__all__ = ["run_stream_bench", "main"]

_COUNTERS = (
    "blocks_spilled_total",
    "blocks_fetched_total",
    "prefetch_hits_total",
    "io_wait_seconds_total",
)


def _grid(quick: bool) -> List[Dict[str, Any]]:
    # tight budgets (below the dataset's total block bytes, above the
    # pinned prefetch working set) exercise the spill/fetch path; roomy
    # ones are the everything-resident contrast
    if quick:
        return [
            {"block_rows": 32, "budget": 24 << 10, "rle": True},
            {"block_rows": 32, "budget": 36 << 10, "rle": False},
            {"block_rows": 150, "budget": 256 << 10, "rle": True},
        ]
    return [
        {"block_rows": 64, "budget": 48 << 10, "rle": True},
        {"block_rows": 64, "budget": 64 << 10, "rle": False},
        {"block_rows": 100, "budget": 64 << 10, "rle": True},
        {"block_rows": 150, "budget": 512 << 10, "rle": True},
        {"block_rows": 300, "budget": 512 << 10, "rle": True},
        {"block_rows": 300, "budget": 512 << 10, "rle": False},
    ]


def run_stream_bench(quick: bool = False) -> Dict[str, Any]:
    """Run the grid; returns the ``BENCH_stream.json`` payload."""
    rows = 300 if quick else 600
    n_trees = 2 if quick else 4
    ds = make_dataset("covtype", run_rows=rows, seed=3)
    params = GBDTParams(n_trees=n_trees, max_depth=4, seed=7)

    t0 = time.perf_counter()
    reference = HistogramGBDTTrainer(params).fit(ds.X, ds.y)
    inmem_wall_s = time.perf_counter() - t0
    ref_json = reference.to_json()
    ref_digest = model_digest(reference)

    configs: List[Dict[str, Any]] = []
    all_identical = True
    for cfg in _grid(quick):
        device = GpuDevice()
        registry = MetricsRegistry(max_label_sets=4096)
        t0 = time.perf_counter()
        with use_registry(registry):
            trainer = StreamingHistTrainer(
                params,
                device,
                block_rows=cfg["block_rows"],
                cache_budget_bytes=cfg["budget"],
                use_rle=cfg["rle"],
            )
            model = trainer.fit(ds.X, ds.y)
        wall_s = time.perf_counter() - t0
        identical = model.to_json() == ref_json
        all_identical = all_identical and identical
        overlap = modeled_overlap(device)
        row: Dict[str, Any] = {
            "name": (
                f"b{cfg['block_rows']}-kb{cfg['budget'] >> 10}-"
                f"rle{int(cfg['rle'])}"
            ),
            "block_rows": cfg["block_rows"],
            "cache_budget_bytes": cfg["budget"],
            "rle": cfg["rle"],
            "identical": identical,
            "n_blocks": len(trainer._block_ids),
            "wall_s": wall_s,
            "peak_resident_bytes": trainer.store_.peak_resident_bytes,
            "modeled_disk_bytes": device.ledger.disk_bytes,
        }
        for name in _COUNTERS:
            inst = registry.get(name)
            row[name] = float(inst.value) if inst is not None else 0.0
        row.update(overlap)
        configs.append(row)

    # phase split of the last configuration, for the run-store "phases" view
    phases = {
        p: t for p, t in phase_times(device.spec, device.ledger, device.disk).items()
    }

    return {
        "workload": {
            "dataset": "covtype",
            "n_rows": rows,
            "n_trees": n_trees,
            "max_depth": 4,
            "quick": quick,
        },
        "reference": {"digest": ref_digest, "inmem_wall_s": inmem_wall_s},
        "all_identical": all_identical,
        "configs": configs,
        "phases": phases,
    }


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="smoke-scale grid")
    args = ap.parse_args(argv)

    from .output import write_bench_json

    payload = run_stream_bench(quick=args.quick)
    path = write_bench_json("stream", payload)
    for row in payload["configs"]:
        flag = "ok " if row["identical"] else "DIFF"
        print(
            f"{flag} {row['name']:>18}: peak {row['peak_resident_bytes']:>8} B, "
            f"{row['blocks_spilled_total']:.0f} spills, "
            f"{row['blocks_fetched_total']:.0f} fetches, "
            f"overlap {row['overlap_speedup']:.2f}x, wall {row['wall_s']:.2f}s"
        )
    print(f"[wrote {path}]")
    return 0 if payload["all_identical"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    raise SystemExit(main())
