"""Crash-safe file I/O shared by model persistence, checkpoints, and blocks.

A file that readers may load at any time must never be observable in a
half-written state.  :func:`atomic_write_text` follows the standard recipe:
write to a temporary file *in the destination directory* (so the rename
stays on one filesystem), flush + fsync the data, atomically rename over
the destination, then fsync the directory so the rename itself survives a
power loss.  :func:`atomic_write_bytes` is the binary twin used by the
out-of-core block store (:mod:`repro.stream.blockstore`), whose spilled
column blocks are far cheaper to ship as raw array bytes than as text.

Fault injection
---------------
``fault_hook`` is called between the write steps with the step name
(``"begin"``, ``"written"``, ``"synced"``, ``"renamed"``).  A hook that
raises :class:`SimulatedCrash` models a hard kill at that point: the
exception propagates *without* cleanup, leaving the filesystem exactly as a
``kill -9`` would (an orphaned ``*.tmp`` file at most -- never a partial
destination file).  Any other exception is treated as an ordinary error and
the temporary file is removed.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Callable, Optional

__all__ = [
    "SimulatedCrash",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_dir",
]


class SimulatedCrash(BaseException):
    """Raised by fault-injection hooks to model a hard process kill.

    Derives from ``BaseException`` so ordinary ``except Exception`` recovery
    code cannot accidentally swallow the simulated kill.
    """


def fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory (persists a completed rename)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write(
    path: Path,
    data: bytes | str,
    mode: str,
    encoding: Optional[str],
    hook: Callable[[str], None],
) -> Path:
    """The shared tmp-write + fsync + rename recipe (see module docstring)."""
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    tmp = Path(tmp_name)
    try:
        hook("begin")
        with os.fdopen(fd, mode, encoding=encoding) as fh:
            fh.write(data)
            hook("written")
            fh.flush()
            os.fsync(fh.fileno())
        hook("synced")
        os.replace(tmp, path)
        hook("renamed")
        fsync_dir(path.parent)
    except SimulatedCrash:
        raise  # a hard kill cleans nothing up
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return path


def atomic_write_text(
    path: Path | str,
    text: str,
    *,
    encoding: str = "utf-8",
    fault_hook: Optional[Callable[[str], None]] = None,
) -> Path:
    """Write ``text`` to ``path`` so readers see the old or the new content,
    never a mixture; returns the destination path."""
    hook = fault_hook if fault_hook is not None else (lambda step: None)
    return _atomic_write(Path(path), text, "w", encoding, hook)


def atomic_write_bytes(
    path: Path | str,
    data: bytes,
    *,
    fault_hook: Optional[Callable[[str], None]] = None,
) -> Path:
    """Binary :func:`atomic_write_text`: same crash-safety guarantees, same
    fault-injection steps, raw bytes instead of encoded text."""
    hook = fault_hook if fault_hook is not None else (lambda step: None)
    return _atomic_write(Path(path), data, "wb", None, hook)
