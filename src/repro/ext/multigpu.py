"""Multi-GPU GBDT training (the paper's stated future work, Section VI).

"Our algorithm is naturally applicable to multiple GPUs or GPU clusters,
and we consider this direction as our future work."  This module implements
the natural extension: **attribute-parallel** training, the layout later
adopted by ThunderGBM.  Attributes are sharded round-robin across devices;
every device holds the full instance set but only its attributes' sorted
(optionally RLE-compressed) lists.

Per level:

1. every device finds the best split of every active node *among its own
   attributes* (the unmodified single-GPU kernels of
   :mod:`repro.core.split`);
2. the per-node winners are combined across devices (an allreduce of a few
   dozen bytes per node; ties break to the globally lowest attribute, the
   single-GPU rule);
3. the device owning each winning attribute materializes the instance
   routing and the side array is broadcast (1 byte per instance per peer,
   charged as PCIe traffic);
4. every device partitions its own lists locally.

Gradients are computed on device 0 and broadcast each round.  The trees are
bit-identical to single-GPU training (asserted by ``tests/test_multigpu.py``)
because every decision consumes the same float32-quantized gains.

The modeled wall time is the slowest device's ledger (shards are balanced,
communication is charged to the devices that perform it).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.booster_model import GBDTModel
from ..core.params import GBDTParams
from ..core.partition import partition_segments, plan_partition
from ..core.rle_split import split_runs_direct, split_runs_with_decompression
from ..core.smartgd import GradientComputer
from ..core.split import SegmentLayout, find_best_splits_rle, find_best_splits_sparse
from ..core.tree import DecisionTree
from ..data.matrix import CSCMatrix, CSRMatrix
from ..data.rle import decide_compression, encode_segments
from ..data.sorted_columns import build_sorted_columns
from ..gpusim.device import TITAN_X_PASCAL, DeviceSpec
from ..gpusim.kernel import GpuDevice
from ..obs import get_registry, span

__all__ = ["MultiGpuGBDTTrainer"]


def _comm(trainer: str, op: str, nbytes: float) -> None:
    """Count inter-device payload bytes next to the ledger charge."""
    get_registry().counter(
        "comm_bytes_total",
        "inter-device communication payload bytes",
        trainer=trainer,
        op=op,
    ).inc(float(nbytes))


class _Shard:
    """Per-device training state: the device and its attribute slice."""

    def __init__(self, device: GpuDevice, attrs: np.ndarray) -> None:
        self.device = device
        self.attrs = attrs  # global attribute ids, ascending
        self.inst: np.ndarray | None = None
        self.vals: np.ndarray | None = None
        self.rle = None
        self.layout: SegmentLayout | None = None
        self.base_inst: np.ndarray | None = None
        self.base_vals: np.ndarray | None = None
        self.base_rle = None
        self.base_offsets: np.ndarray | None = None


class MultiGpuGBDTTrainer:
    """Attribute-parallel GBDT training over ``n_devices`` simulated GPUs."""

    def __init__(
        self,
        params: GBDTParams | None = None,
        n_devices: int = 2,
        spec: DeviceSpec = TITAN_X_PASCAL,
        *,
        work_scale: float = 1.0,
        seg_scale: float = 1.0,
        row_scale: float = 1.0,
    ) -> None:
        if n_devices < 1:
            raise ValueError("need at least one device")
        self.params = params if params is not None else GBDTParams()
        self.devices = [
            GpuDevice(spec, work_scale=work_scale, seg_scale=seg_scale)
            for _ in range(n_devices)
        ]
        self.row_scale = float(row_scale)
        self.used_rle = False

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    def elapsed_seconds(self) -> float:
        """Modeled wall time: the slowest device (shards run concurrently)."""
        return max(dev.elapsed_seconds() for dev in self.devices)

    # ------------------------------------------------------------------- fit
    def fit(self, X: CSRMatrix, y: np.ndarray) -> GBDTModel:
        """Shard attributes across devices and train (see module docs)."""
        p = self.params
        y = np.asarray(y, dtype=np.float64)
        n, d = X.shape
        k = self.n_devices

        csc = X.to_csc()
        # one global compression decision so every shard uses the same path
        full_cols_sorted = build_sorted_columns(csc)  # host-side, for the decision
        self.used_rle = p.use_rle and decide_compression(
            p.rle_policy,
            n_rows=n,
            n_cols=d,
            values=full_cols_sorted.values,
            offsets=full_cols_sorted.col_offsets,
            paper_threshold=p.rle_paper_threshold,
            measured_threshold=p.rle_measured_threshold,
        )

        shards: List[_Shard] = []
        for di in range(k):
            attrs = np.arange(di, d, k, dtype=np.int64)  # round-robin
            if attrs.size == 0:
                continue  # more devices than attributes: this one idles
            shard = _Shard(self.devices[di], attrs)
            sub = self._column_subset(csc, attrs)
            with shard.device.phase("setup"):
                cols = build_sorted_columns(sub, shard.device)
                shard.base_inst = cols.inst
                shard.base_offsets = cols.col_offsets
                if self.used_rle:
                    shard.base_rle = encode_segments(cols.values, cols.col_offsets)
                    shard.device.launch(
                        "rle_compress_initial",
                        elements=cols.nnz,
                        flops_per_element=2.0,
                        coalesced_bytes=cols.nnz * 8 + shard.base_rle.n_runs * 16,
                    )
                    value_bytes = shard.base_rle.n_runs * 8
                else:
                    shard.base_vals = cols.values
                    value_bytes = cols.nnz * 4
                shard.device.transfer("upload_shard", cols.nnz * 4 + value_bytes)
            shards.append(shard)

        gc = GradientComputer(
            self.devices[0], p.loss_fn, y,
            use_smartgd=p.use_smartgd, row_scale=self.row_scale, X=X,
        )

        trees: List[DecisionTree] = []
        for round_ in range(p.n_trees):
            with span(
                "multigpu.boost_round", round=round_, devices=k, rle=self.used_rle
            ):
                with self.devices[0].phase("gradients"):
                    g, h = gc.compute()
                for dev in self.devices[1:]:
                    dev.transfer(
                        "broadcast_gradients", n * 16 * self.row_scale, scale=False
                    )
                    _comm(
                        "multigpu", "broadcast_gradients", n * 16 * self.row_scale
                    )
                tree = self._grow_tree(shards, X, g, h, gc)
                gc.on_tree_finished(tree)
                trees.append(tree)
        return GBDTModel(trees=trees, params=p, base_score=p.loss_fn.base_score(y))

    # ---------------------------------------------------------------- helpers
    @staticmethod
    def _column_subset(csc: CSCMatrix, attrs: np.ndarray) -> CSCMatrix:
        """CSC restricted to the given columns (in the given order)."""
        parts_idx = [csc.indices[csc.indptr[j] : csc.indptr[j + 1]] for j in attrs]
        parts_val = [csc.data[csc.indptr[j] : csc.indptr[j + 1]] for j in attrs]
        lens = np.array([p.size for p in parts_idx], dtype=np.int64)
        indptr = np.concatenate(([0], np.cumsum(lens)))
        indices = np.concatenate(parts_idx) if parts_idx else np.empty(0, np.int64)
        data = np.concatenate(parts_val) if parts_val else np.empty(0)
        return CSCMatrix(indptr, indices, data, n_rows=csc.n_rows)

    # --------------------------------------------------------------- growing
    def _grow_tree(
        self,
        shards: List[_Shard],
        X: CSRMatrix,
        g: np.ndarray,
        h: np.ndarray,
        gc: GradientComputer,
    ) -> DecisionTree:
        p = self.params
        n, d = X.shape
        k = self.n_devices

        tree = DecisionTree()
        tree.add_root(n)

        for shard in shards:
            shard.inst = shard.base_inst.copy()
            shard.vals = None if self.used_rle else shard.base_vals.copy()
            shard.rle = shard.base_rle
            shard.layout = SegmentLayout(shard.base_offsets.copy(), 1, shard.attrs.size)
            shard.device.launch(
                "stage_attribute_lists",
                elements=shard.base_inst.size,
                flops_per_element=0.5,
                coalesced_bytes=shard.base_inst.size * 16,
            )

        inst2local = np.zeros(n, dtype=np.int64)
        node_tree_ids = np.array([0], dtype=np.int64)
        node_g = np.array([float(np.bincount(np.zeros(n, np.int64), weights=g)[0])])
        node_h = np.array([float(np.bincount(np.zeros(n, np.int64), weights=h)[0])])
        node_n = np.array([n], dtype=np.int64)

        for _depth in range(p.max_depth):
            n_active = node_tree_ids.size
            # 1. local split finding on every shard
            bests = []
            for shard in shards:
                with shard.device.phase("find_split"):
                    if self.used_rle:
                        b = find_best_splits_rle(
                            shard.device, shard.rle, shard.inst, shard.layout,
                            g, h, node_g, node_h, node_n,
                            lambda_=p.lambda_, setkey_enabled=p.use_custom_setkey,
                            setkey_c=p.setkey_c,
                        )
                    else:
                        b = find_best_splits_sparse(
                            shard.device, shard.vals, shard.inst, shard.layout,
                            g, h, node_g, node_h, node_n,
                            lambda_=p.lambda_, setkey_enabled=p.use_custom_setkey,
                            setkey_c=p.setkey_c,
                        )
                bests.append(b)

            # 2. allreduce: global winner per node (ties -> lowest global attr)
            win_dev = np.full(n_active, -1, dtype=np.int64)
            win_gain = np.full(n_active, -np.inf)
            win_attr = np.full(n_active, -1, dtype=np.int64)
            for di, (shard, b) in enumerate(zip(shards, bests)):
                gattr = np.where(b.attr >= 0, shard.attrs[np.maximum(b.attr, 0)], -1)
                better = b.found & (
                    (b.gain > win_gain)
                    | ((b.gain == win_gain) & (gattr < win_attr) & (win_attr >= 0))
                )
                win_dev[better] = di
                win_gain[better] = b.gain[better]
                win_attr[better] = gattr[better]
            for shard in shards:
                shard.device.transfer(
                    "allreduce_best_splits", n_active * 64 * (k - 1), scale=False
                )
                _comm(
                    "multigpu", "allreduce_best_splits", n_active * 64 * (k - 1)
                )

            split_mask = (win_dev >= 0) & (win_gain > p.gamma)

            # 3. leaves
            leaf_locals = np.flatnonzero(~split_mask)
            if leaf_locals.size:
                values = np.zeros(n_active)
                values[leaf_locals] = (
                    -p.learning_rate * node_g[leaf_locals] / (node_h[leaf_locals] + p.lambda_)
                )
                for loc in leaf_locals:
                    tree.set_leaf(int(node_tree_ids[loc]), float(values[loc]))
                is_leaf_local = np.zeros(n_active, dtype=bool)
                is_leaf_local[leaf_locals] = True
                safe = np.maximum(inst2local, 0)
                settled = (inst2local >= 0) & is_leaf_local[safe]
                ids = np.flatnonzero(settled)
                gc.on_leaves(ids, values[inst2local[ids]])
                inst2local[ids] = -1
            if not split_mask.any():
                break

            split_locals = np.flatnonzero(split_mask)
            kk = split_locals.size

            # 4. tree bookkeeping with the winners' records
            new_tree_ids = np.empty(2 * kk, dtype=np.int64)
            for j, loc in enumerate(split_locals):
                b = bests[win_dev[loc]]
                lid, rid = tree.split_node(
                    int(node_tree_ids[loc]),
                    int(win_attr[loc]),
                    float(b.threshold[loc]),
                    bool(b.default_left[loc]),
                    float(b.gain[loc]),
                    n_left=int(b.left_n[loc]),
                    n_right=int(node_n[loc] - b.left_n[loc]),
                )
                new_tree_ids[2 * j] = lid
                new_tree_ids[2 * j + 1] = rid

            # 5. instance routing: winner devices materialize the side array
            new_local_of = np.full(n_active, -1, dtype=np.int64)
            new_local_of[split_locals] = 2 * np.arange(kk, dtype=np.int64)
            side_inst = np.full(n, -1, dtype=np.int8)
            safe = np.maximum(inst2local, 0)
            active = (inst2local >= 0) & split_mask[safe]
            for loc in split_locals:
                b = bests[win_dev[loc]]
                default = 0 if b.default_left[loc] else 1
                members = active & (inst2local == loc)
                side_inst[members] = default
            for di, shard in enumerate(shards):
                owned = split_locals[win_dev[split_locals] == di]
                if owned.size == 0:
                    continue
                b = bests[di]
                S = shard.layout.n_segments
                split_pos = np.full(S, -1, dtype=np.int64)
                split_pos[b.seg[owned]] = b.elem_pos[owned]
                sid = np.repeat(np.arange(S, dtype=np.int64), np.diff(shard.layout.offsets))
                chosen = split_pos[sid] >= 0
                elem_idx = np.arange(shard.layout.n_elements, dtype=np.int64)
                es = (elem_idx < split_pos[sid]).astype(np.int8)
                side_inst[shard.inst[chosen]] = np.where(es[chosen] == 1, 0, 1)
                shard.device.launch(
                    "materialize_instance_sides",
                    elements=n * self.row_scale,
                    flops_per_element=2.0,
                    coalesced_bytes=n * self.row_scale * 9,
                    scale=False,
                )
                shard.device.transfer(
                    "broadcast_side_array", n * self.row_scale * (k - 1), scale=False
                )
                _comm(
                    "multigpu", "broadcast_side_array", n * self.row_scale * (k - 1)
                )
            inst2local = np.where(active, new_local_of[safe] + side_inst, -1)

            # 6. local partitioning on every shard
            for shard in shards:
                d_dev = shard.attrs.size
                seg_node = shard.layout.seg_node()
                seg_attr = shard.layout.seg_attr()
                splitting_seg = split_mask[seg_node]
                child_base = new_local_of[seg_node]
                left_seg = np.where(splitting_seg, child_base * d_dev + seg_attr, -1)
                right_seg = np.where(splitting_seg, (child_base + 1) * d_dev + seg_attr, -1)
                side_ent = side_inst[shard.inst]
                plan = plan_partition(
                    int(shard.layout.n_elements * shard.device.work_scale), kk,
                    max_counter_mem_bytes=p.max_counter_mem_bytes,
                    use_custom_workload=p.use_custom_workload,
                    fixed_thread_workload=p.fixed_thread_workload,
                )
                with shard.device.phase("split_node"):
                    dest, new_offsets = partition_segments(
                        shard.device, shard.layout.offsets, side_ent,
                        left_seg, right_seg, 2 * kk * d_dev, plan,
                        bytes_per_element=8 if self.used_rle else 16,
                    )
                    keep = dest >= 0
                    n_new = int(new_offsets[-1])
                    new_inst = np.empty(n_new, dtype=np.int64)
                    new_inst[dest[keep]] = shard.inst[keep]
                    if self.used_rle:
                        if p.use_direct_rle:
                            shard.rle = split_runs_direct(
                                shard.device, shard.rle, side_ent,
                                left_seg, right_seg, 2 * kk * d_dev,
                            )
                        else:
                            shard.rle = split_runs_with_decompression(
                                shard.device, shard.rle, dest, new_offsets
                            )
                    else:
                        new_vals = np.empty(n_new)
                        new_vals[dest[keep]] = shard.vals[keep]
                        shard.vals = new_vals
                    shard.inst = new_inst
                    shard.layout = SegmentLayout(new_offsets, 2 * kk, d_dev)

            # 7. child statistics from the winners
            lg = np.array([bests[win_dev[loc]].left_g[loc] for loc in split_locals])
            lh = np.array([bests[win_dev[loc]].left_h[loc] for loc in split_locals])
            ln = np.array([bests[win_dev[loc]].left_n[loc] for loc in split_locals])
            pg, ph, pn = node_g[split_locals], node_h[split_locals], node_n[split_locals]
            node_g = np.empty(2 * kk)
            node_h = np.empty(2 * kk)
            node_n = np.empty(2 * kk, dtype=np.int64)
            node_g[0::2], node_g[1::2] = lg, pg - lg
            node_h[0::2], node_h[1::2] = lh, ph - lh
            node_n[0::2], node_n[1::2] = ln, pn - ln
            node_tree_ids = new_tree_ids

        # depth budget exhausted: finalize the still-active nodes
        if node_tree_ids.size and (inst2local >= 0).any():
            values = -p.learning_rate * node_g / (node_h + p.lambda_)
            for loc in range(node_tree_ids.size):
                tree.set_leaf(int(node_tree_ids[loc]), float(values[loc]))
            safe = np.maximum(inst2local, 0)
            ids = np.flatnonzero(inst2local >= 0)
            gc.on_leaves(ids, values[inst2local[ids]])
            inst2local[:] = -1
        return tree
