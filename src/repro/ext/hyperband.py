"""Time-budget hyper-parameter search (Section IV-E, case study iii).

The paper's Kaggle scenario trains 144 models over the grid
``T x d x gamma x eta`` and reports ~22.3 days on the 20-core workstation
vs. ~10 days with GPU-GBDT.  This module provides:

* :func:`paper_search_grid` -- exactly that grid;
* :class:`TimeBudgetSearch.estimate` -- modeled total grid cost on GPU and
  CPU, from per-depth probe trainings (cost per tree is depth-driven and
  nearly independent of ``gamma``/``eta``);
* :class:`TimeBudgetSearch.run_within_budget` -- actually train
  configurations in grid order until a modeled-seconds budget is exhausted
  and return the best model by held-out RMSE (the "train an effective model
  in a given time budget" application).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Sequence, Tuple

from ..core.params import GBDTParams
from ..data.datasets import Dataset
from ..metrics import rmse
from ..bench.harness import run_cpu_baseline, run_gpu_gbdt

__all__ = ["SearchConfig", "SearchSummary", "TimeBudgetSearch", "paper_search_grid"]


@dataclasses.dataclass(frozen=True)
class SearchConfig:
    """One point of the hyper-parameter grid."""

    n_trees: int
    max_depth: int
    gamma: float
    learning_rate: float

    def params(self, base: GBDTParams | None = None) -> GBDTParams:
        """Materialize this grid point as trainer parameters."""
        b = base if base is not None else GBDTParams()
        return b.replace(
            n_trees=self.n_trees,
            max_depth=self.max_depth,
            gamma=self.gamma,
            learning_rate=self.learning_rate,
        )


def paper_search_grid(quick: bool = False) -> List[SearchConfig]:
    """The paper's 144-configuration grid (Section IV-E iii)."""
    if quick:
        trees, depths, gammas, etas = (4, 8), (2, 4), (0.0,), (0.3,)
    else:
        trees = (500, 1000, 2000, 4000)
        depths = (2, 4, 6, 8)
        gammas = (0.0, 0.1, 0.2)
        etas = (0.2, 0.3, 0.4)
    return [
        SearchConfig(t, d, g, e)
        for t, d, g, e in itertools.product(trees, depths, gammas, etas)
    ]


@dataclasses.dataclass
class SearchSummary:
    """Aggregate cost estimate of a grid."""

    n_configs: int
    gpu_seconds_total: float
    cpu_seconds_total: float
    per_depth_gpu_tree_seconds: Dict[int, float]
    per_depth_cpu_tree_seconds: Dict[int, float]


@dataclasses.dataclass
class BudgetedRun:
    """Result of an actual budget-constrained search."""

    best_config: SearchConfig
    best_rmse: float
    configs_trained: int
    seconds_spent: float


class TimeBudgetSearch:
    """Hyper-parameter search over a grid on one dataset."""

    def __init__(
        self,
        dataset: Dataset,
        grid: Sequence[SearchConfig],
        base_params: GBDTParams | None = None,
        probe_trees: int = 2,
    ) -> None:
        if not grid:
            raise ValueError("empty search grid")
        self.dataset = dataset
        self.grid = list(grid)
        self.base_params = base_params if base_params is not None else GBDTParams()
        self.probe_trees = max(1, probe_trees)

    # ------------------------------------------------------------- estimate
    def _probe(self, depth: int) -> Tuple[float, float]:
        """(GPU, CPU-40) modeled seconds per tree at the given depth."""
        p = self.base_params.replace(n_trees=self.probe_trees, max_depth=depth)
        gpu = run_gpu_gbdt(self.dataset, p)
        _, forty, _ = run_cpu_baseline(self.dataset, p)
        if not gpu.ok:
            raise RuntimeError(f"probe OOM at depth {depth}")
        return gpu.seconds / self.probe_trees, forty.seconds / self.probe_trees

    def estimate(self) -> SearchSummary:
        """Modeled total grid cost; trains one probe per distinct depth."""
        depths = sorted({c.max_depth for c in self.grid})
        gpu_per_tree: Dict[int, float] = {}
        cpu_per_tree: Dict[int, float] = {}
        for d in depths:
            gpu_per_tree[d], cpu_per_tree[d] = self._probe(d)
        gpu_total = sum(gpu_per_tree[c.max_depth] * c.n_trees for c in self.grid)
        cpu_total = sum(cpu_per_tree[c.max_depth] * c.n_trees for c in self.grid)
        return SearchSummary(
            n_configs=len(self.grid),
            gpu_seconds_total=gpu_total,
            cpu_seconds_total=cpu_total,
            per_depth_gpu_tree_seconds=gpu_per_tree,
            per_depth_cpu_tree_seconds=cpu_per_tree,
        )

    # -------------------------------------------------------------- search
    def run_within_budget(self, budget_seconds: float) -> BudgetedRun:
        """Train configs in grid order until the modeled budget runs out;
        pick the best held-out RMSE.  At least one config always runs."""
        ds = self.dataset
        best: Tuple[float, SearchConfig] | None = None
        spent = 0.0
        trained = 0
        for cfg in self.grid:
            res = run_gpu_gbdt(ds, cfg.params(self.base_params))
            if not res.ok:
                continue
            spent += res.seconds
            trained += 1
            err = rmse(ds.y_test, res.model.predict(ds.X_test))
            if best is None or err < best[0]:
                best = (err, cfg)
            if spent >= budget_seconds:
                break
        assert best is not None, "no configuration could be trained"
        return BudgetedRun(
            best_config=best[1],
            best_rmse=best[0],
            configs_trained=trained,
            seconds_spent=spent,
        )
