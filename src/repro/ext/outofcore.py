"""Out-of-core training: datasets larger than device memory.

The paper's answer to the Titan X's 12 GB is RLE compression (Section
III-C); when even the compressed sorted lists do not fit, the run simply
cannot happen -- the same wall the dense baseline hits on Table II's large
datasets.  This module removes that wall in the natural way the paper's
layout permits: the attribute lists are **column-sharded into groups that
fit individually**, kept in host memory, and streamed over PCIe group by
group at every level.

Per level:

1. for each resident group: upload its current lists (PCIe), find the best
   split of every node among its attributes (the unmodified kernels of
   :mod:`repro.core.split`), download the per-node winners (tiny);
2. combine winners across groups on the host (same tie rule as multi-GPU:
   strict gain, then lowest global attribute);
3. re-upload each group to partition its lists, then download the
   partitioned lists back to host.

The trees are identical to in-memory training (asserted by tests) -- the
algorithm is still exact; only the PCIe traffic grows.  The modeled-time
overhead quantifies what the paper's "reduce data transferring between
CPUs and GPUs" advice is worth.

.. note::
   This column-group streamer keeps every group resident in host memory;
   it moves the *device*-memory wall but not the host one, and re-uploads
   whole groups every level.  For true out-of-core training -- disk-backed
   blocks under a hard host-cache budget, with prefetch overlap -- prefer
   :mod:`repro.stream` (:class:`repro.stream.StreamingHistTrainer`).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.booster_model import GBDTModel
from ..core.params import GBDTParams
from ..core.partition import partition_segments, plan_partition
from ..core.rle_split import split_runs_direct, split_runs_with_decompression
from ..core.smartgd import GradientComputer
from ..core.split import SegmentLayout, find_best_splits_rle, find_best_splits_sparse
from ..core.tree import DecisionTree
from ..data.matrix import CSRMatrix
from ..data.rle import decide_compression, encode_segments
from ..data.sorted_columns import build_sorted_columns
from ..ext.multigpu import MultiGpuGBDTTrainer, _comm, _Shard
from ..gpusim.device import TITAN_X_PASCAL, DeviceSpec
from ..gpusim.kernel import GpuDevice
from ..gpusim.memory import DeviceOutOfMemory
from ..obs import span

__all__ = ["OutOfCoreGBDTTrainer", "plan_column_groups"]


def plan_column_groups(
    col_nnz: np.ndarray,
    work_scale: float,
    budget_bytes: float,
    *,
    bytes_per_entry: float = 8.0,
) -> List[np.ndarray]:
    """Greedy first-fit packing of attributes into device-sized groups.

    ``col_nnz`` holds per-attribute present counts at run scale;
    ``work_scale`` lifts them to full scale.  Attributes are packed in
    order (keeping groups contiguous-ish for coalesced uploads) such that
    each group's full-scale list bytes stay under ``budget_bytes``.
    """
    if budget_bytes <= 0:
        raise ValueError("budget must be positive")
    groups: List[List[int]] = [[]]
    acc = 0.0
    for j, nnz in enumerate(col_nnz):
        b = float(nnz) * work_scale * bytes_per_entry
        if b > budget_bytes:
            raise DeviceOutOfMemory(
                f"attribute {j} alone needs {b / 2**30:.2f} GiB "
                f"of the {budget_bytes / 2**30:.2f} GiB group budget"
            )
        if acc + b > budget_bytes and groups[-1]:
            groups.append([])
            acc = 0.0
        groups[-1].append(j)
        acc += b
    return [np.asarray(g, dtype=np.int64) for g in groups if g]


class OutOfCoreGBDTTrainer:
    """Exact GBDT training with host-resident, group-streamed columns.

    Parameters
    ----------
    params, spec, work_scale, seg_scale, row_scale:
        As in the other trainers.
    group_budget_bytes:
        Device bytes one resident column group may occupy.  Defaults to
        roughly half the device memory (lists + working buffers).
    """

    def __init__(
        self,
        params: GBDTParams | None = None,
        spec: DeviceSpec = TITAN_X_PASCAL,
        *,
        work_scale: float = 1.0,
        seg_scale: float = 1.0,
        row_scale: float = 1.0,
        group_budget_bytes: float | None = None,
    ) -> None:
        self.params = params if params is not None else GBDTParams()
        self.device = GpuDevice(spec, work_scale=work_scale, seg_scale=seg_scale)
        self.row_scale = float(row_scale)
        self.group_budget_bytes = (
            float(group_budget_bytes)
            if group_budget_bytes is not None
            else spec.global_mem_bytes * 0.5
        )
        self.n_groups_: int | None = None
        self.used_rle = False

    def elapsed_seconds(self) -> float:
        """Modeled wall time including the group streaming traffic."""
        return self.device.elapsed_seconds()

    # ------------------------------------------------------------------- fit
    def fit(self, X: CSRMatrix, y: np.ndarray) -> GBDTModel:
        """Pack columns into device-sized groups, then train streamed."""
        p = self.params
        device = self.device
        y = np.asarray(y, dtype=np.float64)
        n, d = X.shape

        csc = X.to_csc()
        col_nnz = np.diff(csc.indptr)
        groups = plan_column_groups(
            col_nnz, device.work_scale, self.group_budget_bytes
        )
        self.n_groups_ = len(groups)

        full_cols = build_sorted_columns(csc)
        self.used_rle = p.use_rle and decide_compression(
            p.rle_policy,
            n_rows=n,
            n_cols=d,
            values=full_cols.values,
            offsets=full_cols.col_offsets,
            paper_threshold=p.rle_paper_threshold,
            measured_threshold=p.rle_measured_threshold,
        )

        # group state lives on the HOST; the device holds one group at a time
        shards: List[_Shard] = []
        for attrs in groups:
            shard = _Shard(device, attrs)
            sub = MultiGpuGBDTTrainer._column_subset(csc, attrs)
            with device.phase("setup"):
                cols = build_sorted_columns(sub, device)
                shard.base_inst = cols.inst
                shard.base_offsets = cols.col_offsets
                if self.used_rle:
                    shard.base_rle = encode_segments(cols.values, cols.col_offsets)
                else:
                    shard.base_vals = cols.values
            shards.append(shard)
        device.memory.alloc("resident_group", self.group_budget_bytes)
        device.memory.alloc("gradients_gh", n * self.row_scale * 8)
        device.memory.alloc("predictions", n * self.row_scale * 4)
        device.memory.alloc("instance_to_node", n * self.row_scale * 4)

        gc = GradientComputer(
            device, p.loss_fn, y, use_smartgd=p.use_smartgd,
            row_scale=self.row_scale, X=X,
        )

        trees: List[DecisionTree] = []
        for round_ in range(p.n_trees):
            with span(
                "outofcore.boost_round",
                round=round_,
                groups=self.n_groups_,
                rle=self.used_rle,
            ):
                with device.phase("gradients"):
                    g, h = gc.compute()
                tree = self._grow_tree(shards, X, g, h, gc)
                gc.on_tree_finished(tree)
                trees.append(tree)
        return GBDTModel(trees=trees, params=p, base_score=p.loss_fn.base_score(y))

    # ----------------------------------------------------------------- level
    def _group_bytes(self, shard: _Shard) -> float:
        """Current list bytes of a group (values/runs + instance ids)."""
        if self.used_rle:
            value_bytes = shard.rle.n_runs * 8 if shard.rle is not None else 0
        else:
            value_bytes = shard.vals.size * 4 if shard.vals is not None else 0
        return value_bytes + shard.inst.size * 4

    def _grow_tree(self, shards, X, g, h, gc) -> DecisionTree:
        p = self.params
        device = self.device
        n, d = X.shape

        tree = DecisionTree()
        tree.add_root(n)
        for shard in shards:
            shard.inst = shard.base_inst.copy()
            shard.vals = None if self.used_rle else shard.base_vals.copy()
            shard.rle = shard.base_rle
            shard.layout = SegmentLayout(shard.base_offsets.copy(), 1, shard.attrs.size)

        inst2local = np.zeros(n, dtype=np.int64)
        node_tree_ids = np.array([0], dtype=np.int64)
        node_g = np.array([float(np.bincount(np.zeros(n, np.int64), weights=g)[0])])
        node_h = np.array([float(np.bincount(np.zeros(n, np.int64), weights=h)[0])])
        node_n = np.array([n], dtype=np.int64)

        for _depth in range(p.max_depth):
            n_active = node_tree_ids.size

            # 1. stream each group in, find its best splits
            bests = []
            for shard in shards:
                with device.phase("find_split"):
                    device.transfer("stream_group_in", self._group_bytes(shard))
                    # the transfer above is work_scale-extrapolated; the
                    # counter must report the same full-scale bytes
                    _comm(
                        "outofcore", "stream_group_in",
                        self._group_bytes(shard) * device.work_scale,
                    )
                    if self.used_rle:
                        b = find_best_splits_rle(
                            device, shard.rle, shard.inst, shard.layout,
                            g, h, node_g, node_h, node_n,
                            lambda_=p.lambda_, setkey_enabled=p.use_custom_setkey,
                            setkey_c=p.setkey_c,
                        )
                    else:
                        b = find_best_splits_sparse(
                            device, shard.vals, shard.inst, shard.layout,
                            g, h, node_g, node_h, node_n,
                            lambda_=p.lambda_, setkey_enabled=p.use_custom_setkey,
                            setkey_c=p.setkey_c,
                        )
                    device.transfer(
                        "download_group_winners", n_active * 64, direction="d2h", scale=False
                    )
                    _comm("outofcore", "download_group_winners", n_active * 64)
                bests.append(b)

            # 2. combine winners on the host (strict gain, lowest global attr)
            win_grp = np.full(n_active, -1, dtype=np.int64)
            win_gain = np.full(n_active, -np.inf)
            win_attr = np.full(n_active, -1, dtype=np.int64)
            for gi, (shard, b) in enumerate(zip(shards, bests)):
                gattr = np.where(b.attr >= 0, shard.attrs[np.maximum(b.attr, 0)], -1)
                better = b.found & (
                    (b.gain > win_gain)
                    | ((b.gain == win_gain) & (gattr < win_attr) & (win_attr >= 0))
                )
                win_grp[better] = gi
                win_gain[better] = b.gain[better]
                win_attr[better] = gattr[better]

            split_mask = (win_grp >= 0) & (win_gain > p.gamma)

            # 3. leaves
            leaf_locals = np.flatnonzero(~split_mask)
            if leaf_locals.size:
                values = np.zeros(n_active)
                values[leaf_locals] = (
                    -p.learning_rate * node_g[leaf_locals] / (node_h[leaf_locals] + p.lambda_)
                )
                for loc in leaf_locals:
                    tree.set_leaf(int(node_tree_ids[loc]), float(values[loc]))
                is_leaf = np.zeros(n_active, dtype=bool)
                is_leaf[leaf_locals] = True
                safe = np.maximum(inst2local, 0)
                settled = (inst2local >= 0) & is_leaf[safe]
                ids = np.flatnonzero(settled)
                gc.on_leaves(ids, values[inst2local[ids]])
                inst2local[ids] = -1
            if not split_mask.any():
                break

            split_locals = np.flatnonzero(split_mask)
            kk = split_locals.size
            new_tree_ids = np.empty(2 * kk, dtype=np.int64)
            for j, loc in enumerate(split_locals):
                b = bests[win_grp[loc]]
                lid, rid = tree.split_node(
                    int(node_tree_ids[loc]), int(win_attr[loc]),
                    float(b.threshold[loc]), bool(b.default_left[loc]),
                    float(b.gain[loc]),
                    n_left=int(b.left_n[loc]),
                    n_right=int(node_n[loc] - b.left_n[loc]),
                )
                new_tree_ids[2 * j] = lid
                new_tree_ids[2 * j + 1] = rid

            # 4. instance routing from the winning groups' segments
            new_local_of = np.full(n_active, -1, dtype=np.int64)
            new_local_of[split_locals] = 2 * np.arange(kk, dtype=np.int64)
            side_inst = np.full(n, -1, dtype=np.int8)
            safe = np.maximum(inst2local, 0)
            active = (inst2local >= 0) & split_mask[safe]
            for loc in split_locals:
                b = bests[win_grp[loc]]
                members = active & (inst2local == loc)
                side_inst[members] = 0 if b.default_left[loc] else 1
            for gi, shard in enumerate(shards):
                owned = split_locals[win_grp[split_locals] == gi]
                if owned.size == 0:
                    continue
                b = bests[gi]
                S = shard.layout.n_segments
                split_pos = np.full(S, -1, dtype=np.int64)
                split_pos[b.seg[owned]] = b.elem_pos[owned]
                sid = np.repeat(np.arange(S, dtype=np.int64), np.diff(shard.layout.offsets))
                chosen = split_pos[sid] >= 0
                elem_idx = np.arange(shard.layout.n_elements, dtype=np.int64)
                es = (elem_idx < split_pos[sid]).astype(np.int8)
                side_inst[shard.inst[chosen]] = np.where(es[chosen] == 1, 0, 1)
            device.launch(
                "update_instance_to_node",
                elements=n * self.row_scale,
                flops_per_element=2.0,
                coalesced_bytes=n * self.row_scale * 9,
                scale=False,
            )
            inst2local = np.where(active, new_local_of[safe] + side_inst, -1)

            # 5. stream each group back in to partition it, then page it out
            for shard in shards:
                d_dev = shard.attrs.size
                seg_node = shard.layout.seg_node()
                seg_attr = shard.layout.seg_attr()
                splitting_seg = split_mask[seg_node]
                child_base = new_local_of[seg_node]
                left_seg = np.where(splitting_seg, child_base * d_dev + seg_attr, -1)
                right_seg = np.where(splitting_seg, (child_base + 1) * d_dev + seg_attr, -1)
                side_ent = side_inst[shard.inst]
                plan = plan_partition(
                    int(shard.layout.n_elements * device.work_scale), kk,
                    max_counter_mem_bytes=p.max_counter_mem_bytes,
                    use_custom_workload=p.use_custom_workload,
                    fixed_thread_workload=p.fixed_thread_workload,
                )
                with device.phase("split_node"):
                    device.transfer("stream_group_in", self._group_bytes(shard))
                    _comm(
                        "outofcore", "stream_group_in",
                        self._group_bytes(shard) * device.work_scale,
                    )
                    dest, new_offsets = partition_segments(
                        device, shard.layout.offsets, side_ent,
                        left_seg, right_seg, 2 * kk * d_dev, plan,
                        bytes_per_element=8 if self.used_rle else 16,
                    )
                    keep = dest >= 0
                    n_new = int(new_offsets[-1])
                    new_inst = np.empty(n_new, dtype=np.int64)
                    new_inst[dest[keep]] = shard.inst[keep]
                    if self.used_rle:
                        if p.use_direct_rle:
                            shard.rle = split_runs_direct(
                                device, shard.rle, side_ent, left_seg, right_seg,
                                2 * kk * d_dev,
                            )
                        else:
                            shard.rle = split_runs_with_decompression(
                                device, shard.rle, dest, new_offsets
                            )
                    else:
                        new_vals = np.empty(n_new)
                        new_vals[dest[keep]] = shard.vals[keep]
                        shard.vals = new_vals
                    shard.inst = new_inst
                    shard.layout = SegmentLayout(new_offsets, 2 * kk, d_dev)
                    device.transfer(
                        "stream_group_out", self._group_bytes(shard), direction="d2h"
                    )
                    _comm(
                        "outofcore", "stream_group_out",
                        self._group_bytes(shard) * device.work_scale,
                    )

            lg = np.array([bests[win_grp[loc]].left_g[loc] for loc in split_locals])
            lh = np.array([bests[win_grp[loc]].left_h[loc] for loc in split_locals])
            ln = np.array([bests[win_grp[loc]].left_n[loc] for loc in split_locals])
            pg, ph, pn = node_g[split_locals], node_h[split_locals], node_n[split_locals]
            node_g = np.empty(2 * kk)
            node_h = np.empty(2 * kk)
            node_n = np.empty(2 * kk, dtype=np.int64)
            node_g[0::2], node_g[1::2] = lg, pg - lg
            node_h[0::2], node_h[1::2] = lh, ph - lh
            node_n[0::2], node_n[1::2] = ln, pn - ln
            node_tree_ids = new_tree_ids

        if node_tree_ids.size and (inst2local >= 0).any():
            values = -p.learning_rate * node_g / (node_h + p.lambda_)
            for loc in range(node_tree_ids.size):
                tree.set_leaf(int(node_tree_ids[loc]), float(values[loc]))
            ids = np.flatnonzero(inst2local >= 0)
            gc.on_leaves(ids, values[inst2local[ids]])
            inst2local[:] = -1
        return tree
