"""K-fold cross-validation over any trainer backend.

Standard model-selection machinery on top of the estimator facade: splits
rows into k deterministic folds, trains on k-1, evaluates on the held-out
fold, and aggregates.  Used by the hyper-parameter examples as the more
careful alternative to a single holdout when the time budget allows --
each fold is a full training, so the cost model prices a k-fold sweep at
k times a single fit (the kind of arithmetic case study (iii) runs at
scale).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List

import numpy as np

from ..core.booster import GradientBoostedTrees, as_csr
from ..core.params import GBDTParams
from ..metrics import rmse

__all__ = ["FoldResult", "CVResult", "kfold_indices", "cross_validate"]


@dataclasses.dataclass(frozen=True)
class FoldResult:
    """One fold's outcome."""

    fold: int
    train_metric: float
    valid_metric: float
    n_train: int
    n_valid: int


@dataclasses.dataclass
class CVResult:
    """Aggregated k-fold outcome."""

    folds: List[FoldResult]

    @property
    def k(self) -> int:
        return len(self.folds)

    @property
    def mean_valid(self) -> float:
        return float(np.mean([f.valid_metric for f in self.folds]))

    @property
    def std_valid(self) -> float:
        return float(np.std([f.valid_metric for f in self.folds]))

    @property
    def mean_train(self) -> float:
        return float(np.mean([f.train_metric for f in self.folds]))

    def format(self) -> str:
        """Readable per-fold report with the aggregate at the bottom."""
        lines = [
            f"fold {f.fold}: valid {f.valid_metric:.4f}  train {f.train_metric:.4f}  "
            f"(n={f.n_train}/{f.n_valid})"
            for f in self.folds
        ]
        lines.append(f"mean valid: {self.mean_valid:.4f} +- {self.std_valid:.4f}")
        return "\n".join(lines)


def kfold_indices(n: int, k: int, seed: int = 0) -> List[np.ndarray]:
    """Deterministic shuffled fold assignment: k arrays of row indices whose
    union is ``range(n)``; sizes differ by at most one."""
    if k < 2:
        raise ValueError("k must be >= 2")
    if n < k:
        raise ValueError(f"cannot make {k} folds from {n} rows")
    perm = np.random.default_rng(seed).permutation(n)
    return [np.sort(perm[i::k]) for i in range(k)]


def cross_validate(
    X,
    y,
    params: GBDTParams | None = None,
    *,
    k: int = 5,
    backend: str = "gpu-gbdt",
    metric: Callable[[np.ndarray, np.ndarray], float] = rmse,
    seed: int = 0,
) -> CVResult:
    """Run k-fold cross-validation and return per-fold + aggregate metrics."""
    Xc = as_csr(X)
    y = np.asarray(y, dtype=np.float64)
    if y.size != Xc.n_rows:
        raise ValueError("y size mismatch")
    folds = kfold_indices(Xc.n_rows, k, seed=seed)
    all_rows = np.arange(Xc.n_rows)
    results: List[FoldResult] = []
    for i, valid_idx in enumerate(folds):
        train_idx = np.setdiff1d(all_rows, valid_idx, assume_unique=False)
        Xt, yt = Xc.select_rows(train_idx), y[train_idx]
        Xv, yv = Xc.select_rows(valid_idx), y[valid_idx]
        est = GradientBoostedTrees(params, backend=backend).fit(Xt, yt)
        results.append(
            FoldResult(
                fold=i,
                train_metric=float(metric(yt, est.predict(Xt))),
                valid_metric=float(metric(yv, est.predict(Xv))),
                n_train=int(train_idx.size),
                n_valid=int(valid_idx.size),
            )
        )
    return CVResult(folds=results)
