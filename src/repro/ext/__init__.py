"""Extensions beyond the paper's evaluated system: the multi-GPU trainer it
names as future work and the time-budget hyper-parameter search of case
study (iii)."""

from .crossval import CVResult, FoldResult, cross_validate, kfold_indices
from .hyperband import BudgetedRun, SearchConfig, SearchSummary, TimeBudgetSearch, paper_search_grid
from .multigpu import MultiGpuGBDTTrainer
from .outofcore import OutOfCoreGBDTTrainer, plan_column_groups

__all__ = [
    "CVResult",
    "FoldResult",
    "cross_validate",
    "kfold_indices",
    "BudgetedRun",
    "SearchConfig",
    "SearchSummary",
    "TimeBudgetSearch",
    "paper_search_grid",
    "MultiGpuGBDTTrainer",
    "OutOfCoreGBDTTrainer",
    "plan_column_groups",
]
