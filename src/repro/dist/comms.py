"""Collective communication for distributed GBDT training.

The paper's future work (Section VI) names multi-GPU / cluster training;
the production path for it is row-sharded data parallelism over allreduced
histograms (Mitchell et al. 2018, Zhang et al. 2017).  This module provides
the collectives that design needs -- ``allreduce_sum``, ``allreduce_max``,
``allgather``, ``broadcast``, ``barrier`` -- behind one SPMD abstraction
with two interchangeable backends:

``SimulatedCollective`` (``backend="sim"``)
    Ranks run on threads but every collective is a *rendezvous*: all ranks
    deposit, synchronize, and then each computes the reduction locally in
    rank order (deterministic; exact for the int64 payloads the trainer
    moves).  Communication cost is charged to each rank's
    :class:`~repro.gpusim.kernel.GpuDevice` ledger using ring-step
    accounting -- a ring allreduce of ``B`` bytes across ``W`` ranks costs
    every rank ``2(W-1)`` steps of ``B/W`` bytes over its link -- so the
    cost model produces a modeled scaling curve.

``ThreadedCollective`` (``backend="threaded"``)
    A real message-passing implementation: per-ring-edge FIFO queues between
    in-process worker threads, a genuine ring reduce-scatter + allgather for
    ``allreduce_sum``, ring block rotation for ``allgather``, and a chain
    relay for ``broadcast``.  Collectives are exercised under true
    concurrency; blocked-receive time is measured as wait seconds.

Link cost is expressed in "equivalent PCIe bytes": one
:class:`~repro.gpusim.kernel.Transfer` is recorded per collective whose
byte count is chosen so the roofline cost model reproduces ``steps *
link.latency_s + bytes / link.bandwidth``.  The *true* payload bytes are
what the obs counters (``collective_bytes_total`` etc.) and per-rank
:class:`CollectiveStats` report.

Fault injection lives here because faults *manifest* in the comms layer: a
:class:`FaultPlan` can kill a rank at a round boundary (``WorkerCrash``;
surviving ranks observe ``WorkerFailure`` at their next collective) or
stall a straggler rank.  :func:`run_spmd` is the driver: it spawns one
thread per rank, runs the same function everywhere, and converts a crashed
world into a single :class:`WorkerFailure` naming the failed ranks so the
caller can reshard and retry.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from ..gpusim.costmodel import PCIE_LATENCY_S
from ..gpusim.device import DeviceSpec, TITAN_X_PASCAL
from ..gpusim.kernel import GpuDevice
from ..obs import get_registry, span

__all__ = [
    "Collective",
    "CollectiveStats",
    "FaultPlan",
    "LinkSpec",
    "SimulatedCollective",
    "ThreadedCollective",
    "WorkerCrash",
    "WorkerFailure",
    "run_spmd",
]

#: seconds a threaded receive waits between checks of the failure flag
_RECV_POLL_S = 0.05

#: give up a threaded receive entirely after this long (a deadlocked test
#: should fail loudly, not hang the suite)
_RECV_TIMEOUT_S = 60.0


class WorkerCrash(RuntimeError):
    """Raised *inside* the rank that an injected fault kills."""

    def __init__(self, rank: int, round_: int) -> None:
        super().__init__(f"worker {rank} crashed (injected fault, round {round_})")
        self.rank = rank
        self.round = round_


class WorkerFailure(RuntimeError):
    """Raised in surviving ranks (and by :func:`run_spmd`) when peers died."""

    def __init__(self, failed_ranks) -> None:
        ranks = frozenset(int(r) for r in failed_ranks)
        super().__init__(f"worker(s) {sorted(ranks)} failed")
        self.failed_ranks = ranks


@dataclasses.dataclass(frozen=True)
class LinkSpec:
    """Per-link bandwidth/latency of the interconnect between ranks."""

    bandwidth_gbs: float = 12.0
    latency_s: float = PCIE_LATENCY_S

    @classmethod
    def for_spec(cls, spec: DeviceSpec) -> "LinkSpec":
        """A link matching the device's PCIe (the single-node default)."""
        return cls(bandwidth_gbs=spec.pcie_bandwidth_gbs, latency_s=PCIE_LATENCY_S)


@dataclasses.dataclass
class FaultPlan:
    """Injectable faults, triggered at round-boundary fault points.

    ``kill_rank`` raises :class:`WorkerCrash` in that rank when it reaches
    the fault point of ``kill_round``.  ``straggler_rank`` stalls that rank
    by ``straggler_delay_s`` at every round's fault point (or only at
    ``straggler_round`` if given): real ``sleep`` under the threaded
    backend, a modeled link stall under the simulated one.
    """

    kill_rank: Optional[int] = None
    kill_round: int = 0
    straggler_rank: Optional[int] = None
    straggler_delay_s: float = 0.0
    straggler_round: Optional[int] = None


@dataclasses.dataclass
class CollectiveStats:
    """Per-rank communication totals (true payload bytes, not modeled)."""

    bytes_total: float = 0.0
    steps_total: int = 0
    wait_s: float = 0.0
    ops: int = 0


class _World:
    """State shared by all ranks of one SPMD run."""

    def __init__(self, world_size: int) -> None:
        self.world_size = world_size
        self.barrier = threading.Barrier(world_size)
        self.slots: List[Any] = [None] * world_size
        self.queues = [queue.Queue() for _ in range(world_size)]
        self.failed: set[int] = set()
        self.fail_event = threading.Event()
        self.lock = threading.Lock()

    def fail(self, rank: int) -> None:
        """Mark ``rank`` dead and wake every blocked peer."""
        with self.lock:
            self.failed.add(int(rank))
        self.fail_event.set()
        self.barrier.abort()

    def failed_snapshot(self) -> frozenset:
        with self.lock:
            return frozenset(self.failed)


class Collective:
    """One rank's handle on the world: SPMD collectives + fault points.

    Subclasses implement the five collectives; payloads the trainer moves
    are int64/float64 ndarrays (reductions) or small picklable objects
    (allgather/broadcast of sketches and models).
    """

    backend = "abstract"

    def __init__(
        self,
        world: _World,
        rank: int,
        device: Optional[GpuDevice],
        link: LinkSpec,
        faults: Optional[FaultPlan],
    ) -> None:
        self.world = world
        self.rank = int(rank)
        self.device = device
        self.link = link
        self.faults = faults
        self.stats = CollectiveStats()

    @property
    def world_size(self) -> int:
        return self.world.world_size

    # -------------------------------------------------------------- faults
    def fault_point(self, round_: int) -> None:
        """Trigger any injected fault scheduled for this rank/round."""
        f = self.faults
        if f is None:
            return
        if (
            f.straggler_rank == self.rank
            and f.straggler_delay_s > 0
            and (f.straggler_round is None or f.straggler_round == round_)
        ):
            self._stall(f.straggler_delay_s)
        if f.kill_rank == self.rank and f.kill_round == round_:
            self.world.fail(self.rank)
            raise WorkerCrash(self.rank, round_)

    def _stall(self, seconds: float) -> None:
        raise NotImplementedError

    # ----------------------------------------------------------- accounting
    def _charge(self, op: str, nbytes: float, steps: int) -> None:
        """Record true payload traffic and (if a device is attached) the
        modeled link time as equivalent PCIe bytes."""
        self.stats.bytes_total += nbytes
        self.stats.steps_total += steps
        self.stats.ops += 1
        reg = get_registry()
        reg.counter(
            "collective_bytes_total",
            "payload bytes moved by collective ops (per rank)",
            backend=self.backend, op=op,
        ).inc(nbytes)
        reg.counter(
            "collective_steps_total",
            "ring/chain steps executed by collective ops (per rank)",
            backend=self.backend, op=op,
        ).inc(steps)
        if self.device is not None and steps > 0:
            self.device.transfer(
                f"collective_{op}", self._equiv_bytes(nbytes, steps), scale=False
            )

    def _equiv_bytes(self, nbytes: float, steps: int) -> float:
        """PCIe byte count whose modeled time equals ``steps * latency +
        nbytes / bandwidth`` over this rank's link."""
        pcie_bps = self.device.spec.pcie_bandwidth_gbs * 1e9
        link_bps = self.link.bandwidth_gbs * 1e9
        lat = max(0.0, steps * self.link.latency_s - PCIE_LATENCY_S)
        return lat * pcie_bps + nbytes * (pcie_bps / link_bps)

    def _note_wait(self, op: str, seconds: float) -> None:
        if seconds <= 0:
            return
        self.stats.wait_s += seconds
        get_registry().counter(
            "collective_wait_seconds_total",
            "time ranks spent blocked or stalled in collectives",
            backend=self.backend, op=op,
        ).inc(seconds)

    # ----------------------------------------------------------- interface
    def allreduce_sum(self, arr: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def allreduce_max(self, arr: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def allgather(self, obj: Any, nbytes: Optional[float] = None) -> List[Any]:
        raise NotImplementedError

    def broadcast(self, obj: Any, root: int = 0, nbytes: Optional[float] = None) -> Any:
        raise NotImplementedError

    def barrier(self) -> None:
        raise NotImplementedError


def _payload_bytes(obj: Any, hint: Optional[float]) -> float:
    if hint is not None:
        return float(hint)
    if isinstance(obj, np.ndarray):
        return float(obj.nbytes)
    return 64.0  # small control message


class SimulatedCollective(Collective):
    """Rendezvous collectives with modeled ring-step link cost.

    Results are computed identically on every rank by reducing the deposited
    contributions in rank order, so the backend is deterministic by
    construction; the gpusim ledger carries the comm cost.
    """

    backend = "sim"

    # ------------------------------------------------------------ exchange
    def _wait_rendezvous(self) -> None:
        try:
            self.world.barrier.wait()
        except threading.BrokenBarrierError:
            raise WorkerFailure(self.world.failed_snapshot()) from None

    def _exchange(self, payload: Any) -> List[Any]:
        """All ranks deposit, then all ranks see every deposit."""
        w = self.world
        w.slots[self.rank] = payload
        self._wait_rendezvous()  # everyone deposited
        out = list(w.slots)
        self._wait_rendezvous()  # everyone read; slots reusable
        return out

    # ---------------------------------------------------------- collectives
    def allreduce_sum(self, arr: np.ndarray) -> np.ndarray:
        arr = np.asarray(arr)
        with span("dist.allreduce_sum", backend=self.backend, nbytes=arr.nbytes):
            parts = self._exchange(arr)
            out = np.zeros_like(arr)
            for part in parts:  # rank order: deterministic (exact for int64)
                out = out + part
        W = self.world_size
        if W > 1:
            # ring allreduce: 2(W-1) steps of B/W bytes per rank
            self._charge("allreduce", arr.nbytes * 2 * (W - 1) / W, 2 * (W - 1))
        return out

    def allreduce_max(self, arr: np.ndarray) -> np.ndarray:
        arr = np.asarray(arr)
        with span("dist.allreduce_max", backend=self.backend, nbytes=arr.nbytes):
            parts = self._exchange(arr)
            out = parts[0]
            for part in parts[1:]:  # max is exact and order-independent
                out = np.maximum(out, part)
        W = self.world_size
        if W > 1:
            self._charge("allreduce", arr.nbytes * 2 * (W - 1) / W, 2 * (W - 1))
        return np.array(out, copy=True)

    def allgather(self, obj: Any, nbytes: Optional[float] = None) -> List[Any]:
        own = _payload_bytes(obj, nbytes)
        with span("dist.allgather", backend=self.backend, nbytes=own):
            parts = self._exchange((obj, own))
        W = self.world_size
        if W > 1:
            # ring allgather: every rank forwards all blocks but its own
            total = sum(p[1] for p in parts)
            self._charge("allgather", total - own, W - 1)
        return [p[0] for p in parts]

    def broadcast(self, obj: Any, root: int = 0, nbytes: Optional[float] = None) -> Any:
        with span("dist.broadcast", backend=self.backend):
            parts = self._exchange((obj, _payload_bytes(obj, nbytes)))
        out, size = parts[root]
        if self.world_size > 1:
            # chain relay: every rank but the tail forwards the payload once
            self._charge("broadcast", size, 1)
        return out

    def barrier(self) -> None:
        with span("dist.barrier", backend=self.backend):
            self._exchange(None)
        if self.world_size > 1:
            self._charge("barrier", 8.0 * (self.world_size - 1), self.world_size - 1)

    def _stall(self, seconds: float) -> None:
        """Model a straggler as an equivalent link stall on this rank."""
        if self.device is not None:
            pcie_bps = self.device.spec.pcie_bandwidth_gbs * 1e9
            nbytes = max(0.0, seconds - PCIE_LATENCY_S) * pcie_bps
            self.device.transfer("straggler_stall", nbytes, scale=False)
        self._note_wait("straggler", seconds)


class ThreadedCollective(Collective):
    """Real ring collectives over per-edge FIFO queues between threads.

    Rank ``r`` sends to ``(r+1) % W`` and receives from ``(r-1) % W``.
    Every rank executes the same sequence of collectives (SPMD program
    order) and each edge's queue is FIFO, so messages of consecutive
    collectives can never be confused even though ranks drift in time.
    """

    backend = "threaded"

    # ------------------------------------------------------------ messaging
    def _send(self, payload: Any) -> None:
        self.world.queues[(self.rank + 1) % self.world_size].put(payload)

    def _recv(self, op: str) -> Any:
        q = self.world.queues[self.rank]
        t0 = time.perf_counter()
        while True:
            try:
                msg = q.get(timeout=_RECV_POLL_S)
                self._note_wait(op, time.perf_counter() - t0)
                return msg
            except queue.Empty:
                if self.world.fail_event.is_set():
                    self._note_wait(op, time.perf_counter() - t0)
                    raise WorkerFailure(self.world.failed_snapshot()) from None
                if time.perf_counter() - t0 > _RECV_TIMEOUT_S:
                    raise RuntimeError(
                        f"rank {self.rank}: receive timed out in {op}"
                    )

    # ---------------------------------------------------------- collectives
    def allreduce_sum(self, arr: np.ndarray) -> np.ndarray:
        a = np.asarray(arr)
        W = self.world_size
        if W == 1:
            return a.copy()
        with span("dist.allreduce_sum", backend=self.backend, nbytes=a.nbytes):
            flat = a.reshape(-1).copy()
            chunks: List[np.ndarray] = list(np.array_split(flat, W))
            sent = 0.0
            # ring reduce-scatter: after W-1 steps rank r holds the fully
            # reduced chunk (r+1) % W
            for step in range(W - 1):
                send_idx = (self.rank - step) % W
                recv_idx = (self.rank - step - 1) % W
                self._send(chunks[send_idx])
                sent += chunks[send_idx].nbytes
                incoming = self._recv("allreduce")
                chunks[recv_idx] = chunks[recv_idx] + incoming
            # ring allgather of the reduced chunks
            for step in range(W - 1):
                send_idx = (self.rank - step + 1) % W
                self._send(chunks[send_idx])
                sent += chunks[send_idx].nbytes
                chunks[(self.rank - step) % W] = self._recv("allreduce")
            out = np.concatenate([np.asarray(c) for c in chunks])
        self._charge("allreduce", sent, 2 * (W - 1))
        return out.reshape(a.shape)

    def allreduce_max(self, arr: np.ndarray) -> np.ndarray:
        a = np.asarray(arr)
        if self.world_size == 1:
            return a.copy()
        # extrema payloads are tiny: gather-then-reduce over the ring
        parts = self._ring_allgather(a, a.nbytes, "allreduce")
        out = np.array(a, copy=True)
        for _, part, _ in parts:  # max is exact and order-independent
            out = np.maximum(out, part)
        return out

    def allgather(self, obj: Any, nbytes: Optional[float] = None) -> List[Any]:
        own = _payload_bytes(obj, nbytes)
        if self.world_size == 1:
            return [obj]
        with span("dist.allgather", backend=self.backend, nbytes=own):
            tagged = self._ring_allgather(obj, own, "allgather")
        out: List[Any] = [None] * self.world_size
        for rank, payload, _ in tagged:
            out[rank] = payload
        return out

    def _ring_allgather(self, obj: Any, own_bytes: float, op: str) -> List[Any]:
        """Rotate size-tagged blocks around the ring; returns all W blocks."""
        W = self.world_size
        cur = (self.rank, obj, float(own_bytes))
        collected = [cur]
        sent = 0.0
        for _ in range(W - 1):
            self._send(cur)
            sent += cur[2]
            cur = self._recv(op)
            collected.append(cur)
        self._charge(op, sent, W - 1)
        return collected

    def broadcast(self, obj: Any, root: int = 0, nbytes: Optional[float] = None) -> Any:
        W = self.world_size
        if W == 1:
            return obj
        with span("dist.broadcast", backend=self.backend):
            if self.rank == root:
                self._send(obj)
                self._charge("broadcast", _payload_bytes(obj, nbytes), 1)
                return obj
            obj = self._recv("broadcast")
            if (self.rank + 1) % W != root:  # chain relay; tail stops
                self._send(obj)
                self._charge("broadcast", _payload_bytes(obj, nbytes), 1)
            return obj

    def barrier(self) -> None:
        with span("dist.barrier", backend=self.backend):
            if self.world_size > 1:
                self._ring_allgather(None, 8.0, "barrier")

    def _stall(self, seconds: float) -> None:
        time.sleep(seconds)
        self._note_wait("straggler", seconds)


_BACKENDS = {"sim": SimulatedCollective, "threaded": ThreadedCollective}


def run_spmd(
    world_size: int,
    fn: Callable[[Collective], Any],
    *,
    backend: str = "sim",
    devices: Optional[Sequence[Optional[GpuDevice]]] = None,
    spec: DeviceSpec = TITAN_X_PASCAL,
    link: Optional[LinkSpec] = None,
    faults: Optional[FaultPlan] = None,
):
    """Run ``fn(collective)`` on ``world_size`` rank threads.

    Returns ``(results, collectives)`` with one entry per rank.  If any
    rank died -- injected :class:`WorkerCrash` or an escaped exception --
    every surviving rank unblocks with :class:`WorkerFailure`, and after all
    threads join this raises :class:`WorkerFailure` naming the failed ranks
    (non-fault exceptions are re-raised as themselves so real bugs are not
    mistaken for injected faults).
    """
    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {sorted(_BACKENDS)}")
    world = _World(world_size)
    if devices is None:
        devices = [GpuDevice(spec) for _ in range(world_size)]
    cls = _BACKENDS[backend]
    colls = [
        cls(world, r, devices[r], link or LinkSpec.for_spec(spec), faults)
        for r in range(world_size)
    ]

    results: List[Any] = [None] * world_size
    errors: List[Optional[BaseException]] = [None] * world_size

    def target(r: int) -> None:
        try:
            results[r] = fn(colls[r])
        except (WorkerCrash, WorkerFailure) as exc:
            errors[r] = exc
        except BaseException as exc:  # a real bug: fail the world, re-raise below
            errors[r] = exc
            world.fail(r)

    threads = [
        threading.Thread(target=target, args=(r,), name=f"dist-w{r}", daemon=True)
        for r in range(world_size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300.0)
        if t.is_alive():
            world.fail(-1)
            raise RuntimeError(f"{t.name} did not finish (deadlock?)")

    for err in errors:
        if err is not None and not isinstance(err, (WorkerCrash, WorkerFailure)):
            raise err
    failed = world.failed_snapshot()
    if failed:
        raise WorkerFailure(failed)
    return results, colls
