"""Collective communication for distributed GBDT training.

The paper's future work (Section VI) names multi-GPU / cluster training;
the production path for it is row-sharded data parallelism over allreduced
histograms (Mitchell et al. 2018, Zhang et al. 2017).  This module provides
the collectives that design needs -- ``allreduce_sum``, ``allreduce_max``,
``allgather``, ``broadcast``, ``barrier`` -- behind one SPMD abstraction
with two interchangeable backends:

``SimulatedCollective`` (``backend="sim"``)
    Ranks run on threads but every collective is a *rendezvous*: all ranks
    deposit, synchronize, and then each computes the reduction locally in
    rank order (deterministic; exact for the int64 payloads the trainer
    moves).  Communication cost is charged to each rank's
    :class:`~repro.gpusim.kernel.GpuDevice` ledger using ring-step
    accounting -- a ring allreduce of ``B`` bytes across ``W`` ranks costs
    every rank ``2(W-1)`` steps of ``B/W`` bytes over its link -- so the
    cost model produces a modeled scaling curve.

``ThreadedCollective`` (``backend="threaded"``)
    A real message-passing implementation: per-ring-edge FIFO queues between
    in-process worker threads, a genuine ring reduce-scatter + allgather for
    ``allreduce_sum``, ring block rotation for ``allgather``, and a chain
    relay for ``broadcast``.  Collectives are exercised under true
    concurrency; blocked-receive time is measured as wait seconds.

Link cost is expressed in "equivalent PCIe bytes": one
:class:`~repro.gpusim.kernel.Transfer` is recorded per collective whose
byte count is chosen so the roofline cost model reproduces ``steps *
link.latency_s + bytes / link.bandwidth``.  The *true* payload bytes are
what the obs counters (``collective_bytes_total`` etc.) and per-rank
:class:`CollectiveStats` report.

Fault injection lives here because faults *manifest* in the comms layer: a
:class:`FaultPlan` can kill a rank at a round boundary (``WorkerCrash``;
surviving ranks observe ``WorkerFailure`` at their next collective) or
stall a straggler rank.  :func:`run_spmd` is the driver: it spawns one
thread per rank, runs the same function everywhere, and converts a crashed
world into a single :class:`WorkerFailure` naming the failed ranks so the
caller can reshard and retry.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..gpusim.costmodel import PCIE_LATENCY_S
from ..gpusim.device import DeviceSpec, TITAN_X_PASCAL
from ..gpusim.kernel import GpuDevice
from ..obs import Tracer, current_tracer, get_registry, get_tracer, use_thread_tracer

__all__ = [
    "Collective",
    "CollectiveStats",
    "CollectiveTimeout",
    "FaultPlan",
    "LinkSpec",
    "SimulatedCollective",
    "ThreadedCollective",
    "WorkerCrash",
    "WorkerFailure",
    "run_spmd",
]

#: seconds a threaded receive waits between checks of the failure flag
_RECV_POLL_S = 0.05

#: give up a threaded receive entirely after this long (a deadlocked test
#: should fail loudly, not hang the suite)
_RECV_TIMEOUT_S = 60.0


class WorkerCrash(RuntimeError):
    """Raised *inside* the rank that an injected fault kills."""

    def __init__(self, rank: int, round_: int) -> None:
        super().__init__(f"worker {rank} crashed (injected fault, round {round_})")
        self.rank = rank
        self.round = round_


class WorkerFailure(RuntimeError):
    """Raised in surviving ranks (and by :func:`run_spmd`) when peers died.

    When raised by :func:`run_spmd`, :attr:`flight_recorder` holds one
    post-mortem snapshot per rank that captured one (unclosed spans, the
    last collective op and its lockstep sequence number, accumulated wait
    seconds) so a hung or crashed world can be diagnosed from the report.
    """

    def __init__(self, failed_ranks, flight_recorder=None) -> None:
        ranks = frozenset(int(r) for r in failed_ranks)
        super().__init__(f"worker(s) {sorted(ranks)} failed")
        self.failed_ranks = ranks
        self.flight_recorder: Dict[int, Dict[str, Any]] = dict(flight_recorder or {})


class CollectiveTimeout(RuntimeError):
    """A blocked receive gave up: carries rank, op, and elapsed seconds.

    This is a *real* failure (deadlock, lost peer without a fault event),
    not an injected fault -- :func:`run_spmd` fails the world and re-raises
    it as itself so it is never mistaken for a planned :class:`WorkerCrash`.
    """

    def __init__(self, rank: int, op: str, elapsed_s: float) -> None:
        super().__init__(
            f"rank {rank}: receive timed out in {op} after {elapsed_s:.1f}s"
        )
        self.rank = int(rank)
        self.op = op
        self.elapsed_s = float(elapsed_s)


@dataclasses.dataclass(frozen=True)
class LinkSpec:
    """Per-link bandwidth/latency of the interconnect between ranks."""

    bandwidth_gbs: float = 12.0
    latency_s: float = PCIE_LATENCY_S

    @classmethod
    def for_spec(cls, spec: DeviceSpec) -> "LinkSpec":
        """A link matching the device's PCIe (the single-node default)."""
        return cls(bandwidth_gbs=spec.pcie_bandwidth_gbs, latency_s=PCIE_LATENCY_S)


@dataclasses.dataclass
class FaultPlan:
    """Injectable faults, triggered at round-boundary fault points.

    ``kill_rank`` raises :class:`WorkerCrash` in that rank when it reaches
    the fault point of ``kill_round``.  ``straggler_rank`` stalls that rank
    by ``straggler_delay_s`` at every round's fault point (or only at
    ``straggler_round`` if given): real ``sleep`` under the threaded
    backend, a modeled link stall under the simulated one.
    """

    kill_rank: Optional[int] = None
    kill_round: int = 0
    straggler_rank: Optional[int] = None
    straggler_delay_s: float = 0.0
    straggler_round: Optional[int] = None


@dataclasses.dataclass
class CollectiveStats:
    """Per-rank communication totals (true payload bytes, not modeled)."""

    bytes_total: float = 0.0
    steps_total: int = 0
    wait_s: float = 0.0
    ops: int = 0


class _Rendezvous:
    """Generation-counted barrier whose ``abort`` is not retroactive.

    ``threading.Barrier.abort()`` breaks *every* thread still inside
    ``wait()`` -- including threads whose generation already completed but
    that have not yet been scheduled out of the wait.  Here a crashing rank
    that races ahead (completes rendezvous k, then aborts at its next fault
    point) cannot spuriously fail peers still draining rendezvous k: a
    waiter whose generation advanced returns success regardless of the
    broken flag, so e.g. rank 0's end-of-round checkpoint always happens
    when every rank finished the round.  Only incomplete generations break
    (as :class:`threading.BrokenBarrierError`, matching the stdlib type).
    """

    def __init__(self, parties: int) -> None:
        self.parties = parties
        self.count = 0
        self.generation = 0
        self.broken = False
        self.cond = threading.Condition()

    def wait(self) -> None:
        with self.cond:
            if self.broken:
                raise threading.BrokenBarrierError
            gen = self.generation
            self.count += 1
            if self.count == self.parties:
                self.count = 0
                self.generation += 1
                self.cond.notify_all()
                return
            while self.generation == gen and not self.broken:
                self.cond.wait()
            if self.generation == gen:  # broke before this generation filled
                raise threading.BrokenBarrierError

    def abort(self) -> None:
        with self.cond:
            self.broken = True
            self.cond.notify_all()


class _World:
    """State shared by all ranks of one SPMD run."""

    def __init__(self, world_size: int) -> None:
        self.world_size = world_size
        self.barrier = _Rendezvous(world_size)
        self.slots: List[Any] = [None] * world_size
        self.queues = [queue.Queue() for _ in range(world_size)]
        self.failed: set[int] = set()
        self.fail_event = threading.Event()
        self.lock = threading.Lock()

    def fail(self, rank: int) -> None:
        """Mark ``rank`` dead and wake every blocked peer."""
        with self.lock:
            self.failed.add(int(rank))
        self.fail_event.set()
        self.barrier.abort()

    def failed_snapshot(self) -> frozenset:
        with self.lock:
            return frozenset(self.failed)


class Collective:
    """One rank's handle on the world: SPMD collectives + fault points.

    Subclasses implement the five collectives; payloads the trainer moves
    are int64/float64 ndarrays (reductions) or small picklable objects
    (allgather/broadcast of sketches and models).
    """

    backend = "abstract"

    def __init__(
        self,
        world: _World,
        rank: int,
        device: Optional[GpuDevice],
        link: LinkSpec,
        faults: Optional[FaultPlan],
        *,
        clock: Callable[[], float] = time.perf_counter,
        tracer: Optional[Tracer] = None,
        recv_timeout_s: float = _RECV_TIMEOUT_S,
    ) -> None:
        self.world = world
        self.rank = int(rank)
        self.device = device
        self.link = link
        self.faults = faults
        self.stats = CollectiveStats()
        #: injectable time source for wait measurement (deterministic tests)
        self.clock = clock
        #: rank-tagged tracer installed by :func:`run_spmd` (None = whatever
        #: tracer is current on the calling thread)
        self.tracer = tracer
        self.recv_timeout_s = float(recv_timeout_s)
        #: lockstep sequence number: every rank executes the same collective
        #: program, so op k on rank r pairs with op k on every other rank --
        #: the merged-trace exporter aligns ranks on it
        self.seq = 0
        #: (op name, seq) of the most recent collective this rank entered
        self.last_op: Optional[tuple] = None
        #: post-mortem snapshot captured at failure time (flight recorder)
        self.flight_: Optional[Dict[str, Any]] = None

    @property
    def world_size(self) -> int:
        return self.world.world_size

    # -------------------------------------------------------------- tracing
    def _op_span(self, op: str, **attrs: Any):
        """Open a rank-tagged span for one collective, stamping the lockstep
        sequence number and recording it as the last op entered."""
        self.seq += 1
        self.last_op = (op, self.seq)
        tracer = self.tracer if self.tracer is not None else current_tracer()
        return tracer.span(
            f"dist.{op}", backend=self.backend, seq=self.seq, **attrs
        )

    def flight_snapshot(self, reason: str) -> Dict[str, Any]:
        """Freeze this rank's state for the failure report: the last
        collective entered (op + lockstep seq), accumulated blocked time,
        and every span still open on the calling thread."""
        tracer = self.tracer if self.tracer is not None else current_tracer()
        now = tracer.clock()
        snapshot = {
            "rank": self.rank,
            "reason": reason,
            "last_op": self.last_op[0] if self.last_op else None,
            "seq": self.last_op[1] if self.last_op else 0,
            "wait_s": self.stats.wait_s,
            "unclosed": [
                {
                    "name": sp.name,
                    "attrs": dict(sp.attrs),
                    "elapsed_s": max(0.0, now - sp.t_start),
                }
                for sp in tracer.open_spans()
            ],
        }
        self.flight_ = snapshot
        return snapshot

    # -------------------------------------------------------------- faults
    def fault_point(self, round_: int) -> None:
        """Trigger any injected fault scheduled for this rank/round."""
        f = self.faults
        if f is None:
            return
        if (
            f.straggler_rank == self.rank
            and f.straggler_delay_s > 0
            and (f.straggler_round is None or f.straggler_round == round_)
        ):
            self._stall(f.straggler_delay_s)
        if f.kill_rank == self.rank and f.kill_round == round_:
            self.flight_snapshot(f"injected kill at round {round_}")
            self.world.fail(self.rank)
            raise WorkerCrash(self.rank, round_)

    def _stall(self, seconds: float) -> None:
        raise NotImplementedError

    # ----------------------------------------------------------- accounting
    def _charge(self, op: str, nbytes: float, steps: int) -> None:
        """Record true payload traffic and (if a device is attached) the
        modeled link time as equivalent PCIe bytes."""
        self.stats.bytes_total += nbytes
        self.stats.steps_total += steps
        self.stats.ops += 1
        reg = get_registry()
        reg.counter(
            "collective_bytes_total",
            "payload bytes moved by collective ops (per rank)",
            backend=self.backend, op=op,
        ).inc(nbytes)
        reg.counter(
            "collective_steps_total",
            "ring/chain steps executed by collective ops (per rank)",
            backend=self.backend, op=op,
        ).inc(steps)
        if self.device is not None and steps > 0:
            self.device.transfer(
                f"collective_{op}", self._equiv_bytes(nbytes, steps), scale=False
            )

    def _equiv_bytes(self, nbytes: float, steps: int) -> float:
        """PCIe byte count whose modeled time equals ``steps * latency +
        nbytes / bandwidth`` over this rank's link."""
        pcie_bps = self.device.spec.pcie_bandwidth_gbs * 1e9
        link_bps = self.link.bandwidth_gbs * 1e9
        lat = max(0.0, steps * self.link.latency_s - PCIE_LATENCY_S)
        return lat * pcie_bps + nbytes * (pcie_bps / link_bps)

    def _note_wait(self, op: str, seconds: float) -> None:
        if seconds <= 0:
            return
        self.stats.wait_s += seconds
        get_registry().counter(
            "collective_wait_seconds_total",
            "time ranks spent blocked or stalled in collectives",
            backend=self.backend, op=op, rank=self.rank,
        ).inc(seconds)

    # ----------------------------------------------------------- interface
    def allreduce_sum(self, arr: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def allreduce_max(self, arr: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def allgather(self, obj: Any, nbytes: Optional[float] = None) -> List[Any]:
        raise NotImplementedError

    def broadcast(self, obj: Any, root: int = 0, nbytes: Optional[float] = None) -> Any:
        raise NotImplementedError

    def barrier(self) -> None:
        raise NotImplementedError


def _payload_bytes(obj: Any, hint: Optional[float]) -> float:
    if hint is not None:
        return float(hint)
    if isinstance(obj, np.ndarray):
        return float(obj.nbytes)
    return 64.0  # small control message


class SimulatedCollective(Collective):
    """Rendezvous collectives with modeled ring-step link cost.

    Results are computed identically on every rank by reducing the deposited
    contributions in rank order, so the backend is deterministic by
    construction; the gpusim ledger carries the comm cost.
    """

    backend = "sim"

    # ------------------------------------------------------------ exchange
    def _wait_rendezvous(self) -> None:
        try:
            self.world.barrier.wait()
        except threading.BrokenBarrierError:
            self.flight_snapshot("rendezvous broken by peer failure")
            raise WorkerFailure(self.world.failed_snapshot()) from None

    def _exchange(self, payload: Any) -> List[Any]:
        """All ranks deposit, then all ranks see every deposit."""
        w = self.world
        w.slots[self.rank] = payload
        self._wait_rendezvous()  # everyone deposited
        out = list(w.slots)
        self._wait_rendezvous()  # everyone read; slots reusable
        return out

    # ---------------------------------------------------------- collectives
    def allreduce_sum(self, arr: np.ndarray) -> np.ndarray:
        arr = np.asarray(arr)
        with self._op_span("allreduce_sum", nbytes=arr.nbytes):
            parts = self._exchange(arr)
            out = np.zeros_like(arr)
            for part in parts:  # rank order: deterministic (exact for int64)
                out = out + part
        W = self.world_size
        if W > 1:
            # ring allreduce: 2(W-1) steps of B/W bytes per rank
            self._charge("allreduce", arr.nbytes * 2 * (W - 1) / W, 2 * (W - 1))
        return out

    def allreduce_max(self, arr: np.ndarray) -> np.ndarray:
        arr = np.asarray(arr)
        with self._op_span("allreduce_max", nbytes=arr.nbytes):
            parts = self._exchange(arr)
            out = parts[0]
            for part in parts[1:]:  # max is exact and order-independent
                out = np.maximum(out, part)
        W = self.world_size
        if W > 1:
            self._charge("allreduce", arr.nbytes * 2 * (W - 1) / W, 2 * (W - 1))
        return np.array(out, copy=True)

    def allgather(self, obj: Any, nbytes: Optional[float] = None) -> List[Any]:
        own = _payload_bytes(obj, nbytes)
        with self._op_span("allgather", nbytes=own):
            parts = self._exchange((obj, own))
        W = self.world_size
        if W > 1:
            # ring allgather: every rank forwards all blocks but its own
            total = sum(p[1] for p in parts)
            self._charge("allgather", total - own, W - 1)
        return [p[0] for p in parts]

    def broadcast(self, obj: Any, root: int = 0, nbytes: Optional[float] = None) -> Any:
        with self._op_span("broadcast"):
            parts = self._exchange((obj, _payload_bytes(obj, nbytes)))
        out, size = parts[root]
        if self.world_size > 1:
            # chain relay: every rank but the tail forwards the payload once
            self._charge("broadcast", size, 1)
        return out

    def barrier(self) -> None:
        with self._op_span("barrier"):
            self._exchange(None)
        if self.world_size > 1:
            self._charge("barrier", 8.0 * (self.world_size - 1), self.world_size - 1)

    def _stall(self, seconds: float) -> None:
        """Model a straggler as an equivalent link stall on this rank."""
        if self.device is not None:
            pcie_bps = self.device.spec.pcie_bandwidth_gbs * 1e9
            nbytes = max(0.0, seconds - PCIE_LATENCY_S) * pcie_bps
            self.device.transfer("straggler_stall", nbytes, scale=False)
        self._note_wait("straggler", seconds)


class ThreadedCollective(Collective):
    """Real ring collectives over per-edge FIFO queues between threads.

    Rank ``r`` sends to ``(r+1) % W`` and receives from ``(r-1) % W``.
    Every rank executes the same sequence of collectives (SPMD program
    order) and each edge's queue is FIFO, so messages of consecutive
    collectives can never be confused even though ranks drift in time.
    """

    backend = "threaded"

    # ------------------------------------------------------------ messaging
    def _send(self, payload: Any) -> None:
        self.world.queues[(self.rank + 1) % self.world_size].put(payload)

    def _recv(self, op: str) -> Any:
        q = self.world.queues[self.rank]
        t0 = self.clock()
        while True:
            try:
                msg = q.get(timeout=_RECV_POLL_S)
                self._note_wait(op, self.clock() - t0)
                return msg
            except queue.Empty:
                elapsed = self.clock() - t0
                if self.world.fail_event.is_set():
                    self._note_wait(op, elapsed)
                    self.flight_snapshot("receive interrupted by peer failure")
                    raise WorkerFailure(self.world.failed_snapshot()) from None
                if elapsed > self.recv_timeout_s:
                    self._note_wait(op, elapsed)
                    get_registry().counter(
                        "collective_timeout_total",
                        "blocked receives that gave up (deadlock suspected)",
                        backend=self.backend, op=op, rank=self.rank,
                    ).inc()
                    self.flight_snapshot(f"receive timed out in {op}")
                    raise CollectiveTimeout(self.rank, op, elapsed)

    # ---------------------------------------------------------- collectives
    def allreduce_sum(self, arr: np.ndarray) -> np.ndarray:
        a = np.asarray(arr)
        W = self.world_size
        if W == 1:
            return a.copy()
        with self._op_span("allreduce_sum", nbytes=a.nbytes):
            flat = a.reshape(-1).copy()
            chunks: List[np.ndarray] = list(np.array_split(flat, W))
            sent = 0.0
            # ring reduce-scatter: after W-1 steps rank r holds the fully
            # reduced chunk (r+1) % W
            for step in range(W - 1):
                send_idx = (self.rank - step) % W
                recv_idx = (self.rank - step - 1) % W
                self._send(chunks[send_idx])
                sent += chunks[send_idx].nbytes
                incoming = self._recv("allreduce")
                chunks[recv_idx] = chunks[recv_idx] + incoming
            # ring allgather of the reduced chunks
            for step in range(W - 1):
                send_idx = (self.rank - step + 1) % W
                self._send(chunks[send_idx])
                sent += chunks[send_idx].nbytes
                chunks[(self.rank - step) % W] = self._recv("allreduce")
            out = np.concatenate([np.asarray(c) for c in chunks])
        self._charge("allreduce", sent, 2 * (W - 1))
        return out.reshape(a.shape)

    def allreduce_max(self, arr: np.ndarray) -> np.ndarray:
        a = np.asarray(arr)
        if self.world_size == 1:
            return a.copy()
        # extrema payloads are tiny: gather-then-reduce over the ring
        with self._op_span("allreduce_max", nbytes=a.nbytes):
            parts = self._ring_allgather(a, a.nbytes, "allreduce")
            out = np.array(a, copy=True)
            for _, part, _ in parts:  # max is exact and order-independent
                out = np.maximum(out, part)
        return out

    def allgather(self, obj: Any, nbytes: Optional[float] = None) -> List[Any]:
        own = _payload_bytes(obj, nbytes)
        if self.world_size == 1:
            return [obj]
        with self._op_span("allgather", nbytes=own):
            tagged = self._ring_allgather(obj, own, "allgather")
        out: List[Any] = [None] * self.world_size
        for rank, payload, _ in tagged:
            out[rank] = payload
        return out

    def _ring_allgather(self, obj: Any, own_bytes: float, op: str) -> List[Any]:
        """Rotate size-tagged blocks around the ring; returns all W blocks."""
        W = self.world_size
        cur = (self.rank, obj, float(own_bytes))
        collected = [cur]
        sent = 0.0
        for _ in range(W - 1):
            self._send(cur)
            sent += cur[2]
            cur = self._recv(op)
            collected.append(cur)
        self._charge(op, sent, W - 1)
        return collected

    def broadcast(self, obj: Any, root: int = 0, nbytes: Optional[float] = None) -> Any:
        W = self.world_size
        if W == 1:
            return obj
        with self._op_span("broadcast"):
            if self.rank == root:
                self._send(obj)
                self._charge("broadcast", _payload_bytes(obj, nbytes), 1)
                return obj
            obj = self._recv("broadcast")
            if (self.rank + 1) % W != root:  # chain relay; tail stops
                self._send(obj)
                self._charge("broadcast", _payload_bytes(obj, nbytes), 1)
            return obj

    def barrier(self) -> None:
        with self._op_span("barrier"):
            if self.world_size > 1:
                self._ring_allgather(None, 8.0, "barrier")

    def _stall(self, seconds: float) -> None:
        time.sleep(seconds)
        self._note_wait("straggler", seconds)


_BACKENDS = {"sim": SimulatedCollective, "threaded": ThreadedCollective}


def run_spmd(
    world_size: int,
    fn: Callable[[Collective], Any],
    *,
    backend: str = "sim",
    devices: Optional[Sequence[Optional[GpuDevice]]] = None,
    spec: DeviceSpec = TITAN_X_PASCAL,
    link: Optional[LinkSpec] = None,
    faults: Optional[FaultPlan] = None,
    tracers: Optional[Sequence[Tracer]] = None,
    recv_timeout_s: Optional[float] = None,
):
    """Run ``fn(collective)`` on ``world_size`` rank threads.

    Returns ``(results, collectives)`` with one entry per rank.  Every rank
    records its spans into a rank-tagged :class:`~repro.obs.Tracer`
    (``tracers[r]`` if given, else a fresh one inheriting the process
    tracer's settings) installed as the thread-local tracer for the rank's
    thread -- read them back from ``coll.tracer`` and feed them to
    :func:`repro.obs.export.export_merged_chrome_trace` for a per-rank
    timeline.

    If any rank died -- injected :class:`WorkerCrash` or an escaped
    exception -- every surviving rank unblocks with :class:`WorkerFailure`,
    and after all threads join this raises :class:`WorkerFailure` naming the
    failed ranks and carrying each rank's flight-recorder snapshot
    (non-fault exceptions are re-raised as themselves so real bugs are not
    mistaken for injected faults).
    """
    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {sorted(_BACKENDS)}")
    world = _World(world_size)
    if devices is None:
        devices = [GpuDevice(spec) for _ in range(world_size)]
    if tracers is None:
        parent = get_tracer()
        tracers = [
            Tracer(
                enabled=parent.enabled,
                clock=parent.clock,
                max_spans=parent.max_spans,
                tags={"rank": r},
            )
            for r in range(world_size)
        ]
    elif len(tracers) != world_size:
        raise ValueError("tracers must have one entry per rank")
    cls = _BACKENDS[backend]
    kwargs: Dict[str, Any] = {}
    if recv_timeout_s is not None:
        kwargs["recv_timeout_s"] = recv_timeout_s
    colls = [
        cls(
            world,
            r,
            devices[r],
            link or LinkSpec.for_spec(spec),
            faults,
            tracer=tracers[r],
            **kwargs,
        )
        for r in range(world_size)
    ]

    results: List[Any] = [None] * world_size
    errors: List[Optional[BaseException]] = [None] * world_size

    def target(r: int) -> None:
        try:
            with use_thread_tracer(tracers[r]):
                with tracers[r].span("dist.worker", backend=backend):
                    results[r] = fn(colls[r])
        except (WorkerCrash, WorkerFailure) as exc:
            errors[r] = exc
        except BaseException as exc:  # a real bug: fail the world, re-raise below
            errors[r] = exc
            world.fail(r)

    threads = [
        threading.Thread(target=target, args=(r,), name=f"dist-w{r}", daemon=True)
        for r in range(world_size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300.0)
        if t.is_alive():
            world.fail(-1)
            raise RuntimeError(f"{t.name} did not finish (deadlock?)")

    for err in errors:
        if err is not None and not isinstance(err, (WorkerCrash, WorkerFailure)):
            raise err
    failed = world.failed_snapshot()
    if failed:
        raise WorkerFailure(
            failed,
            flight_recorder={
                r: colls[r].flight_
                for r in range(world_size)
                if colls[r].flight_ is not None
            },
        )
    return results, colls
