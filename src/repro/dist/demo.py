"""``python -m repro dist demo``: distributed training walk-through.

Trains the row-sharded data-parallel trainer on a small covtype sample,
prints the per-worker modeled times and collective-traffic totals, verifies
byte-identity against the single-process histogram trainer, and (with
``--kill-worker``) runs the crash-recovery drill: kill a rank mid-training,
restore from the checkpoint, reshard to the survivors, and land on the same
model digest.  The final ``DIST_DIGEST <hex>`` line is what CI diffs
between a killed run and a clean one.
"""

from __future__ import annotations

import dataclasses
import tempfile
from typing import List, Optional

from ..approx.histogram_trainer import HistogramGBDTTrainer
from ..core.params import GBDTParams
from ..data.datasets import make_dataset
from ..pipeline.checkpoint import model_digest
from .comms import FaultPlan
from .trainer import DistributedHistTrainer

__all__ = ["DistDemoResult", "run_dist_demo"]


@dataclasses.dataclass
class DistDemoResult:
    """Everything the demo prints, plus the digest CI greps for."""

    digest: str
    workers: int
    backend: str
    recoveries: int
    matches_single: bool
    elapsed_s: float
    comm_bytes: float
    comm_steps: int
    lines: List[str]

    @property
    def text(self) -> str:
        return "\n".join(self.lines)


def run_dist_demo(
    *,
    quick: bool = False,
    workers: int = 4,
    backend: str = "sim",
    trees: Optional[int] = None,
    kill_worker: Optional[int] = None,
    kill_round: Optional[int] = None,
    straggler: Optional[int] = None,
    straggler_delay_s: float = 0.01,
    ckpt_dir: Optional[str] = None,
    max_bins: int = 32,
    trace_path: Optional[str] = None,
) -> DistDemoResult:
    """Run the demo; returns the printed report and the model digest."""
    n_trees = trees if trees is not None else (4 if quick else 8)
    rows = 300 if quick else 1200
    ds = make_dataset("covtype", run_rows=rows, seed=11)
    params = GBDTParams(n_trees=n_trees, max_depth=5, seed=7)

    faults = None
    if kill_worker is not None:
        faults = FaultPlan(
            kill_rank=kill_worker,
            kill_round=kill_round if kill_round is not None else max(1, n_trees // 2),
        )
    if straggler is not None:
        base_faults = faults or FaultPlan()
        faults = dataclasses.replace(
            base_faults, straggler_rank=straggler, straggler_delay_s=straggler_delay_s
        )

    tmp = None
    if ckpt_dir is None and kill_worker is not None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-dist-demo-")
        ckpt_dir = tmp.name

    try:
        trainer = DistributedHistTrainer(
            params,
            n_workers=workers,
            max_bins=max_bins,
            backend=backend,
            faults=faults,
            checkpoint_dir=ckpt_dir,
            checkpoint_every=1,
        )
        model = trainer.fit(ds.X, ds.y)

        reference = HistogramGBDTTrainer(params, max_bins=max_bins).fit(ds.X, ds.y)
        matches = model.to_json() == reference.to_json()
        digest = model_digest(model)

        lines = [
            f"distributed training: {workers} workers, backend={backend}, "
            f"{rows} rows, {n_trees} trees, max_bins={max_bins}",
        ]
        for attempt in trainer.attempts_:
            if attempt.failed_ranks:
                lines.append(
                    f"  attempt with {attempt.workers} workers lost rank(s) "
                    f"{attempt.failed_ranks} -- restored checkpoint, resharded"
                )
            else:
                note = (
                    f" (resumed at round {attempt.resumed_round})"
                    if attempt.resumed_round
                    else ""
                )
                lines.append(
                    f"  trained to completion on {attempt.workers} workers{note}"
                )
        if trainer.recoveries:
            lines.append(f"  recovered from {trainer.recoveries} worker failure(s)")
        for rank, (dev, st) in enumerate(zip(trainer.devices_, trainer.comm_stats_)):
            lines.append(
                f"  worker {rank}: modeled {dev.elapsed_seconds()*1e3:8.2f} ms, "
                f"comm {st.bytes_total/1e6:7.3f} MB in {st.steps_total} steps, "
                f"wait {st.wait_s*1e3:.1f} ms"
            )
        lines.append(
            f"  makespan {trainer.elapsed_seconds()*1e3:.2f} ms modeled, "
            f"total comm {trainer.comm_bytes()/1e6:.3f} MB / {trainer.comm_steps()} steps"
        )
        lines.append(
            "  byte-identical to single-process histogram trainer: "
            + ("yes" if matches else "NO -- BUG")
        )
        for attempt in trainer.attempts_:
            for rank, flight in sorted(attempt.flight_recorder.items()):
                lines.append(
                    f"  flight recorder rank {rank}: {flight['reason']} "
                    f"(last op {flight['last_op']} seq {flight['seq']}, "
                    f"{len(flight['unclosed'])} unclosed span(s))"
                )
        if trace_path is not None:
            n_slices = trainer.export_trace(trace_path)
            lines.append(
                f"  merged per-rank trace: {n_slices} slices -> {trace_path} "
                "(open at ui.perfetto.dev)"
            )
        lines.append(f"DIST_DIGEST {digest}")

        return DistDemoResult(
            digest=digest,
            workers=workers,
            backend=backend,
            recoveries=trainer.recoveries,
            matches_single=matches,
            elapsed_s=trainer.elapsed_seconds(),
            comm_bytes=trainer.comm_bytes(),
            comm_steps=trainer.comm_steps(),
            lines=lines,
        )
    finally:
        if tmp is not None:
            tmp.cleanup()
