"""Row-sharded data-parallel histogram training over collectives.

``DistributedHistTrainer`` shards the training rows contiguously across
``W`` workers and grows every tree with the *same* code as the
single-process :class:`~repro.approx.histogram_trainer.HistogramGBDTTrainer`
-- each worker runs a :class:`_WorkerTrainer` subclass whose distribution
hooks replace local reductions with collectives:

==================  =====================================================
hook                distributed implementation
==================  =====================================================
``_base_score``     global base computed once by the driver on full ``y``
``_bin_spec``       allgather + merge of exact weighted column sketches
                    (:mod:`repro.approx.quantile`) -- every worker derives
                    the identical global cuts
``_round_shift``    allreduce-max of the local gradient extrema
``_root_sums``      allreduce-sum of int64 root statistics
``_reduce_``        ring allreduce of the stacked int64 histogram tables;
``histograms``      the split scan then runs on *global* tables, so every
                    worker takes the identical decision with no winner
                    broadcast (comm volume is O(bins), not O(rows))
==================  =====================================================

With sibling subtraction on (the default, see
:mod:`repro.approx.histops`) the shared grow loop hands
``_reduce_histograms`` only the **smaller child** of each sibling pair, so
the per-level allreduce payload roughly halves; every rank then derives
the sibling locally as ``parent - built`` from the previous level's
already-global tables.  Both operands being global keeps the derivation
exact and rank-identical -- subtraction is inherited through the hook with
no distributed-specific code.

Because gradients are fixed-point quantized (:mod:`repro.approx.fixedpoint`)
all reductions are exact and order-independent, so the W-worker model is
**byte-identical** to single-worker training for any W -- the differential
test suite asserts serialized-model equality under both backends.

Fault tolerance: rank 0 checkpoints the growing ensemble every
``checkpoint_every`` rounds through :class:`repro.pipeline.checkpoint.
CheckpointStore`.  When an injected (or real) fault kills workers, the
surviving driver restores the newest checkpoint, re-shards the rows over
the survivors, warm-starts boosting from the restored trees (bit-identical
replay), and continues -- landing on the same final model digest as an
uninterrupted run, because the grown trees are shard-count-independent.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import List, Optional

import numpy as np

from ..approx.fixedpoint import choose_shift
from ..approx.histogram_trainer import HistogramGBDTTrainer
from ..approx.quantile import (
    BinSpec,
    build_bins_from_sketches,
    merge_sketches,
    sketch_columns,
)
from ..core.booster_model import GBDTModel
from ..core.params import GBDTParams
from ..core.smartgd import GradientComputer
from ..core.tree import DecisionTree
from ..data.matrix import CSRMatrix
from ..gpusim.device import DeviceSpec, TITAN_X_PASCAL
from ..gpusim.kernel import GpuDevice
from ..obs import Tracer, get_registry, get_tracer, span
from ..obs.export import export_merged_chrome_trace
from ..pipeline.checkpoint import CheckpointStore, model_digest
from .comms import Collective, FaultPlan, LinkSpec, WorkerFailure, run_spmd

__all__ = ["DistributedHistTrainer"]


class _WorkerTrainer(HistogramGBDTTrainer):
    """One rank's trainer: the shared grow loop + collective reduction hooks."""

    def __init__(
        self,
        params: GBDTParams,
        coll: Collective,
        *,
        max_bins: int,
        n_global: int,
        base: float,
        init_trees: List[DecisionTree],
        store: Optional[CheckpointStore],
        checkpoint_every: int,
        row_scale: float,
        use_subtraction: bool | None = None,
    ) -> None:
        super().__init__(
            params, coll.device, max_bins=max_bins, row_scale=row_scale,
            use_subtraction=use_subtraction,
        )
        self.coll = coll
        self._n_global = int(n_global)
        self._base = float(base)
        self._init = init_trees
        self._store = store
        self._every = max(1, int(checkpoint_every))

    # ----------------------------------------------------- global reductions
    def _base_score(self, y: np.ndarray) -> float:
        return self._base

    def _global_rows(self, n: int) -> int:
        return self._n_global

    def _bin_spec(self, cols) -> BinSpec:
        local = sketch_columns(cols)
        nbytes = float(
            sum(s.values.nbytes + s.counts.nbytes for s in local)
        )
        with span("dist.sketch_merge", n_attrs=len(local)):
            gathered = self.coll.allgather(local, nbytes=nbytes)
            merged = [
                merge_sketches([shard[j] for shard in gathered])
                for j in range(len(local))
            ]
        return build_bins_from_sketches(merged, self.max_bins)

    def _round_shift(self, g: np.ndarray, h: np.ndarray) -> int:
        local = np.array(
            [
                float(np.max(np.abs(g))) if g.size else 0.0,
                float(np.max(np.abs(h))) if h.size else 0.0,
            ]
        )
        m = self.coll.allreduce_max(local)
        return choose_shift(float(m[0]), float(m[1]), self._n_global)

    def _root_sums(self, gq: np.ndarray, hq: np.ndarray, n: int):
        totals = self.coll.allreduce_sum(
            np.array([gq.sum(), hq.sum(), n], dtype=np.int64)
        )
        return int(totals[0]), int(totals[1]), int(totals[2])

    def _reduce_histograms(self, hist_gq, hist_hq, hist_c):
        stacked = np.stack([hist_gq, hist_hq, hist_c])
        reduced = self.coll.allreduce_sum(stacked)
        return reduced[0], reduced[1], reduced[2]

    # --------------------------------------------------- resume / checkpoints
    def _initial_trees(self) -> List[DecisionTree]:
        return list(self._init)

    def _warm_start(self, gc: GradientComputer) -> None:
        if self._init:
            gc.warm_start(self._init)

    def _round_start(self, round_: int) -> None:
        self.coll.fault_point(round_)

    def _round_end(self, round_: int, trees: List[DecisionTree]) -> None:
        if (
            self._store is not None
            and self.coll.rank == 0
            and (len(trees) % self._every == 0 or len(trees) == self.params.n_trees)
        ):
            model = GBDTModel(
                trees=list(trees), params=self.params, base_score=self._base
            )
            self._store.save(model, self.params, round_=len(trees))


@dataclasses.dataclass
class _AttemptReport:
    """What happened on one fit attempt (kept for demos/tests)."""

    workers: int
    failed_ranks: List[int]
    resumed_round: int
    #: per-rank flight-recorder snapshots captured when the attempt failed
    #: (unclosed spans + last collective op; empty for clean attempts)
    flight_recorder: dict = dataclasses.field(default_factory=dict)


class DistributedHistTrainer:
    """Data-parallel histogram GBDT across ``n_workers`` row shards.

    Parameters mirror :class:`~repro.approx.histogram_trainer.
    HistogramGBDTTrainer` (depthwise growth only) plus the distribution
    knobs: comms ``backend`` (``"sim"`` or ``"threaded"``), per-link
    :class:`~repro.dist.comms.LinkSpec`, an injectable
    :class:`~repro.dist.comms.FaultPlan`, and a checkpoint directory
    enabling crash recovery.
    """

    def __init__(
        self,
        params: GBDTParams | None = None,
        n_workers: int = 2,
        *,
        max_bins: int = 64,
        backend: str = "sim",
        spec: DeviceSpec = TITAN_X_PASCAL,
        link: LinkSpec | None = None,
        faults: FaultPlan | None = None,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int = 1,
        row_scale: float = 1.0,
        work_scale: float = 1.0,
        use_subtraction: bool | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if backend not in ("sim", "threaded"):
            raise ValueError("backend must be 'sim' or 'threaded'")
        self.params = params if params is not None else GBDTParams()
        if self.params.goss_a < 1.0:
            # GOSS samples on *global* gradient order; a row-sharded draw
            # would need an extra top-k collective -- not implemented
            raise ValueError(
                "GOSS (goss_a < 1) is not supported by the distributed "
                "trainer; use the single-process HistogramGBDTTrainer"
            )
        self.use_subtraction = use_subtraction
        self.n_workers = int(n_workers)
        self.max_bins = int(max_bins)
        self.backend = backend
        self.spec = spec
        self.link = link
        self.faults = faults
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = int(checkpoint_every)
        self.row_scale = float(row_scale)
        self.work_scale = float(work_scale)
        self.devices_: List[GpuDevice] = []
        self.comm_stats_ = []
        self.attempts_: List[_AttemptReport] = []
        self.rank_tracers_: List[Tracer] = []
        self.model_: GBDTModel | None = None

    # ------------------------------------------------------------------- fit
    def fit(self, X: CSRMatrix, y: np.ndarray) -> GBDTModel:
        p = self.params
        y = np.asarray(y, dtype=np.float64)
        n = X.shape[0]
        if y.size != n:
            raise ValueError("y size mismatch")
        if n < 2:
            raise ValueError("need at least 2 training instances")

        base = p.loss_fn.base_score(y)
        store = (
            CheckpointStore(self.checkpoint_dir)
            if self.checkpoint_dir is not None
            else None
        )
        # every shard needs >= 2 rows for the local trainer's fit
        workers = max(1, min(self.n_workers, n // 2))
        faults = self.faults
        init_trees: List[DecisionTree] = []
        self.attempts_ = []

        while True:
            shards = np.array_split(np.arange(n, dtype=np.int64), workers)
            parts = [(X.select_rows(idx), y[idx]) for idx in shards]
            devices = [
                GpuDevice(self.spec, work_scale=self.work_scale)
                for _ in range(workers)
            ]
            resumed_round = len(init_trees)
            captured_init = init_trees

            def worker(coll: Collective) -> GBDTModel:
                X_local, y_local = parts[coll.rank]
                trainer = _WorkerTrainer(
                    p,
                    coll,
                    max_bins=self.max_bins,
                    n_global=n,
                    base=base,
                    init_trees=captured_init,
                    store=store if coll.rank == 0 else None,
                    checkpoint_every=self.checkpoint_every,
                    row_scale=self.row_scale,
                    use_subtraction=self.use_subtraction,
                )
                return trainer.fit(X_local, y_local)

            parent = get_tracer()
            tracers = [
                Tracer(
                    enabled=parent.enabled,
                    clock=parent.clock,
                    max_spans=parent.max_spans,
                    tags={"rank": r},
                )
                for r in range(workers)
            ]
            self.rank_tracers_ = tracers

            try:
                with span(
                    "dist.fit_attempt",
                    workers=workers,
                    backend=self.backend,
                    resumed_round=resumed_round,
                ):
                    models, colls = run_spmd(
                        workers,
                        worker,
                        backend=self.backend,
                        devices=devices,
                        link=self.link,
                        faults=faults,
                        tracers=tracers,
                    )
                self.attempts_.append(_AttemptReport(workers, [], resumed_round))
                break
            except WorkerFailure as failure:
                survivors = workers - len(failure.failed_ranks)
                self.attempts_.append(
                    _AttemptReport(
                        workers,
                        sorted(failure.failed_ranks),
                        resumed_round,
                        flight_recorder=dict(failure.flight_recorder),
                    )
                )
                get_registry().counter(
                    "dist_worker_failures_total",
                    "workers lost during distributed training",
                ).inc(len(failure.failed_ranks))
                if survivors < 1 or len(self.attempts_) > self.n_workers:
                    raise
                init_trees = self._restore(store)
                workers = survivors
                faults = None  # injected faults are one-shot

        self.devices_ = devices
        self.comm_stats_ = [c.stats for c in colls]
        digests = {model_digest(m) for m in models}
        if len(digests) != 1:
            raise RuntimeError(
                f"rank models diverged: {sorted(digests)}"
            )  # pragma: no cover - guarded by design
        self.model_ = models[0]
        return self.model_

    def _restore(self, store: Optional[CheckpointStore]) -> List[DecisionTree]:
        """Trees to warm-start the retry from (empty = from scratch)."""
        if store is None:
            return []
        ckpt = store.latest(params=self.params)
        if ckpt is None:
            return []
        get_registry().counter(
            "dist_recoveries_total", "checkpoint restores after worker failure"
        ).inc()
        return ckpt.restore_model(self.params).trees

    # ------------------------------------------------------------- reporting
    def elapsed_seconds(self) -> float:
        """Modeled makespan: the slowest rank's device time."""
        if not self.devices_:
            return 0.0
        return max(d.elapsed_seconds() for d in self.devices_)

    def comm_bytes(self) -> float:
        """True payload bytes moved by collectives, summed over ranks."""
        return float(sum(s.bytes_total for s in self.comm_stats_))

    def comm_steps(self) -> int:
        return int(sum(s.steps_total for s in self.comm_stats_))

    def wait_seconds(self) -> float:
        """Blocked-receive time summed over ranks (threaded backend)."""
        return float(sum(s.wait_s for s in self.comm_stats_))

    def export_trace(self, path) -> int:
        """Write the last attempt's merged per-rank Chrome trace to ``path``.

        One Perfetto process per rank (pid ``RANK_PID_BASE + rank``),
        collectives aligned across ranks by lockstep sequence number, so
        ring imbalance and stragglers are visible in one timeline.  Returns
        the number of slice events written.
        """
        return export_merged_chrome_trace(path, rank_tracers=self.rank_tracers_)

    @property
    def recoveries(self) -> int:
        """Fit attempts that ended in worker failure and were retried."""
        return sum(1 for a in self.attempts_ if a.failed_ranks)
