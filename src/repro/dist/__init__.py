"""Distributed data-parallel GBDT training (row shards + collectives).

See :mod:`repro.dist.comms` for the collective layer (simulated and real
threaded backends, fault injection) and :mod:`repro.dist.trainer` for the
row-sharded histogram trainer whose W-worker models are byte-identical to
single-process training.
"""

from .comms import (
    Collective,
    CollectiveStats,
    FaultPlan,
    LinkSpec,
    SimulatedCollective,
    ThreadedCollective,
    WorkerCrash,
    WorkerFailure,
    run_spmd,
)
from .trainer import DistributedHistTrainer

__all__ = [
    "Collective",
    "CollectiveStats",
    "DistributedHistTrainer",
    "FaultPlan",
    "LinkSpec",
    "SimulatedCollective",
    "ThreadedCollective",
    "WorkerCrash",
    "WorkerFailure",
    "run_spmd",
]
