"""Flattened-ensemble predictor: all trees as one set of contiguous arrays.

:meth:`GBDTModel.predict <repro.core.booster_model.GBDTModel.predict>`
historically looped over trees in Python, and each
:meth:`DecisionTree.predict <repro.core.tree.DecisionTree.predict>` call
re-materialized that tree's node lists.  :class:`FlatEnsemble` packs the
whole ensemble once:

* node arrays of every tree are concatenated (``tree_offset[t]`` is tree
  ``t``'s slice start, node ids are rebased to global ids);
* nodes are renumbered in BFS order so an internal node's children are
  adjacent -- the right child is always ``left + 1`` and the next node is
  computed arithmetically instead of via a second gather;
* leaves *self-loop* (``left[leaf] == leaf``, ``step[leaf] == 0``) so the
  level-wise sweep needs no per-level leaf masking.

Prediction then routes every (row, tree) pair at once, level by level, with
the frontier compacted as pairs settle into leaves.  Rows are processed in
chunks sized to keep the pair temporaries cache-resident.

Thresholds and feature values stay ``float64``: the flattened predictor must
be bit-identical to the per-row oracle (``DecisionTree.predict_row``), not
merely close -- a rounded threshold flips a branch and moves the prediction
by a whole leaf value.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core.workspace import WorkspaceArena, arena_enabled_default
from ..data.matrix import CSRMatrix, DenseMatrix
from ..obs import span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..core.booster_model import GBDTModel
    from ..core.tree import DecisionTree

__all__ = ["FlatEnsemble"]

#: target number of (row, tree) pairs routed per chunk; keeps the per-level
#: temporaries (a handful of arrays of this length) inside the outer caches
_PAIRS_PER_CHUNK = 131072


class FlatEnsemble:
    """An immutable, contiguous-array view of a trained GBDT ensemble.

    Build one with :meth:`from_model` / :meth:`from_trees` (or via
    :meth:`GBDTModel.flatten <repro.core.booster_model.GBDTModel.flatten>`).

    Attributes
    ----------
    tree_offset:
        ``(n_trees + 1,)`` int32; tree ``t`` owns nodes
        ``tree_offset[t]:tree_offset[t + 1]``, its root is ``tree_offset[t]``.
    left:
        Global id of the left child for internal nodes; the node's own id
        for leaves (self-loop).  The right child is always ``left + 1``.
    step:
        1 for internal nodes, 0 for leaves -- ``next = left + step * go_right``.
    attr / threshold / default_left:
        Split condition (leaves hold ``attr=0``, ``threshold=+inf``,
        ``default_left=False``, which routes nothing anywhere: the self-loop
        ignores the test).
    value:
        Leaf prediction (0.0 on internal nodes).
    tree_depths:
        ``(n_trees,)`` max node depth per tree.
    """

    def __init__(
        self,
        *,
        tree_offset: np.ndarray,
        left: np.ndarray,
        step: np.ndarray,
        attr: np.ndarray,
        threshold: np.ndarray,
        default_left: np.ndarray,
        value: np.ndarray,
        tree_depths: np.ndarray,
        base_score: float = 0.0,
        n_features: int = 0,
    ) -> None:
        self.tree_offset = np.asarray(tree_offset, dtype=np.int32)
        self.left = np.asarray(left, dtype=np.int32)
        self.step = np.asarray(step, dtype=np.int32)
        self.attr = np.asarray(attr, dtype=np.int32)
        self.threshold = np.asarray(threshold, dtype=np.float64)
        self.default_left = np.asarray(default_left, dtype=bool)
        self.value = np.asarray(value, dtype=np.float64)
        self.tree_depths = np.asarray(tree_depths, dtype=np.int32)
        self.base_score = float(base_score)
        self.n_features = int(n_features)
        self._validate()

    def _validate(self) -> None:
        n = self.left.size
        for name in ("step", "attr", "threshold", "default_left", "value"):
            if getattr(self, name).size != n:
                raise ValueError(f"node array {name!r} length mismatch")
        if self.tree_offset.size == 0 or self.tree_offset[0] != 0:
            raise ValueError("tree_offset must start at 0")
        if self.tree_offset[-1] != n:
            raise ValueError("tree_offset must end at the node count")
        if np.any(np.diff(self.tree_offset) < 1):
            raise ValueError("every tree needs at least one node")
        if self.tree_depths.size != self.n_trees:
            raise ValueError("tree_depths length mismatch")
        ids = np.arange(n, dtype=np.int64)
        internal = self.step == 1
        if not np.array_equal(self.left[~internal], ids[~internal]):
            raise ValueError("leaves must self-loop (left[leaf] == leaf)")
        if internal.any():
            child = self.left[internal].astype(np.int64)
            if child.min() < 0 or (child + 1).max() >= n:
                raise ValueError("child id out of range")

    # ------------------------------------------------------------- factories
    @classmethod
    def from_trees(
        cls,
        trees: Sequence["DecisionTree"],
        *,
        base_score: float = 0.0,
        n_features: int | None = None,
    ) -> "FlatEnsemble":
        """Pack ``trees`` (BFS-renumbered per tree) into one flat ensemble."""
        offsets = [0]
        chunks: dict[str, list[np.ndarray]] = {
            "left": [], "step": [], "attr": [], "threshold": [],
            "default_left": [], "value": [],
        }
        depths = []
        max_attr = -1
        for tree in trees:
            packed = _pack_tree(tree, offset=offsets[-1])
            for key, arr in packed.items():
                if key == "depth":
                    depths.append(arr)
                else:
                    chunks[key].append(arr)
            offsets.append(offsets[-1] + packed["left"].size)
            if packed["attr"].size:
                max_attr = max(max_attr, int(packed["attr"].max()))

        def cat(key: str, dtype) -> np.ndarray:
            parts = chunks[key]
            return (
                np.concatenate(parts).astype(dtype)
                if parts
                else np.empty(0, dtype=dtype)
            )

        if n_features is None:
            n_features = max_attr + 1
        elif max_attr >= n_features:
            raise ValueError(
                f"tree tests attribute {max_attr} but n_features={n_features}"
            )
        return cls(
            tree_offset=np.asarray(offsets, dtype=np.int32),
            left=cat("left", np.int32),
            step=cat("step", np.int32),
            attr=cat("attr", np.int32),
            threshold=cat("threshold", np.float64),
            default_left=cat("default_left", bool),
            value=cat("value", np.float64),
            tree_depths=np.asarray(depths, dtype=np.int32),
            base_score=base_score,
            n_features=n_features,
        )

    @classmethod
    def from_model(cls, model: "GBDTModel", *, n_features: int | None = None) -> "FlatEnsemble":
        """Flatten a trained :class:`~repro.core.booster_model.GBDTModel`."""
        return cls.from_trees(
            model.trees, base_score=model.base_score, n_features=n_features
        )

    # ------------------------------------------------------------ inspection
    @property
    def n_trees(self) -> int:
        return self.tree_offset.size - 1

    @property
    def n_nodes(self) -> int:
        return self.left.size

    @property
    def max_depth(self) -> int:
        return int(self.tree_depths.max()) if self.tree_depths.size else 0

    @property
    def mean_depth(self) -> float:
        return float(self.tree_depths.mean()) if self.tree_depths.size else 0.0

    @property
    def nbytes(self) -> int:
        """Resident size of the packed arrays."""
        return sum(
            a.nbytes
            for a in (
                self.tree_offset, self.left, self.step, self.attr,
                self.threshold, self.default_left, self.value, self.tree_depths,
            )
        )

    def __repr__(self) -> str:
        return (
            f"FlatEnsemble(n_trees={self.n_trees}, n_nodes={self.n_nodes}, "
            f"max_depth={self.max_depth})"
        )

    # ------------------------------------------------------------ prediction
    def predict(self, X: CSRMatrix | DenseMatrix | np.ndarray) -> np.ndarray:
        """Margin predictions for every row of ``X`` (``base_score`` included).

        Dense ``nan`` cells and absent CSR entries are missing values routed
        by ``default_left`` -- identical semantics to the per-tree path.
        """
        dense = _as_dense(X)
        n = dense.shape[0]
        if self.n_features and dense.shape[1] < self.n_features:
            raise ValueError(
                f"input has {dense.shape[1]} features, ensemble tests up to "
                f"{self.n_features}"
            )
        out = np.full(n, self.base_score, dtype=np.float64)
        if n == 0 or self.n_trees == 0:
            return out
        with span("flat_predict", rows=n, trees=self.n_trees):
            # a per-call arena keeps the pair temporaries reused across chunks
            # and levels while staying safe under concurrent predict calls
            # (the server's worker threads never share scratch)
            ws = WorkspaceArena(enabled=arena_enabled_default())
            chunk = max(1, _PAIRS_PER_CHUNK // self.n_trees)
            for lo in range(0, n, chunk):
                hi = min(n, lo + chunk)
                out[lo:hi] += self._route_block(dense[lo:hi], ws)
        return out

    def _route_block(self, dense: np.ndarray, ws: WorkspaceArena | None = None) -> np.ndarray:
        """Sum of leaf values over all trees for one row block (no base)."""
        n, d = dense.shape
        T = self.n_trees
        flat_x = np.ascontiguousarray(dense).reshape(-1)
        has_nan = bool(np.isnan(flat_x).any())
        roots = self.tree_offset[:-1]
        if ws is not None and ws.enabled:
            return self._route_block_arena(flat_x, has_nan, roots, n, d, T, ws)
        # one (row, tree) pair per slot; all pairs start at their tree's root
        cur = np.broadcast_to(roots, (n, T)).reshape(-1).copy()
        row_base = np.repeat(np.arange(n, dtype=np.int64) * d, T)
        active = None  # None means "every pair", else global slot indices
        a_cur, a_row = cur, row_base
        for _ in range(self.max_depth):
            x = flat_x.take(a_row + self.attr.take(a_cur))
            with np.errstate(invalid="ignore"):
                go_left = x > self.threshold.take(a_cur)
            if has_nan:
                miss = np.isnan(x)
                if miss.any():
                    go_left |= miss & self.default_left.take(a_cur)
            # right child = left + 1; leaves have step 0 and stay put
            a_cur = self.left.take(a_cur) + self.step.take(a_cur) * ~go_left
            if active is None:
                cur = a_cur
            else:
                cur[active] = a_cur
            live = self.step.take(a_cur) == 1
            if not live.all():
                if active is None:
                    active = np.flatnonzero(live)
                else:
                    active = active[live]
                if active.size == 0:
                    break
                a_cur = a_cur[live]
                a_row = a_row[live]
        return self.value.take(cur).reshape(n, T).sum(axis=1)

    def _route_block_arena(
        self,
        flat_x: np.ndarray,
        has_nan: bool,
        roots: np.ndarray,
        n: int,
        d: int,
        T: int,
        ws: WorkspaceArena,
    ) -> np.ndarray:
        """Arena variant of :meth:`_route_block`: the full-width per-level
        temporaries are reused views (only the shrinking frontier-compaction
        copies still allocate).  Routing decisions and the final per-row
        leaf-value sum are bit-identical to the legacy body."""
        P = n * T
        cur = ws.buf("pred/cur", P, np.int32)
        np.copyto(cur.reshape(n, T), roots)
        row_off = ws.buf("pred/row_off", n, np.int64)
        np.multiply(ws.arange(n), d, out=row_off)
        row_base = ws.buf("pred/row_base", P, np.int64)
        np.copyto(row_base.reshape(n, T), row_off[:, None])
        active = None  # None means "every pair", else global slot indices
        a_cur, a_row = cur, row_base
        for level in range(self.max_depth):
            m = a_cur.size
            attr_buf = ws.buf("pred/attr", m, np.int32)
            np.take(self.attr, a_cur, out=attr_buf)
            idx = ws.buf("pred/x_idx", m, np.int64)
            np.add(a_row, attr_buf, out=idx)
            x = ws.buf("pred/x", m, np.float64)
            np.take(flat_x, idx, out=x)
            thr = ws.buf("pred/thr", m, np.float64)
            np.take(self.threshold, a_cur, out=thr)
            go_left = ws.buf("pred/go_left", m, bool)
            with np.errstate(invalid="ignore"):
                np.greater(x, thr, out=go_left)
            if has_nan:
                miss = ws.buf("pred/miss", m, bool)
                np.isnan(x, out=miss)
                if miss.any():
                    dl = ws.buf("pred/dl", m, bool)
                    np.take(self.default_left, a_cur, out=dl)
                    np.logical_and(miss, dl, out=miss)
                    np.logical_or(go_left, miss, out=go_left)
            # right child = left + 1; leaves have step 0 and stay put.
            # The child buffer ping-pongs because a_cur may alias the
            # previous level's view of the same name.
            child = ws.buf(f"pred/child/{level % 2}", m, np.int32)
            np.take(self.left, a_cur, out=child)
            step_buf = ws.buf("pred/step", m, np.int32)
            np.take(self.step, a_cur, out=step_buf)
            np.logical_not(go_left, out=go_left)
            np.multiply(step_buf, go_left, out=step_buf)
            np.add(child, step_buf, out=child)
            a_cur = child
            if active is None:
                np.copyto(cur, a_cur)
            else:
                cur[active] = a_cur
            np.take(self.step, a_cur, out=step_buf)
            live = ws.buf("pred/live", m, bool)
            np.equal(step_buf, 1, out=live)
            if not live.all():
                if active is None:
                    active = np.flatnonzero(live)
                else:
                    active = active[live]
                if active.size == 0:
                    break
                a_cur = a_cur[live]
                a_row = a_row[live]
        leaf_vals = ws.buf("pred/leaf_vals", P, np.float64)
        np.take(self.value, cur, out=leaf_vals)
        return leaf_vals.reshape(n, T).sum(axis=1)

    def predict_one(self, row: np.ndarray) -> float:
        """Single dense row via scalar traversal (the overload fallback --
        no batch temporaries, no queue wait)."""
        row = np.asarray(row, dtype=np.float64).reshape(-1)
        left, step, attr = self.left, self.step, self.attr
        thr, dleft, value = self.threshold, self.default_left, self.value
        total = self.base_score
        for t in range(self.n_trees):
            nid = int(self.tree_offset[t])
            while step[nid]:
                v = row[attr[nid]]
                go_left = bool(dleft[nid]) if math.isnan(v) else v > thr[nid]
                nid = int(left[nid]) + (not go_left)
            total += float(value[nid])
        return total

    def predict_row(self, cols: np.ndarray, vals: np.ndarray) -> float:
        """Single sparse row (``cols`` sorted ascending; absent = missing)."""
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        # entries beyond the last tested attribute can't affect routing but
        # must not crash the scatter
        width = max(self.n_features, int(cols[-1]) + 1 if cols.size else 0)
        row = np.full(width, np.nan)
        if cols.size:
            row[cols] = vals
        return self.predict_one(row)


def _pack_tree(tree: "DecisionTree", *, offset: int) -> dict[str, np.ndarray]:
    """BFS-renumber one tree into the flat node encoding.

    BFS enqueues both children of a node together, so in the new numbering
    the right child always directly follows the left -- the invariant the
    arithmetic child step relies on, whatever order the source arrays used.
    """
    n = tree.n_nodes
    if n == 0:
        raise ValueError("cannot flatten a tree with no nodes")
    old_left = np.asarray(tree.left, dtype=np.int64)
    old_right = np.asarray(tree.right, dtype=np.int64)
    order = np.empty(n, dtype=np.int64)  # BFS position -> old id
    order[0] = 0
    head, filled = 0, 1
    while head < filled:
        old = order[head]
        if old_left[old] >= 0:
            order[filled] = old_left[old]
            order[filled + 1] = old_right[old]
            filled += 2
        head += 1
    if filled != n:
        raise ValueError(f"tree has {n - filled} node(s) unreachable from the root")
    new_id = np.empty(n, dtype=np.int64)  # old id -> BFS position
    new_id[order] = np.arange(n)

    leaf = old_left[order] < 0
    ids = np.arange(n, dtype=np.int64)
    left = np.where(leaf, ids, new_id[np.where(leaf, 0, old_left[order])]) + offset
    threshold = np.asarray(tree.threshold, dtype=np.float64)[order]
    return {
        "left": left,
        "step": np.where(leaf, 0, 1),
        "attr": np.where(leaf, 0, np.asarray(tree.attr, dtype=np.int64)[order]),
        "threshold": np.where(leaf, np.inf, threshold),
        "default_left": np.asarray(tree.default_left, dtype=bool)[order] & ~leaf,
        "value": np.where(leaf, np.asarray(tree.value, dtype=np.float64)[order], 0.0),
        "depth": int(max(tree.depth)) if tree.depth else 0,
    }


def _as_dense(X: CSRMatrix | DenseMatrix | np.ndarray) -> np.ndarray:
    if isinstance(X, CSRMatrix):
        return X.to_dense(fill=np.nan).values
    if isinstance(X, DenseMatrix):
        return X.values
    dense = np.asarray(X, dtype=np.float64)
    if dense.ndim != 2:
        raise ValueError("expected a 2-D matrix of rows to predict")
    return dense
