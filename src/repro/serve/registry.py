"""Versioned model registry: publish, hot-swap, roll back.

Versions are *content-addressed*: the version id is a digest of the model's
canonical JSON payload, so publishing byte-identical models twice yields one
version (training determinism -- same seed, same data, same trees -- is what
makes this a stable identity; ``tests/test_serve_determinism.py`` guards it).

Every published model is **round-tripped** through
``GBDTModel.to_json``/``from_json`` before flattening: the serving path only
ever sees what survives serialization, so a model restored from disk on
another host predicts identically to the one published here.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from typing import Dict, List

from ..core.booster_model import GBDTModel
from ..obs import get_registry, span
from .flat_model import FlatEnsemble

__all__ = ["ModelRegistry", "ModelVersion"]

DEFAULT_NAME = "default"


@dataclasses.dataclass(frozen=True)
class ModelVersion:
    """One immutable published model."""

    name: str
    version: str
    payload: str
    flat: FlatEnsemble
    seq: int

    def restore(self) -> GBDTModel:
        """Rebuild the full :class:`GBDTModel` from the stored payload."""
        return GBDTModel.from_json(self.payload)


def canonical_payload(model: GBDTModel) -> str:
    """Deterministic JSON for content addressing (sorted keys, no spaces)."""
    return json.dumps(
        json.loads(model.to_json()), sort_keys=True, separators=(",", ":")
    )


class ModelRegistry:
    """Named, versioned store of flattened models for the serving path.

    Thread-safe: the batcher may resolve the active version while another
    thread publishes or rolls back.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._versions: Dict[str, Dict[str, ModelVersion]] = {}
        self._history: Dict[str, List[str]] = {}  # activation order, last = active
        self._seq = 0

    # ------------------------------------------------------------ publishing
    def publish(
        self, model: GBDTModel, name: str = DEFAULT_NAME, *, activate: bool = True
    ) -> str:
        """Register ``model`` under ``name``; returns its content version id.

        Re-publishing identical content is a no-op apart from (optionally)
        activating the existing version.
        """
        with span("registry_publish", model=name):
            payload = canonical_payload(model)
            version = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]
            with self._lock:
                store = self._versions.setdefault(name, {})
                if version not in store:
                    restored = GBDTModel.from_json(payload, params=model.params)
                    self._seq += 1
                    store[version] = ModelVersion(
                        name=name,
                        version=version,
                        payload=payload,
                        flat=FlatEnsemble.from_model(restored),
                        seq=self._seq,
                    )
                    get_registry().counter(
                        "registry_publishes_total", "distinct model versions published"
                    ).inc()
                if activate:
                    self._activate_locked(name, version)
            return version

    def _activate_locked(self, name: str, version: str) -> None:
        history = self._history.setdefault(name, [])
        if not history or history[-1] != version:
            history.append(version)
            if len(history) > 1:
                get_registry().counter(
                    "registry_swaps_total", "hot swaps of an active model version"
                ).inc()

    def activate(self, name: str, version: str) -> None:
        """Hot-swap ``name`` to an already-published version."""
        with self._lock:
            if version not in self._versions.get(name, {}):
                raise KeyError(f"unknown version {version!r} for model {name!r}")
            self._activate_locked(name, version)

    def rollback(self, name: str = DEFAULT_NAME) -> str:
        """Re-activate the previously active version; returns its id."""
        with self._lock:
            history = self._history.get(name, [])
            if len(history) < 2:
                raise KeyError(f"model {name!r} has no previous version to roll back to")
            history.pop()
            get_registry().counter(
                "registry_rollbacks_total", "rollbacks to a previous version"
            ).inc()
            return history[-1]

    # -------------------------------------------------------------- resolving
    def active(self, name: str = DEFAULT_NAME) -> ModelVersion:
        """The currently serving version of ``name``."""
        with self._lock:
            history = self._history.get(name)
            if not history:
                raise KeyError(f"no active version for model {name!r}")
            return self._versions[name][history[-1]]

    def get(self, name: str, version: str) -> ModelVersion:
        with self._lock:
            try:
                return self._versions[name][version]
            except KeyError:
                raise KeyError(f"unknown version {version!r} for model {name!r}") from None

    def versions(self, name: str = DEFAULT_NAME) -> List[str]:
        """All published version ids for ``name``, in publish order."""
        with self._lock:
            store = self._versions.get(name, {})
            return [v.version for v in sorted(store.values(), key=lambda m: m.seq)]

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._versions)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._versions
