"""Micro-batching request transport over the pure :class:`BatchQueue` core.

Single-row prediction requests are expensive to serve one by one (every call
pays the full per-tree dispatch overhead); batches amortize it.  The
:class:`MicroBatcher` accumulates requests in a bounded
:class:`~repro.serve.batch_core.BatchQueue` and flushes a batch through the
:class:`~repro.serve.flat_model.FlatEnsemble` when either

* ``max_batch`` requests are waiting, or
* the oldest request has waited ``max_wait`` seconds (the deadline is
  anchored to the *first* queued request -- late arrivals join the batch
  but never extend the wait; see :mod:`repro.serve.batch_core`).

The queue/deadline policy lives in the core; this class is the *transport*
binding it to a model, a clock, metrics, and an overload story.  Flushing is
decomposed into two steps so any serving loop can drive it:

``take_ready(now)``
    pop one due batch (or None) -- pure scheduling, no prediction work;
``complete(batch, now)``
    predict the batch, resolve its handles at ``now``, charge the simulated
    device, and record stats.

``poll``/``drain`` compose the two on the caller's thread (the single-process
serving loop); the cluster front door instead takes a batch at simulated
time ``t`` and completes it at ``t + service_time`` so queue wait *and*
service time both land in the latency distribution.

Between polls the queue is the only buffer, and when it reaches ``max_queue``
the batcher degrades gracefully instead of growing without bound:

* ``overload="degrade"`` serves the overflow request immediately through the
  scalar per-row fallback (higher unit cost, zero queue wait, never lost);
* ``overload="reject"`` applies backpressure by raising :class:`QueueFull`.

An optional :class:`~repro.serve.feature_cache.FeatureCache` short-circuits
repeated feature vectors; it is keyed to the active model version,
invalidated on hot swap, and its hit/miss/eviction counters land on the
shared :mod:`repro.obs` registry labelled by replica.  A simulated
:class:`~repro.gpusim.kernel.GpuDevice` may ride along: every completed
batch is charged through the Section III-D prediction-kernel cost model.

The clock is injectable (``clock=`` or explicit ``now=`` arguments), so
batching policy is testable with a simulated clock and usable with
``time.monotonic`` in a real loop.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core.predictor import charge_prediction_kernels
from ..gpusim.kernel import GpuDevice
from ..obs import span
from .batch_core import BatchQueue
from .feature_cache import FeatureCache
from .flat_model import FlatEnsemble
from .registry import DEFAULT_NAME, ModelRegistry
from .stats import ServingStats

__all__ = ["Batch", "BatchPolicy", "MicroBatcher", "PendingPrediction", "QueueFull"]

#: what `take_ready` hands back: ``(row, t_enqueue, handle)`` triples
Batch = List[Tuple[np.ndarray, float, "PendingPrediction"]]

#: a source may also be a 0-arg callable resolving to ``(flat, version)`` --
#: the cluster replica uses this to pin a specific registry version
SourceResolver = Callable[[], Tuple[FlatEnsemble, Optional[str]]]


class QueueFull(RuntimeError):
    """Raised (under ``overload="reject"``) when the bounded queue is full."""


@dataclasses.dataclass(frozen=True)
class BatchPolicy:
    """Knobs governing when batches flush and how overload is handled."""

    #: flush as soon as this many requests are queued
    max_batch: int = 256
    #: flush when the oldest queued request has waited this long (seconds)
    max_wait: float = 0.002
    #: bounded queue depth; submissions beyond it degrade or reject
    max_queue: int = 2048
    #: feature-hash prediction cache entries (0 disables the cache)
    cache_size: int = 0
    #: "degrade" (serve overflow per-row immediately) or "reject" (QueueFull)
    overload: str = "degrade"

    def __post_init__(self) -> None:
        if self.max_batch < 1 or self.max_queue < 1:
            raise ValueError("max_batch and max_queue must be positive")
        if self.max_wait < 0 or self.cache_size < 0:
            raise ValueError("max_wait and cache_size must be non-negative")
        if self.overload not in ("degrade", "reject"):
            raise ValueError(f"unknown overload policy {self.overload!r}")


class PendingPrediction:
    """Handle returned by :meth:`MicroBatcher.submit`; resolved exactly once
    when its batch completes (or immediately: cache hit / degraded path)."""

    __slots__ = ("done", "value", "version", "cache_hit", "degraded", "t_done")

    def __init__(self) -> None:
        self.done = False
        self.value: float | None = None
        self.version: str | None = None
        self.cache_hit = False
        self.degraded = False
        #: completion time on the batcher's clock (None until resolved)
        self.t_done: float | None = None

    def result(self) -> float:
        if not self.done:
            raise RuntimeError("prediction not flushed yet (poll or drain the batcher)")
        assert self.value is not None
        return self.value

    def _resolve(self, value: float, version: str | None, now: float | None = None) -> None:
        if self.done:
            raise RuntimeError("prediction resolved twice (duplicated response)")
        self.value = float(value)
        self.version = version
        self.t_done = now
        self.done = True


class MicroBatcher:
    """Groups single-row requests into batched flat-ensemble predictions.

    Parameters
    ----------
    source:
        A :class:`FlatEnsemble` to serve, a :class:`ModelRegistry` whose
        active version (of ``model_name``) is resolved at every submit/flush
        -- so a hot swap takes effect on the *next* batch, and every request
        within one batch is served by a single consistent version -- or a
        0-arg callable returning ``(flat, version)`` (how a cluster replica
        pins one registry version independently of the active pointer).
    policy:
        Flush/overload/caching policy.
    stats:
        Metrics sink (a fresh :class:`ServingStats` when omitted).
    device:
        Optional simulated GPU; each completed batch charges the prediction
        kernels so modeled serving cost accumulates in its ledger.
    clock:
        0-arg callable returning seconds; every public method also accepts an
        explicit ``now`` for simulated time.
    replica:
        Label for the shared cache counters (``serve_cache_*_total``); the
        cluster names its replicas, standalone batchers stay ``"solo"``.
    """

    def __init__(
        self,
        source: FlatEnsemble | ModelRegistry | SourceResolver,
        *,
        model_name: str = DEFAULT_NAME,
        policy: BatchPolicy | None = None,
        stats: ServingStats | None = None,
        device: GpuDevice | None = None,
        clock: Callable[[], float] = time.monotonic,
        replica: str = "solo",
    ) -> None:
        if not isinstance(source, (FlatEnsemble, ModelRegistry)) and not callable(
            source
        ):
            raise TypeError(
                "source must be a FlatEnsemble, a ModelRegistry, or a callable "
                "returning (flat, version)"
            )
        self._source = source
        self._model_name = model_name
        self.policy = policy if policy is not None else BatchPolicy()
        self.stats = stats if stats is not None else ServingStats()
        self.device = device
        self._clock = clock
        self.queue = BatchQueue(
            max_batch=self.policy.max_batch,
            max_wait=self.policy.max_wait,
            max_queue=self.policy.max_queue,
        )
        self.cache = FeatureCache(self.policy.cache_size, replica=replica)

    # -------------------------------------------------------------- resolving
    def _resolve(self) -> Tuple[FlatEnsemble, Optional[str]]:
        """Active ensemble + version id; drops the cache on version change."""
        if isinstance(self._source, ModelRegistry):
            active = self._source.active(self._model_name)
            flat, version = active.flat, active.version
        elif isinstance(self._source, FlatEnsemble):
            flat, version = self._source, None
        else:
            flat, version = self._source()
        self.cache.sync_version(version)
        return flat, version

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    # ------------------------------------------------------------- submitting
    def submit(self, row: np.ndarray, now: float | None = None) -> PendingPrediction:
        """Enqueue one feature vector; returns its result handle.

        Completes immediately on a cache hit or (under overload) through the
        degraded per-row path; otherwise the handle resolves at the flush
        that includes it.
        """
        now = self._clock() if now is None else now
        self.stats.note_time(now)
        row = np.asarray(row, dtype=np.float64).reshape(-1)

        if self.cache.enabled:
            flat, version = self._resolve()
            cached = self.cache.lookup(row.tobytes(), version)
            if cached is not None:
                handle = PendingPrediction()
                handle.cache_hit = True
                handle._resolve(cached, version, now)
                self.stats.record_request(0.0)
                return handle

        handle = PendingPrediction()
        if not self.queue.push((row, handle), now):
            if self.policy.overload == "reject":
                self.stats.record_reject()
                raise QueueFull(
                    f"queue at max_queue={self.policy.max_queue}; request rejected"
                )
            return self.shed(row, now, handle)
        return handle

    def shed(
        self,
        row: np.ndarray,
        now: float | None = None,
        handle: PendingPrediction | None = None,
    ) -> PendingPrediction:
        """Serve one row immediately through the degraded per-row fallback
        (the overload path; also what cluster admission control sheds to)."""
        now = self._clock() if now is None else now
        row = np.asarray(row, dtype=np.float64).reshape(-1)
        handle = handle if handle is not None else PendingPrediction()
        with span("serve_shed", queue_depth=len(self.queue)):
            flat, version = self._resolve()
            handle.degraded = True
            handle._resolve(flat.predict_one(row), version, now)
        self.stats.record_request(0.0, degraded=True)
        return handle

    # --------------------------------------------------------------- flushing
    def take_ready(self, now: float | None = None) -> Optional[Batch]:
        """Pop one due batch (max-batch reached or max-wait expired); None
        when nothing is due.  Pure scheduling -- no prediction work."""
        now = self._clock() if now is None else now
        taken = self.queue.take_ready(now)
        if taken is None:
            return None
        return [(row, t_enq, handle) for (row, handle), t_enq in taken]

    def take(self) -> Batch:
        """Pop up to one batch unconditionally (drain paths)."""
        return [(row, t_enq, handle) for (row, handle), t_enq in self.queue.take()]

    def complete(self, batch: Batch, now: float | None = None) -> int:
        """Predict ``batch`` and resolve its handles at time ``now``.

        Latency recorded per request is ``now - t_enqueue`` -- the driving
        loop decides whether ``now`` is the take instant (synchronous
        ``poll``) or take + modeled service time (the cluster simulator).
        Returns the number of rows served.
        """
        if not batch:
            return 0
        now = self._clock() if now is None else now
        with span("serve_flush", batch=len(batch), queued=len(self.queue)):
            rows = np.stack([row for row, _, _ in batch])
            flat, version = self._resolve()
            values = flat.predict(rows)
            if self.device is not None:
                charge_prediction_kernels(
                    self.device,
                    n_rows=len(batch),
                    n_trees=flat.n_trees,
                    avg_depth=max(1.0, flat.mean_depth),
                )
            self.stats.note_time(now)
            self.stats.record_batch(len(batch))
            for (row, t_enq, handle), value in zip(batch, values):
                handle._resolve(value, version, now)
                self.stats.record_request(max(0.0, now - t_enq))
                self.cache.store(row.tobytes(), float(value))
        return len(batch)

    def poll(self, now: float | None = None) -> int:
        """One serving-loop tick: complete every due batch at ``now``
        (full batches first, then an overdue partial).  Returns rows flushed."""
        now = self._clock() if now is None else now
        flushed = 0
        while True:
            batch = self.take_ready(now)
            if batch is None:
                return flushed
            flushed += self.complete(batch, now)

    def drain(self, now: float | None = None) -> int:
        """Flush everything still queued (shutdown / end of bench)."""
        now = self._clock() if now is None else now
        flushed = 0
        while len(self.queue):
            flushed += self.complete(self.take(), now)
        return flushed
