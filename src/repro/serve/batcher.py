"""Micro-batching request queue with backpressure and graceful degradation.

Single-row prediction requests are expensive to serve one by one (every call
pays the full per-tree dispatch overhead); batches amortize it.  The
:class:`MicroBatcher` accumulates requests in a bounded queue and flushes a
batch through the :class:`~repro.serve.flat_model.FlatEnsemble` when either

* ``max_batch`` requests are waiting, or
* the oldest request has waited ``max_wait`` seconds.

Flushes are *pull-driven*: the serving loop calls :meth:`MicroBatcher.poll`
on every tick (and :meth:`MicroBatcher.drain` at shutdown).  Between polls --
e.g. while a previous batch is being predicted -- the queue is the only
buffer, and when it reaches ``max_queue`` the batcher degrades gracefully
instead of growing without bound:

* ``overload="degrade"`` serves the overflow request immediately through the
  scalar per-row fallback (higher unit cost, zero queue wait, never lost);
* ``overload="reject"`` applies backpressure by raising :class:`QueueFull`.

An optional feature-hash cache short-circuits repeated feature vectors; it is
keyed to the active model version and invalidated on hot swap.  A simulated
:class:`~repro.gpusim.kernel.GpuDevice` may ride along: every flushed batch
is charged through the Section III-D prediction-kernel cost model, keeping
modeled serving cost honest.

The clock is injectable (``clock=`` or explicit ``now=`` arguments), so
batching policy is testable with a simulated clock and usable with
``time.monotonic`` in a real loop.
"""

from __future__ import annotations

import dataclasses
import time
from collections import OrderedDict, deque
from typing import Callable, Deque, Optional, Tuple

import numpy as np

from ..core.predictor import charge_prediction_kernels
from ..gpusim.kernel import GpuDevice
from ..obs import span
from .flat_model import FlatEnsemble
from .registry import DEFAULT_NAME, ModelRegistry
from .stats import ServingStats

__all__ = ["BatchPolicy", "MicroBatcher", "PendingPrediction", "QueueFull"]


class QueueFull(RuntimeError):
    """Raised (under ``overload="reject"``) when the bounded queue is full."""


@dataclasses.dataclass(frozen=True)
class BatchPolicy:
    """Knobs governing when batches flush and how overload is handled."""

    #: flush as soon as this many requests are queued
    max_batch: int = 256
    #: flush when the oldest queued request has waited this long (seconds)
    max_wait: float = 0.002
    #: bounded queue depth; submissions beyond it degrade or reject
    max_queue: int = 2048
    #: feature-hash prediction cache entries (0 disables the cache)
    cache_size: int = 0
    #: "degrade" (serve overflow per-row immediately) or "reject" (QueueFull)
    overload: str = "degrade"

    def __post_init__(self) -> None:
        if self.max_batch < 1 or self.max_queue < 1:
            raise ValueError("max_batch and max_queue must be positive")
        if self.max_wait < 0 or self.cache_size < 0:
            raise ValueError("max_wait and cache_size must be non-negative")
        if self.overload not in ("degrade", "reject"):
            raise ValueError(f"unknown overload policy {self.overload!r}")


class PendingPrediction:
    """Handle returned by :meth:`MicroBatcher.submit`; resolved at flush."""

    __slots__ = ("done", "value", "version", "cache_hit", "degraded")

    def __init__(self) -> None:
        self.done = False
        self.value: float | None = None
        self.version: str | None = None
        self.cache_hit = False
        self.degraded = False

    def result(self) -> float:
        if not self.done:
            raise RuntimeError("prediction not flushed yet (poll or drain the batcher)")
        assert self.value is not None
        return self.value

    def _resolve(self, value: float, version: str | None) -> None:
        self.value = float(value)
        self.version = version
        self.done = True


class MicroBatcher:
    """Groups single-row requests into batched flat-ensemble predictions.

    Parameters
    ----------
    source:
        A :class:`FlatEnsemble` to serve, or a :class:`ModelRegistry` whose
        active version (of ``model_name``) is resolved at every submit/flush
        -- so a hot swap takes effect on the *next* batch, and every request
        within one batch is served by a single consistent version.
    policy:
        Flush/overload/caching policy.
    stats:
        Metrics sink (a fresh :class:`ServingStats` when omitted).
    device:
        Optional simulated GPU; each flushed batch charges the prediction
        kernels so modeled serving cost accumulates in its ledger.
    clock:
        0-arg callable returning seconds; every public method also accepts an
        explicit ``now`` for simulated time.
    """

    def __init__(
        self,
        source: FlatEnsemble | ModelRegistry,
        *,
        model_name: str = DEFAULT_NAME,
        policy: BatchPolicy | None = None,
        stats: ServingStats | None = None,
        device: GpuDevice | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not isinstance(source, (FlatEnsemble, ModelRegistry)):
            raise TypeError("source must be a FlatEnsemble or a ModelRegistry")
        self._source = source
        self._model_name = model_name
        self.policy = policy if policy is not None else BatchPolicy()
        self.stats = stats if stats is not None else ServingStats()
        self.device = device
        self._clock = clock
        self._queue: Deque[Tuple[np.ndarray, float, PendingPrediction]] = deque()
        self._cache: "OrderedDict[bytes, float]" = OrderedDict()
        self._cache_version: Optional[str] = None

    # -------------------------------------------------------------- resolving
    def _resolve(self) -> Tuple[FlatEnsemble, Optional[str]]:
        """Active ensemble + version id; drops the cache on version change."""
        if isinstance(self._source, ModelRegistry):
            active = self._source.active(self._model_name)
            flat, version = active.flat, active.version
        else:
            flat, version = self._source, None
        if version != self._cache_version:
            self._cache.clear()
            self._cache_version = version
        return flat, version

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------- submitting
    def submit(self, row: np.ndarray, now: float | None = None) -> PendingPrediction:
        """Enqueue one feature vector; returns its result handle.

        Completes immediately on a cache hit or (under overload) through the
        degraded per-row path; otherwise the handle resolves at the flush
        that includes it.
        """
        now = self._clock() if now is None else now
        self.stats.note_time(now)
        row = np.asarray(row, dtype=np.float64).reshape(-1)
        handle = PendingPrediction()

        if self.policy.cache_size > 0:
            flat, version = self._resolve()
            key = row.tobytes()
            hit = key in self._cache
            self.stats.record_lookup(hit)
            if hit:
                self._cache.move_to_end(key)
                handle.cache_hit = True
                handle._resolve(self._cache[key], version)
                self.stats.record_request(0.0)
                return handle

        if len(self._queue) >= self.policy.max_queue:
            if self.policy.overload == "reject":
                self.stats.record_reject()
                raise QueueFull(
                    f"queue at max_queue={self.policy.max_queue}; request rejected"
                )
            with span("serve_shed", queue_depth=len(self._queue)):
                flat, version = self._resolve()
                handle.degraded = True
                handle._resolve(flat.predict_one(row), version)
            self.stats.record_request(0.0, degraded=True)
            return handle

        self._queue.append((row, now, handle))
        return handle

    # --------------------------------------------------------------- flushing
    def poll(self, now: float | None = None) -> int:
        """One serving-loop tick: flush every full batch, then a partial one
        if the oldest request exceeded ``max_wait``.  Returns rows flushed."""
        now = self._clock() if now is None else now
        flushed = 0
        while len(self._queue) >= self.policy.max_batch:
            flushed += self._flush_one(now)
        if self._queue and now - self._queue[0][1] >= self.policy.max_wait:
            flushed += self._flush_one(now)
        return flushed

    def drain(self, now: float | None = None) -> int:
        """Flush everything still queued (shutdown / end of bench)."""
        now = self._clock() if now is None else now
        flushed = 0
        while self._queue:
            flushed += self._flush_one(now)
        return flushed

    def _flush_one(self, now: float) -> int:
        take = min(len(self._queue), self.policy.max_batch)
        with span("serve_flush", batch=take, queued=len(self._queue)):
            return self._flush_batch(now, take)

    def _flush_batch(self, now: float, take: int) -> int:
        batch = [self._queue.popleft() for _ in range(take)]
        rows = np.stack([row for row, _, _ in batch])
        flat, version = self._resolve()
        values = flat.predict(rows)
        if self.device is not None:
            charge_prediction_kernels(
                self.device,
                n_rows=take,
                n_trees=flat.n_trees,
                avg_depth=max(1.0, flat.mean_depth),
            )
        self.stats.note_time(now)
        self.stats.record_batch(take)
        cache_on = self.policy.cache_size > 0
        for (row, t_enq, handle), value in zip(batch, values):
            handle._resolve(value, version)
            self.stats.record_request(max(0.0, now - t_enq))
            if cache_on:
                self._cache[row.tobytes()] = float(value)
                self._cache.move_to_end(row.tobytes())
                while len(self._cache) > self.policy.cache_size:
                    self._cache.popitem(last=False)
        return take
