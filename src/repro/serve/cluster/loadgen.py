"""Closed-loop load generator for the serving cluster (simulated time).

Benchmarking serving the way Anghel et al. benchmark training means
controlled arrival processes and honest tail metrics, not "fire requests in
a hot loop and average".  This module drives a :class:`~repro.serve.cluster.
frontdoor.FrontDoor` with a **closed-loop** client population: each of
``n_clients`` sends one request, waits for its response, optionally stalls
consuming it (slow-client backpressure), thinks for a random gap, and sends
again.  Closed loops self-throttle under overload -- exactly how real
request-per-connection traffic behaves -- so latency distributions stay
interpretable where an open loop would just grow an unbounded queue.

Arrival processes (deterministically seeded):

``poisson``
    Exponential think gaps with mean ``mean_gap_s``.
``bursty``
    The same, but during the first ``burst_duty`` fraction of every
    ``burst_period_s`` window the mean gap shrinks by ``burst_factor`` --
    a square-wave modulated Poisson process (burst storms with quiet tails).

Everything is event-driven on the front door's simulated clock: the
generator pops send events from a heap, calls :meth:`FrontDoor.advance` at
every event instant, and schedules service ticks off
:meth:`FrontDoor.next_action_time`, so results are bit-reproducible for a
given seed.  Predictions are real; only time is modeled.

**Goodput** is deliberately strict: non-degraded responses completed within
``slo_ms``, per second.  Degraded (shed) responses are answers, but they
bypassed batching at a higher unit cost -- counting them would let an
overloaded cluster claim healthy goodput by shedding everything.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..batcher import PendingPrediction, QueueFull
from .frontdoor import FrontDoor

__all__ = ["LoadReport", "LoadSpec", "run_load"]

#: an action is (time, fn(front_door, now)) -- e.g. start a mid-storm deploy
Action = Tuple[float, Callable[[FrontDoor, float], None]]


@dataclasses.dataclass(frozen=True)
class LoadSpec:
    """Deterministic description of one load-generation run."""

    #: closed-loop client population
    n_clients: int = 32
    #: stop issuing new sends after this much simulated time
    duration_s: float = 2.0
    #: "poisson" or "bursty"
    arrival: str = "poisson"
    #: mean think time between a response and the next send
    mean_gap_s: float = 0.01
    #: burst think-gap divisor (bursty only)
    burst_factor: float = 8.0
    #: burst square-wave period (bursty only)
    burst_period_s: float = 0.5
    #: fraction of each period spent bursting (bursty only)
    burst_duty: float = 0.3
    #: fraction of clients that stall before consuming each response
    slow_client_frac: float = 0.0
    #: per-response consume stall for slow clients (seconds)
    slow_client_delay_s: float = 0.05
    #: latency SLO for goodput accounting (milliseconds)
    slo_ms: float = 50.0
    #: retry backoff after an admission reject
    retry_backoff_s: float = 0.02
    #: rng seed (arrival gaps + row choice)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_clients < 1 or self.duration_s <= 0 or self.mean_gap_s <= 0:
            raise ValueError("n_clients, duration_s, mean_gap_s must be positive")
        if self.arrival not in ("poisson", "bursty"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if not 0.0 <= self.slow_client_frac <= 1.0:
            raise ValueError("slow_client_frac must be in [0, 1]")


@dataclasses.dataclass
class LoadReport:
    """What one run measured, JSON-safe via :meth:`payload`."""

    spec: LoadSpec
    n_replicas: int
    router: str
    duration_s: float
    offered: int
    completed: int
    degraded: int
    rejected: int
    within_slo: int
    goodput_qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    replicas: List[Dict[str, float]]

    @property
    def reject_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0

    @property
    def degrade_rate(self) -> float:
        return self.degraded / self.offered if self.offered else 0.0

    def payload(self) -> Dict[str, object]:
        """Run-store payload; replica rows keyed by ``name`` so
        ``flatten_metrics`` paths survive reordering."""
        return {
            "spec": dataclasses.asdict(self.spec),
            "router": self.router,
            "metrics": {
                "n_replicas": self.n_replicas,
                "offered": self.offered,
                "completed": self.completed,
                "within_slo": self.within_slo,
                "goodput_qps": self.goodput_qps,
                "p50_ms": self.p50_ms,
                "p95_ms": self.p95_ms,
                "p99_ms": self.p99_ms,
                "reject_rate": self.reject_rate,
                "degrade_rate": self.degrade_rate,
                "replicas": [dict(r) for r in self.replicas],
            },
        }

    def text(self) -> str:
        lines = [
            f"clients={self.spec.n_clients} arrival={self.spec.arrival} "
            f"replicas={self.n_replicas} router={self.router} "
            f"duration={self.duration_s:.3f}s",
            f"  offered={self.offered} completed={self.completed} "
            f"degraded={self.degraded} rejected={self.rejected}",
            f"  latency p50={self.p50_ms:.3f}ms p95={self.p95_ms:.3f}ms "
            f"p99={self.p99_ms:.3f}ms (SLO {self.spec.slo_ms:.0f}ms)",
            f"  goodput={self.goodput_qps:.1f} qps "
            f"reject_rate={self.reject_rate:.3f} "
            f"degrade_rate={self.degrade_rate:.3f}",
        ]
        for r in self.replicas:
            lines.append(
                f"  {r['name']}: served={r['served']:.0f} "
                f"util={r['utilization']:.2f} state={r['state']}"
            )
        return "\n".join(lines)


class _Client:
    __slots__ = ("client_id", "slow", "waiting", "t_sent")

    def __init__(self, client_id: int, slow: bool) -> None:
        self.client_id = client_id
        self.slow = slow
        self.waiting: Optional[PendingPrediction] = None
        self.t_sent = 0.0


def _gap(spec: LoadSpec, rng: np.random.Generator, now: float) -> float:
    mean = spec.mean_gap_s
    if spec.arrival == "bursty":
        phase = (now % spec.burst_period_s) / spec.burst_period_s
        if phase < spec.burst_duty:
            mean = mean / spec.burst_factor
    return float(rng.exponential(mean))


def run_load(
    fd: FrontDoor,
    X: np.ndarray,
    spec: LoadSpec,
    actions: Optional[List[Action]] = None,
) -> LoadReport:
    """Drive ``fd`` with ``spec`` over request rows drawn from ``X``.

    ``actions`` are scheduled callbacks on the simulated clock -- the demo
    and bench use one to start a rolling deploy mid-storm.  Returns the
    measured :class:`LoadReport`; the front door is quiesced (all queues
    drained) before reporting, so no in-flight request is dropped.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or not len(X):
        raise ValueError("X must be a non-empty 2-D row pool")
    rng = np.random.default_rng(spec.seed)
    n_slow = int(round(spec.slow_client_frac * spec.n_clients))
    clients = [_Client(i, i < n_slow) for i in range(spec.n_clients)]

    # (t, seq, kind, payload) -- seq breaks ties deterministically
    events: List[Tuple[float, int, str, object]] = []
    seq = 0

    def push(t: float, kind: str, payload: object) -> None:
        nonlocal seq
        heapq.heappush(events, (t, seq, kind, payload))
        seq += 1

    for c in clients:
        push(float(rng.exponential(spec.mean_gap_s)), "send", c)
    for t_act, fn in actions or []:
        push(float(t_act), "action", fn)

    offered = completed = degraded = rejected = within_slo = 0
    latencies: List[float] = []
    last_tick = -1.0
    t = 0.0

    def settle(now: float) -> None:
        """Resolve clients whose outstanding response arrived; schedule
        their next sends (closed loop)."""
        nonlocal completed, degraded, within_slo
        for c in clients:
            h = c.waiting
            if h is None or not h.done:
                continue
            c.waiting = None
            t_done = h.t_done if h.t_done is not None else now
            lat = max(0.0, t_done - c.t_sent)
            latencies.append(lat)
            completed += 1
            if h.degraded:
                degraded += 1
            elif lat * 1e3 <= spec.slo_ms:
                within_slo += 1
            t_next = t_done + (spec.slow_client_delay_s if c.slow else 0.0)
            t_next += _gap(spec, rng, t_next)
            if t_next <= spec.duration_s:
                push(t_next, "send", c)

    while events:
        t, _, kind, payload = heapq.heappop(events)
        fd.advance(t)
        if kind == "send":
            c = payload
            if c.waiting is not None:  # pragma: no cover - closed loop invariant
                continue
            if t > spec.duration_s:
                settle(t)
                continue
            row = X[int(rng.integers(0, len(X)))]
            offered += 1
            try:
                handle = fd.submit(row, t, key=row.tobytes())
            except QueueFull:
                rejected += 1
                t_retry = t + spec.retry_backoff_s
                if t_retry <= spec.duration_s:
                    push(t_retry, "send", c)
                settle(t)
                continue
            c.waiting, c.t_sent = handle, t
        elif kind == "action":
            payload(fd, t)
        settle(t)
        nxt = fd.next_action_time()
        if nxt is not None and nxt > t and nxt != last_tick:
            push(nxt, "tick", None)
            last_tick = nxt

    t_end = fd.quiesce(t)
    settle(t_end)
    duration = max(t_end, spec.duration_s)

    lat_ms = np.asarray(latencies, dtype=np.float64) * 1e3
    p50, p95, p99 = (
        (float(np.percentile(lat_ms, q)) for q in (50, 95, 99))
        if len(lat_ms)
        else (0.0, 0.0, 0.0)
    )
    replicas = []
    for r in fd.replicas:
        replicas.append(
            {
                "name": f"replica{r.replica_id}",
                "served": float(r.served_total),
                "utilization": r.utilization(duration),
                "shed": float(r.stats.shed),
                "state": r.state.value,
                "version": r.version,
            }
        )
    return LoadReport(
        spec=spec,
        n_replicas=len(fd.replicas),
        router=getattr(fd.router, "name", type(fd.router).__name__),
        duration_s=duration,
        offered=offered,
        completed=completed,
        degraded=degraded,
        rejected=rejected,
        within_slo=within_slo,
        goodput_qps=(within_slo / duration) if duration > 0 else 0.0,
        p50_ms=p50,
        p95_ms=p95,
        p99_ms=p99,
        replicas=replicas,
    )
