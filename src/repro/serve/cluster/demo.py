"""``python -m repro serve demo`` -- the serving cluster end to end.

One command that exercises the whole tier: trains two model versions,
stands up an N-replica front door, fires a bursty storm through the
closed-loop load generator, performs a rolling deploy *mid-storm* (drain ->
validate -> pin -> warm, one replica at a time), prints the latency/goodput
report, and (optionally) exports the merged per-replica Chrome trace.

The output ends with grep-able lines CI asserts on::

    CLUSTER_GOODPUT=<qps>
    CLUSTER_DEPLOY=ok swapped=<n> dropped=0
    CLUSTER_DIGEST=<sha256[:12] of the post-deploy probe predictions>

The digest is deterministic for a given seed/config: training, routing,
arrivals, and service times are all seeded or modeled, so any two runs that
print different digests have genuinely diverged.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import List, Optional

import numpy as np

from ...core.params import GBDTParams
from ...core.trainer import GPUGBDTTrainer
from ...data.datasets import make_dataset
from ...obs import export_merged_chrome_trace
from ..batcher import BatchPolicy
from ..registry import ModelRegistry
from .frontdoor import AdmissionPolicy, FrontDoor, ServiceModel
from .loadgen import LoadSpec, run_load

__all__ = ["ServeDemoResult", "run_serve_demo"]


@dataclasses.dataclass
class ServeDemoResult:
    lines: List[str]
    goodput_qps: float
    dropped: int
    swapped: int
    digest: str

    @property
    def text(self) -> str:
        return "\n".join(self.lines)


def run_serve_demo(
    *,
    quick: bool = False,
    replicas: int = 3,
    router: str = "least-loaded",
    trace_path: Optional[str] = None,
    seed: int = 7,
) -> ServeDemoResult:
    lines: List[str] = []

    def say(msg: str) -> None:
        lines.append(msg)

    n_trees = 15 if quick else 40
    ds = make_dataset("susy", run_rows=300 if quick else 800, seed=21)
    X = ds.X.to_dense().values
    say(f"training v1/v2 ({n_trees} trees) on {ds.name} [{X.shape[0]} rows]")
    model_v1 = GPUGBDTTrainer(GBDTParams(n_trees=n_trees, max_depth=4)).fit(
        ds.X, ds.y
    )
    model_v2 = GPUGBDTTrainer(
        GBDTParams(n_trees=n_trees, max_depth=4, learning_rate=0.2)
    ).fit(ds.X, ds.y)
    registry = ModelRegistry()
    v1 = registry.publish(model_v1)
    v2 = registry.publish(model_v2, activate=False)
    say(f"registry: active={v1} staged={v2}")

    fd = FrontDoor(
        registry,
        replicas,
        policy=BatchPolicy(max_batch=32, max_wait=0.004, max_queue=64,
                           cache_size=256),
        admission=AdmissionPolicy(max_pending=48 * replicas, overload="degrade"),
        router=router,
        service=ServiceModel(base_s=0.002, per_row_s=0.0001),
        warm_rows=X[:8],
    )
    say(f"cluster: {replicas} replicas READY, router={router}")

    spec = LoadSpec(
        n_clients=48,
        duration_s=0.5 if quick else 1.5,
        arrival="bursty",
        mean_gap_s=0.005,
        burst_factor=6.0,
        burst_period_s=0.2,
        burst_duty=0.4,
        slow_client_frac=0.125,
        slow_client_delay_s=0.02,
        slo_ms=25.0,
        seed=seed,
    )
    # request pool: perturbed copies of the training rows, larger than the
    # cache so the storm exercises batching (hits stay a minority)
    rng = np.random.default_rng(seed + 1)
    pool = np.repeat(X, max(1, 1500 // len(X) + 1), axis=0)[:1500]
    pool = pool + rng.normal(scale=0.01, size=pool.shape)

    probes = X[:32]
    expected = registry.get("default", v2).flat.predict(probes)
    deploy_t = spec.duration_s * 0.35
    say(
        f"firing burst storm ({spec.n_clients} clients, "
        f"{spec.duration_s:.1f}s) with rolling deploy at t={deploy_t:.2f}s"
    )
    report = run_load(
        fd,
        pool,
        spec,
        actions=[
            (deploy_t,
             lambda door, now: door.start_deploy(v2, probes, expected, now=now))
        ],
    )
    say(report.text())

    deploy = fd.deploy
    assert deploy is not None
    dropped = report.offered - report.completed - report.rejected
    swapped = len(deploy.swapped)
    status = "ok" if (deploy.done and not deploy.failed) else "FAILED"
    digest = hashlib.sha256(
        np.ascontiguousarray(
            registry.get("default", registry.active().version)
            .flat.predict(probes)
        ).tobytes()
    ).hexdigest()[:12]

    if trace_path:
        n = export_merged_chrome_trace(
            trace_path, rank_tracers=list(fd.rank_tracers())
        )
        say(f"merged per-replica trace: {trace_path} ({n} slices)")

    say(f"CLUSTER_GOODPUT={report.goodput_qps:.1f}")
    say(f"CLUSTER_DEPLOY={status} swapped={swapped} dropped={dropped}")
    say(f"CLUSTER_DIGEST={digest}")
    return ServeDemoResult(
        lines=lines,
        goodput_qps=report.goodput_qps,
        dropped=int(dropped),
        swapped=swapped,
        digest=digest,
    )
