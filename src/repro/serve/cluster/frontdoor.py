"""The cluster front door: admission control, routing, lifecycle, deploys.

:class:`FrontDoor` is the single entry point for a multi-replica serving
tier.  Every request passes through, in order:

1. **Admission control** -- one global bound (``AdmissionPolicy.max_pending``)
   over the *sum* of all replica queue depths, checked under one lock so
   concurrent producers see deterministic decisions: a request over the bound
   is either **degraded** (served immediately through the routed replica's
   per-row fallback -- never lost, higher unit cost) or **rejected**
   (:class:`~repro.serve.batcher.QueueFull` backpressure).
2. **Routing** -- a pluggable policy from :mod:`.routing` picks among the
   replicas currently READY; warming/draining/stopped replicas never see
   traffic.
3. **A replica's micro-batcher** -- the per-replica bounded queue from PR 1,
   unchanged.

Time is **simulated**: predictions are real NumPy work, but queue waits and
batch service times come from a deterministic :class:`ServiceModel`, the
same philosophy as :mod:`repro.gpusim` (real results, modeled clock).  The
front door is an event-driven simulator: callers (the load generator) call
:meth:`advance` at each event time and the front door services every batch
whose exact start instant -- ``max(replica free, batch due)`` from
:meth:`BatchQueue.ready_at` -- has passed, completing it ``service(n)``
seconds later.  Replica spans land on per-replica rank-tagged tracers, so
:func:`repro.obs.export_merged_chrome_trace` merges them like distributed
ranks.

Rolling deploys run as a state machine inside :meth:`advance`: one replica
at a time is drained (in-flight and queued work finishes -- nothing is
dropped), stopped, validated against probe rows, re-pinned to the new
version, warmed, and re-admitted.  A validation failure flips the machine
into rollback: the failing replica re-warms on its old version and every
already-swapped replica is drained back, so the cluster converges to the
pre-deploy state and the registry's active pointer never moves.  Only a
fully-successful deploy calls ``registry.activate``.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ...obs import get_registry
from ..batcher import BatchPolicy, PendingPrediction, QueueFull
from ..registry import DEFAULT_NAME, ModelRegistry
from .replica import Replica, ReplicaState
from .routing import Router, make_router

__all__ = ["AdmissionPolicy", "DeployReport", "FrontDoor", "ServiceModel"]


@dataclasses.dataclass(frozen=True)
class ServiceModel:
    """Deterministic batch service time: ``base_s + per_row_s * rows``.

    The affine shape mirrors the measured behavior of batched tree inference
    (fixed dispatch overhead, then linear in rows) and makes batching
    worthwhile in the simulation for exactly the reason it is in reality.
    """

    base_s: float = 0.0005
    per_row_s: float = 0.00002

    def time(self, n_rows: int) -> float:
        if n_rows <= 0:
            return 0.0
        return self.base_s + self.per_row_s * n_rows


@dataclasses.dataclass(frozen=True)
class AdmissionPolicy:
    """Global admission bound shared by every replica behind the front door."""

    #: cap on total queued-but-unserviced requests across all replicas
    max_pending: int = 1024
    #: "degrade" (immediate per-row fallback) or "reject" (QueueFull)
    overload: str = "degrade"

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError("max_pending must be positive")
        if self.overload not in ("degrade", "reject"):
            raise ValueError(f"unknown overload policy {self.overload!r}")


@dataclasses.dataclass
class DeployReport:
    """Outcome of one rolling deploy (living object while in progress)."""

    new_version: str
    old_version: str
    swapped: List[int] = dataclasses.field(default_factory=list)
    failed: bool = False
    rolled_back: bool = False
    done: bool = False
    t_done: Optional[float] = None


class _DeployMachine:
    """Per-deploy state advanced by :meth:`FrontDoor.advance`."""

    def __init__(
        self,
        new_version: str,
        old_version: str,
        probe_rows: np.ndarray,
        expected: np.ndarray,
        order: List[int],
        tol: float,
    ) -> None:
        self.report = DeployReport(new_version=new_version, old_version=old_version)
        self.probe_rows = probe_rows
        self.expected = expected
        self.pending = list(order)
        self.current: Optional[int] = None
        self.target = new_version
        self.validating = True
        self.tol = float(tol)


class FrontDoor:
    """Async front door composing N replicas behind shared admission control.

    Parameters
    ----------
    registry:
        Shared content-addressed registry; replicas pin versions from it and
        a successful rolling deploy moves its active pointer.
    n_replicas:
        Replica count; each gets its own :class:`BatchPolicy` queue.
    policy:
        Per-replica batching policy (same policy object for every replica).
    admission:
        Global overload policy.
    router:
        Router instance or name (``round-robin`` / ``least-loaded`` /
        ``hash``).
    service:
        Deterministic batch service-time model.
    warm_rows:
        Rows for warm-up predictions (defaults to a zero row); replicas only
        go READY after a real prediction pass over these.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        n_replicas: int,
        *,
        policy: Optional[BatchPolicy] = None,
        admission: Optional[AdmissionPolicy] = None,
        router: Union[Router, str] = "round-robin",
        service: Optional[ServiceModel] = None,
        warm_rows: Optional[np.ndarray] = None,
        model_name: str = DEFAULT_NAME,
    ) -> None:
        if n_replicas < 1:
            raise ValueError("n_replicas must be positive")
        self.registry = registry
        self.model_name = model_name
        self.admission = admission if admission is not None else AdmissionPolicy()
        self.router: Router = (
            make_router(router) if isinstance(router, str) else router
        )
        self.service = service if service is not None else ServiceModel()
        active = registry.active(model_name)
        if warm_rows is None:
            warm_rows = np.zeros((1, active.flat.n_features), dtype=np.float64)
        self.warm_rows = np.asarray(warm_rows, dtype=np.float64)
        self.replicas: List[Replica] = []
        for i in range(n_replicas):
            r = Replica(i, registry, policy=policy, model_name=model_name)
            r.warm_up(self.warm_rows, now=0.0)
            self.replicas.append(r)
        self._lock = threading.Lock()
        self._deploy: Optional[_DeployMachine] = None
        self.admitted = 0
        self.degraded = 0
        self.rejected = 0
        reg = get_registry()
        self._admitted_total = reg.counter(
            "frontdoor_admitted_total", "requests admitted to a replica queue"
        )
        self._degraded_total = reg.counter(
            "frontdoor_degraded_total", "requests shed to the per-row fallback"
        )
        self._rejected_total = reg.counter(
            "frontdoor_rejected_total", "requests rejected by admission control"
        )

    # --------------------------------------------------------------- admission
    def ready_replicas(self) -> List[Replica]:
        return [r for r in self.replicas if r.state is ReplicaState.READY]

    @property
    def pending(self) -> int:
        """Total queued requests across all replicas (the admission gauge)."""
        return sum(r.queue_depth for r in self.replicas)

    def submit(
        self, row: np.ndarray, now: float, key: Optional[bytes] = None
    ) -> PendingPrediction:
        """Admit, route, and enqueue one request at simulated time ``now``.

        Raises :class:`QueueFull` when admission rejects (``overload=
        "reject"``, or no replica is READY).  Degraded requests return an
        already-resolved handle with ``degraded=True``.
        """
        with self._lock:
            ready = self.ready_replicas()
            if not ready:
                self.rejected += 1
                self._rejected_total.inc()
                raise QueueFull("no READY replica to accept traffic")
            target = self.router.pick(ready, key)
            if self.pending >= self.admission.max_pending:
                if self.admission.overload == "reject":
                    self.rejected += 1
                    self._rejected_total.inc()
                    raise QueueFull(
                        f"cluster pending at max_pending={self.admission.max_pending}"
                    )
                self.degraded += 1
                self._degraded_total.inc()
                return target.batcher.shed(row, now)
            self.admitted += 1
            self._admitted_total.inc()
            return target.submit(row, now)

    # -------------------------------------------------------------- simulation
    def _ready_at(self, r: Replica) -> Optional[float]:
        """Exact instant ``r``'s head batch becomes due (None when empty).
        Draining replicas flush as soon as they are free -- queued work does
        not wait out ``max_wait`` on a replica leaving service."""
        due = r.batcher.queue.ready_at()
        if due is None:
            return None
        if r.state is ReplicaState.DRAINING:
            deadline = r.batcher.queue.next_deadline()
            assert deadline is not None
            return deadline - r.batcher.policy.max_wait
        return due

    def next_action_time(self) -> Optional[float]:
        """Earliest future simulated instant something happens: a batch
        service can start, or a draining replica's in-flight work completes
        (which may unblock the rolling deploy)."""
        times: List[float] = []
        for r in self.replicas:
            if r.state not in (ReplicaState.READY, ReplicaState.DRAINING):
                continue
            due = self._ready_at(r)
            if due is not None:
                times.append(max(due, r.busy_until))
            elif r.state is ReplicaState.DRAINING:
                times.append(r.busy_until)
        return min(times) if times else None

    def advance(self, now: float) -> int:
        """Service every batch whose start instant has passed, oldest first,
        then advance the rolling-deploy machine.  Returns batches completed.

        Causality: callers invoke ``advance`` at every event time in
        nondecreasing order, so a batch due between two events is serviced
        at the later event using exactly the items that had arrived --
        arrivals at ``now`` are submitted *after* this call returns.
        """
        completed = 0
        while True:
            best: Optional[Replica] = None
            best_start = 0.0
            for r in self.replicas:
                if r.state not in (ReplicaState.READY, ReplicaState.DRAINING):
                    continue
                due = self._ready_at(r)
                if due is None:
                    continue
                start = max(due, r.busy_until)
                if start <= now and (
                    best is None
                    or (start, r.replica_id) < (best_start, best.replica_id)
                ):
                    best, best_start = r, start
            if best is None:
                break
            batch = best.batcher.take()
            if not batch:  # pragma: no cover - ready_at guaranteed nonempty
                continue
            t_done = best_start + self.service.time(len(batch))
            best.complete_batch(batch, best_start, t_done)
            completed += 1
        while self._advance_deploy(now):
            pass
        return completed

    def quiesce(self, now: float) -> float:
        """Drain every queue and finish any in-progress deploy; returns the
        simulated time the last action completed."""
        t = now
        while True:
            nxt = self.next_action_time()
            if nxt is not None:
                t = max(t, nxt)
                self.advance(t)
                continue
            d = self._deploy
            if d is None or d.report.done:
                break
            # deploy blocked with no schedulable batch: jump time past every
            # in-flight completion so drains can finish; stop if stuck.
            t = max(t, max((r.busy_until for r in self.replicas), default=t))
            state = (d.current, len(d.pending), d.report.done)
            self.advance(t)
            if (d.current, len(d.pending), d.report.done) == state:
                break
        return t

    # ---------------------------------------------------------------- deploys
    @property
    def deploy(self) -> Optional[DeployReport]:
        return self._deploy.report if self._deploy is not None else None

    def start_deploy(
        self,
        new_version: str,
        probe_rows: np.ndarray,
        expected: np.ndarray,
        *,
        now: float,
        tol: float = 0.0,
    ) -> DeployReport:
        """Begin a rolling hot-swap to ``new_version``.

        ``probe_rows``/``expected`` define validation: after each replica
        drains, the new version's predictions over ``probe_rows`` must match
        ``expected`` within ``tol`` (exactly, by default) or the deploy rolls
        back.  The swap itself proceeds one replica at a time inside
        :meth:`advance`; with ≥2 replicas the cluster keeps serving
        throughout.
        """
        if self._deploy is not None and not self._deploy.report.done:
            raise RuntimeError("a rolling deploy is already in progress")
        self.registry.get(self.model_name, new_version)  # must exist
        old = self.registry.active(self.model_name).version
        probe_rows = np.asarray(probe_rows, dtype=np.float64)
        expected = np.asarray(expected, dtype=np.float64)
        if probe_rows.shape[0] != expected.shape[0]:
            raise ValueError("probe_rows and expected must align")
        order = [r.replica_id for r in self.replicas]
        self._deploy = _DeployMachine(
            new_version, old, probe_rows, expected, order, tol
        )
        self._advance_deploy(now)
        return self._deploy.report

    def _replica(self, rid: int) -> Replica:
        return next(r for r in self.replicas if r.replica_id == rid)

    def _advance_deploy(self, now: float) -> bool:
        """One deploy-machine transition; True when progress was made."""
        d = self._deploy
        if d is None or d.report.done:
            return False
        if d.current is None:
            if not d.pending:
                if not d.report.failed:
                    self.registry.activate(self.model_name, d.report.new_version)
                d.report.done = True
                d.report.t_done = now
                return False
            d.current = d.pending.pop(0)
            r = self._replica(d.current)
            if r.state is ReplicaState.READY:
                r.begin_drain(now)
                return True
            return True  # already stopped/draining; fall through next call
        r = self._replica(d.current)
        if r.state is ReplicaState.DRAINING:
            if not r.is_drained(now):
                return False  # wait for in-flight/queued work
            r.finish_drain(now)
            return True
        if r.state is ReplicaState.STOPPED:
            if d.validating:
                target_flat = self.registry.get(self.model_name, d.target).flat
                probe_out = target_flat.predict(d.probe_rows)
                bad = (
                    not np.allclose(probe_out, d.expected, rtol=0.0, atol=d.tol)
                    if d.tol > 0
                    else not np.array_equal(probe_out, d.expected)
                )
                if bad:
                    # rollback: this replica re-warms on its old pin, every
                    # already-swapped replica is drained back to the old
                    # version, and the active pointer never moves.
                    d.report.failed = True
                    d.report.rolled_back = True
                    d.target = d.report.old_version
                    d.validating = False
                    d.pending = list(d.report.swapped)
                    d.report.swapped = []
                    r.warm_up(d.probe_rows, now)
                    r.note_busy(now, now + self.service.time(len(d.probe_rows)))
                    d.current = None
                    return True
            if r.version != d.target:
                r.pin(d.target)
            r.warm_up(d.probe_rows, now)
            r.note_busy(now, now + self.service.time(len(d.probe_rows)))
            if d.target == d.report.new_version:
                d.report.swapped.append(r.replica_id)
            d.current = None
            return True
        return False

    # ------------------------------------------------------------- inspection
    def summary(self, duration: Optional[float] = None) -> Dict[str, object]:
        """JSON-safe cluster snapshot (admission counters + per-replica)."""
        per_replica = []
        for r in self.replicas:
            s = r.stats.summary(duration)
            s["replica"] = r.replica_id
            s["state"] = r.state.value
            s["version"] = r.version
            s["served"] = r.served_total
            if duration:
                s["utilization"] = r.utilization(duration)
            per_replica.append(s)
        return {
            "n_replicas": len(self.replicas),
            "admitted": self.admitted,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "pending": self.pending,
            "replicas": per_replica,
        }

    def rank_tracers(self) -> Sequence:
        """Per-replica tracers, for ``export_merged_chrome_trace``."""
        return [r.tracer for r in self.replicas]
