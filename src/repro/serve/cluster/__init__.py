"""Multi-replica serving tier: front door, replicas, routing, load gen.

The single-process :class:`~repro.serve.batcher.MicroBatcher` scales
vertically (bigger batches); this package scales it horizontally:

``replica``
    :class:`Replica` -- one pinned model version + micro-batcher + lifecycle
    (WARMING -> READY -> DRAINING -> STOPPED) with a rank-tagged tracer.
``routing``
    Round-robin, least-loaded, and consistent-hash request routing.
``frontdoor``
    :class:`FrontDoor` -- shared admission control over every replica queue,
    event-driven simulated service (:class:`ServiceModel`), and the rolling
    hot-swap state machine with validation + rollback.
``loadgen``
    Closed-loop deterministic load generation (Poisson/bursty arrivals,
    slow-client backpressure) reporting p50/p95/p99, goodput, reject and
    degrade rates, per-replica utilization.
``demo``
    ``python -m repro serve demo`` -- storm + mid-storm rolling deploy.
"""

from .frontdoor import AdmissionPolicy, DeployReport, FrontDoor, ServiceModel
from .loadgen import LoadReport, LoadSpec, run_load
from .replica import Replica, ReplicaState
from .routing import (
    ConsistentHashRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    make_router,
)

__all__ = [
    "AdmissionPolicy",
    "ConsistentHashRouter",
    "DeployReport",
    "FrontDoor",
    "LeastLoadedRouter",
    "LoadReport",
    "LoadSpec",
    "Replica",
    "ReplicaState",
    "RoundRobinRouter",
    "ServiceModel",
    "make_router",
    "run_load",
]
