"""Pluggable request routing for the serving front door.

A router answers one question: *given the replicas currently willing to take
traffic, which one gets this request?*  The front door filters to READY
replicas before asking, so routers never see warming/draining/stopped
replicas and carry no lifecycle knowledge of their own.

Three policies cover the space the bench explores:

``round-robin``
    Cheapest possible spread; ignores load.  The baseline every other policy
    is judged against.
``least-loaded``
    Picks the replica with the smallest queue depth (ties broken by replica
    id for determinism).  Adapts to slow replicas and uneven batch service.
``hash``
    Consistent hashing on an optional per-request key over a virtual-node
    ring.  Keyed requests stick to a replica (cache affinity: the same
    feature vector keeps hitting the same :class:`FeatureCache`), and a
    replica joining/leaving only remaps the ring segments it owned.
    Keyless requests fall back to round-robin.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Optional, Protocol, Sequence

__all__ = [
    "ConsistentHashRouter",
    "LeastLoadedRouter",
    "Router",
    "RoundRobinRouter",
    "make_router",
]


class _Routable(Protocol):
    """What a router may look at (a subset of ``Replica``)."""

    replica_id: int

    @property
    def queue_depth(self) -> int: ...


class Router(Protocol):
    def pick(
        self, replicas: Sequence[_Routable], key: Optional[bytes] = None
    ) -> _Routable: ...


class RoundRobinRouter:
    """Cycle through the candidate set in replica-id order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._turn = 0

    def pick(
        self, replicas: Sequence[_Routable], key: Optional[bytes] = None
    ) -> _Routable:
        if not replicas:
            raise ValueError("no replicas available to route to")
        ordered = sorted(replicas, key=lambda r: r.replica_id)
        chosen = ordered[self._turn % len(ordered)]
        self._turn += 1
        return chosen


class LeastLoadedRouter:
    """Smallest queue depth wins; replica id breaks ties deterministically."""

    name = "least-loaded"

    def pick(
        self, replicas: Sequence[_Routable], key: Optional[bytes] = None
    ) -> _Routable:
        if not replicas:
            raise ValueError("no replicas available to route to")
        return min(replicas, key=lambda r: (r.queue_depth, r.replica_id))


def _ring_hash(data: bytes) -> int:
    """Stable 64-bit ring position (blake2b; never Python's salted hash)."""
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class ConsistentHashRouter:
    """Consistent hashing over a virtual-node ring, round-robin fallback.

    Each replica owns ``vnodes`` points on a 2^64 ring; a keyed request maps
    to the first point clockwise from its hash.  Membership changes (a
    replica draining out, a new one warming in) only remap keys in the
    segments the changed replica owned -- the affinity of every other key
    survives, which is exactly what a feature cache wants during a rolling
    deploy.  The ring is rebuilt lazily whenever the candidate set differs
    from the one it was built for.
    """

    name = "hash"

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.vnodes = int(vnodes)
        self._ring_ids: tuple = ()
        self._points: List[int] = []
        self._owners: List[int] = []
        self._fallback = RoundRobinRouter()

    def _rebuild(self, replicas: Sequence[_Routable]) -> None:
        ids = tuple(sorted(r.replica_id for r in replicas))
        if ids == self._ring_ids:
            return
        points: List[tuple] = []
        for rid in ids:
            for v in range(self.vnodes):
                points.append((_ring_hash(f"replica-{rid}#{v}".encode()), rid))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [o for _, o in points]
        self._ring_ids = ids

    def pick(
        self, replicas: Sequence[_Routable], key: Optional[bytes] = None
    ) -> _Routable:
        if not replicas:
            raise ValueError("no replicas available to route to")
        if key is None:
            return self._fallback.pick(replicas)
        self._rebuild(replicas)
        idx = bisect.bisect_right(self._points, _ring_hash(key)) % len(self._points)
        owner = self._owners[idx]
        by_id = {r.replica_id: r for r in replicas}
        return by_id[owner]


_ROUTERS = {
    "round-robin": RoundRobinRouter,
    "least-loaded": LeastLoadedRouter,
    "hash": ConsistentHashRouter,
}


def make_router(name: str) -> Router:
    """Router factory for CLI/bench config strings."""
    try:
        return _ROUTERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown router {name!r}; choose from {sorted(_ROUTERS)}"
        ) from None
