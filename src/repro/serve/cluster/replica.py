"""One serving replica: a pinned model version + micro-batcher + lifecycle.

A :class:`Replica` is the unit of horizontal scale.  It owns

* a :class:`~repro.serve.batcher.MicroBatcher` whose source is a callable
  resolving to the replica's **pinned** :class:`~repro.serve.registry.
  ModelVersion` -- pinning is what makes a rolling deploy possible: the
  registry's *active* pointer can move while this replica keeps serving the
  version it was warmed on, until the front door drains and re-pins it;
* a rank-tagged :class:`~repro.obs.tracer.Tracer` running on the cluster's
  simulated clock, so per-replica batch spans merge into one Chrome trace
  exactly like the distributed trainer's per-rank traces (pid ``10 + id``);
* its lifecycle state machine::

      WARMING --warm_up--> READY --begin_drain--> DRAINING --finish_drain--> STOPPED
                             ^                                   |
                             +------------- re-admit ------------+
                                  (rolling deploy: pin + warm_up)

  Only READY replicas accept traffic.  ``finish_drain`` asserts the queue is
  empty and freezes :attr:`served_total`; any submit after that is a bug and
  raises -- the rolling-deploy drill test pins this.

The replica performs *real* predictions; only time is modeled.  Busy time is
accumulated per batch (:meth:`note_busy`) so the load generator can report
per-replica utilization.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

import numpy as np

from ...obs import Tracer
from ..batcher import BatchPolicy, MicroBatcher, PendingPrediction
from ..flat_model import FlatEnsemble
from ..registry import DEFAULT_NAME, ModelRegistry
from ..stats import ServingStats

__all__ = ["Replica", "ReplicaState"]


class ReplicaState(enum.Enum):
    WARMING = "warming"
    READY = "ready"
    DRAINING = "draining"
    STOPPED = "stopped"


class Replica:
    """One model-serving worker behind the front door.

    Parameters
    ----------
    replica_id:
        Stable integer identity (routing ties, trace pid, metric label).
    registry:
        The shared content-addressed registry versions are pinned from.
    version:
        Version id to pin at construction (defaults to the active version).
    policy:
        Per-replica batching policy (each replica has its own bounded queue).
    model_name:
        Registry model name.
    """

    def __init__(
        self,
        replica_id: int,
        registry: ModelRegistry,
        *,
        version: Optional[str] = None,
        policy: Optional[BatchPolicy] = None,
        model_name: str = DEFAULT_NAME,
    ) -> None:
        self.replica_id = int(replica_id)
        self.registry = registry
        self.model_name = model_name
        self.state = ReplicaState.WARMING
        self._pinned = registry.get(
            model_name, version if version is not None else
            registry.active(model_name).version
        )
        self._sim_now = 0.0
        self.tracer = Tracer(
            tags={"rank": self.replica_id, "replica": f"r{self.replica_id}"},
            clock=lambda: self._sim_now,
        )
        self.stats = ServingStats()
        self.batcher = MicroBatcher(
            self._resolve_pinned,
            policy=policy,
            stats=self.stats,
            clock=lambda: self._sim_now,
            replica=f"r{self.replica_id}",
        )
        #: accumulated modeled service time (utilization numerator)
        self.busy_s = 0.0
        #: simulated instant this replica's in-flight batch completes
        self.busy_until = 0.0
        #: requests completed by this replica (frozen at finish_drain)
        self.served_total = 0
        self._served_frozen: Optional[int] = None

    # ---------------------------------------------------------------- version
    def _resolve_pinned(self) -> Tuple[FlatEnsemble, Optional[str]]:
        return self._pinned.flat, self._pinned.version

    @property
    def version(self) -> str:
        """Digest of the version this replica is serving."""
        return self._pinned.version

    def pin(self, version: str) -> None:
        """Serve ``version`` from now on (cache invalidates on next resolve).

        Only legal while not serving traffic -- a READY replica must be
        drained first so no in-flight batch straddles two versions.
        """
        if self.state is ReplicaState.READY:
            raise RuntimeError(
                f"replica {self.replica_id} is READY; drain before re-pinning"
            )
        self._pinned = self.registry.get(self.model_name, version)

    # -------------------------------------------------------------- lifecycle
    def warm_up(self, rows: np.ndarray, now: float = 0.0) -> np.ndarray:
        """Run real predictions through the pinned model, then go READY.

        Returns the warm-up predictions so callers can validate them against
        expected outputs (the rolling deploy's probe-row check).
        """
        if self.state not in (ReplicaState.WARMING, ReplicaState.STOPPED):
            raise RuntimeError(
                f"replica {self.replica_id} cannot warm up from {self.state.name}"
            )
        self._sim_now = now
        with self.tracer.span(
            "replica_warmup", rows=int(np.asarray(rows).shape[0]),
            version=self.version,
        ):
            out = self._pinned.flat.predict(np.asarray(rows, dtype=np.float64))
        self.state = ReplicaState.READY
        self._served_frozen = None  # re-admitted: the drain freeze lifts
        return out

    def begin_drain(self, now: float) -> None:
        """Stop accepting traffic; queued work will still be flushed."""
        if self.state is not ReplicaState.READY:
            raise RuntimeError(
                f"replica {self.replica_id} cannot drain from {self.state.name}"
            )
        self._sim_now = now
        with self.tracer.span("replica_drain_begin", queued=self.queue_depth):
            self.state = ReplicaState.DRAINING

    def is_drained(self, now: float) -> bool:
        """True once a DRAINING replica has no queued or in-flight work."""
        return (
            self.state is ReplicaState.DRAINING
            and self.queue_depth == 0
            and self.busy_until <= now
        )

    def finish_drain(self, now: float) -> None:
        """DRAINING -> STOPPED; freezes :attr:`served_total`."""
        if not self.is_drained(now):
            raise RuntimeError(
                f"replica {self.replica_id} still has work "
                f"(queued={self.queue_depth}, busy_until={self.busy_until})"
            )
        self._sim_now = now
        self.state = ReplicaState.STOPPED
        self._served_frozen = self.served_total

    # ---------------------------------------------------------------- serving
    @property
    def queue_depth(self) -> int:
        return self.batcher.queue_depth

    def submit(self, row: np.ndarray, now: float) -> PendingPrediction:
        """Enqueue one request (front door only routes to READY replicas)."""
        if self.state is not ReplicaState.READY:
            raise RuntimeError(
                f"replica {self.replica_id} is {self.state.name}, not READY"
            )
        self._sim_now = now
        return self.batcher.submit(row, now)

    def complete_batch(self, batch, t_take: float, t_done: float) -> int:
        """Finish ``batch`` at simulated ``t_done``, recording the service
        span on this replica's tracer and charging busy time."""
        if self._served_frozen is not None:
            raise RuntimeError(
                f"replica {self.replica_id} served a batch after drain completed"
            )
        self._sim_now = t_take
        sp = self.tracer.start(
            "replica_batch", batch=len(batch), version=self.version
        )
        self._sim_now = t_done
        n = self.batcher.complete(batch, t_done)
        self.tracer.end(sp, rows=n)
        self.note_busy(t_take, t_done)
        self.served_total += n
        return n

    def note_busy(self, t_start: float, t_end: float) -> None:
        self.busy_s += max(0.0, t_end - t_start)
        self.busy_until = max(self.busy_until, t_end)

    def utilization(self, duration: float) -> float:
        """Fraction of ``duration`` spent servicing batches."""
        return self.busy_s / duration if duration > 0 else 0.0

    def __repr__(self) -> str:
        return (
            f"Replica(id={self.replica_id}, state={self.state.name}, "
            f"version={self.version}, depth={self.queue_depth}, "
            f"served={self.served_total})"
        )
