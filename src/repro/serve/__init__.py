"""Batched inference serving (the ROADMAP's "heavy traffic" direction).

Training (the paper's subject) ends with a :class:`~repro.core.booster_model.
GBDTModel`; this package is what happens *after* training, when the model
has to answer prediction requests as fast as the host allows:

``flat_model``
    :class:`FlatEnsemble` -- every tree's node arrays packed into one set of
    contiguous NumPy arrays, so a whole batch is routed through *all* trees
    with one level-wise sweep (the layout Mitchell et al. use for GPU
    prediction, applied host-side).
``batcher``
    :class:`MicroBatcher` -- a bounded request queue that groups single-row
    requests into batches (max-batch-size / max-wait policy), sheds to a
    per-row fallback or rejects under overload, and serves repeated feature
    vectors from a prediction cache.
``registry``
    :class:`ModelRegistry` -- content-addressed model versions layered on the
    ``to_json``/``from_json`` round-trip, with hot swap and rollback.
``stats``
    :class:`ServingStats` -- latency percentiles, throughput and cache/shed
    counters, JSON-safe for the regression harness.
"""

from .batcher import BatchPolicy, MicroBatcher, PendingPrediction, QueueFull
from .flat_model import FlatEnsemble
from .registry import ModelRegistry, ModelVersion
from .stats import ServingStats

__all__ = [
    "BatchPolicy",
    "FlatEnsemble",
    "MicroBatcher",
    "ModelRegistry",
    "ModelVersion",
    "PendingPrediction",
    "QueueFull",
    "ServingStats",
]
