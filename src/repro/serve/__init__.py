"""Batched inference serving (the ROADMAP's "heavy traffic" direction).

Training (the paper's subject) ends with a :class:`~repro.core.booster_model.
GBDTModel`; this package is what happens *after* training, when the model
has to answer prediction requests as fast as the host allows:

``flat_model``
    :class:`FlatEnsemble` -- every tree's node arrays packed into one set of
    contiguous NumPy arrays, so a whole batch is routed through *all* trees
    with one level-wise sweep (the layout Mitchell et al. use for GPU
    prediction, applied host-side).
``batch_core``
    :class:`BatchQueue` -- the transport-agnostic batching kernel: bounded
    FIFO + first-request-anchored max-wait deadline, no model/clock/thread
    policy baked in.
``batcher``
    :class:`MicroBatcher` -- the transport binding the core to a model,
    metrics, and an overload story (shed to a per-row fallback or reject).
``feature_cache``
    :class:`FeatureCache` -- version-keyed LRU prediction cache whose
    hit/miss/eviction counters land on the shared obs registry with a
    ``replica`` label.
``registry``
    :class:`ModelRegistry` -- content-addressed model versions layered on the
    ``to_json``/``from_json`` round-trip, with hot swap and rollback.
``stats``
    :class:`ServingStats` -- latency percentiles, throughput and shed/reject
    counters, JSON-safe for the regression harness.
``cluster``
    Multi-replica tier: front door with admission control and pluggable
    routing, replica lifecycle (warm-up/drain/rolling deploy), and the
    closed-loop load generator.
"""

from .batch_core import BatchQueue
from .batcher import BatchPolicy, MicroBatcher, PendingPrediction, QueueFull
from .feature_cache import FeatureCache
from .flat_model import FlatEnsemble
from .registry import ModelRegistry, ModelVersion
from .stats import ServingStats

__all__ = [
    "BatchPolicy",
    "BatchQueue",
    "FeatureCache",
    "FlatEnsemble",
    "MicroBatcher",
    "ModelRegistry",
    "ModelVersion",
    "PendingPrediction",
    "QueueFull",
    "ServingStats",
]
