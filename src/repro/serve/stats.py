"""Serving metrics: latency percentiles, throughput, shed/reject counters.

Cache accounting does **not** live here: hit/miss/eviction counters belong to
:class:`~repro.serve.feature_cache.FeatureCache`, which records them on the
process-global :mod:`repro.obs` registry with a ``replica`` label so a
cluster's caches aggregate into one exported family.

One :class:`ServingStats` instance rides along with a
:class:`~repro.serve.batcher.MicroBatcher`; every request outcome is recorded
here, and :meth:`ServingStats.summary` emits a JSON-safe dict the regression
harness (:mod:`repro.bench.regress`) can persist and diff.

The counters and percentile math live in the shared observability primitives
(:mod:`repro.obs.metrics_registry`): latencies and batch sizes go into
:class:`~repro.obs.metrics_registry.Histogram` instances (exact percentiles
while the sample window holds, fixed-bucket estimates beyond it), counts into
:class:`~repro.obs.metrics_registry.Counter` instances.  Registering the same
instruments into a :class:`~repro.obs.metrics_registry.MetricsRegistry` is
optional -- pass one to export serving metrics alongside everything else.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..obs.metrics_registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
)

__all__ = ["ServingStats", "BATCH_SIZE_BUCKETS"]

#: powers of two up to the largest plausible max_batch
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                      512.0, 1024.0, 2048.0, 4096.0)


class ServingStats:
    """Counters and latency samples for one serving session.

    Latencies are recorded in seconds from request enqueue to batch flush
    (cache hits and shed requests complete immediately and record zero queue
    wait).  Timestamps come from whatever clock the batcher uses -- wall or
    simulated -- so percentiles are meaningful either way.

    Parameters
    ----------
    registry:
        Optional :class:`MetricsRegistry` to create the instruments in, so
        serving metrics appear in Prometheus/JSONL exports of that registry.
        By default the instruments are standalone.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        if registry is not None:
            self._latency = registry.histogram(
                "serve_request_latency_seconds", "request enqueue-to-flush wait"
            )
            self._batches = registry.histogram(
                "serve_batch_size", "rows per flushed batch",
                buckets=BATCH_SIZE_BUCKETS,
            )
            self._requests = registry.counter(
                "serve_requests_total", "completed prediction requests"
            )
            self._shed = registry.counter(
                "serve_shed_total", "requests served by the degraded per-row path"
            )
            self._rejected = registry.counter(
                "serve_rejected_total", "requests rejected by backpressure"
            )
        else:
            self._latency = Histogram(
                "serve_request_latency_seconds", buckets=DEFAULT_LATENCY_BUCKETS
            )
            self._batches = Histogram("serve_batch_size", buckets=BATCH_SIZE_BUCKETS)
            self._requests = Counter("serve_requests_total")
            self._shed = Counter("serve_shed_total")
            self._rejected = Counter("serve_rejected_total")
        self._t_first: float | None = None
        self._t_last: float | None = None

    # -------------------------------------------------------------- recording
    def note_time(self, now: float) -> None:
        """Track the observation window for :meth:`throughput`."""
        if self._t_first is None:
            self._t_first = now
        self._t_last = now

    def record_request(self, latency: float, *, degraded: bool = False) -> None:
        """One completed request (served from a batch, the cache, or the
        degraded per-row fallback)."""
        self._requests.inc()
        self._latency.observe(float(latency))
        if degraded:
            self._shed.inc()

    def record_reject(self) -> None:
        """One request turned away by backpressure."""
        self._rejected.inc()

    def record_batch(self, size: int) -> None:
        self._batches.observe(int(size))

    # ------------------------------------------------------------- reductions
    @property
    def n_requests(self) -> int:
        return int(self._requests.value)

    @property
    def n_batches(self) -> int:
        return self._batches.count

    @property
    def shed(self) -> int:
        return int(self._shed.value)

    @property
    def rejected(self) -> int:
        return int(self._rejected.value)

    def percentile(self, q: float) -> float:
        """Latency percentile in seconds (0.0 when nothing was recorded)."""
        return self._latency.percentile(q)

    @property
    def p50(self) -> float:
        return self._latency.p50

    @property
    def p95(self) -> float:
        return self._latency.p95

    @property
    def p99(self) -> float:
        return self._latency.p99

    @property
    def mean_batch_size(self) -> float:
        return self._batches.mean

    def throughput(self, duration: float | None = None) -> float:
        """Completed requests per second over ``duration`` (defaults to the
        observed first-to-last event window)."""
        if duration is None:
            if self._t_first is None or self._t_last is None:
                return 0.0
            duration = self._t_last - self._t_first
        return self.n_requests / duration if duration > 0 else 0.0

    def summary(self, duration: float | None = None) -> Dict[str, float]:
        """JSON-safe snapshot for reports and regression tracking."""
        return {
            "n_requests": self.n_requests,
            "n_batches": self.n_batches,
            "mean_batch_size": self.mean_batch_size,
            "p50_ms": self.p50 * 1e3,
            "p95_ms": self.p95 * 1e3,
            "p99_ms": self.p99 * 1e3,
            "throughput_rps": self.throughput(duration),
            "shed": self.shed,
            "rejected": self.rejected,
        }

    def __repr__(self) -> str:
        return (
            f"ServingStats(requests={self.n_requests}, batches={self.n_batches}, "
            f"p50={self.p50 * 1e3:.3g}ms, p99={self.p99 * 1e3:.3g}ms, "
            f"shed={self.shed}, rejected={self.rejected})"
        )
