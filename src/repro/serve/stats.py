"""Serving metrics: latency percentiles, throughput, cache/shed counters.

One :class:`ServingStats` instance rides along with a
:class:`~repro.serve.batcher.MicroBatcher`; every request outcome is recorded
here, and :meth:`ServingStats.summary` emits a JSON-safe dict the regression
harness (:mod:`repro.bench.regress`) can persist and diff.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

__all__ = ["ServingStats"]


class ServingStats:
    """Counters and latency samples for one serving session.

    Latencies are recorded in seconds from request enqueue to batch flush
    (cache hits and shed requests complete immediately and record zero queue
    wait).  Timestamps come from whatever clock the batcher uses -- wall or
    simulated -- so percentiles are meaningful either way.
    """

    def __init__(self) -> None:
        self.latencies: List[float] = []
        self.batch_sizes: List[int] = []
        self.n_requests = 0
        self.n_batches = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.shed = 0
        self.rejected = 0
        self._t_first: float | None = None
        self._t_last: float | None = None

    # -------------------------------------------------------------- recording
    def note_time(self, now: float) -> None:
        """Track the observation window for :meth:`throughput`."""
        if self._t_first is None:
            self._t_first = now
        self._t_last = now

    def record_lookup(self, hit: bool) -> None:
        """One prediction-cache probe (recorded at submit time)."""
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def record_request(self, latency: float, *, degraded: bool = False) -> None:
        """One completed request (served from a batch, the cache, or the
        degraded per-row fallback)."""
        self.n_requests += 1
        self.latencies.append(float(latency))
        if degraded:
            self.shed += 1

    def record_reject(self) -> None:
        """One request turned away by backpressure."""
        self.rejected += 1

    def record_batch(self, size: int) -> None:
        self.n_batches += 1
        self.batch_sizes.append(int(size))

    # ------------------------------------------------------------- reductions
    def percentile(self, q: float) -> float:
        """Latency percentile in seconds (0.0 when nothing was recorded)."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean_batch_size(self) -> float:
        return float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0

    @property
    def cache_hit_rate(self) -> float:
        looked = self.cache_hits + self.cache_misses
        return self.cache_hits / looked if looked else 0.0

    def throughput(self, duration: float | None = None) -> float:
        """Completed requests per second over ``duration`` (defaults to the
        observed first-to-last event window)."""
        if duration is None:
            if self._t_first is None or self._t_last is None:
                return 0.0
            duration = self._t_last - self._t_first
        return self.n_requests / duration if duration > 0 else 0.0

    def summary(self, duration: float | None = None) -> Dict[str, float]:
        """JSON-safe snapshot for reports and regression tracking."""
        return {
            "n_requests": self.n_requests,
            "n_batches": self.n_batches,
            "mean_batch_size": self.mean_batch_size,
            "p50_ms": self.p50 * 1e3,
            "p95_ms": self.p95 * 1e3,
            "p99_ms": self.p99 * 1e3,
            "throughput_rps": self.throughput(duration),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "shed": self.shed,
            "rejected": self.rejected,
        }

    def __repr__(self) -> str:
        return (
            f"ServingStats(requests={self.n_requests}, batches={self.n_batches}, "
            f"p50={self.p50 * 1e3:.3g}ms, p99={self.p99 * 1e3:.3g}ms, "
            f"shed={self.shed}, rejected={self.rejected})"
        )
