"""Version-keyed LRU prediction cache with shared-registry counters.

The cache used to live as an ``OrderedDict`` plus ad-hoc hit/miss counters
buried inside the batcher and :class:`~repro.serve.stats.ServingStats`.
Once N replicas each own a batcher, per-instance counters stop composing --
the cluster view needs one ``serve_cache_hits_total{replica=...}`` family it
can aggregate and export.  :class:`FeatureCache` owns both concerns:

* the LRU map itself, keyed by the feature vector's bytes and invalidated
  whenever the serving model version changes (a stale prediction can never
  be served across a hot swap);
* hit/miss/eviction accounting, recorded **twice** -- as plain instance
  attributes (``cache.hits``) for summaries and deterministic tests, and as
  labelled counters on the process-global :mod:`repro.obs` registry so every
  replica's cache lands in the same Prometheus/JSONL export.

A ``capacity`` of 0 disables the cache entirely: lookups miss without
counting and stores are dropped, matching the original batcher's
"disabled cache records nothing" behavior.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..obs import get_registry

__all__ = ["FeatureCache"]


class FeatureCache:
    """LRU ``feature-bytes -> prediction`` map for one serving replica.

    Parameters
    ----------
    capacity:
        Maximum resident entries (0 disables the cache).
    replica:
        Label value for the shared ``serve_cache_*_total`` counters, so a
        cluster's caches stay distinguishable after aggregation.  The
        single-process batcher uses the default ``"solo"``.
    """

    def __init__(self, capacity: int, *, replica: str = "solo") -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity)
        self.replica = str(replica)
        self._entries: "OrderedDict[bytes, float]" = OrderedDict()
        self._version: Optional[str] = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        reg = get_registry()
        self._hits_total = reg.counter(
            "serve_cache_hits_total", "prediction cache hits", replica=self.replica
        )
        self._misses_total = reg.counter(
            "serve_cache_misses_total", "prediction cache misses", replica=self.replica
        )
        self._evictions_total = reg.counter(
            "serve_cache_evictions_total", "prediction cache LRU evictions",
            replica=self.replica,
        )

    # -------------------------------------------------------------- inspection
    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    # --------------------------------------------------------------- operation
    def sync_version(self, version: Optional[str]) -> None:
        """Drop every entry when the serving model version changed."""
        if version != self._version:
            self._entries.clear()
            self._version = version

    def lookup(self, key: bytes, version: Optional[str]) -> Optional[float]:
        """Probe for ``key`` under ``version``; counts the hit or miss.

        Returns the cached prediction or None.  Disabled caches return None
        without counting (there is no cache to have missed).
        """
        if not self.enabled:
            return None
        self.sync_version(version)
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            self._misses_total.inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self._hits_total.inc()
        return value

    def store(self, key: bytes, value: float) -> None:
        """Insert/refresh ``key`` and evict LRU entries beyond capacity."""
        if not self.enabled:
            return
        self._entries[key] = float(value)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._evictions_total.inc()

    def __repr__(self) -> str:
        return (
            f"FeatureCache(replica={self.replica!r}, size={len(self._entries)}/"
            f"{self.capacity}, hits={self.hits}, misses={self.misses})"
        )
