"""Transport-agnostic micro-batching core: pure queue + deadline logic.

:class:`BatchQueue` is the policy kernel extracted from the original
``MicroBatcher``: it decides *what is queued*, *when a batch is due*, and
*which items leave together* -- and nothing else.  It never touches a model,
a clock, a thread, or a metric, so the same core can be driven by

* the synchronous single-process :class:`~repro.serve.batcher.MicroBatcher`
  (``poll``/``drain`` on the caller's thread),
* the cluster front door's event-driven simulator (service times come from a
  :class:`~repro.serve.cluster.frontdoor.ServiceModel`, batches complete at
  ``t_take + service``), and
* real per-replica worker threads (each pulls batches in a loop).

Deadline contract (the first-request anchor)
--------------------------------------------
The max-wait window of a batch is anchored to the **enqueue time of the
oldest queued item**: a request that arrives just before the deadline joins
the flush but never extends the wait of the requests already queued.  The
naive implementation -- re-arming ``deadline = now + max_wait`` on every
push -- starves the head under a steady trickle of arrivals; this core
stores no per-push deadline at all, deriving it from the head item instead,
so the anchor cannot drift by construction.
``tests/test_serve_batcher.py::test_late_arrival_does_not_extend_deadline``
pins the contract.

All mutating calls take an explicit ``now`` (seconds, any monotonic
timebase); the core is thread-safe so many producers may ``push`` while one
consumer takes batches.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

__all__ = ["BatchQueue"]


class BatchQueue:
    """Bounded FIFO of ``(item, t_enqueue)`` pairs with batch-flush triggers.

    Parameters
    ----------
    max_batch:
        A batch is due as soon as this many items are queued, and no take
        ever returns more than this many items.
    max_wait:
        A partial batch is due once its *oldest* item has waited this many
        seconds (first-request-anchored; see the module docstring).
    max_queue:
        Bound on queued items; :meth:`push` refuses beyond it and the caller
        decides whether to degrade or reject.
    """

    def __init__(self, *, max_batch: int, max_wait: float, max_queue: int) -> None:
        if max_batch < 1 or max_queue < 1:
            raise ValueError("max_batch and max_queue must be positive")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.max_queue = int(max_queue)
        self._lock = threading.Lock()
        self._queue: Deque[Tuple[Any, float]] = deque()

    # -------------------------------------------------------------- producing
    def push(self, item: Any, now: float) -> bool:
        """Enqueue ``item`` at time ``now``; False when the queue is full
        (the transport decides what overflow means -- shed or reject)."""
        with self._lock:
            if len(self._queue) >= self.max_queue:
                return False
            self._queue.append((item, float(now)))
            return True

    # -------------------------------------------------------------- consuming
    def __len__(self) -> int:
        return len(self._queue)

    def next_deadline(self) -> Optional[float]:
        """When the current head's max-wait expires (None when empty).

        Anchored to the oldest queued item's enqueue time -- later pushes
        never move it.  Event-driven transports schedule their next service
        tick off this.
        """
        with self._lock:
            if not self._queue:
                return None
            return self._queue[0][1] + self.max_wait

    def ready_at(self) -> Optional[float]:
        """Absolute instant the current head batch becomes due (None when
        empty): the enqueue time of the ``max_batch``-th item when a full
        batch is queued, else the head's max-wait expiry.  Event-driven
        transports use this to schedule service starts exactly."""
        with self._lock:
            if not self._queue:
                return None
            if len(self._queue) >= self.max_batch:
                return self._queue[self.max_batch - 1][1]
            return self._queue[0][1] + self.max_wait

    def ready(self, now: float) -> bool:
        """True when a batch is due: a full ``max_batch`` is queued, or the
        oldest item has waited at least ``max_wait``."""
        with self._lock:
            if not self._queue:
                return False
            if len(self._queue) >= self.max_batch:
                return True
            return now - self._queue[0][1] >= self.max_wait

    def take_ready(self, now: float) -> Optional[List[Tuple[Any, float]]]:
        """Pop one due batch (oldest first, at most ``max_batch`` items);
        None when nothing is due yet."""
        with self._lock:
            if not self._queue:
                return None
            due = (
                len(self._queue) >= self.max_batch
                or now - self._queue[0][1] >= self.max_wait
            )
            if not due:
                return None
            return self._pop_locked()

    def take(self) -> List[Tuple[Any, float]]:
        """Pop up to ``max_batch`` items unconditionally (drain / shutdown /
        replica drain paths ignore readiness)."""
        with self._lock:
            return self._pop_locked()

    def _pop_locked(self) -> List[Tuple[Any, float]]:
        n = min(len(self._queue), self.max_batch)
        return [self._queue.popleft() for _ in range(n)]

    def __repr__(self) -> str:
        return (
            f"BatchQueue(depth={len(self._queue)}, max_batch={self.max_batch}, "
            f"max_wait={self.max_wait}, max_queue={self.max_queue})"
        )
