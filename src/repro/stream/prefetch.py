"""Prefetch pipeline: overlap block IO with histogram compute.

Out-of-core training reads every block once per histogram pass; done
naively the device idles for the whole disk latency of each read.  The fix
(Ou, arXiv:2005.09148, Section IV) is a classic two-stage pipeline: a
background thread fetches block ``k+1`` while the trainer accumulates block
``k``, decoupled by a bounded depth-``K`` queue so at most ``K`` fetched
blocks wait in host memory (they stay **pinned** in the
:class:`~repro.stream.blockstore.BlockStore` cache until the consumer
releases them, so the cache budget covers everything resident).

Two views of the overlap are recorded:

* **measured** -- ``io_wait_seconds_total`` counts wall seconds the
  consumer actually blocked on the queue, and ``prefetch_hits_total``
  counts blocks that were already waiting when asked for;
* **modeled** -- every fetch/spill is a ``stream_io``-phase disk transfer
  in the gpusim ledger, so :func:`modeled_overlap` can compare the serial
  makespan (io + compute) against the pipelined bound
  ``max(io, compute)`` from the same ledger the PCIe accounting uses.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Iterator, Sequence

from ..gpusim.costmodel import phase_times
from ..gpusim.kernel import GpuDevice
from ..obs import get_registry
from .blockstore import IO_PHASE, BlockStore, ColumnBlock

__all__ = ["PrefetchPipeline", "modeled_overlap"]


class PrefetchPipeline:
    """Iterate blocks in a fixed order with background read-ahead.

    Each iteration starts a fresh fetch thread; blocks are yielded in
    exactly the requested order (the trainer's determinism does not depend
    on thread timing -- only the io-wait metrics do).  Blocks are pinned
    while queued or being consumed and released afterwards, even when the
    consumer abandons the loop early.
    """

    def __init__(
        self, store: BlockStore, block_ids: Sequence[int], *, depth: int = 2
    ) -> None:
        if depth < 1:
            raise ValueError("prefetch depth must be >= 1")
        self.store = store
        self.block_ids = list(block_ids)
        self.depth = int(depth)

    def __iter__(self) -> Iterator[ColumnBlock]:
        store = self.store
        q: "queue.Queue[tuple[int, ColumnBlock] | None]" = queue.Queue(
            maxsize=self.depth
        )
        stop = threading.Event()
        reg = get_registry()
        hits = reg.counter(
            "prefetch_hits_total", "blocks already fetched when the consumer asked"
        )
        waits = reg.counter(
            "io_wait_seconds_total", "wall seconds the consumer blocked on block IO"
        )

        def _put(item) -> bool:
            while not stop.is_set():
                try:
                    q.put(item, timeout=0.05)
                    return True
                except queue.Full:
                    continue
            return False

        def worker() -> None:
            try:
                for bid in self.block_ids:
                    if stop.is_set():
                        return
                    block = store.get(bid, pin=True)
                    if not _put(("block", bid, block)):
                        store.release(bid)
                        return
            except BaseException as exc:  # surface in the consumer thread
                _put(("error", exc))
                return
            _put(("done", None))

        thread = threading.Thread(
            target=worker, name="stream-prefetch", daemon=True
        )
        thread.start()
        try:
            while True:
                try:
                    item = q.get_nowait()
                    if item[0] == "block":
                        hits.inc(1)
                except queue.Empty:
                    t0 = time.perf_counter()
                    item = q.get()
                    waits.inc(time.perf_counter() - t0)
                if item[0] == "done":
                    return
                if item[0] == "error":
                    raise item[1]
                _, bid, block = item
                try:
                    yield block
                finally:
                    store.release(bid)
        finally:
            stop.set()
            # join BEFORE draining: the worker bails out of its timed put
            # once stop is set, so this is bounded -- and afterwards nothing
            # can enqueue behind the drain's back
            thread.join(timeout=5.0)
            while True:  # drop pins of anything still queued
                try:
                    item = q.get_nowait()
                except queue.Empty:
                    break
                if item[0] == "block":
                    store.release(item[1])


def modeled_overlap(device: GpuDevice) -> dict[str, float]:
    """Modeled io-vs-compute split and the two-stage pipeline bound.

    Splits the device's phase times into the ``stream_io`` slice (disk
    traffic recorded by the block store) and everything else, then reports
    the no-overlap makespan ``io + compute`` next to the pipelined bound
    ``max(io, compute)`` -- the wall time when every fetch hides behind the
    previous block's compute (or vice versa).
    """
    times = phase_times(device.spec, device.ledger, device.disk)
    io = times.get(IO_PHASE, 0.0)
    compute = sum(t for p, t in times.items() if p != IO_PHASE)
    serial = io + compute
    overlapped = max(io, compute)
    return {
        "modeled_io_s": io,
        "modeled_compute_s": compute,
        "modeled_serial_s": serial,
        "modeled_overlap_s": overlapped,
        "overlap_speedup": serial / overlapped if overlapped > 0 else 1.0,
    }
