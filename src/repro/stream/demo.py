"""``python -m repro stream demo``: out-of-core training walk-through.

Declares a covtype sample at a work scale where the quantized entry stream
is ~10x the modeled device memory, shows the in-memory trainer dying with
:class:`~repro.gpusim.memory.DeviceOutOfMemory` at that scale, then trains
the same trees out-of-core under a strict host-cache budget: spillable RLE
blocks, background prefetch, modeled disk IO in the ledger.  The final
``STREAM_DIGEST <hex>`` / ``INMEM_DIGEST <hex>`` lines are what CI compares
-- the streamed model must be byte-identical to the in-memory one (trees do
not depend on the work scale, which only extrapolates the cost ledger).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..approx.histogram_trainer import HistogramGBDTTrainer
from ..core.params import GBDTParams
from ..data.datasets import make_dataset
from ..gpusim.device import TITAN_X_PASCAL
from ..gpusim.kernel import GpuDevice
from ..gpusim.memory import DeviceOutOfMemory
from ..obs import MetricsRegistry, use_registry
from ..pipeline.checkpoint import model_digest
from .prefetch import modeled_overlap
from .trainer import StreamingHistTrainer

__all__ = ["StreamDemoResult", "run_stream_demo"]

_COUNTERS = (
    "blocks_spilled_total",
    "blocks_fetched_total",
    "blocks_rematerialized_total",
    "prefetch_hits_total",
    "io_wait_seconds_total",
)


@dataclasses.dataclass
class StreamDemoResult:
    """Everything the demo prints, plus the digests CI greps for."""

    digest: str
    inmem_digest: str
    matches_inmem: bool
    oom_message: str
    peak_resident_bytes: int
    budget_bytes: int
    counters: Dict[str, float]
    overlap: Dict[str, float]
    lines: List[str]

    @property
    def text(self) -> str:
        return "\n".join(self.lines)


def run_stream_demo(
    *,
    quick: bool = False,
    trees: Optional[int] = None,
    block_rows: Optional[int] = None,
    budget_bytes: Optional[int] = None,
    depth: int = 2,
    oversubscription: float = 10.0,
    spill_dir: Optional[str] = None,
) -> StreamDemoResult:
    """Run the demo; returns the printed report and both model digests."""
    n_trees = trees if trees is not None else (3 if quick else 6)
    rows = 300 if quick else 1200
    ds = make_dataset("covtype", run_rows=rows, seed=11)
    params = GBDTParams(n_trees=n_trees, max_depth=4, seed=7)
    # one full-scale chunk must fit on the device: at 10x oversubscription
    # the block fraction of the rows has to stay well under 1/10
    block_rows = block_rows if block_rows is not None else max(12, rows // 24)
    # default budget holds a handful of blocks (>= the pinned prefetch
    # working set) but NOT the whole dataset, so spills actually happen
    budget = budget_bytes if budget_bytes is not None else (
        16 << 10 if quick else 64 << 10
    )

    # Declare the run at a scale where the full entry stream is
    # ``oversubscription`` x the modeled device memory -- the wall the
    # in-memory trainer cannot cross.
    scale = oversubscription * TITAN_X_PASCAL.global_mem_bytes / (ds.X.nnz * 8)
    lines = [
        f"out-of-core training: {rows} rows, {n_trees} trees, "
        f"entry stream declared at {oversubscription:.0f}x device memory "
        f"(work_scale {scale:.3g})",
    ]

    try:
        HistogramGBDTTrainer(params, GpuDevice(work_scale=scale)).fit(ds.X, ds.y)
        raise AssertionError(
            "in-memory trainer fit an entry stream larger than device memory"
        )
    except DeviceOutOfMemory as exc:
        oom_message = str(exc)
    lines.append(f"  in-memory trainer at this scale: OOM ({oom_message})")

    device = GpuDevice(work_scale=scale)
    registry = MetricsRegistry(max_label_sets=4096)
    with use_registry(registry):
        trainer = StreamingHistTrainer(
            params,
            device,
            block_rows=block_rows,
            cache_budget_bytes=budget,
            prefetch_depth=depth,
            spill_dir=spill_dir,
        )
        model = trainer.fit(ds.X, ds.y)
    peak = trainer.store_.peak_resident_bytes
    if peak > budget:
        raise AssertionError(
            f"block cache exceeded its budget: peak {peak} B > {budget} B"
        )

    counters: Dict[str, float] = {}
    for name in _COUNTERS:
        inst = registry.get(name)
        counters[name] = float(inst.value) if inst is not None else 0.0

    lines.append(
        f"  streaming trainer: {len(trainer._block_ids)} blocks of "
        f"{block_rows} rows, cache budget {budget} B, prefetch depth {depth}"
    )
    lines.append(
        f"  peak resident {peak} B <= budget {budget} B "
        f"({100.0 * peak / budget:.0f}% used)"
    )
    lines.append(
        "  block store: "
        f"{counters['blocks_spilled_total']:.0f} spills, "
        f"{counters['blocks_fetched_total']:.0f} fetches, "
        f"{counters['blocks_rematerialized_total']:.0f} rematerializations; "
        f"prefetch hits {counters['prefetch_hits_total']:.0f}, "
        f"io wait {counters['io_wait_seconds_total']:.3f}s"
    )

    overlap = modeled_overlap(device)
    lines.append(
        f"  modeled io {overlap['modeled_io_s']:.3f}s vs compute "
        f"{overlap['modeled_compute_s']:.3f}s: serial "
        f"{overlap['modeled_serial_s']:.3f}s -> pipelined "
        f"{overlap['modeled_overlap_s']:.3f}s "
        f"({overlap['overlap_speedup']:.2f}x)"
    )
    lines.append(f"  modeled disk traffic {device.ledger.disk_bytes / 1e9:.2f} GB")

    reference = HistogramGBDTTrainer(params).fit(ds.X, ds.y)
    matches = model.to_json() == reference.to_json()
    digest = model_digest(model)
    inmem_digest = model_digest(reference)
    lines.append(
        "  streamed model byte-identical to in-memory: "
        + ("yes" if matches else "NO -- MISMATCH")
    )
    lines.append(f"STREAM_DIGEST {digest}")
    lines.append(f"INMEM_DIGEST {inmem_digest}")

    return StreamDemoResult(
        digest=digest,
        inmem_digest=inmem_digest,
        matches_inmem=matches,
        oom_message=oom_message,
        peak_resident_bytes=peak,
        budget_bytes=budget,
        counters=counters,
        overlap=overlap,
        lines=lines,
    )
