"""Spillable column-block store: the disk tier of out-of-core training.

A :class:`ColumnBlock` holds the quantized entries of one row range of the
training matrix -- ``(instance id, global bin id)`` pairs sorted by bin.
Because the global bin id ranges of different attributes are disjoint
(``gbin = bin_offset[attr] + local_bin``), the attribute array never needs
storing: it is recovered exactly from the bin ids with one ``searchsorted``
against the bin offsets.  Sorting by bin makes the bin array a staircase of
runs, so blocks RLE-compress the bin ids the same way Section III-C
compresses sorted value lists (instance ids name distinct instances and
stay dense, exactly as in :mod:`repro.data.rle`).

On-disk format (``repro-blk-v1``)
---------------------------------
One JSON header line -- magic, row range, array dtypes/shapes, and the
SHA-256 of the body -- followed by the raw little-endian array bytes.
Files are written with :func:`repro.ioutil.atomic_write_bytes`, so a crash
mid-write leaves at most an orphaned ``*.tmp`` file; a file that *is*
damaged anyway (truncation, bit rot, a writer without the atomic recipe)
fails the checksum, is counted by ``blockstore_torn_skipped_total``,
deleted, and re-materialized from the source matrix.

Cache policy
------------
The store keeps recently used blocks in host memory under a **hard byte
budget** (LRU eviction).  Evicting a block that has never reached disk
spills it first (``blocks_spilled_total``, modeled as a disk write);
fetching an evicted block reads it back (modeled as a disk read).  Blocks
pinned by the prefetch pipeline are never evicted -- the budget must cover
the pinned working set, which is what bounds peak resident bytes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np

from ..gpusim.kernel import GpuDevice
from ..ioutil import atomic_write_bytes
from ..obs import get_registry, span

__all__ = [
    "BLOCK_MAGIC",
    "BlockStore",
    "ColumnBlock",
    "TornBlockError",
    "attrs_from_gbin",
]

BLOCK_MAGIC = "repro-blk-v1"

#: gpusim phase label for all block-store disk traffic, so phase reports
#: separate modeled IO time from modeled compute time
IO_PHASE = "stream_io"


class TornBlockError(RuntimeError):
    """A block file failed validation (bad magic, header, or checksum)."""


def attrs_from_gbin(ent_gbin: np.ndarray, bin_offset: np.ndarray) -> np.ndarray:
    """Recover the attribute of each entry from its global bin id.

    Attribute ``a`` owns bins ``[bin_offset[a], bin_offset[a+1])``; the
    ranges partition ``[0, total_bins)``, so the mapping is exact.
    """
    return np.searchsorted(bin_offset, ent_gbin, side="right") - 1


def _rle_encode(ent_gbin: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run-length encode a sorted int64 bin array into (values, lengths)."""
    n = ent_gbin.size
    if n == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    starts = np.concatenate(([0], np.flatnonzero(np.diff(ent_gbin)) + 1))
    run_values = ent_gbin[starts]
    run_lengths = np.diff(np.concatenate((starts, [n])))
    return run_values.astype(np.int64), run_lengths.astype(np.int64)


@dataclasses.dataclass
class ColumnBlock:
    """Quantized entries of rows ``[row_lo, row_hi)``, sorted by bin id.

    ``ent_inst`` is always dense int64 (global instance ids).  The bin ids
    are stored either dense (``gbin_values`` with ``gbin_lengths is None``)
    or run-length encoded; :meth:`entries` returns the dense triple either
    way.
    """

    block_id: int
    row_lo: int
    row_hi: int
    n_entries: int
    ent_inst: np.ndarray
    gbin_values: np.ndarray
    gbin_lengths: Optional[np.ndarray]

    @classmethod
    def build(
        cls,
        block_id: int,
        row_lo: int,
        row_hi: int,
        ent_inst: np.ndarray,
        ent_gbin: np.ndarray,
        *,
        use_rle: bool = True,
    ) -> "ColumnBlock":
        """Pack already bin-sorted entry arrays into a block."""
        ent_inst = np.ascontiguousarray(ent_inst, dtype=np.int64)
        ent_gbin = np.ascontiguousarray(ent_gbin, dtype=np.int64)
        if ent_inst.size != ent_gbin.size:
            raise ValueError("entry arrays must align")
        if ent_gbin.size and np.any(np.diff(ent_gbin) < 0):
            raise ValueError("block entries must be sorted by global bin id")
        if use_rle:
            values, lengths = _rle_encode(ent_gbin)
            return cls(block_id, int(row_lo), int(row_hi), ent_inst.size,
                       ent_inst, values, lengths)
        return cls(block_id, int(row_lo), int(row_hi), ent_inst.size,
                   ent_inst, ent_gbin, None)

    @property
    def is_rle(self) -> bool:
        return self.gbin_lengths is not None

    @property
    def nbytes(self) -> int:
        """Host bytes this block occupies as stored (the budget currency)."""
        b = self.ent_inst.nbytes + self.gbin_values.nbytes
        if self.gbin_lengths is not None:
            b += self.gbin_lengths.nbytes
        return int(b)

    def entries(
        self, bin_offset: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Dense ``(ent_inst, ent_gbin, ent_attr)`` of this block."""
        if self.gbin_lengths is not None:
            ent_gbin = np.repeat(self.gbin_values, self.gbin_lengths)
        else:
            ent_gbin = self.gbin_values
        return self.ent_inst, ent_gbin, attrs_from_gbin(ent_gbin, bin_offset)

    # ------------------------------------------------------------- envelope
    def to_bytes(self) -> bytes:
        """Serialize as a checksummed ``repro-blk-v1`` envelope."""
        arrays = [("ent_inst", self.ent_inst), ("gbin_values", self.gbin_values)]
        if self.gbin_lengths is not None:
            arrays.append(("gbin_lengths", self.gbin_lengths))
        body = b"".join(np.ascontiguousarray(a).tobytes() for _, a in arrays)
        header = {
            "magic": BLOCK_MAGIC,
            "block_id": self.block_id,
            "row_lo": self.row_lo,
            "row_hi": self.row_hi,
            "n_entries": self.n_entries,
            "rle": self.is_rle,
            "arrays": [
                {"name": name, "dtype": str(a.dtype), "shape": list(a.shape)}
                for name, a in arrays
            ],
            "body_sha256": hashlib.sha256(body).hexdigest(),
        }
        return json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + body

    @classmethod
    def from_bytes(cls, raw: bytes) -> "ColumnBlock":
        """Parse an envelope; raises :class:`TornBlockError` on any damage."""
        nl = raw.find(b"\n")
        if nl < 0:
            raise TornBlockError("no header line")
        try:
            header = json.loads(raw[:nl].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TornBlockError(f"unparseable header: {exc}") from exc
        if header.get("magic") != BLOCK_MAGIC:
            raise TornBlockError(f"bad magic {header.get('magic')!r}")
        body = raw[nl + 1:]
        if hashlib.sha256(body).hexdigest() != header.get("body_sha256"):
            raise TornBlockError("body checksum mismatch")
        arrays: Dict[str, np.ndarray] = {}
        pos = 0
        for spec in header["arrays"]:
            dt = np.dtype(spec["dtype"])
            count = int(np.prod(spec["shape"])) if spec["shape"] else 1
            nb = dt.itemsize * count
            arrays[spec["name"]] = np.frombuffer(
                body[pos:pos + nb], dtype=dt
            ).reshape(spec["shape"]).copy()
            pos += nb
        if pos != len(body):
            raise TornBlockError("trailing bytes after declared arrays")
        return cls(
            block_id=int(header["block_id"]),
            row_lo=int(header["row_lo"]),
            row_hi=int(header["row_hi"]),
            n_entries=int(header["n_entries"]),
            ent_inst=arrays["ent_inst"],
            gbin_values=arrays["gbin_values"],
            gbin_lengths=arrays.get("gbin_lengths"),
        )


class BlockStore:
    """LRU host cache over disk-spillable column blocks.

    Parameters
    ----------
    directory:
        Where block files live (created if missing).
    budget_bytes:
        Hard ceiling on resident (cached + pinned) block bytes.
    device:
        When given, spills and fetches are charged to its cost ledger as
        disk transfers under the ``stream_io`` phase.
    """

    def __init__(
        self,
        directory: Path | str,
        budget_bytes: int,
        *,
        device: GpuDevice | None = None,
    ) -> None:
        if budget_bytes <= 0:
            raise ValueError("cache budget must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.budget_bytes = int(budget_bytes)
        self.device = device
        self._cache: "OrderedDict[int, ColumnBlock]" = OrderedDict()
        self._pins: Dict[int, int] = {}
        self._on_disk: set[int] = set()
        self._known: set[int] = set()
        self._resident = 0
        self.peak_resident_bytes = 0
        self._materializer: Optional[Callable[[int], ColumnBlock]] = None
        self._lock = threading.RLock()

    # ---------------------------------------------------------------- public
    def set_materializer(self, fn: Callable[[int], ColumnBlock]) -> None:
        """Register the rebuild-from-source fallback for torn/lost files."""
        self._materializer = fn

    @property
    def resident_bytes(self) -> int:
        """Current cached (incl. pinned) block bytes."""
        with self._lock:
            return self._resident

    @property
    def n_blocks(self) -> int:
        with self._lock:
            return len(self._known)

    def block_path(self, block_id: int) -> Path:
        return self.directory / f"block-{block_id:06d}.blk"

    def put(self, block: ColumnBlock) -> None:
        """Register a freshly built block and cache it (evicting as needed)."""
        with self._lock:
            self._known.add(block.block_id)
            if block.block_id in self._cache:
                self._drop(block.block_id)
            self._on_disk.discard(block.block_id)
            self._insert(block)

    def get(self, block_id: int, *, pin: bool = False) -> ColumnBlock:
        """Return a block, fetching from disk (or rebuilding) on a miss."""
        with self._lock:
            if block_id not in self._known:
                raise KeyError(f"unknown block {block_id}")
            block = self._cache.get(block_id)
            if block is not None:
                self._cache.move_to_end(block_id)
            else:
                block = self._fetch(block_id)
                self._insert(block)
            if pin:
                self._pins[block_id] = self._pins.get(block_id, 0) + 1
            return block

    def release(self, block_id: int) -> None:
        """Drop one pin (prefetch consumer done with the block)."""
        with self._lock:
            count = self._pins.get(block_id, 0) - 1
            if count <= 0:
                self._pins.pop(block_id, None)
            else:
                self._pins[block_id] = count

    def flush(self) -> None:
        """Spill every cached block and empty the cache (end of training)."""
        with self._lock:
            for block_id in list(self._cache):
                self._evict(block_id)

    def close(self) -> None:
        """Forget all cached state (files stay for post-mortem inspection)."""
        with self._lock:
            self._cache.clear()
            self._pins.clear()
            self._resident = 0

    # --------------------------------------------------------------- internals
    def _counter(self, name: str, help_: str):
        return get_registry().counter(name, help_)

    def _insert(self, block: ColumnBlock) -> None:
        nbytes = block.nbytes
        pinned = sum(
            self._cache[b].nbytes for b in self._pins if b in self._cache
        )
        if pinned + nbytes > self.budget_bytes:
            raise RuntimeError(
                f"cache budget {self.budget_bytes} B cannot hold block "
                f"{block.block_id} ({nbytes} B) plus the pinned working set "
                f"({pinned} B); raise the budget or lower the prefetch depth"
            )
        while self._resident + nbytes > self.budget_bytes:
            victim = next(
                (b for b in self._cache if b not in self._pins), None
            )
            if victim is None:  # pragma: no cover - guarded by the check above
                raise RuntimeError("all cached blocks are pinned")
            self._evict(victim)
        self._cache[block.block_id] = block
        self._resident += nbytes
        if self._resident > self.peak_resident_bytes:
            self.peak_resident_bytes = self._resident

    def _drop(self, block_id: int) -> None:
        block = self._cache.pop(block_id, None)
        if block is not None:
            self._resident -= block.nbytes

    def _evict(self, block_id: int) -> None:
        block = self._cache[block_id]
        with span("stream.evict", block=block_id, bytes=block.nbytes):
            if block_id not in self._on_disk:
                self._spill(block)
            self._drop(block_id)

    def _spill(self, block: ColumnBlock) -> None:
        raw = block.to_bytes()
        atomic_write_bytes(self.block_path(block.block_id), raw)
        self._on_disk.add(block.block_id)
        self._counter(
            "blocks_spilled_total", "column blocks written to the disk tier"
        ).inc(1)
        if self.device is not None:
            self.device.disk_transfer(
                "spill_block", len(raw), "write", phase=IO_PHASE
            )

    def _fetch(self, block_id: int) -> ColumnBlock:
        path = self.block_path(block_id)
        with span("stream.fetch", block=block_id):
            raw: bytes | None
            try:
                raw = path.read_bytes()
            except OSError:
                raw = None
            if raw is not None:
                try:
                    block = ColumnBlock.from_bytes(raw)
                    if self.device is not None:
                        self.device.disk_transfer(
                            "fetch_block", len(raw), "read", phase=IO_PHASE
                        )
                    self._counter(
                        "blocks_fetched_total",
                        "column blocks read back from the disk tier",
                    ).inc(1)
                    return block
                except TornBlockError:
                    self._counter(
                        "blockstore_torn_skipped_total",
                        "torn/corrupt block files skipped and rebuilt",
                    ).inc(1)
                    try:
                        path.unlink()
                    except OSError:
                        pass
            # missing or torn: rebuild from the source matrix
            if self._materializer is None:
                raise TornBlockError(
                    f"block {block_id} unreadable and no materializer set"
                )
            block = self._materializer(block_id)
            self._on_disk.discard(block_id)
            self._counter(
                "blocks_rematerialized_total",
                "blocks rebuilt from source after a torn or missing file",
            ).inc(1)
            return block
