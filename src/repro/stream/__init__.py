"""Streaming out-of-core training: spillable blocks + prefetch pipeline.

The paper's answer to the Titan X's 12 GB is RLE compression (Section
III-C); when even the compressed lists do not fit, training simply cannot
run.  This package removes that wall the way Out-of-Core GPU Gradient
Boosting (Ou, arXiv:2005.09148) does: the quantized entry stream of the
histogram trainer is cut into **row-range column blocks**, RLE-compressed,
spilled to disk under a hard host-cache byte budget
(:mod:`repro.stream.blockstore`), and streamed back through a background
prefetch pipeline that overlaps block IO with compute
(:mod:`repro.stream.prefetch`).  Disk IO is charged to the gpusim ledger as
a first-class transfer class (:class:`repro.gpusim.DiskSpec`), so the obs
phase report shows modeled io-vs-compute overlap honestly -- the same
discipline XGBoost's GPU scaling study applies to PCIe (arXiv:1806.11248).

The streaming trainer (:mod:`repro.stream.trainer`) drives the in-memory
:class:`~repro.approx.histogram_trainer.HistogramGBDTTrainer` grow loop
through its entry-source hooks; because histogram statistics accumulate in
order-independent fixed-point int64 and instance routing writes are
disjoint per instance, the models are **byte-identical** to in-memory
training for any block size and cache budget, with RLE and GOSS composing
freely (pinned by the differential tests).
"""

from .blockstore import BLOCK_MAGIC, BlockStore, ColumnBlock, TornBlockError
from .prefetch import PrefetchPipeline, modeled_overlap
from .trainer import StreamingHistTrainer

__all__ = [
    "BLOCK_MAGIC",
    "BlockStore",
    "ColumnBlock",
    "PrefetchPipeline",
    "StreamingHistTrainer",
    "TornBlockError",
    "modeled_overlap",
]
