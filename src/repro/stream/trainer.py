"""Streaming histogram trainer: out-of-core, byte-identical by construction.

:class:`StreamingHistTrainer` subclasses the in-memory
:class:`~repro.approx.histogram_trainer.HistogramGBDTTrainer` and overrides
only its entry-source hooks, so the grow loop -- split scanning, GOSS,
sibling subtraction, leaf finalization -- is the *same code*:

``_setup_entries``
    instead of materializing the full quantized entry stream on the device,
    rows are cut into ``block_rows``-sized chunks.  Pass 1 sketches each
    chunk's columns (:func:`~repro.approx.quantile.sketch_column`) and
    merges them into the global quantile cuts -- bit-equal to the
    monolithic :func:`~repro.approx.quantile.build_bins` by the sketch
    contract.  Pass 2 quantizes each chunk against those cuts, sorts its
    entries by global bin (entry order within a block is free -- see below),
    and registers them as spillable RLE blocks in a
    :class:`~repro.stream.blockstore.BlockStore` under the cache budget.
``_accumulate_entries``
    per-level histograms accumulate block by block through the
    :class:`~repro.stream.prefetch.PrefetchPipeline`.  Fixed-point int64
    scatter-adds are associative and commutative, so any blocking (and any
    within-block order) produces the identical tables.
``_route_by_entries``
    the per-split side decisions stream the blocks the same way; each
    instance owns at most one entry per attribute, so the writes are
    disjoint and chunking cannot change them.

Everything downstream of identical tables and identical routing is shared
code, so the serialized model is **byte-identical** to in-memory training
for any ``block_rows``, any ``cache_budget_bytes``, RLE on or off, and GOSS
on or off -- the differential tests fit the whole grid and compare model
digests.  What *does* change is the cost ledger: one full-scale chunk of
device memory instead of the whole entry stream (the OOM wall moves), plus
modeled disk traffic in the ``stream_io`` phase.

The lossguide grow policy walks entries node-at-a-time in-memory and is
not supported out-of-core; the constructor rejects it loudly.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import numpy as np

from ..approx.histogram_trainer import HistogramGBDTTrainer
from ..approx.histops import accumulate_histograms
from ..approx.quantile import (
    BinSpec,
    bin_column_values,
    build_bins_from_sketches,
    merge_sketches,
    sketch_column,
)
from ..core.booster_model import GBDTModel
from ..core.params import GBDTParams
from ..data.matrix import CSRMatrix
from ..data.sorted_columns import SortedColumns, build_sorted_columns
from ..gpusim.kernel import GpuDevice
from .blockstore import BlockStore, ColumnBlock
from .prefetch import PrefetchPipeline

__all__ = ["StreamingHistTrainer"]


class StreamingHistTrainer(HistogramGBDTTrainer):
    """Out-of-core histogram GBDT over a spillable block store.

    Parameters beyond the in-memory trainer's:

    block_rows:
        Rows per column block.  Smaller blocks mean a smaller device
        chunk buffer and finer spill granularity, at more per-block
        launch/IO overhead.
    cache_budget_bytes:
        Hard host-memory ceiling for resident blocks.  Must cover the
        pinned prefetch working set (roughly ``(prefetch_depth + 2)``
        blocks); the store raises a clear error otherwise.
    spill_dir:
        Block file directory.  ``None`` uses a per-fit temporary directory
        removed afterwards.
    prefetch_depth:
        Read-ahead queue depth of the prefetch pipeline.
    use_rle:
        RLE-compress the block bin arrays (identity is unaffected).
    """

    def __init__(
        self,
        params: GBDTParams | None = None,
        device: GpuDevice | None = None,
        *,
        block_rows: int = 2048,
        cache_budget_bytes: int = 8 << 20,
        spill_dir: Path | str | None = None,
        prefetch_depth: int = 2,
        use_rle: bool = True,
        max_bins: int = 64,
        row_scale: float = 1.0,
        grow_policy: str = "depthwise",
        use_arena: bool | None = None,
        use_subtraction: bool | None = None,
    ) -> None:
        if grow_policy != "depthwise":
            raise ValueError(
                "StreamingHistTrainer supports only the depthwise grow "
                "policy: lossguide growth revisits one node's entries at a "
                "time, which defeats block streaming"
            )
        if block_rows < 1:
            raise ValueError("block_rows must be >= 1")
        super().__init__(
            params,
            device,
            max_bins=max_bins,
            row_scale=row_scale,
            grow_policy="depthwise",
            use_arena=use_arena,
            use_subtraction=use_subtraction,
        )
        self.block_rows = int(block_rows)
        self.cache_budget_bytes = int(cache_budget_bytes)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.prefetch_depth = int(prefetch_depth)
        self.use_rle = bool(use_rle)
        self.store_: BlockStore | None = None
        self._chunks: list[tuple[int, int]] = []
        self._block_ids: list[int] = []
        self._bin_offset: np.ndarray | None = None

    # ------------------------------------------------------------------- fit
    def fit(
        self, X: CSRMatrix, y: np.ndarray, *, init_model: GBDTModel | None = None
    ) -> GBDTModel:
        """In-memory ``fit`` over a fresh block store; cleans up spills."""
        tmp = None
        if self.spill_dir is None:
            tmp = tempfile.mkdtemp(prefix="repro-stream-")
            directory: Path | str = tmp
        else:
            directory = self.spill_dir
        self.store_ = BlockStore(
            directory, self.cache_budget_bytes, device=self.device
        )
        try:
            return super().fit(X, y, init_model=init_model)
        finally:
            self.store_.close()
            if tmp is not None:
                shutil.rmtree(tmp, ignore_errors=True)

    # ------------------------------------------------------- entry-source hooks
    def _chunk_columns(self, X: CSRMatrix, lo: int, hi: int) -> SortedColumns:
        """Sorted columns of rows ``[lo, hi)`` (local instance ids)."""
        sub = X.select_rows(np.arange(lo, hi, dtype=np.int64))
        return build_sorted_columns(sub.to_csc(), self.device)

    def _build_block(
        self, X: CSRMatrix, block_id: int, spec: BinSpec, bin_offset: np.ndarray
    ) -> ColumnBlock:
        """Quantize one row chunk into a bin-sorted block (also the
        re-materializer for torn or missing block files)."""
        lo, hi = self._chunks[block_id]
        d = X.shape[1]
        cols = self._chunk_columns(X, lo, hi)
        ent_bin = bin_column_values(spec, cols)
        ent_attr = np.repeat(
            np.arange(d, dtype=np.int64), np.diff(cols.col_offsets)
        )
        ent_gbin = bin_offset[ent_attr] + ent_bin
        ent_inst = cols.inst + lo  # lift to global instance ids
        self.device.launch(
            "quantize_to_bins",
            elements=cols.nnz,
            flops_per_element=np.log2(max(self.max_bins, 2)),
            coalesced_bytes=cols.nnz * (8 + 4),
        )
        # within-block entry order is free (int64 scatter-adds commute and
        # routing writes are disjoint); sort by bin so the bin array RLEs
        # into at most total_bins runs, then by instance for determinism
        order = np.lexsort((ent_inst, ent_gbin))
        return ColumnBlock.build(
            block_id, lo, hi, ent_inst[order], ent_gbin[order],
            use_rle=self.use_rle,
        )

    def _setup_entries(self, X: CSRMatrix):
        device = self.device
        n, d = X.shape
        self._chunks = [
            (lo, min(lo + self.block_rows, n))
            for lo in range(0, n, self.block_rows)
        ]
        self._block_ids = list(range(len(self._chunks)))

        # pass 1: per-chunk mergeable sketches -> the global quantile cuts
        # (exactly build_bins() of the unchunked columns, by the sketch
        # merge contract of repro.approx.quantile)
        per_attr: list[list] = [[] for _ in range(d)]
        col_lens = np.zeros(d, dtype=np.int64)
        max_chunk_nnz = 0
        for lo, hi in self._chunks:
            cols = self._chunk_columns(X, lo, hi)
            for j in range(d):
                per_attr[j].append(sketch_column(cols.column(j)[0]))
            col_lens += np.diff(cols.col_offsets)
            max_chunk_nnz = max(max_chunk_nnz, cols.nnz)
        spec = build_bins_from_sketches(
            [merge_sketches(s) for s in per_attr], self.max_bins
        )
        bin_offset = np.zeros(d + 1, dtype=np.int64)
        np.cumsum([spec.n_bins(j) for j in range(d)], out=bin_offset[1:])
        total_bins = int(bin_offset[-1])
        self._bin_offset = bin_offset

        # pass 2: quantize chunk by chunk into spillable blocks
        store = self.store_
        assert store is not None, "fit() owns the block store lifecycle"
        for bid in self._block_ids:
            store.put(self._build_block(X, bid, spec, bin_offset))
        store.set_materializer(
            lambda bid: self._build_block(X, bid, spec, bin_offset)
        )

        # device footprint: ONE full-scale chunk resident at a time -- the
        # whole point; the in-memory trainer's nnz_full * 8 entry buffer is
        # what cannot exist out-of-core
        mem = device.memory
        n_full = n * self.row_scale
        mem.alloc("stream_chunk_entries", max_chunk_nnz * device.work_scale * 8)
        mem.alloc("gradients_gh", n_full * 8)
        mem.alloc("predictions", n_full * 4)
        mem.alloc("instance_to_node", n_full * 4)
        mem.alloc(
            "level_histograms",
            total_bins * device.seg_scale * 4 * 16,
        )
        return spec, None, None, None, bin_offset, col_lens

    def _blocks(self) -> PrefetchPipeline:
        assert self.store_ is not None
        return PrefetchPipeline(
            self.store_, self._block_ids, depth=self.prefetch_depth
        )

    def _accumulate_entries(
        self, gq, hq, ent_inst, ent_gbin, inst2x, n_rows, total_bins
    ):
        device = self.device
        bin_offset = self._bin_offset
        hist_gq = np.zeros((n_rows, total_bins), dtype=np.int64)
        hist_hq = np.zeros((n_rows, total_bins), dtype=np.int64)
        hist_c = np.zeros((n_rows, total_bins), dtype=np.int64)
        for block in self._blocks():
            bi, bg, _ = block.entries(bin_offset)
            device.transfer("upload_block_entries", block.nbytes)
            b_gq, b_hq, b_c, n_live = accumulate_histograms(
                gq, hq, bi, bg, inst2x, n_rows, total_bins
            )
            hist_gq += b_gq
            hist_hq += b_hq
            hist_c += b_c
            device.launch(
                "accumulate_histograms",
                elements=n_live,
                flops_per_element=3.0,
                coalesced_bytes=n_live * 12,
                irregular_bytes=n_live * 24,  # atomic adds into node tables
            )
        return hist_gq, hist_hq, hist_c

    def _route_by_entries(
        self, ent_inst, ent_gbin, ent_attr, inst2local, attr_of_node,
        cut_of_node, bin_offset, side_inst, n,
    ):
        device = self.device
        for block in self._blocks():
            bi, bg, ba = block.entries(bin_offset)
            device.transfer("upload_block_entries", block.nbytes)
            ent_node = np.where(bi >= 0, inst2local[bi], -1)
            ent_node_safe = np.maximum(ent_node, 0)
            sel = (ent_node >= 0) & (ba == attr_of_node[ent_node_safe])
            local_bin = bg[sel] - bin_offset[ba[sel]]
            goes_left = local_bin < cut_of_node[ent_node[sel]]
            side_inst[bi[sel]] = np.where(goes_left, 0, 1)
        device.launch(
            "route_instances_by_bin",
            elements=n * self.row_scale,
            flops_per_element=2.0,
            coalesced_bytes=n * self.row_scale * 9,
            scale=False,
        )
