"""Command-line driver: regenerate any table or figure of the paper.

Usage::

    python -m repro table2            # Table II
    python -m repro fig8a fig8b       # sensitivity studies
    python -m repro fig9              # ablation of the five optimizations
    python -m repro fig10a fig10b     # economics + budgeted accuracy
    python -m repro cases             # Section IV-E case studies
    python -m repro all               # everything
    python -m repro table2 --quick    # tiny smoke-scale run
    python -m repro obs report        # instrumented run + phase breakdown
    python -m repro obs history       # trend report over the run store
    python -m repro pipeline demo     # continual-training loop on a stream
    python -m repro dist demo         # row-sharded data-parallel training
    python -m repro stream demo       # out-of-core training past device memory
    python -m repro runs submit       # record a BENCH_*.json into the store
    python -m repro runs diff -2 -1   # per-metric deltas between two runs
    python -m repro runs gate         # rolling-baseline perf regression gate

``gpu-gbdt`` (the installed console script) is an alias for ``python -m
repro``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from .bench import experiments

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS: Dict[str, Callable[[bool], object]] = {
    "table2": lambda quick: experiments.run_table2(quick),
    "fig8a": lambda quick: experiments.run_fig8a(quick),
    "fig8b": lambda quick: experiments.run_fig8b(quick),
    "fig9": lambda quick: experiments.run_fig9(quick),
    "fig10a": lambda quick: experiments.run_fig10a(quick),
    "fig10b": lambda quick: experiments.run_fig10b(quick),
    "cases": lambda quick: experiments.run_case_studies(quick),
    "devices": lambda quick: experiments.run_device_sweep(quick),
    "approx": lambda quick: experiments.run_exact_vs_approx(quick),
    "crossover": lambda quick: experiments.run_crossover(quick),
    "multigpu": lambda quick: experiments.run_multigpu_scaling(quick),
    "threads": lambda quick: experiments.run_thread_sweep(quick),
    "serve-bench": lambda quick: experiments.run_serving_bench(quick),
    "pipeline-bench": lambda quick: experiments.run_pipeline_bench(quick),
}


def _pipeline_main(argv: list[str]) -> int:
    """``gpu-gbdt pipeline demo``: run the continual-training loop, with
    optional fault-injected checkpoint kill (exit 3) and resume."""
    parser = argparse.ArgumentParser(
        prog="gpu-gbdt pipeline",
        description="Continual-training pipeline: warm-start refreshes, "
        "crash-safe checkpoints, drift-triggered retrains with rollback.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser(
        "demo", help="drive the whole loop on a simulated drifting stream"
    )
    demo.add_argument(
        "--quick", action="store_true", help="smoke-scale rows and tree count"
    )
    demo.add_argument(
        "--ckpt-dir",
        metavar="DIR",
        default=None,
        help="checkpoint directory (a fresh temp dir when omitted)",
    )
    demo.add_argument(
        "--kill-at-round",
        type=int,
        metavar="K",
        default=None,
        help="simulate a hard kill during the round-K checkpoint write (exit 3)",
    )
    demo.add_argument(
        "--resume",
        action="store_true",
        help="resume base training from the newest valid checkpoint in --ckpt-dir",
    )
    args = parser.parse_args(argv)

    from .ioutil import SimulatedCrash
    from .pipeline.demo import run_pipeline_demo

    try:
        result = run_pipeline_demo(
            quick=args.quick,
            ckpt_dir=args.ckpt_dir,
            kill_at_round=args.kill_at_round,
            resume=args.resume,
        )
    except SimulatedCrash as crash:
        print(f"[{crash}]")
        return 3
    print(result.text)
    return 0


def _dist_main(argv: list[str]) -> int:
    """``gpu-gbdt dist demo``: distributed data-parallel training, with
    optional worker-kill crash-recovery drill (prints DIST_DIGEST for CI)."""
    parser = argparse.ArgumentParser(
        prog="gpu-gbdt dist",
        description="Distributed data-parallel GBDT: row shards, ring-allreduced "
        "histograms, fault injection with checkpoint recovery.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser(
        "demo", help="train across W workers; verify byte-identity and recovery"
    )
    demo.add_argument(
        "--quick", action="store_true", help="smoke-scale rows and tree count"
    )
    demo.add_argument("--workers", type=int, default=4, help="worker count (default 4)")
    demo.add_argument(
        "--backend",
        choices=("sim", "threaded"),
        default="sim",
        help="comms backend: modeled ring cost (sim) or real threads (threaded)",
    )
    demo.add_argument(
        "--trees", type=int, default=None, help="boosting rounds (default 8, quick 4)"
    )
    demo.add_argument(
        "--kill-worker",
        type=int,
        metavar="RANK",
        default=None,
        help="crash this rank mid-training and recover from checkpoint",
    )
    demo.add_argument(
        "--kill-round",
        type=int,
        metavar="K",
        default=None,
        help="round at which the kill fires (default: halfway)",
    )
    demo.add_argument(
        "--straggler",
        type=int,
        metavar="RANK",
        default=None,
        help="stall this rank at every round boundary",
    )
    demo.add_argument(
        "--straggler-delay",
        type=float,
        metavar="SECONDS",
        default=0.01,
        help="straggler stall per round (default 0.01s)",
    )
    demo.add_argument(
        "--ckpt-dir",
        metavar="DIR",
        default=None,
        help="checkpoint directory (a fresh temp dir when killing a worker)",
    )
    demo.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="export the merged per-rank Chrome trace (open at ui.perfetto.dev)",
    )
    args = parser.parse_args(argv)

    from .dist.demo import run_dist_demo

    result = run_dist_demo(
        quick=args.quick,
        workers=args.workers,
        backend=args.backend,
        trees=args.trees,
        kill_worker=args.kill_worker,
        kill_round=args.kill_round,
        straggler=args.straggler,
        straggler_delay_s=args.straggler_delay,
        ckpt_dir=args.ckpt_dir,
        trace_path=args.trace,
    )
    print(result.text)
    return 0 if result.matches_single else 1


def _stream_main(argv: list[str]) -> int:
    """``gpu-gbdt stream demo``: out-of-core training on a dataset ~10x the
    modeled device memory (prints STREAM_DIGEST / INMEM_DIGEST for CI)."""
    parser = argparse.ArgumentParser(
        prog="gpu-gbdt stream",
        description="Out-of-core training: spillable RLE column blocks, "
        "prefetch pipeline, byte-identical models under a host-cache budget.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser(
        "demo",
        help="train past the device-memory wall; verify byte-identity",
    )
    demo.add_argument(
        "--quick", action="store_true", help="smoke-scale rows and tree count"
    )
    demo.add_argument(
        "--trees", type=int, default=None, help="boosting rounds (default 6, quick 3)"
    )
    demo.add_argument(
        "--block-rows",
        type=int,
        default=None,
        help="rows per column block (default: rows/24)",
    )
    demo.add_argument(
        "--budget",
        type=int,
        metavar="BYTES",
        default=None,
        help="host block-cache budget in bytes (default 64 KiB, quick 16 KiB)",
    )
    demo.add_argument(
        "--depth", type=int, default=2, help="prefetch queue depth (default 2)"
    )
    demo.add_argument(
        "--spill-dir",
        metavar="DIR",
        default=None,
        help="block spill directory (a fresh temp dir when omitted)",
    )
    args = parser.parse_args(argv)

    from .stream.demo import run_stream_demo

    result = run_stream_demo(
        quick=args.quick,
        trees=args.trees,
        block_rows=args.block_rows,
        budget_bytes=args.budget,
        depth=args.depth,
        spill_dir=args.spill_dir,
    )
    print(result.text)
    return 0 if result.matches_inmem else 1


def _serve_main(argv: list[str]) -> int:
    """``gpu-gbdt serve demo``: multi-replica serving cluster under a burst
    storm with a mid-storm rolling deploy (prints CLUSTER_* lines for CI)."""
    parser = argparse.ArgumentParser(
        prog="gpu-gbdt serve",
        description="Serving cluster: async front door, admission control, "
        "replica lifecycle, closed-loop load generation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser(
        "demo", help="run a cluster, fire a burst storm, roll a deploy mid-storm"
    )
    demo.add_argument(
        "--quick", action="store_true", help="smoke-scale model and storm"
    )
    demo.add_argument(
        "--replicas", type=int, default=3, help="replica count (default 3)"
    )
    demo.add_argument(
        "--router",
        choices=("round-robin", "least-loaded", "hash"),
        default="least-loaded",
        help="routing policy (default least-loaded)",
    )
    demo.add_argument(
        "--seed", type=int, default=7, help="load-generator seed (default 7)"
    )
    demo.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="export the merged per-replica Chrome trace (ui.perfetto.dev)",
    )
    args = parser.parse_args(argv)

    from .serve.cluster.demo import run_serve_demo

    result = run_serve_demo(
        quick=args.quick,
        replicas=args.replicas,
        router=args.router,
        seed=args.seed,
        trace_path=args.trace,
    )
    print(result.text)
    return 0 if result.dropped == 0 else 1


def _obs_main(argv: list[str]) -> int:
    """``gpu-gbdt obs report``: run an instrumented training and print the
    wall-vs-modeled phase breakdown, optionally exporting trace/metrics."""
    parser = argparse.ArgumentParser(
        prog="gpu-gbdt obs",
        description="Observability tooling: trace an instrumented training run.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="train with tracing on and print the phase/metric breakdown"
    )
    report.add_argument(
        "--quick", action="store_true", help="smoke-scale rows and tree count"
    )
    report.add_argument("--dataset", default="covtype", help="dataset name (default covtype)")
    report.add_argument(
        "--trees", type=int, default=None, help="boosting rounds (default 20, quick 5)"
    )
    report.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="export the merged host+device Chrome trace (open at ui.perfetto.dev)",
    )
    report.add_argument(
        "--jsonl", metavar="FILE", default=None, help="export spans + metrics as JSONL"
    )
    report.add_argument(
        "--prom",
        metavar="FILE",
        default=None,
        help="export metrics in Prometheus text format",
    )
    history = sub.add_parser(
        "history", help="trend report over the benchmark run store"
    )
    history.add_argument(
        "--store", metavar="DIR", default=None, help="run-store root (default results/runs)"
    )
    history.add_argument(
        "--bench", action="append", default=None, help="bench name(s) (default: all)"
    )
    history.add_argument(
        "--window", type=int, default=20, help="runs shown per bench (default 20)"
    )
    history.add_argument(
        "--all", action="store_true", help="include non-directional metrics"
    )
    history.add_argument(
        "--html",
        metavar="FILE",
        default=None,
        help="also write a self-contained HTML report with sparklines",
    )
    args = parser.parse_args(argv)

    if args.command == "history":
        from pathlib import Path

        from .obs.history import build_history
        from .obs.runstore import RunStore

        store = RunStore(args.store)
        rep = build_history(
            store, args.bench, window=args.window, all_metrics=args.all
        )
        print(rep.text)
        if args.html:
            out = Path(args.html)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(rep.html(), encoding="utf-8")
            print(f"[html report -> {out}]")
        return 0

    from .obs.report import run_obs_report

    rep = run_obs_report(
        quick=args.quick,
        dataset=args.dataset,
        n_trees=args.trees,
        trace_path=args.trace,
        jsonl_path=args.jsonl,
        prom_path=args.prom,
    )
    print(rep.text)
    return 0


def _runs_main(argv: list[str]) -> int:
    """``gpu-gbdt runs {submit,list,diff,gate}``: the benchmark run store."""
    import json
    import os
    from pathlib import Path

    parser = argparse.ArgumentParser(
        prog="gpu-gbdt runs",
        description="Append-only benchmark run store: submit BENCH_*.json "
        "results, list/diff runs across commits, gate against a rolling baseline.",
    )
    parser.add_argument(
        "--store", metavar="DIR", default=None, help="run-store root (default results/runs)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_submit = sub.add_parser("submit", help="record a benchmark result file")
    p_submit.add_argument(
        "--bench", default="hotpath", help="bench name (default hotpath)"
    )
    p_submit.add_argument(
        "--file",
        metavar="JSON",
        default=None,
        help="result payload (default: BENCH_<bench>.json at the standard location)",
    )
    p_submit.add_argument("--note", default="", help="free-form annotation")

    p_list = sub.add_parser("list", help="list submitted runs")
    p_list.add_argument("--bench", default=None, help="bench name (default: all)")
    p_list.add_argument("-n", type=int, default=10, help="newest N runs (default 10)")

    p_diff = sub.add_parser("diff", help="per-metric deltas between two runs")
    p_diff.add_argument("old", nargs="?", default="-2", help="run id or index (default -2)")
    p_diff.add_argument("new", nargs="?", default="-1", help="run id or index (default -1)")
    p_diff.add_argument("--bench", default="hotpath", help="bench name (default hotpath)")
    p_diff.add_argument(
        "--all", action="store_true", help="show unchanged-direction metrics too"
    )

    p_gate = sub.add_parser(
        "gate", help="regression-check the newest run vs the rolling baseline"
    )
    p_gate.add_argument("--bench", default="hotpath", help="bench name (default hotpath)")
    p_gate.add_argument("--window", type=int, default=5, help="baseline run count")
    p_gate.add_argument(
        "--rel-tol", type=float, default=0.25, help="relative tolerance (default 0.25)"
    )
    p_gate.add_argument(
        "--abs-tol", type=float, default=1e-4, help="absolute tolerance floor"
    )
    args = parser.parse_args(argv)

    from .obs.runstore import RunStore

    store = RunStore(args.store)

    if args.command == "submit":
        if args.file is not None:
            path = Path(args.file)
        else:
            from .bench.output import bench_output_path

            path = bench_output_path(args.bench)
        if not path.is_file():
            print(f"ERROR: no result file at {path} -- run the bench first")
            return 2
        payload = json.loads(path.read_text(encoding="utf-8"))
        rec = store.submit(args.bench, payload, note=args.note)
        print(f"[submitted {args.bench} run {rec.run_id} -> {rec.path}]")
        return 0

    if args.command == "list":
        benches = [args.bench] if args.bench else store.benches()
        if not benches:
            print("run store is empty")
            return 0
        for bench in benches:
            runs = store.latest(bench, args.n)
            print(f"bench: {bench} ({len(store.runs(bench))} total)")
            for r in runs:
                import datetime

                when = datetime.datetime.fromtimestamp(
                    r.timestamp, datetime.timezone.utc
                ).strftime("%Y-%m-%d %H:%M")
                note = f"  # {r.note}" if r.note else ""
                print(f"  {r.run_id}  {when}  commit {r.short_commit}{note}")
        return 0

    if args.command == "diff":
        old = store.get(args.bench, args.old)
        new = store.get(args.bench, args.new)
        deltas = store.diff(old, new)
        print(f"diff[{args.bench}]: {old.run_id} -> {new.run_id}")
        shown = 0
        for d in deltas:
            if d.direction is None and not args.all:
                continue
            print(f"  {d}")
            shown += 1
        if not shown:
            print("  (no directional metrics moved)")
        return 0

    # gate
    if os.environ.get("REPRO_SKIP_PERF") == "1":
        print(f"gate[{args.bench}]: SKIPPED (REPRO_SKIP_PERF=1)")
        return 0
    report = store.gate(
        args.bench,
        window=args.window,
        rel_tol=args.rel_tol,
        abs_tol=args.abs_tol,
    )
    print(report.text)
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "obs":
        return _obs_main(argv[1:])
    if argv and argv[0] == "pipeline":
        return _pipeline_main(argv[1:])
    if argv and argv[0] == "dist":
        return _dist_main(argv[1:])
    if argv and argv[0] == "runs":
        return _runs_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "stream":
        return _stream_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="gpu-gbdt",
        description="Regenerate the tables and figures of 'Efficient Gradient "
        "Boosted Decision Tree Training on GPUs' (IPDPS 2018) on the simulated substrate.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which artifacts to regenerate",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smoke-scale datasets and tree counts"
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also append the regenerated tables to this file",
    )
    parser.add_argument(
        "--save",
        metavar="JSON",
        default=None,
        help="save the numeric results as a JSON document (regression tracking)",
    )
    parser.add_argument(
        "--compare",
        metavar="JSON",
        default=None,
        help="compare the numeric results against a previously saved document",
    )
    parser.add_argument(
        "--rtol",
        type=float,
        default=0.05,
        help="relative drift tolerance for --compare (default 0.05)",
    )
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    seen = []
    chunks = []
    results = {}
    for name in names:
        if name in seen:
            continue
        seen.append(name)
        t0 = time.time()
        result = EXPERIMENTS[name](args.quick)
        dt = time.time() - t0
        print()
        print(result.text)
        print(f"[{name} regenerated in {dt:.1f}s wall]")
        chunks.append(result.text)
        results[name] = result
    if args.out:
        from pathlib import Path

        with Path(args.out).open("a", encoding="utf-8") as fh:
            fh.write("\n\n".join(chunks) + "\n")
        print(f"[appended {len(chunks)} experiment(s) to {args.out}]")
    if args.save:
        from .bench.regress import save_results

        save_results(args.save, results, meta={"quick": args.quick})
        print(f"[saved numeric results to {args.save}]")
    if args.compare:
        from .bench.regress import compare_results, load_results, to_payload

        old_doc = load_results(args.compare)
        new_doc = {"experiments": {k: to_payload(v) for k, v in results.items()}}
        drifts = compare_results(old_doc, new_doc, rtol=args.rtol)
        if drifts:
            print(f"[{len(drifts)} drift(s) vs {args.compare}]")
            for d in drifts:
                print(f"  {d}")
            return 1
        print(f"[no drift beyond rtol={args.rtol} vs {args.compare}]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    sys.exit(main())
