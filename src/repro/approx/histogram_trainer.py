"""Histogram-based (approximate) GBDT training on the simulated device.

The paper's Section V positions GPU-GBDT against approximate trainers:
XGBoost's quantile proposals [3], [7] and LightGBM, which "only supports
finding the best split points approximately".  This module implements that
family on the same substrate so the exact-vs-approximate trade-off is
measurable inside the reproduction:

* attribute values are quantized once into at most ``max_bins`` quantile
  bins (:mod:`repro.approx.quantile`);
* each level accumulates per-(node, attribute, bin) gradient histograms
  with one atomic-scatter pass over the present entries -- **no sorted-list
  partitioning and no per-entry prefix sums**, the structural reason
  histogram methods are cheap;
* candidate splits are the bin boundaries; missing values take the learned
  default direction exactly as in the exact trainer.

When every attribute has at most ``max_bins`` distinct values the candidate
set coincides with the exact trainer's, so the learned *partitions* (tree
structure, gains, instance counts, training predictions) match exactly --
only thresholds sit at bin edges instead of value midpoints.  On truly
continuous data the trees genuinely differ: that is the approximation.

Histogram statistics accumulate in **fixed-point int64**
(:mod:`repro.approx.fixedpoint`): each round's gradients are quantized once
onto a power-of-two grid chosen from their global magnitudes, and every
per-(node, attribute, bin) sum is an exact integer.  Resolution (~2**-40)
sits far below the float32 gain quantization that decides splits, so trees
are indistinguishable from full-precision training -- and because integer
sums are order-independent, the row-sharded data-parallel trainer
(:mod:`repro.dist`) that ring-allreduces the same tables is **byte-identical**
to this trainer for any worker count.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.booster_model import GBDTModel
from ..core.params import GBDTParams
from ..core.sampling import GossSample, goss_sample
from ..core.smartgd import GradientComputer
from ..core.tree import DecisionTree
from ..core.workspace import WorkspaceArena, arena_enabled_default
from ..data.matrix import CSRMatrix
from ..data.sorted_columns import build_sorted_columns
from ..gpusim.kernel import GpuDevice
from ..losses import goss_weighted_gradients
from ..obs import get_registry, span
from .fixedpoint import choose_shift, quantize_gradients
from .histops import (
    accumulate_histograms,
    leaf_values,
    plan_sibling_builds,
    scan_histograms,
    subtract_child_histogram,
    subtract_enabled_default,
)
from .quantile import BinSpec, bin_column_values, build_bins

__all__ = ["HistogramGBDTTrainer"]


class HistogramGBDTTrainer:
    """LightGBM-style histogram trainer (the paper's "approximate" rival).

    Parameters mirror :class:`~repro.core.trainer.GPUGBDTTrainer`; the extra
    ``max_bins`` knob bounds the per-attribute quantile resolution.

    ``use_subtraction`` enables the sibling-subtraction trick (build only
    the smaller child's histogram per sibling pair, derive the other as
    ``parent - built``; see :mod:`repro.approx.histops`).  It is exact in
    fixed point, so models are **byte-identical** with the knob on or off;
    ``REPRO_SUBTRACT=0`` flips the default, mirroring ``REPRO_ARENA``.
    ``use_arena`` backs the per-level histogram tables (and gradient
    buffers) with a reusable :class:`~repro.core.workspace.WorkspaceArena`.

    GOSS (``params.goss_a < 1``) is supported by the depthwise policy of
    this trainer only: each round keeps the top-``a`` fraction of rows by
    |gradient| plus an amplified ``b``-sample of the rest (see
    :func:`repro.core.sampling.goss_sample`).  Sampled training is not
    byte-identical to full-data training -- it is pinned by a differential
    accuracy gate instead (``tests/test_goss.py``).
    """

    GROW_POLICIES = ("depthwise", "lossguide")

    def __init__(
        self,
        params: GBDTParams | None = None,
        device: GpuDevice | None = None,
        *,
        max_bins: int = 64,
        row_scale: float = 1.0,
        grow_policy: str = "depthwise",
        max_leaves: int = 0,
        use_arena: bool | None = None,
        use_subtraction: bool | None = None,
    ) -> None:
        if max_bins < 2:
            raise ValueError("max_bins must be >= 2")
        if grow_policy not in self.GROW_POLICIES:
            raise ValueError(f"grow_policy must be one of {self.GROW_POLICIES}")
        if max_leaves < 0:
            raise ValueError("max_leaves must be >= 0 (0 = unbounded)")
        self.params = params if params is not None else GBDTParams()
        self.device = device if device is not None else GpuDevice()
        self.max_bins = int(max_bins)
        self.row_scale = float(row_scale)
        self.grow_policy = grow_policy
        self.max_leaves = int(max_leaves)
        self.use_arena = (
            arena_enabled_default() if use_arena is None else bool(use_arena)
        )
        self.arena = WorkspaceArena(enabled=self.use_arena)
        self.use_subtraction = (
            subtract_enabled_default()
            if use_subtraction is None
            else bool(use_subtraction)
        )
        self.bins_: BinSpec | None = None
        self._resume: List[DecisionTree] = []
        self._round_goss: GossSample | None = None

    # ------------------------------------------------------------------- fit
    def fit(
        self, X: CSRMatrix, y: np.ndarray, *, init_model: GBDTModel | None = None
    ) -> GBDTModel:
        """Quantize once, then train ``params.n_trees`` histogram trees.

        With ``init_model`` boosting resumes from the given ensemble:
        margins are replayed in boosting order and the per-round GOSS
        sampling index continues from ``init_model.n_trees``, so resumed
        training is bit-identical to uninterrupted training (sampled or
        not) -- the warm-start replay tests assert byte-equal models.
        """
        p = self.params
        device = self.device
        y = np.asarray(y, dtype=np.float64)
        n, d = X.shape
        if y.size != n:
            raise ValueError("y size mismatch")
        if n < 2:
            raise ValueError("need at least 2 training instances")
        if p.goss_a < 1.0 and self.grow_policy != "depthwise":
            raise ValueError("GOSS requires the depthwise grow policy")
        if init_model is not None:
            if init_model.base_score != p.loss_fn.base_score(y):
                raise ValueError(
                    "init_model.base_score does not match the loss base "
                    "score; resuming would shift every margin"
                )
            if init_model.params.learning_rate != p.learning_rate:
                raise ValueError(
                    "init_model was trained with a different learning_rate; "
                    "resumed rounds would not match uninterrupted training"
                )
            self._resume = list(init_model.trees)
        else:
            self._resume = []

        base = self._base_score(y)
        self._nrows = self._global_rows(n)

        with device.phase("setup"):
            spec, ent_inst, ent_gbin, ent_attr, bin_offset, col_lens = (
                self._setup_entries(X)
            )
            self.bins_ = spec

        gc = GradientComputer(
            device, p.loss_fn, y, use_smartgd=p.use_smartgd, row_scale=self.row_scale,
            X=X, workspace=self.arena,
        )
        # base may be globally computed (distributed); overwrite the local one
        gc.yhat[:] = base
        self._warm_start(gc)

        trees: List[DecisionTree] = list(self._initial_trees())
        for round_ in range(len(trees), p.n_trees):
            self._round_start(round_)
            with device.phase("gradients"):
                g, h = gc.compute()
                # GOSS draws on the *raw* gradients, keyed by the global
                # round index, so warm-start resume replays the identical
                # sample; reweighting happens before the fixed-point shift
                # is chosen so amplified magnitudes stay representable
                goss = goss_sample(p.seed, round_, g, p.goss_a, p.goss_b)
                if goss is not None:
                    goss_weighted_gradients(
                        g, h, goss.inst_mask, goss.amplified, goss.factor
                    )
                    get_registry().counter(
                        "goss_rows_kept_total",
                        "rows participating in GOSS-sampled boosting rounds",
                    ).inc(goss.n_kept)
                self._round_goss = goss
            shift = self._round_shift(g, h)
            gq, hq = quantize_gradients(g, h, shift)
            grow = (
                self._grow_tree if self.grow_policy == "depthwise" else self._grow_tree_lossguide
            )
            tree = grow(
                X, gq, hq, shift, ent_inst, ent_gbin, ent_attr, bin_offset, spec, col_lens, gc
            )
            if goss is not None:
                # sampled-out rows never reached a leaf; route them by
                # traversal so yhat (hence the next round's gradients)
                # covers every instance
                gc.apply_tree_to(tree, np.flatnonzero(~goss.inst_mask))
            gc.on_tree_finished(tree)
            trees.append(tree)
            self._round_end(round_, trees)
        self._round_goss = None
        self.arena.publish_metrics()
        return GBDTModel(trees=trees, params=p, base_score=base)

    # ------------------------------------------------------------- tree grow
    def _grow_tree(
        self,
        X: CSRMatrix,
        gq: np.ndarray,
        hq: np.ndarray,
        shift: int,
        ent_inst: np.ndarray,
        ent_gbin: np.ndarray,
        ent_attr: np.ndarray,
        bin_offset: np.ndarray,
        spec: BinSpec,
        col_lens: np.ndarray,
        gc: GradientComputer,
    ) -> DecisionTree:
        p = self.params
        device = self.device
        n, d = X.shape
        total_bins = int(bin_offset[-1])

        goss = self._round_goss
        if goss is None:
            inst2local = np.zeros(n, dtype=np.int64)
            root_gq, root_hq, root_n = self._root_sums(gq, hq, n)
        else:
            # excluded rows start settled (-1): they touch no histogram, no
            # node count, and receive their leaf value by traversal later.
            # Their (g, h) were zeroed, so full-array sums stay correct.
            inst2local = np.where(goss.inst_mask, 0, -1).astype(np.int64)
            root_gq, root_hq, root_n = self._root_sums(gq, hq, goss.n_kept)
        tree = DecisionTree()
        tree.add_root(root_n)
        node_tree_ids = np.array([0], dtype=np.int64)
        node_gq = np.array([root_gq], dtype=np.int64)
        node_hq = np.array([root_hq], dtype=np.int64)
        node_n = np.array([root_n], dtype=np.int64)
        # previous level's full tables + which of its locals split: the
        # sibling-subtraction parents for the next level's _find_splits
        parent_ctx = None

        for _depth in range(p.max_depth):
            n_active = node_tree_ids.size

            with device.phase("find_split"), span(
                "find_split", depth=_depth, nodes=n_active
            ):
                (
                    best_gain, best_attr, best_cut, best_dir, best_lgq, best_lhq, best_ln
                ), tables = self._find_splits(
                    gq, hq, shift, ent_inst, ent_gbin, inst2local, n_active, total_bins,
                    bin_offset, node_gq, node_hq, node_n, col_lens,
                    parent=parent_ctx, depth=_depth,
                )

            split_mask = (best_attr >= 0) & (best_gain > p.gamma)

            with device.phase("split_node"):
                leaf_locals = np.flatnonzero(~split_mask)
                if leaf_locals.size:
                    values = np.zeros(n_active)
                    values[leaf_locals] = leaf_values(
                        node_gq[leaf_locals], node_hq[leaf_locals], shift,
                        p.learning_rate, p.lambda_,
                    )
                    for loc in leaf_locals:
                        tree.set_leaf(int(node_tree_ids[loc]), float(values[loc]))
                    is_leaf = np.zeros(n_active, dtype=bool)
                    is_leaf[leaf_locals] = True
                    safe = np.maximum(inst2local, 0)
                    settled = (inst2local >= 0) & is_leaf[safe]
                    ids = np.flatnonzero(settled)
                    gc.on_leaves(ids, values[inst2local[ids]])
                    inst2local[ids] = -1
                if not split_mask.any():
                    break

                split_locals = np.flatnonzero(split_mask)
                k = split_locals.size
                new_tree_ids = np.empty(2 * k, dtype=np.int64)
                thresholds = np.empty(k)
                for j, loc in enumerate(split_locals):
                    a = int(best_attr[loc])
                    cut = int(best_cut[loc])
                    if cut == spec.n_bins(a):
                        # present|missing boundary: every present value left
                        thr = -np.finfo(np.float64).max
                    else:
                        thr = float(spec.edges[a][cut - 1])
                    thresholds[j] = thr
                    lid, rid = tree.split_node(
                        int(node_tree_ids[loc]), a, thr, bool(best_dir[loc]),
                        float(best_gain[loc]),
                        n_left=int(best_ln[loc]),
                        n_right=int(node_n[loc] - best_ln[loc]),
                    )
                    new_tree_ids[2 * j] = lid
                    new_tree_ids[2 * j + 1] = rid

                # ---- route instances by bin index --------------------------
                new_local_of = np.full(n_active, -1, dtype=np.int64)
                new_local_of[split_locals] = 2 * np.arange(k, dtype=np.int64)
                side_inst = np.full(n, -1, dtype=np.int8)
                safe = np.maximum(inst2local, 0)
                active = (inst2local >= 0) & split_mask[safe]
                default_side = np.where(best_dir, 0, 1).astype(np.int8)
                side_inst[active] = default_side[inst2local[active]]

                # entries of the chosen attributes decide present instances
                cut_of_node = np.full(n_active, -1, dtype=np.int64)
                attr_of_node = np.full(n_active, -2, dtype=np.int64)
                cut_of_node[split_locals] = best_cut[split_locals]
                attr_of_node[split_locals] = best_attr[split_locals]
                self._route_by_entries(
                    ent_inst, ent_gbin, ent_attr, inst2local, attr_of_node,
                    cut_of_node, bin_offset, side_inst, n,
                )
                inst2local = np.where(active, new_local_of[safe] + side_inst, -1)

                lgq = best_lgq[split_locals]
                lhq = best_lhq[split_locals]
                ln = best_ln[split_locals]
                pgq, phq, pn = node_gq[split_locals], node_hq[split_locals], node_n[split_locals]
                node_gq = np.empty(2 * k, dtype=np.int64)
                node_hq = np.empty(2 * k, dtype=np.int64)
                node_n = np.empty(2 * k, dtype=np.int64)
                node_gq[0::2], node_gq[1::2] = lgq, pgq - lgq
                node_hq[0::2], node_hq[1::2] = lhq, phq - lhq
                node_n[0::2], node_n[1::2] = ln, pn - ln
                node_tree_ids = new_tree_ids
                # next level's locals (2j, 2j+1) are the children of this
                # level's split_locals[j]; its tables are their parents
                parent_ctx = (
                    (*tables, split_locals) if self.use_subtraction else None
                )

        if node_tree_ids.size and (inst2local >= 0).any():
            values = leaf_values(node_gq, node_hq, shift, p.learning_rate, p.lambda_)
            for loc in range(node_tree_ids.size):
                tree.set_leaf(int(node_tree_ids[loc]), float(values[loc]))
            ids = np.flatnonzero(inst2local >= 0)
            gc.on_leaves(ids, values[inst2local[ids]])
            inst2local[:] = -1
        return tree

    # ---------------------------------------------------------- split search
    def _find_splits(
        self,
        gq, hq, shift, ent_inst, ent_gbin, inst2local, n_active, total_bins,
        bin_offset, node_gq, node_hq, node_n, col_lens,
        parent=None, depth=0,
    ):
        """Histogram accumulation + boundary enumeration for every node.

        Thin wrapper over the shared kernels of :mod:`repro.approx.histops`
        (also driven, with a ring allreduce in between, by
        :mod:`repro.dist.trainer`) plus this device's cost charges.

        ``parent`` carries the previous level's *global* tables plus the
        locals that split (``(p_gq, p_hq, p_c, split_locals)``): when
        subtraction is on, only the smaller child of each sibling pair is
        accumulated and reduced -- roughly halving both the scatter work
        and, distributed, the allreduce payload -- and the sibling is
        derived exactly as ``parent - built`` into arena tables ping-ponged
        by level parity.  Returns ``(scan_results, (hist_gq, hist_hq,
        hist_c))`` with the tables always full ``(n_active, total_bins)``.
        """
        device = self.device
        p = self.params

        subtracting = (
            self.use_subtraction and parent is not None and n_active % 2 == 0
        )
        if subtracting:
            # node_n is global (post-reduce), so every dist rank plans the
            # same builds; instances of to-be-derived nodes are masked out
            build_locals, derive_locals = plan_sibling_builds(node_n)
            build_of = np.full(n_active, -1, dtype=np.int64)
            build_of[build_locals] = np.arange(build_locals.size, dtype=np.int64)
            inst2build = np.where(
                inst2local >= 0, build_of[np.maximum(inst2local, 0)], -1
            )
            hist_gq, hist_hq, hist_c = self._accumulate_entries(
                gq, hq, ent_inst, ent_gbin, inst2build,
                build_locals.size, total_bins,
            )
        else:
            hist_gq, hist_hq, hist_c = self._accumulate_entries(
                gq, hq, ent_inst, ent_gbin, inst2local, n_active, total_bins
            )
        hist_gq, hist_hq, hist_c = self._reduce_histograms(hist_gq, hist_hq, hist_c)
        if subtracting:
            p_gq, p_hq, p_c, parent_locals = parent
            with span(
                "hist.subtract", depth=depth, derived=int(derive_locals.size)
            ):
                parity = depth & 1
                t_gq = self.arena.buf2d(f"hist/gq/{parity}", n_active, total_bins, np.int64)
                t_hq = self.arena.buf2d(f"hist/hq/{parity}", n_active, total_bins, np.int64)
                t_c = self.arena.buf2d(f"hist/c/{parity}", n_active, total_bins, np.int64)
                t_gq[build_locals] = hist_gq
                t_hq[build_locals] = hist_hq
                t_c[build_locals] = hist_c
                # pair j's parent row: both operands are global tables, so
                # the derived sibling is the global histogram, exactly
                sib = subtract_child_histogram(
                    p_gq[parent_locals], p_hq[parent_locals], p_c[parent_locals],
                    hist_gq, hist_hq, hist_c,
                )
                t_gq[derive_locals], t_hq[derive_locals], t_c[derive_locals] = sib
                device.launch(
                    "subtract_sibling_histograms",
                    elements=derive_locals.size * total_bins,
                    flops_per_element=3.0,
                    coalesced_bytes=derive_locals.size * total_bins * 72,
                )
                get_registry().counter(
                    "subtract_skipped_total",
                    "sibling histograms derived by subtraction instead of built",
                ).inc(int(derive_locals.size))
            hist_gq, hist_hq, hist_c = t_gq, t_hq, t_c
        device.launch(
            "scan_histograms_for_best_split",
            elements=n_active * total_bins,
            flops_per_element=30.0,
            coalesced_bytes=n_active * total_bins * 32,
        )
        return scan_histograms(
            hist_gq, hist_hq, hist_c, node_gq, node_hq, node_n,
            bin_offset, shift, p.lambda_,
        ), (hist_gq, hist_hq, hist_c)

    # -------------------------------------------------- distribution hooks
    # Every quantity whose value must be *global* for the grown trees to be
    # well-defined flows through one of these methods.  The single-process
    # trainer computes them locally; the row-sharded worker trainer of
    # :mod:`repro.dist` overrides them with collectives.  Because the
    # surrounding grow loop is shared (not duplicated), W-worker training is
    # byte-identical to single-process training by construction: the hooks
    # return the same values (exact integer/max reductions), and everything
    # downstream is the same code.

    def _setup_entries(self, X: CSRMatrix):
        """Quantize the training matrix into the per-entry stream.

        Returns ``(spec, ent_inst, ent_gbin, ent_attr, bin_offset,
        col_lens)``.  The in-memory trainer materializes the full
        ``(instance id, global bin, attribute)`` arrays on the device; the
        out-of-core trainer (:mod:`repro.stream.trainer`) overrides this to
        build spillable row-range blocks instead and returns ``None`` entry
        handles, with :meth:`_accumulate_entries` and
        :meth:`_route_by_entries` iterating its block store.
        """
        device = self.device
        n, d = X.shape
        csc = X.to_csc()
        cols = build_sorted_columns(csc, device)
        spec = self._bin_spec(cols)
        ent_bin = bin_column_values(spec, cols)
        ent_inst = cols.inst
        ent_attr = np.repeat(
            np.arange(d, dtype=np.int64), np.diff(cols.col_offsets)
        )
        device.launch(
            "quantize_to_bins",
            elements=X.nnz,
            flops_per_element=np.log2(max(self.max_bins, 2)),
            coalesced_bytes=X.nnz * (8 + 4),
        )
        # device state: per-entry (instance id, global bin id) -- the
        # quantized matrix replaces the sorted value lists entirely
        bin_offset = np.zeros(d + 1, dtype=np.int64)
        np.cumsum([spec.n_bins(j) for j in range(d)], out=bin_offset[1:])
        ent_gbin = bin_offset[ent_attr] + ent_bin
        total_bins = int(bin_offset[-1])
        device.transfer("upload_quantized_matrix", X.nnz * 8 + total_bins * 8)
        mem = device.memory
        nnz_full = X.nnz * device.work_scale
        n_full = n * self.row_scale
        mem.alloc("quantized_entries", nnz_full * 8)
        mem.alloc("gradients_gh", n_full * 8)
        mem.alloc("predictions", n_full * 4)
        mem.alloc("instance_to_node", n_full * 4)
        # two resident level-table generations (the arena's parity
        # ping-pong): the previous level's tables stay live as the
        # subtraction parents (sibling = parent - built child, see
        # _find_splits) while the current level's are built; bins scale
        # with the full-scale dimensionality
        mem.alloc(
            "level_histograms",
            total_bins * device.seg_scale * 4 * 16,
        )
        # per-attribute present counts for missing-mass bookkeeping
        col_lens = np.diff(cols.col_offsets)
        return spec, ent_inst, ent_gbin, ent_attr, bin_offset, col_lens

    def _accumulate_entries(
        self, gq, hq, ent_inst, ent_gbin, inst2x, n_rows, total_bins
    ):
        """(node, global bin) tables from this trainer's entry stream.

        One scatter-add pass over the in-memory entry arrays; the streaming
        trainer overrides this to accumulate block by block (int64 sums are
        partition-order-independent, so the tables -- and therefore the
        trees -- are byte-identical for any blocking).
        """
        hist_gq, hist_hq, hist_c, n_live = accumulate_histograms(
            gq, hq, ent_inst, ent_gbin, inst2x, n_rows, total_bins
        )
        self.device.launch(
            "accumulate_histograms",
            elements=n_live,
            flops_per_element=3.0,
            coalesced_bytes=n_live * 12,
            irregular_bytes=n_live * 24,  # atomic adds into node tables
        )
        return hist_gq, hist_hq, hist_c

    def _route_by_entries(
        self, ent_inst, ent_gbin, ent_attr, inst2local, attr_of_node,
        cut_of_node, bin_offset, side_inst, n,
    ):
        """Decide sides for present instances from the entry stream.

        Entries of each splitting node's chosen attribute overwrite the
        missing-value default in ``side_inst`` (0 = left, 1 = right).  Each
        instance owns at most one entry per attribute, so the writes are
        disjoint and any chunking of the stream routes identically -- the
        streaming trainer overrides this with a per-block loop.
        """
        ent_node = np.where(ent_inst >= 0, inst2local[ent_inst], -1)
        ent_node_safe = np.maximum(ent_node, 0)
        sel = (ent_node >= 0) & (ent_attr == attr_of_node[ent_node_safe])
        local_bin = ent_gbin[sel] - bin_offset[ent_attr[sel]]
        goes_left = local_bin < cut_of_node[ent_node[sel]]
        side_inst[ent_inst[sel]] = np.where(goes_left, 0, 1)
        self.device.launch(
            "route_instances_by_bin",
            elements=n * self.row_scale,
            flops_per_element=2.0,
            coalesced_bytes=n * self.row_scale * 9,
            scale=False,
        )

    def _base_score(self, y: np.ndarray) -> float:
        """Model base score (global mean/odds of the full training set)."""
        return self.params.loss_fn.base_score(y)

    def _global_rows(self, n: int) -> int:
        """Total training rows across all shards."""
        return n

    def _bin_spec(self, cols) -> BinSpec:
        """Global quantile cuts (sketch allgather + merge when sharded)."""
        return build_bins(cols, self.max_bins)

    def _round_shift(self, g: np.ndarray, h: np.ndarray) -> int:
        """Fixed-point shift from the *global* gradient extrema."""
        return choose_shift(
            float(np.max(np.abs(g))), float(np.max(np.abs(h))), self._nrows
        )

    def _root_sums(self, gq: np.ndarray, hq: np.ndarray, n: int):
        """Global root statistics ``(sum gq, sum hq, rows)``."""
        return int(gq.sum()), int(hq.sum()), n

    def _reduce_histograms(self, hist_gq, hist_hq, hist_c):
        """Combine per-shard histogram tables (ring allreduce when sharded)."""
        return hist_gq, hist_hq, hist_c

    def _initial_trees(self) -> List[DecisionTree]:
        """Ensemble to resume from (checkpoint recovery when sharded)."""
        return list(self._resume)

    def _warm_start(self, gc: GradientComputer) -> None:
        """Seed predictions with :meth:`_initial_trees` margins."""
        if self._resume:
            gc.warm_start(self._resume)

    def _round_start(self, round_: int) -> None:
        """Per-round synchronization / fault-injection point."""

    def _round_end(self, round_: int, trees: List[DecisionTree]) -> None:
        """Post-round bookkeeping (periodic checkpointing when sharded)."""

    # ------------------------------------------------------- lossguide grow
    @staticmethod
    def _threshold(spec: BinSpec, a: int, cut: int) -> float:
        """Split threshold for 'left = bins [0, cut)' of attribute ``a``."""
        if cut == spec.n_bins(a):
            # present | missing boundary: every present value goes left
            return -np.finfo(np.float64).max
        return float(spec.edges[a][cut - 1])

    def _grow_tree_lossguide(
        self,
        X: CSRMatrix,
        gq: np.ndarray,
        hq: np.ndarray,
        shift: int,
        ent_inst: np.ndarray,
        ent_gbin: np.ndarray,
        ent_attr: np.ndarray,
        bin_offset: np.ndarray,
        spec: BinSpec,
        col_lens: np.ndarray,
        gc: GradientComputer,
    ) -> DecisionTree:
        """Leaf-wise (best-first) growth: always split the leaf with the
        largest gain next, LightGBM's signature strategy.

        Bounded by ``max_leaves`` (0 = unbounded) *and* ``params.max_depth``.
        When ``max_leaves`` does not bind, per-leaf split decisions are
        independent of the split order, so the grown partition equals the
        depthwise one (tested).
        """
        import heapq

        p = self.params
        device = self.device
        n, d = X.shape
        total_bins = int(bin_offset[-1])

        root_gq, root_hq, root_n = self._root_sums(gq, hq, n)
        tree = DecisionTree()
        tree.add_root(root_n)
        inst2node = np.zeros(n, dtype=np.int64)  # tree node id per instance
        node_stats = {0: (root_gq, root_hq, root_n)}

        def candidate(node_id: int):
            """Best split of one leaf, or None."""
            gn, hn, nn = node_stats[node_id]
            local = np.where(inst2node == node_id, 0, -1).astype(np.int64)
            with device.phase("find_split"):
                # one node per call, so there is no sibling pair to subtract
                # from -- lossguide growth always builds its histograms
                (gain, attr, cut, dirs, lgq, lhq, ln), _ = self._find_splits(
                    gq, hq, shift, ent_inst, ent_gbin, local, 1, total_bins,
                    bin_offset, np.array([gn], dtype=np.int64),
                    np.array([hn], dtype=np.int64),
                    np.array([nn], dtype=np.int64), col_lens,
                )
            if attr[0] < 0 or not (gain[0] > p.gamma):
                return None
            return {
                "gain": float(gain[0]), "attr": int(attr[0]), "cut": int(cut[0]),
                "dir": bool(dirs[0]), "lgq": int(lgq[0]), "lhq": int(lhq[0]),
                "ln": int(ln[0]),
            }

        heap: list = []
        counter = 0
        root_cand = candidate(0) if p.max_depth >= 1 else None
        if root_cand is not None:
            heapq.heappush(heap, (-root_cand["gain"], counter, 0, root_cand))
            counter += 1
        n_leaves = 1

        while heap and (self.max_leaves == 0 or n_leaves < self.max_leaves):
            _, _, nid, rec = heapq.heappop(heap)
            gn, hn, nn = node_stats[nid]
            thr = self._threshold(spec, rec["attr"], rec["cut"])
            lid, rid = tree.split_node(
                nid, rec["attr"], thr, rec["dir"], rec["gain"],
                n_left=rec["ln"], n_right=nn - rec["ln"],
            )
            n_leaves += 1

            # route this leaf's instances by bin index
            members = inst2node == nid
            side = np.where(rec["dir"], lid, rid)  # default for missing
            inst2node[members] = side
            sel = members[ent_inst] & (ent_attr == rec["attr"])
            local_bin = ent_gbin[sel] - bin_offset[rec["attr"]]
            goes_left = local_bin < rec["cut"]
            inst2node[ent_inst[sel]] = np.where(goes_left, lid, rid)
            device.launch(
                "route_leaf_by_bin",
                elements=nn * self.row_scale,
                flops_per_element=2.0,
                coalesced_bytes=nn * self.row_scale * 9,
                scale=False,
            )

            node_stats[lid] = (rec["lgq"], rec["lhq"], rec["ln"])
            node_stats[rid] = (gn - rec["lgq"], hn - rec["lhq"], nn - rec["ln"])
            for child in (lid, rid):
                if tree.depth[child] < p.max_depth:
                    cand = candidate(child)
                    if cand is not None:
                        heapq.heappush(heap, (-cand["gain"], counter, child, cand))
                        counter += 1

        # finalize every remaining leaf and report to SmartGD once
        value_of_node = np.zeros(tree.n_nodes)
        for nid in range(tree.n_nodes):
            if tree.is_leaf(nid):
                gn, hn, _ = node_stats[nid]
                value = float(
                    leaf_values(
                        np.array([gn], dtype=np.int64),
                        np.array([hn], dtype=np.int64),
                        shift, p.learning_rate, p.lambda_,
                    )[0]
                )
                tree.set_leaf(nid, value)
                value_of_node[nid] = value
        with device.phase("split_node"):
            gc.on_leaves(np.arange(n), value_of_node[inst2node])
        return tree
