"""Histogram-based (approximate) GBDT training on the simulated device.

The paper's Section V positions GPU-GBDT against approximate trainers:
XGBoost's quantile proposals [3], [7] and LightGBM, which "only supports
finding the best split points approximately".  This module implements that
family on the same substrate so the exact-vs-approximate trade-off is
measurable inside the reproduction:

* attribute values are quantized once into at most ``max_bins`` quantile
  bins (:mod:`repro.approx.quantile`);
* each level accumulates per-(node, attribute, bin) gradient histograms
  with one atomic-scatter pass over the present entries -- **no sorted-list
  partitioning and no per-entry prefix sums**, the structural reason
  histogram methods are cheap;
* candidate splits are the bin boundaries; missing values take the learned
  default direction exactly as in the exact trainer.

When every attribute has at most ``max_bins`` distinct values the candidate
set coincides with the exact trainer's, so the learned *partitions* (tree
structure, gains, instance counts, training predictions) match exactly --
only thresholds sit at bin edges instead of value midpoints.  On truly
continuous data the trees genuinely differ: that is the approximation.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.booster_model import GBDTModel
from ..core.params import GBDTParams
from ..core.smartgd import GradientComputer
from ..core.split import eq2_gain, quantize_gain
from ..core.tree import DecisionTree
from ..data.matrix import CSRMatrix
from ..data.sorted_columns import build_sorted_columns
from ..gpusim.kernel import GpuDevice
from .quantile import BinSpec, bin_column_values, build_bins

__all__ = ["HistogramGBDTTrainer"]


class HistogramGBDTTrainer:
    """LightGBM-style histogram trainer (the paper's "approximate" rival).

    Parameters mirror :class:`~repro.core.trainer.GPUGBDTTrainer`; the extra
    ``max_bins`` knob bounds the per-attribute quantile resolution.
    """

    GROW_POLICIES = ("depthwise", "lossguide")

    def __init__(
        self,
        params: GBDTParams | None = None,
        device: GpuDevice | None = None,
        *,
        max_bins: int = 64,
        row_scale: float = 1.0,
        grow_policy: str = "depthwise",
        max_leaves: int = 0,
    ) -> None:
        if max_bins < 2:
            raise ValueError("max_bins must be >= 2")
        if grow_policy not in self.GROW_POLICIES:
            raise ValueError(f"grow_policy must be one of {self.GROW_POLICIES}")
        if max_leaves < 0:
            raise ValueError("max_leaves must be >= 0 (0 = unbounded)")
        self.params = params if params is not None else GBDTParams()
        self.device = device if device is not None else GpuDevice()
        self.max_bins = int(max_bins)
        self.row_scale = float(row_scale)
        self.grow_policy = grow_policy
        self.max_leaves = int(max_leaves)
        self.bins_: BinSpec | None = None

    # ------------------------------------------------------------------- fit
    def fit(self, X: CSRMatrix, y: np.ndarray) -> GBDTModel:
        """Quantize once, then train ``params.n_trees`` histogram trees."""
        p = self.params
        device = self.device
        y = np.asarray(y, dtype=np.float64)
        n, d = X.shape
        if y.size != n:
            raise ValueError("y size mismatch")
        if n < 2:
            raise ValueError("need at least 2 training instances")

        with device.phase("setup"):
            csc = X.to_csc()
            cols = build_sorted_columns(csc, device)
            spec = build_bins(cols, self.max_bins)
            self.bins_ = spec
            ent_bin = bin_column_values(spec, cols)
            ent_inst = cols.inst
            ent_attr = np.repeat(
                np.arange(d, dtype=np.int64), np.diff(cols.col_offsets)
            )
            device.launch(
                "quantize_to_bins",
                elements=X.nnz,
                flops_per_element=np.log2(max(self.max_bins, 2)),
                coalesced_bytes=X.nnz * (8 + 4),
            )
            # device state: per-entry (instance id, global bin id) -- the
            # quantized matrix replaces the sorted value lists entirely
            bin_offset = np.zeros(d + 1, dtype=np.int64)
            np.cumsum([spec.n_bins(j) for j in range(d)], out=bin_offset[1:])
            ent_gbin = bin_offset[ent_attr] + ent_bin
            total_bins = int(bin_offset[-1])
            device.transfer("upload_quantized_matrix", X.nnz * 8 + total_bins * 8)
            mem = device.memory
            nnz_full = X.nnz * device.work_scale
            n_full = n * self.row_scale
            mem.alloc("quantized_entries", nnz_full * 8)
            mem.alloc("gradients_gh", n_full * 8)
            mem.alloc("predictions", n_full * 4)
            mem.alloc("instance_to_node", n_full * 4)
            # the histogram-subtraction trick (sibling = parent - child)
            # means only a small constant number of per-node tables must be
            # resident; bins scale with the full-scale dimensionality
            mem.alloc(
                "level_histograms",
                total_bins * device.seg_scale * 4 * 16,
            )

        # per-attribute present counts for missing-mass bookkeeping
        col_lens = np.diff(cols.col_offsets)

        gc = GradientComputer(
            device, p.loss_fn, y, use_smartgd=p.use_smartgd, row_scale=self.row_scale, X=X
        )

        trees: List[DecisionTree] = []
        for _ in range(p.n_trees):
            with device.phase("gradients"):
                g, h = gc.compute()
            grow = (
                self._grow_tree if self.grow_policy == "depthwise" else self._grow_tree_lossguide
            )
            tree = grow(
                X, g, h, ent_inst, ent_gbin, ent_attr, bin_offset, spec, col_lens, gc
            )
            gc.on_tree_finished(tree)
            trees.append(tree)
        return GBDTModel(trees=trees, params=p, base_score=p.loss_fn.base_score(y))

    # ------------------------------------------------------------- tree grow
    def _grow_tree(
        self,
        X: CSRMatrix,
        g: np.ndarray,
        h: np.ndarray,
        ent_inst: np.ndarray,
        ent_gbin: np.ndarray,
        ent_attr: np.ndarray,
        bin_offset: np.ndarray,
        spec: BinSpec,
        col_lens: np.ndarray,
        gc: GradientComputer,
    ) -> DecisionTree:
        p = self.params
        device = self.device
        n, d = X.shape
        total_bins = int(bin_offset[-1])

        tree = DecisionTree()
        tree.add_root(n)
        inst2local = np.zeros(n, dtype=np.int64)
        node_tree_ids = np.array([0], dtype=np.int64)
        node_g = np.array([float(np.bincount(np.zeros(n, np.int64), weights=g)[0])])
        node_h = np.array([float(np.bincount(np.zeros(n, np.int64), weights=h)[0])])
        node_n = np.array([n], dtype=np.int64)

        for _depth in range(p.max_depth):
            n_active = node_tree_ids.size

            with device.phase("find_split"):
                (
                    best_gain, best_attr, best_cut, best_dir, best_lg, best_lh, best_ln
                ) = self._find_splits(
                    g, h, ent_inst, ent_gbin, inst2local, n_active, total_bins,
                    bin_offset, node_g, node_h, node_n, col_lens,
                )

            split_mask = (best_attr >= 0) & (best_gain > p.gamma)

            with device.phase("split_node"):
                leaf_locals = np.flatnonzero(~split_mask)
                if leaf_locals.size:
                    values = np.zeros(n_active)
                    values[leaf_locals] = (
                        -p.learning_rate * node_g[leaf_locals] / (node_h[leaf_locals] + p.lambda_)
                    )
                    for loc in leaf_locals:
                        tree.set_leaf(int(node_tree_ids[loc]), float(values[loc]))
                    is_leaf = np.zeros(n_active, dtype=bool)
                    is_leaf[leaf_locals] = True
                    safe = np.maximum(inst2local, 0)
                    settled = (inst2local >= 0) & is_leaf[safe]
                    ids = np.flatnonzero(settled)
                    gc.on_leaves(ids, values[inst2local[ids]])
                    inst2local[ids] = -1
                if not split_mask.any():
                    break

                split_locals = np.flatnonzero(split_mask)
                k = split_locals.size
                new_tree_ids = np.empty(2 * k, dtype=np.int64)
                thresholds = np.empty(k)
                for j, loc in enumerate(split_locals):
                    a = int(best_attr[loc])
                    cut = int(best_cut[loc])
                    if cut == spec.n_bins(a):
                        # present|missing boundary: every present value left
                        thr = -np.finfo(np.float64).max
                    else:
                        thr = float(spec.edges[a][cut - 1])
                    thresholds[j] = thr
                    lid, rid = tree.split_node(
                        int(node_tree_ids[loc]), a, thr, bool(best_dir[loc]),
                        float(best_gain[loc]),
                        n_left=int(best_ln[loc]),
                        n_right=int(node_n[loc] - best_ln[loc]),
                    )
                    new_tree_ids[2 * j] = lid
                    new_tree_ids[2 * j + 1] = rid

                # ---- route instances by bin index --------------------------
                new_local_of = np.full(n_active, -1, dtype=np.int64)
                new_local_of[split_locals] = 2 * np.arange(k, dtype=np.int64)
                side_inst = np.full(n, -1, dtype=np.int8)
                safe = np.maximum(inst2local, 0)
                active = (inst2local >= 0) & split_mask[safe]
                default_side = np.where(best_dir, 0, 1).astype(np.int8)
                side_inst[active] = default_side[inst2local[active]]

                # entries of the chosen attributes decide present instances
                cut_of_node = np.full(n_active, -1, dtype=np.int64)
                attr_of_node = np.full(n_active, -2, dtype=np.int64)
                cut_of_node[split_locals] = best_cut[split_locals]
                attr_of_node[split_locals] = best_attr[split_locals]
                ent_node = np.where(ent_inst >= 0, inst2local[ent_inst], -1)
                ent_node_safe = np.maximum(ent_node, 0)
                sel = (ent_node >= 0) & (ent_attr == attr_of_node[ent_node_safe])
                local_bin = ent_gbin[sel] - bin_offset[ent_attr[sel]]
                goes_left = local_bin < cut_of_node[ent_node[sel]]
                side_inst[ent_inst[sel]] = np.where(goes_left, 0, 1)
                device.launch(
                    "route_instances_by_bin",
                    elements=n * self.row_scale,
                    flops_per_element=2.0,
                    coalesced_bytes=n * self.row_scale * 9,
                    scale=False,
                )
                inst2local = np.where(active, new_local_of[safe] + side_inst, -1)

                lg = best_lg[split_locals]
                lh = best_lh[split_locals]
                ln = best_ln[split_locals]
                pg, ph, pn = node_g[split_locals], node_h[split_locals], node_n[split_locals]
                node_g = np.empty(2 * k)
                node_h = np.empty(2 * k)
                node_n = np.empty(2 * k, dtype=np.int64)
                node_g[0::2], node_g[1::2] = lg, pg - lg
                node_h[0::2], node_h[1::2] = lh, ph - lh
                node_n[0::2], node_n[1::2] = ln, pn - ln
                node_tree_ids = new_tree_ids

        if node_tree_ids.size and (inst2local >= 0).any():
            values = -p.learning_rate * node_g / (node_h + p.lambda_)
            for loc in range(node_tree_ids.size):
                tree.set_leaf(int(node_tree_ids[loc]), float(values[loc]))
            ids = np.flatnonzero(inst2local >= 0)
            gc.on_leaves(ids, values[inst2local[ids]])
            inst2local[:] = -1
        return tree

    # ---------------------------------------------------------- split search
    def _find_splits(
        self,
        g, h, ent_inst, ent_gbin, inst2local, n_active, total_bins,
        bin_offset, node_g, node_h, node_n, col_lens,
    ):
        """Histogram accumulation + boundary enumeration for every node.

        Candidate order per (node, attribute): interior boundaries by
        ascending cut index (descending value), then the present|missing
        boundary -- the same canonical order as the exact trainer, with
        float32-quantized gains, so ties resolve identically.
        """
        device = self.device
        p = self.params
        d = bin_offset.size - 1

        ent_node = inst2local[ent_inst]
        live = ent_node >= 0
        idx = ent_node[live] * total_bins + ent_gbin[live]
        size = n_active * total_bins
        hist_g = np.bincount(idx, weights=g[ent_inst[live]], minlength=size)
        hist_h = np.bincount(idx, weights=h[ent_inst[live]], minlength=size)
        hist_c = np.bincount(idx, minlength=size).astype(np.int64)
        device.launch(
            "accumulate_histograms",
            elements=int(live.sum()),
            flops_per_element=3.0,
            coalesced_bytes=live.sum() * 12,
            irregular_bytes=live.sum() * 24,  # atomic adds into node tables
        )

        hist_g = hist_g.reshape(n_active, total_bins)
        hist_h = hist_h.reshape(n_active, total_bins)
        hist_c = hist_c.reshape(n_active, total_bins)

        best_gain = np.full(n_active, -np.inf)
        best_attr = np.full(n_active, -1, dtype=np.int64)
        best_cut = np.full(n_active, -1, dtype=np.int64)
        best_dir = np.zeros(n_active, dtype=bool)
        best_lg = np.zeros(n_active)
        best_lh = np.zeros(n_active)
        best_ln = np.zeros(n_active, dtype=np.int64)

        device.launch(
            "scan_histograms_for_best_split",
            elements=n_active * total_bins,
            flops_per_element=30.0,
            coalesced_bytes=n_active * total_bins * 32,
        )

        for a in range(d):
            lo, hi = int(bin_offset[a]), int(bin_offset[a + 1])
            nb = hi - lo
            cg = np.cumsum(hist_g[:, lo:hi], axis=1)
            ch = np.cumsum(hist_h[:, lo:hi], axis=1)
            cc = np.cumsum(hist_c[:, lo:hi], axis=1)
            g_present = cg[:, -1]
            h_present = ch[:, -1]
            c_present = cc[:, -1]
            g_miss = node_g - g_present
            h_miss = node_h - h_present
            n_miss = node_n - c_present

            # interior boundaries: cut k in 1..nb-1, left = bins [0, k)
            if nb > 1:
                gl = cg[:, :-1]  # (n_active, nb-1): cut k uses column k-1
                hl = ch[:, :-1]
                cl = cc[:, :-1]
                valid = (cl > 0) & (cl < c_present[:, None])
                gain_mr = quantize_gain(
                    eq2_gain(gl, hl, node_g[:, None], node_h[:, None], p.lambda_)
                )
                gain_ml = quantize_gain(
                    eq2_gain(
                        gl + g_miss[:, None], hl + h_miss[:, None],
                        node_g[:, None], node_h[:, None], p.lambda_,
                    )
                )
                dirs = gain_ml >= gain_mr
                gains = np.where(valid, np.maximum(gain_ml, gain_mr), -np.inf)
                kbest = np.argmax(gains, axis=1)  # first max per node
                rows = np.arange(n_active)
                cand = gains[rows, kbest]
                better = cand > best_gain
                if better.any():
                    bsel = np.flatnonzero(better)
                    kb = kbest[bsel]
                    best_gain[bsel] = cand[bsel]
                    best_attr[bsel] = a
                    best_cut[bsel] = kb + 1
                    dsel = dirs[bsel, kb]
                    best_dir[bsel] = dsel
                    best_lg[bsel] = gl[bsel, kb] + np.where(dsel, g_miss[bsel], 0.0)
                    best_lh[bsel] = hl[bsel, kb] + np.where(dsel, h_miss[bsel], 0.0)
                    best_ln[bsel] = cl[bsel, kb] + np.where(dsel, n_miss[bsel], 0)

            # present | missing boundary
            sp_ok = (n_miss > 0) & (c_present > 0)
            sp_gain = np.where(
                sp_ok,
                quantize_gain(eq2_gain(g_present, h_present, node_g, node_h, p.lambda_)),
                -np.inf,
            )
            better = sp_gain > best_gain
            if better.any():
                bsel = np.flatnonzero(better)
                best_gain[bsel] = sp_gain[bsel]
                best_attr[bsel] = a
                best_cut[bsel] = nb
                best_dir[bsel] = False
                best_lg[bsel] = g_present[bsel]
                best_lh[bsel] = h_present[bsel]
                best_ln[bsel] = c_present[bsel]

        return best_gain, best_attr, best_cut, best_dir, best_lg, best_lh, best_ln

    # ------------------------------------------------------- lossguide grow
    @staticmethod
    def _threshold(spec: BinSpec, a: int, cut: int) -> float:
        """Split threshold for 'left = bins [0, cut)' of attribute ``a``."""
        if cut == spec.n_bins(a):
            # present | missing boundary: every present value goes left
            return -np.finfo(np.float64).max
        return float(spec.edges[a][cut - 1])

    def _grow_tree_lossguide(
        self,
        X: CSRMatrix,
        g: np.ndarray,
        h: np.ndarray,
        ent_inst: np.ndarray,
        ent_gbin: np.ndarray,
        ent_attr: np.ndarray,
        bin_offset: np.ndarray,
        spec: BinSpec,
        col_lens: np.ndarray,
        gc: GradientComputer,
    ) -> DecisionTree:
        """Leaf-wise (best-first) growth: always split the leaf with the
        largest gain next, LightGBM's signature strategy.

        Bounded by ``max_leaves`` (0 = unbounded) *and* ``params.max_depth``.
        When ``max_leaves`` does not bind, per-leaf split decisions are
        independent of the split order, so the grown partition equals the
        depthwise one (tested).
        """
        import heapq

        p = self.params
        device = self.device
        n, d = X.shape
        total_bins = int(bin_offset[-1])

        tree = DecisionTree()
        tree.add_root(n)
        inst2node = np.zeros(n, dtype=np.int64)  # tree node id per instance
        node_stats = {0: (
            float(np.bincount(np.zeros(n, np.int64), weights=g)[0]),
            float(np.bincount(np.zeros(n, np.int64), weights=h)[0]),
            n,
        )}

        def candidate(node_id: int):
            """Best split of one leaf, or None."""
            gn, hn, nn = node_stats[node_id]
            local = np.where(inst2node == node_id, 0, -1).astype(np.int64)
            with device.phase("find_split"):
                (gain, attr, cut, dirs, lg, lh, ln) = self._find_splits(
                    g, h, ent_inst, ent_gbin, local, 1, total_bins,
                    bin_offset, np.array([gn]), np.array([hn]),
                    np.array([nn], dtype=np.int64), col_lens,
                )
            if attr[0] < 0 or not (gain[0] > p.gamma):
                return None
            return {
                "gain": float(gain[0]), "attr": int(attr[0]), "cut": int(cut[0]),
                "dir": bool(dirs[0]), "lg": float(lg[0]), "lh": float(lh[0]),
                "ln": int(ln[0]),
            }

        heap: list = []
        counter = 0
        root_cand = candidate(0) if p.max_depth >= 1 else None
        if root_cand is not None:
            heapq.heappush(heap, (-root_cand["gain"], counter, 0, root_cand))
            counter += 1
        n_leaves = 1

        while heap and (self.max_leaves == 0 or n_leaves < self.max_leaves):
            _, _, nid, rec = heapq.heappop(heap)
            gn, hn, nn = node_stats[nid]
            thr = self._threshold(spec, rec["attr"], rec["cut"])
            lid, rid = tree.split_node(
                nid, rec["attr"], thr, rec["dir"], rec["gain"],
                n_left=rec["ln"], n_right=nn - rec["ln"],
            )
            n_leaves += 1

            # route this leaf's instances by bin index
            members = inst2node == nid
            side = np.where(rec["dir"], lid, rid)  # default for missing
            inst2node[members] = side
            sel = members[ent_inst] & (ent_attr == rec["attr"])
            local_bin = ent_gbin[sel] - bin_offset[rec["attr"]]
            goes_left = local_bin < rec["cut"]
            inst2node[ent_inst[sel]] = np.where(goes_left, lid, rid)
            device.launch(
                "route_leaf_by_bin",
                elements=nn * self.row_scale,
                flops_per_element=2.0,
                coalesced_bytes=nn * self.row_scale * 9,
                scale=False,
            )

            node_stats[lid] = (rec["lg"], rec["lh"], rec["ln"])
            node_stats[rid] = (gn - rec["lg"], hn - rec["lh"], nn - rec["ln"])
            for child in (lid, rid):
                if tree.depth[child] < p.max_depth:
                    cand = candidate(child)
                    if cand is not None:
                        heapq.heappush(heap, (-cand["gain"], counter, child, cand))
                        counter += 1

        # finalize every remaining leaf and report to SmartGD once
        value_of_node = np.zeros(tree.n_nodes)
        for nid in range(tree.n_nodes):
            if tree.is_leaf(nid):
                gn, hn, _ = node_stats[nid]
                value = -p.learning_rate * gn / (hn + p.lambda_)
                tree.set_leaf(nid, value)
                value_of_node[nid] = value
        with device.phase("split_node"):
            gc.on_leaves(np.arange(n), value_of_node[inst2node])
        return tree
