"""Quantile binning of sorted attribute values.

The paper positions GPU-GBDT as an **exact** trainer and notes that
"LightGBM ... only supports finding the best split points approximately"
(Section V) and that XGBoost offers approximation for large data via
per-attribute quantile proposals [7], [3].  To make that comparison
runnable, :mod:`repro.approx` implements the histogram family on the same
substrate; this module builds the bin edges.

Because the sorted attribute lists already exist (Section II-A), computing
quantile cuts is a pass over each column: pick at most ``max_bins`` cut
points such that each bin holds roughly ``1/max_bins`` of the column's
present mass.  These are the *global* proposals of [3] (computed once,
reused for every tree/node).

For distributed training the same cuts must come out of *row shards* that
never see each other's values.  :class:`ColumnSketch` is the mergeable
weighted form: a column summarised as (distinct values, multiplicities).
Because :func:`build_bins` only ever looks at distinct-value boundaries and
cumulative counts, a sketch carries *all* the information the cut rule
uses -- merging exact local sketches and cutting the merge
(:func:`build_bins_from_sketches`) reproduces the monolithic
:func:`build_bins` edges bit-for-bit, not approximately (tested).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..data.sorted_columns import SortedColumns

__all__ = [
    "BinSpec",
    "ColumnSketch",
    "build_bins",
    "build_bins_from_sketches",
    "bin_column_values",
    "edges_from_sketch",
    "merge_sketches",
    "sketch_column",
    "sketch_columns",
]


@dataclasses.dataclass
class BinSpec:
    """Per-attribute quantile bin edges.

    ``edges[j]`` is a descending float array; a present value ``v`` of
    attribute ``j`` falls into bin ``k`` iff ``edges[j][k-1] >= v >
    edges[j][k]`` (virtual ``+inf`` above and ``-inf`` below), i.e.
    ``bin(v) = #{edges >= v}``.  Bin 0 therefore holds the largest values,
    matching the descending sorted-list convention everywhere else in the
    package; splitting "before bin k" uses threshold ``edges[j][k-1]`` with
    the usual ``x > thr -> left`` predicate.  ``n_bins(j) == len(edges[j]) + 1``.
    """

    edges: list[np.ndarray]
    max_bins: int

    @property
    def n_attrs(self) -> int:
        return len(self.edges)

    def n_bins(self, j: int) -> int:
        """Bin count of attribute ``j`` (edges + 1)."""
        return self.edges[j].size + 1

    @property
    def total_bins(self) -> int:
        return sum(self.n_bins(j) for j in range(self.n_attrs))

    def bin_of(self, j: int, values: np.ndarray) -> np.ndarray:
        """Bin index for (present) values of attribute ``j``."""
        e = self.edges[j]
        if e.size == 0:
            return np.zeros(np.asarray(values).size, dtype=np.int32)
        # edges descending: count how many edges are >= v
        asc = e[::-1]
        # v > asc[k-1] ... use searchsorted on ascending edges
        idx = e.size - np.searchsorted(asc, np.asarray(values, dtype=np.float64), side="left")
        return idx.astype(np.int32)


def build_bins(cols: SortedColumns, max_bins: int = 64) -> BinSpec:
    """Equi-mass quantile cuts from the descending sorted columns.

    Cuts always fall *between distinct values*, so a value group is never
    split across bins (the histogram analogue of the duplicate-split-point
    rule).  Columns with fewer distinct values than ``max_bins`` keep one
    bin per distinct value -- the histogram trainer is then exact on them.
    """
    if max_bins < 2:
        raise ValueError("max_bins must be >= 2")
    edges: list[np.ndarray] = []
    for j in range(cols.n_cols):
        vals, _ = cols.column(j)
        L = vals.size
        if L == 0:
            edges.append(np.empty(0))
            continue
        # distinct group boundaries (descending): value changes at i
        change = np.flatnonzero(vals[1:] != vals[:-1]) + 1
        distinct_count = change.size + 1
        if distinct_count <= max_bins:
            # one bin per distinct value: edge at each boundary's midpoint
            cut_vals = (vals[change - 1] + vals[change]) / 2.0
            guard = np.minimum(cut_vals, np.nextafter(vals[change - 1], -np.inf))
            edges.append(np.asarray(guard, dtype=np.float64))
            continue
        # equi-mass cuts among the group boundaries
        targets = (np.arange(1, max_bins) * L) // max_bins
        cut_pos = np.unique(np.searchsorted(change, targets, side="left").clip(0, change.size - 1))
        bpos = change[cut_pos]
        cut_vals = (vals[bpos - 1] + vals[bpos]) / 2.0
        guard = np.minimum(cut_vals, np.nextafter(vals[bpos - 1], -np.inf))
        edges.append(np.asarray(np.unique(guard)[::-1], dtype=np.float64))
    return BinSpec(edges=edges, max_bins=max_bins)


# --------------------------------------------------------------- sketches
@dataclasses.dataclass
class ColumnSketch:
    """Exact weighted quantile summary of one attribute's present values.

    ``values`` are the distinct values in descending order; ``counts[i]`` is
    the (int64) multiplicity of ``values[i]``.  This is the run-length
    encoding of the sorted column, which is lossless for the cut rule:
    :func:`build_bins` only consults distinct-value boundaries and the
    cumulative counts on either side.  Sketches merge associatively
    (:func:`merge_sketches`), so W row shards allgather their local sketches
    and every worker derives the identical global edges.
    """

    values: np.ndarray  # float64, distinct, strictly descending
    counts: np.ndarray  # int64 multiplicity per value

    @property
    def total(self) -> int:
        """Total number of summarised (present) entries."""
        return int(self.counts.sum())


def sketch_column(vals: np.ndarray) -> ColumnSketch:
    """Sketch a descending-sorted column (duplicates allowed)."""
    vals = np.asarray(vals, dtype=np.float64)
    if vals.size == 0:
        return ColumnSketch(np.empty(0), np.empty(0, dtype=np.int64))
    change = np.flatnonzero(vals[1:] != vals[:-1]) + 1
    starts = np.concatenate(([0], change))
    bounds = np.concatenate((starts, [vals.size]))
    return ColumnSketch(vals[starts].copy(), np.diff(bounds).astype(np.int64))


def sketch_columns(cols: SortedColumns) -> list[ColumnSketch]:
    """One :class:`ColumnSketch` per attribute of the sorted columns."""
    return [sketch_column(cols.column(j)[0]) for j in range(cols.n_cols)]


def merge_sketches(sketches: list[ColumnSketch]) -> ColumnSketch:
    """Exact merge: union of distinct values, integer-summed counts."""
    vs = [s.values for s in sketches if s.values.size]
    if not vs:
        return ColumnSketch(np.empty(0), np.empty(0, dtype=np.int64))
    allv = np.concatenate(vs)
    allc = np.concatenate([s.counts for s in sketches if s.values.size])
    uniq, inverse = np.unique(allv, return_inverse=True)  # ascending
    counts = np.zeros(uniq.size, dtype=np.int64)
    np.add.at(counts, inverse, allc)
    return ColumnSketch(uniq[::-1].copy(), counts[::-1].copy())


def edges_from_sketch(sk: ColumnSketch, max_bins: int) -> np.ndarray:
    """Bin edges from a sketch -- the same rule as :func:`build_bins`.

    Both branches mirror the monolithic code line for line (including the
    asymmetry that the few-distinct branch keeps edges as produced while the
    equi-mass branch deduplicates guarded midpoints), with the sorted
    column's ``vals[change - 1] / vals[change]`` lookups rewritten via the
    identities ``vals[change[i] - 1] == values[i]`` and ``vals[change[i]] ==
    values[i + 1]``.
    """
    v, c = sk.values, sk.counts
    if v.size == 0:
        return np.empty(0)
    if v.size <= max_bins:
        # one bin per distinct value: edge at each boundary's midpoint
        cut_vals = (v[:-1] + v[1:]) / 2.0
        guard = np.minimum(cut_vals, np.nextafter(v[:-1], -np.inf))
        return np.asarray(guard, dtype=np.float64)
    # equi-mass cuts among the group boundaries
    change = np.cumsum(c[:-1])
    L = int(c.sum())
    targets = (np.arange(1, max_bins) * L) // max_bins
    cut_pos = np.unique(
        np.searchsorted(change, targets, side="left").clip(0, change.size - 1)
    )
    cut_vals = (v[cut_pos] + v[cut_pos + 1]) / 2.0
    guard = np.minimum(cut_vals, np.nextafter(v[cut_pos], -np.inf))
    return np.asarray(np.unique(guard)[::-1], dtype=np.float64)


def build_bins_from_sketches(
    sketches: list[ColumnSketch], max_bins: int = 64
) -> BinSpec:
    """:class:`BinSpec` from per-attribute (merged) sketches.

    ``build_bins_from_sketches([merge_sketches(shards[j]) for j])`` equals
    ``build_bins`` on the unsharded data exactly, for any sharding.
    """
    if max_bins < 2:
        raise ValueError("max_bins must be >= 2")
    return BinSpec(
        edges=[edges_from_sketch(s, max_bins) for s in sketches], max_bins=max_bins
    )


def bin_column_values(spec: BinSpec, cols: SortedColumns) -> np.ndarray:
    """Bin index for every entry of the flat sorted arrays (int32)."""
    out = np.empty(cols.nnz, dtype=np.int32)
    for j in range(cols.n_cols):
        lo, hi = cols.col_offsets[j], cols.col_offsets[j + 1]
        vals = cols.values[lo:hi]
        out[lo:hi] = spec.bin_of(j, vals)
    return out
