"""Quantile binning of sorted attribute values.

The paper positions GPU-GBDT as an **exact** trainer and notes that
"LightGBM ... only supports finding the best split points approximately"
(Section V) and that XGBoost offers approximation for large data via
per-attribute quantile proposals [7], [3].  To make that comparison
runnable, :mod:`repro.approx` implements the histogram family on the same
substrate; this module builds the bin edges.

Because the sorted attribute lists already exist (Section II-A), computing
quantile cuts is a pass over each column: pick at most ``max_bins`` cut
points such that each bin holds roughly ``1/max_bins`` of the column's
present mass.  These are the *global* proposals of [3] (computed once,
reused for every tree/node).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..data.sorted_columns import SortedColumns

__all__ = ["BinSpec", "build_bins", "bin_column_values"]


@dataclasses.dataclass
class BinSpec:
    """Per-attribute quantile bin edges.

    ``edges[j]`` is a descending float array; a present value ``v`` of
    attribute ``j`` falls into bin ``k`` iff ``edges[j][k-1] >= v >
    edges[j][k]`` (virtual ``+inf`` above and ``-inf`` below), i.e.
    ``bin(v) = #{edges >= v}``.  Bin 0 therefore holds the largest values,
    matching the descending sorted-list convention everywhere else in the
    package; splitting "before bin k" uses threshold ``edges[j][k-1]`` with
    the usual ``x > thr -> left`` predicate.  ``n_bins(j) == len(edges[j]) + 1``.
    """

    edges: list[np.ndarray]
    max_bins: int

    @property
    def n_attrs(self) -> int:
        return len(self.edges)

    def n_bins(self, j: int) -> int:
        """Bin count of attribute ``j`` (edges + 1)."""
        return self.edges[j].size + 1

    @property
    def total_bins(self) -> int:
        return sum(self.n_bins(j) for j in range(self.n_attrs))

    def bin_of(self, j: int, values: np.ndarray) -> np.ndarray:
        """Bin index for (present) values of attribute ``j``."""
        e = self.edges[j]
        if e.size == 0:
            return np.zeros(np.asarray(values).size, dtype=np.int32)
        # edges descending: count how many edges are >= v
        asc = e[::-1]
        # v > asc[k-1] ... use searchsorted on ascending edges
        idx = e.size - np.searchsorted(asc, np.asarray(values, dtype=np.float64), side="left")
        return idx.astype(np.int32)


def build_bins(cols: SortedColumns, max_bins: int = 64) -> BinSpec:
    """Equi-mass quantile cuts from the descending sorted columns.

    Cuts always fall *between distinct values*, so a value group is never
    split across bins (the histogram analogue of the duplicate-split-point
    rule).  Columns with fewer distinct values than ``max_bins`` keep one
    bin per distinct value -- the histogram trainer is then exact on them.
    """
    if max_bins < 2:
        raise ValueError("max_bins must be >= 2")
    edges: list[np.ndarray] = []
    for j in range(cols.n_cols):
        vals, _ = cols.column(j)
        L = vals.size
        if L == 0:
            edges.append(np.empty(0))
            continue
        # distinct group boundaries (descending): value changes at i
        change = np.flatnonzero(vals[1:] != vals[:-1]) + 1
        distinct_count = change.size + 1
        if distinct_count <= max_bins:
            # one bin per distinct value: edge at each boundary's midpoint
            cut_vals = (vals[change - 1] + vals[change]) / 2.0
            guard = np.minimum(cut_vals, np.nextafter(vals[change - 1], -np.inf))
            edges.append(np.asarray(guard, dtype=np.float64))
            continue
        # equi-mass cuts among the group boundaries
        targets = (np.arange(1, max_bins) * L) // max_bins
        cut_pos = np.unique(np.searchsorted(change, targets, side="left").clip(0, change.size - 1))
        bpos = change[cut_pos]
        cut_vals = (vals[bpos - 1] + vals[bpos]) / 2.0
        guard = np.minimum(cut_vals, np.nextafter(vals[bpos - 1], -np.inf))
        edges.append(np.asarray(np.unique(guard)[::-1], dtype=np.float64))
    return BinSpec(edges=edges, max_bins=max_bins)


def bin_column_values(spec: BinSpec, cols: SortedColumns) -> np.ndarray:
    """Bin index for every entry of the flat sorted arrays (int32)."""
    out = np.empty(cols.nnz, dtype=np.int32)
    for j in range(cols.n_cols):
        lo, hi = cols.col_offsets[j], cols.col_offsets[j + 1]
        vals = cols.values[lo:hi]
        out[lo:hi] = spec.bin_of(j, vals)
    return out
