"""Approximate (histogram/quantile) training -- the paper's Section-V rival
family (XGBoost's quantile proposals, LightGBM), implemented on the same
simulated substrate for exact-vs-approximate comparisons."""

from .histogram_trainer import HistogramGBDTTrainer
from .quantile import BinSpec, bin_column_values, build_bins

__all__ = ["HistogramGBDTTrainer", "BinSpec", "bin_column_values", "build_bins"]
