"""Fixed-point gradient quantization: order-independent histogram sums.

Histogram training reduces per-instance gradient pairs into per-(node,
attribute, bin) cells.  In float64 the cell value depends on the *order* of
the additions -- a monolithic ``np.bincount`` folds entries in sorted-column
order, while W row-sharded workers fold their own entries and then combine
partials over a ring.  Floating-point addition is not associative, so the
two foldings disagree in the last ulps, and a "distributed == single-worker"
claim could never be *byte*-identical.

The fix is the one production systems use for deterministic/distributed
histogram consistency (LightGBM's quantized training, SQL engines' decimal
aggregates): quantize each instance's ``(g_i, h_i)`` **once per round** onto
a fixed-point grid and accumulate *integers*.  Integer addition is exact and
associative, so every summation order -- monolithic bincount, per-shard
partials, ring-allreduce chunks -- produces the same cell values, and every
float derived from them (gains, leaf weights) is identical everywhere.

The grid is chosen per round from the global gradient magnitudes so that

* the total of ``n`` quantized values cannot overflow the 51 safe mantissa
  bits (sums stay exact even when staged through float64 ``bincount``), and
* resolution is the finest power of two that satisfies that bound, capped at
  ``2**-GRAD_SHIFT_CAP`` (~9e-13 absolute -- far below the float32 gain
  quantization that decides splits, see :mod:`repro.core.split`).

Dequantization multiplies by an exact power of two, so it introduces no
additional rounding.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["GRAD_SHIFT_CAP", "choose_shift", "quantize_gradients", "inv_scale"]

#: finest fixed-point resolution ever used: 2**-40 per unit
GRAD_SHIFT_CAP = 40

#: quantized totals must stay below 2**_SAFE_SUM_BITS so sums remain exact
#: even when accumulated as float64 (bincount) before the int64 cast
_SAFE_SUM_BITS = 50


def choose_shift(g_max: float, h_max: float, n: int, *, cap: int = GRAD_SHIFT_CAP) -> int:
    """Largest shift ``s`` (capped) such that ``n * max(|g|, h) * 2**s``
    stays below ``2**50``.

    Depends only on *global* quantities (``max`` reductions are exact and
    order-independent), so sharded workers that allreduce-max their local
    extrema compute the identical shift.
    """
    m = max(float(g_max), float(h_max))
    if not math.isfinite(m) or m <= 0.0:
        return cap
    # frexp: m * n = frac * 2**exp with frac in [0.5, 1)
    exp = math.frexp(m * max(int(n), 1))[1]
    return max(0, min(cap, _SAFE_SUM_BITS - exp))


def quantize_gradients(
    g: np.ndarray, h: np.ndarray, shift: int
) -> tuple[np.ndarray, np.ndarray]:
    """Round ``(g, h)`` to the fixed-point grid ``2**-shift`` (int64).

    Elementwise and deterministic: a worker holding any subset of the rows
    produces the identical integers for those rows.
    """
    scale = float(2.0**shift)
    gq = np.rint(np.asarray(g, dtype=np.float64) * scale).astype(np.int64)
    hq = np.rint(np.asarray(h, dtype=np.float64) * scale).astype(np.int64)
    return gq, hq


def inv_scale(shift: int) -> float:
    """Exact dequantization factor ``2**-shift``."""
    return float(2.0**-shift)
