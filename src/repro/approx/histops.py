"""Shared histogram kernels: integer accumulation, subtraction, split scan.

Both :class:`repro.approx.histogram_trainer.HistogramGBDTTrainer` (one
process) and :class:`repro.dist.trainer.DistributedHistTrainer` (W
row-sharded workers) drive the same functions:

* :func:`accumulate_histograms` -- per-(node, attribute, bin) int64 sums of
  the fixed-point gradients (:mod:`repro.approx.fixedpoint`) over whatever
  entry subset the caller owns.  Integer sums are associative, so local
  histograms ring-allreduced across workers equal the monolithic bincount
  **exactly**.
* :func:`plan_sibling_builds` / :func:`subtract_child_histogram` -- the
  sibling-subtraction trick (Mitchell et al., GPU XGBoost): a level's
  active nodes arrive in (left, right) sibling pairs whose instance sets
  partition the parent's, so the trainer accumulates only the **smaller**
  child of each pair and derives the larger one as ``parent - smaller``.
  Because every table is an exact int64 sum, the identity
  ``parent == left + right`` holds bit-for-bit and subtraction is **exact**
  -- not an approximation -- which is why the subtraction path grows
  byte-identical models while skipping roughly half the accumulation work
  per level (and, distributed, halving the histogram allreduce payload:
  only built children are reduced; siblings are derived locally from the
  already-global parent tables).
* :func:`scan_histograms` -- cumulative sums plus Eq.-(2) gain enumeration
  over the (already global) histograms, returning the best split of every
  node.  It is a pure function of the histogram integers, so every worker
  that holds the allreduced tables takes the identical decision with no
  winner broadcast -- the structural reason data-parallel histogram training
  communicates O(bins), not O(rows).

Candidate order matches the exact trainer's canonical rule: interior
boundaries by ascending cut index (descending value), then the
present|missing boundary; gains are float32-quantized before comparison so
ties resolve identically everywhere (see :mod:`repro.core.split`).
"""

from __future__ import annotations

import numpy as np

from ..core.split import eq2_gain, quantize_gain
from .fixedpoint import inv_scale

__all__ = [
    "accumulate_histograms",
    "plan_sibling_builds",
    "scan_histograms",
    "subtract_child_histogram",
    "subtract_enabled_default",
    "leaf_values",
]


def subtract_enabled_default() -> bool:
    """Whether new histogram trainers use sibling subtraction
    (``REPRO_SUBTRACT=0`` disables, mirroring ``REPRO_ARENA``)."""
    import os

    return os.environ.get("REPRO_SUBTRACT", "1") != "0"


def accumulate_histograms(
    gq: np.ndarray,
    hq: np.ndarray,
    ent_inst: np.ndarray,
    ent_gbin: np.ndarray,
    inst2local: np.ndarray,
    n_active: int,
    total_bins: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Int64 (node, global-bin) gradient/hessian/count tables.

    ``gq, hq`` are the fixed-point gradients of the caller's instances;
    entries whose instance is settled (``inst2local < 0``) are skipped.
    Returns ``(hist_gq, hist_hq, hist_c, n_live)`` with the tables shaped
    ``(n_active, total_bins)``.  The float64 staging inside ``bincount`` is
    exact because :func:`repro.approx.fixedpoint.choose_shift` bounds every
    possible total below 2**50.
    """
    ent_node = inst2local[ent_inst]
    live = ent_node >= 0
    idx = ent_node[live] * total_bins + ent_gbin[live]
    size = n_active * total_bins
    inst_live = ent_inst[live]
    hist_gq = (
        np.bincount(idx, weights=gq[inst_live].astype(np.float64), minlength=size)
        .astype(np.int64)
        .reshape(n_active, total_bins)
    )
    hist_hq = (
        np.bincount(idx, weights=hq[inst_live].astype(np.float64), minlength=size)
        .astype(np.int64)
        .reshape(n_active, total_bins)
    )
    hist_c = (
        np.bincount(idx, minlength=size).astype(np.int64).reshape(n_active, total_bins)
    )
    return hist_gq, hist_hq, hist_c, int(live.sum())


def plan_sibling_builds(
    node_n: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Which locals of a sibling level to build vs derive by subtraction.

    ``node_n`` holds the **global** instance counts of the level's active
    nodes, ordered as (left, right) sibling pairs -- the layout
    ``_grow_tree`` produces for every depth > 0.  For each pair the smaller
    child (ties -> left) is built by accumulation and its sibling derived as
    ``parent - built``.  Distributed callers must pass post-allreduce counts
    so every rank picks the same side.

    Returns ``(build_locals, derive_locals)``; ``derive_locals[i]`` is the
    sibling of ``build_locals[i]`` (i.e. ``build_locals[i] ^ 1``).
    """
    node_n = np.asarray(node_n)
    if node_n.size % 2:
        raise ValueError("sibling level must hold an even number of nodes")
    pairs = node_n.reshape(-1, 2)
    right_smaller = pairs[:, 1] < pairs[:, 0]
    base = np.arange(pairs.shape[0], dtype=np.int64) * 2
    build_locals = base + right_smaller
    derive_locals = build_locals ^ 1
    return build_locals, derive_locals


def subtract_child_histogram(
    parent_gq: np.ndarray,
    parent_hq: np.ndarray,
    parent_c: np.ndarray,
    child_gq: np.ndarray,
    child_hq: np.ndarray,
    child_c: np.ndarray,
    out: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sibling histogram by exact int64 subtraction: ``parent - child``.

    Every input is an exact fixed-point sum over a node's instances and a
    node's instance set is the disjoint union of its children's, so the
    subtraction reproduces the sibling's accumulated table bit-for-bit --
    no floats are involved at any point.  ``out`` optionally provides
    destination arrays (arena buffers); fresh arrays are allocated
    otherwise.

    Raises ``ValueError`` if any count would go negative -- that means the
    supplied child is not a child of the supplied parent, and silently
    returning garbage histograms would corrupt split decisions downstream.
    """
    if out is None:
        sib_gq = np.empty_like(parent_gq)
        sib_hq = np.empty_like(parent_hq)
        sib_c = np.empty_like(parent_c)
    else:
        sib_gq, sib_hq, sib_c = out
    np.subtract(parent_gq, child_gq, out=sib_gq)
    np.subtract(parent_hq, child_hq, out=sib_hq)
    np.subtract(parent_c, child_c, out=sib_c)
    if sib_c.size and int(sib_c.min()) < 0:
        raise ValueError(
            "negative sibling count: child histogram is not contained in parent"
        )
    return sib_gq, sib_hq, sib_c


def scan_histograms(
    hist_gq: np.ndarray,
    hist_hq: np.ndarray,
    hist_c: np.ndarray,
    node_gq: np.ndarray,
    node_hq: np.ndarray,
    node_n: np.ndarray,
    bin_offset: np.ndarray,
    shift: int,
    lambda_: float,
):
    """Best split per node from global histogram tables.

    All statistics enter as exact int64; floats appear only at the gain
    evaluation (dequantized by an exact power of two), so any two callers
    holding the same tables compute bit-identical results.

    Returns ``(best_gain, best_attr, best_cut, best_dir, best_lgq,
    best_lhq, best_ln)`` -- left-child statistics stay in fixed point so the
    caller can propagate child stats with exact integer subtraction.
    """
    inv = inv_scale(shift)
    n_active = hist_gq.shape[0]
    d = bin_offset.size - 1
    node_g = node_gq * inv
    node_h = node_hq * inv

    best_gain = np.full(n_active, -np.inf)
    best_attr = np.full(n_active, -1, dtype=np.int64)
    best_cut = np.full(n_active, -1, dtype=np.int64)
    best_dir = np.zeros(n_active, dtype=bool)
    best_lgq = np.zeros(n_active, dtype=np.int64)
    best_lhq = np.zeros(n_active, dtype=np.int64)
    best_ln = np.zeros(n_active, dtype=np.int64)

    for a in range(d):
        lo, hi = int(bin_offset[a]), int(bin_offset[a + 1])
        nb = hi - lo
        cgq = np.cumsum(hist_gq[:, lo:hi], axis=1)
        chq = np.cumsum(hist_hq[:, lo:hi], axis=1)
        cc = np.cumsum(hist_c[:, lo:hi], axis=1)
        gq_present = cgq[:, -1]
        hq_present = chq[:, -1]
        c_present = cc[:, -1]
        gq_miss = node_gq - gq_present
        hq_miss = node_hq - hq_present
        n_miss = node_n - c_present

        # interior boundaries: cut k in 1..nb-1, left = bins [0, k)
        if nb > 1:
            glq = cgq[:, :-1]  # (n_active, nb-1): cut k uses column k-1
            hlq = chq[:, :-1]
            cl = cc[:, :-1]
            valid = (cl > 0) & (cl < c_present[:, None])
            gain_mr = quantize_gain(
                eq2_gain(glq * inv, hlq * inv, node_g[:, None], node_h[:, None], lambda_)
            )
            gain_ml = quantize_gain(
                eq2_gain(
                    (glq + gq_miss[:, None]) * inv,
                    (hlq + hq_miss[:, None]) * inv,
                    node_g[:, None],
                    node_h[:, None],
                    lambda_,
                )
            )
            dirs = gain_ml >= gain_mr
            gains = np.where(valid, np.maximum(gain_ml, gain_mr), -np.inf)
            kbest = np.argmax(gains, axis=1)  # first max per node
            rows = np.arange(n_active)
            cand = gains[rows, kbest]
            better = cand > best_gain
            if better.any():
                bsel = np.flatnonzero(better)
                kb = kbest[bsel]
                best_gain[bsel] = cand[bsel]
                best_attr[bsel] = a
                best_cut[bsel] = kb + 1
                dsel = dirs[bsel, kb]
                best_dir[bsel] = dsel
                best_lgq[bsel] = glq[bsel, kb] + np.where(dsel, gq_miss[bsel], 0)
                best_lhq[bsel] = hlq[bsel, kb] + np.where(dsel, hq_miss[bsel], 0)
                best_ln[bsel] = cl[bsel, kb] + np.where(dsel, n_miss[bsel], 0)

        # present | missing boundary
        sp_ok = (n_miss > 0) & (c_present > 0)
        sp_gain = np.where(
            sp_ok,
            quantize_gain(
                eq2_gain(gq_present * inv, hq_present * inv, node_g, node_h, lambda_)
            ),
            -np.inf,
        )
        better = sp_gain > best_gain
        if better.any():
            bsel = np.flatnonzero(better)
            best_gain[bsel] = sp_gain[bsel]
            best_attr[bsel] = a
            best_cut[bsel] = nb
            best_dir[bsel] = False
            best_lgq[bsel] = gq_present[bsel]
            best_lhq[bsel] = hq_present[bsel]
            best_ln[bsel] = c_present[bsel]

    return best_gain, best_attr, best_cut, best_dir, best_lgq, best_lhq, best_ln


def leaf_values(
    node_gq: np.ndarray,
    node_hq: np.ndarray,
    shift: int,
    learning_rate: float,
    lambda_: float,
) -> np.ndarray:
    """Leaf weights ``-eta * G / (H + lambda)`` from fixed-point node stats.

    One shared expression so monolithic and distributed leaves agree to the
    last bit.
    """
    inv = inv_scale(shift)
    return -learning_rate * (node_gq * inv) / (node_hq * inv + lambda_)
