"""The xgbst-1 / xgbst-40 baselines: functional run + multi-core timing.

The paper's CPU baselines execute the same exact-greedy algorithm as
GPU-GBDT (Table II verifies identical trees), so they are reproduced by
running the training engine functionally once with a *CPU work profile*
(no RLE -- XGBoost does not compress; its prediction cache is equivalent to
SmartGD) and replaying the recorded operation counts through
:class:`~repro.cpu.model.CpuTimeModel` at 1 or 40 threads.

Training once and timing at several thread counts mirrors the paper's
methodology of sweeping 10/20/40/80 threads over the same algorithm.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.booster_model import GBDTModel
from ..core.params import GBDTParams
from ..core.trainer import GPUGBDTTrainer
from ..data.matrix import CSRMatrix
from ..gpusim.device import XEON_E5_2640V4_X2, CpuSpec, DeviceSpec, TITAN_X_PASCAL, GIB
from ..gpusim.kernel import GpuDevice
from .model import CpuLedger, CpuTimeModel, translate_gpu_ledger

__all__ = ["cpu_work_profile", "XGBoostCpuRunner"]


def cpu_work_profile(params: GBDTParams) -> GBDTParams:
    """The parameter profile XGBoost's CPU exact method corresponds to."""
    return params.replace(
        use_rle=False,  # XGBoost stores plain sorted columns
        use_smartgd=True,  # its prediction cache plays the same role
        use_custom_setkey=True,  # GPU-only concerns; keep grids irrelevant
        use_custom_workload=True,
    )


#: an unconstrained pseudo-device for recording CPU work (host RAM is 256 GB
#: on the paper's workstation; we only need the ledger, not the OOM model)
_HOST_SPEC = DeviceSpec(
    name="host-recorder",
    sm_count=TITAN_X_PASCAL.sm_count,
    cores_per_sm=TITAN_X_PASCAL.cores_per_sm,
    clock_ghz=TITAN_X_PASCAL.clock_ghz,
    global_mem_bytes=256 * GIB,
    mem_bandwidth_gbs=TITAN_X_PASCAL.mem_bandwidth_gbs,
    pcie_bandwidth_gbs=TITAN_X_PASCAL.pcie_bandwidth_gbs,
    kernel_launch_us=TITAN_X_PASCAL.kernel_launch_us,
    price_usd=0.0,
)


@dataclasses.dataclass
class XGBoostCpuRunner:
    """Train once, model any thread count.

    Parameters
    ----------
    params:
        User hyper-parameters (converted via :func:`cpu_work_profile`).
    spec:
        CPU hardware description (paper default: 2x Xeon E5-2640 v4).
    work_scale, seg_scale, row_scale:
        Same extrapolation factors the GPU run uses, so both sides model the
        same full-scale dataset.
    """

    params: GBDTParams
    spec: CpuSpec = XEON_E5_2640V4_X2
    work_scale: float = 1.0
    seg_scale: float = 1.0
    row_scale: float = 1.0

    def __post_init__(self) -> None:
        self.model: GBDTModel | None = None
        self.ledger: CpuLedger | None = None
        self._time_model = CpuTimeModel(self.spec)

    def fit(self, X: CSRMatrix, y: np.ndarray) -> GBDTModel:
        """Run the functional training and record the CPU work ledger."""
        recorder = GpuDevice(_HOST_SPEC, work_scale=self.work_scale, seg_scale=self.seg_scale)
        trainer = GPUGBDTTrainer(
            cpu_work_profile(self.params), recorder, row_scale=self.row_scale
        )
        self.model = trainer.fit(X, y)
        self.ledger = translate_gpu_ledger(recorder.ledger)
        return self.model

    def modeled_seconds(self, threads: int) -> float:
        """Modeled training wall time at the given thread count."""
        if self.ledger is None:
            raise RuntimeError("call fit() first")
        return self._time_model.total_time(self.ledger, threads)

    def phase_seconds(self, threads: int) -> dict[str, float]:
        """Per-phase breakdown (the paper: ~75% of CPU time in split finding)."""
        if self.ledger is None:
            raise RuntimeError("call fit() first")
        return self._time_model.phase_times(self.ledger, threads)
