"""Independent sequential exact-greedy GBDT trainer (the xgbst-1 oracle).

This is a deliberately *separate* implementation of Algorithm 1 -- plain
per-node loops over per-attribute sorted lists, the way CPU XGBoost's exact
tree method works -- used to validate that the GPU trainer's fused, segmented
kernels compute the same thing.  The paper performs exactly this check:
"We have compared the trees constructed by GPU-GBDT and the CPU-based
XGBoost, and found that the trees are identical."

It shares *semantics* (candidate ordering, tie-breaking, missing-value
handling, thresholds -- see :mod:`repro.core.split`) but no split-finding
code with the GPU path.  It is intentionally simple rather than fast; the
Table-II CPU baselines are timed through the cost model
(:mod:`repro.cpu.parallel_model`), not through this class's wall clock.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from ..core.booster_model import GBDTModel
from ..core.params import GBDTParams
from ..core.sampling import sample_tree
from ..core.split import eq2_gain, quantize_gain
from ..core.tree import DecisionTree
from ..data.matrix import CSRMatrix

__all__ = ["ReferenceTrainer"]


@dataclasses.dataclass
class _Candidate:
    gain: float
    attr: int
    pos: int  # entries [0, pos) of the attr's list go left
    threshold: float
    default_left: bool
    left_g: float
    left_h: float
    left_n: int


@dataclasses.dataclass
class _Node:
    tree_id: int
    depth: int
    lists: List[Tuple[np.ndarray, np.ndarray]]  # per attr: (values desc, inst)
    inst_ids: np.ndarray
    g_sum: float
    h_sum: float


def _guarded_midpoint(hi: float, lo: float) -> float:
    """Midpoint of two distinct sorted values with ``lo <= thr < hi`` so the
    predicate ``x > thr`` routes ``hi`` left and ``lo`` right even when the
    midpoint rounds up to ``hi``."""
    thr = (hi + lo) / 2.0
    if thr >= hi:
        thr = np.nextafter(hi, -np.inf)
    return float(thr)


class ReferenceTrainer:
    """Sequential exact-greedy trainer; see module docstring."""

    def __init__(self, params: GBDTParams | None = None) -> None:
        self.params = params if params is not None else GBDTParams()

    # -------------------------------------------------------------- fitting
    def fit(
        self,
        X: CSRMatrix,
        y: np.ndarray,
        *,
        init_model: GBDTModel | None = None,
    ) -> GBDTModel:
        """Train ``params.n_trees`` *additional* trees with per-node scans.

        ``init_model`` resumes boosting exactly like the GPU trainer's
        warm start: margins are replayed tree by tree (the same per-instance
        addition order as uninterrupted training) and the sampling index
        continues from ``init_model.n_trees``, so ``fit(k)`` + resumed
        ``fit(m)`` equals ``fit(k + m)`` bit for bit.
        """
        p = self.params
        y = np.asarray(y, dtype=np.float64)
        n, d = X.shape
        if y.size != n:
            raise ValueError("y size mismatch")
        loss = p.loss_fn
        init_trees: List[DecisionTree] = [] if init_model is None else list(init_model.trees)
        round_offset = len(init_trees)
        if init_model is not None and init_model.base_score != loss.base_score(y):
            raise ValueError("init_model.base_score does not match the loss base score")

        csc = X.to_csc()
        base_lists: List[Tuple[np.ndarray, np.ndarray]] = []
        for j in range(d):
            rows, vals = csc.column(j)
            order = np.argsort(-vals, kind="stable")  # descending, stable
            base_lists.append((vals[order], rows[order]))

        yhat = np.full(n, loss.base_score(y), dtype=np.float64)
        if init_trees:
            dense_nan = X.to_dense(fill=np.nan).values
            for tree in init_trees:
                yhat += tree.predict(dense_nan)
        trees: List[DecisionTree] = []
        for t in range(p.n_trees):
            t_idx = round_offset + t
            g, h = loss.gradients(y, yhat)
            sample = sample_tree(p.seed, t_idx, n, d, p.subsample, p.colsample_bytree)
            self._tree_attrs = sample.attrs
            if sample.is_trivial:
                tree_lists = base_lists
                included = np.arange(n, dtype=np.int64)
            else:
                tree_lists = []
                for a in sample.attrs:
                    vals_a, inst_a = base_lists[a]
                    keep = sample.inst_mask[inst_a]
                    tree_lists.append((vals_a[keep], inst_a[keep]))
                included = np.flatnonzero(sample.inst_mask)
            tree = DecisionTree()
            tree.add_root(included.size)
            root = _Node(
                tree_id=0,
                depth=0,
                lists=tree_lists,
                inst_ids=included,
                g_sum=float(
                    np.bincount(np.zeros(included.size, np.int64), weights=g[included])[0]
                ),
                h_sum=float(
                    np.bincount(np.zeros(included.size, np.int64), weights=h[included])[0]
                ),
            )
            frontier = [root]
            while frontier:
                nxt: List[_Node] = []
                for node in frontier:
                    cand = None
                    if node.depth < p.max_depth:
                        cand = self._best_split(node, g, h)
                    if cand is None or not (cand.gain > p.gamma):
                        value = -p.learning_rate * node.g_sum / (node.h_sum + p.lambda_)
                        tree.set_leaf(node.tree_id, value)
                        yhat[node.inst_ids] += value
                        continue
                    left, right = self._apply_split(tree, node, cand)
                    nxt.append(left)
                    nxt.append(right)
                frontier = nxt
            if not sample.inst_mask.all():
                excluded = np.flatnonzero(~sample.inst_mask)
                yhat[excluded] += tree.predict(X.select_rows(excluded))
            trees.append(tree)
        return GBDTModel(
            trees=init_trees + trees, params=p, base_score=loss.base_score(y)
        )

    # -------------------------------------------------------- split finding
    def _best_split(self, node: _Node, g: np.ndarray, h: np.ndarray) -> Optional[_Candidate]:
        """Enumerate candidates in the canonical order (interior ascending,
        then the present|missing boundary; lowest attribute first) keeping
        the first strict maximum of the float32-quantized gain."""
        lam = self.params.lambda_
        G, H, n_node = node.g_sum, node.h_sum, node.inst_ids.size
        best: Optional[_Candidate] = None
        for a, (vals, inst) in enumerate(node.lists):
            L = vals.size
            if L == 0:
                continue  # every instance is missing this attribute
            gv = g[inst]
            hv = h[inst]
            cg = np.cumsum(gv)
            ch = np.cumsum(hv)
            g_present, h_present = float(cg[-1]), float(ch[-1])
            g_miss = G - g_present
            h_miss = H - h_present
            n_miss = n_node - L

            if L > 1:
                gl = cg[:-1]
                hl = ch[:-1]
                valid = vals[1:] != vals[:-1]
                gain_mr = quantize_gain(eq2_gain(gl, hl, G, H, lam))
                gain_ml = quantize_gain(eq2_gain(gl + g_miss, hl + h_miss, G, H, lam))
                dirs = gain_ml >= gain_mr
                gains = np.where(valid, np.maximum(gain_ml, gain_mr), -np.inf)
                i = int(np.argmax(gains))  # first maximum
                if np.isfinite(gains[i]) and (best is None or gains[i] > best.gain):
                    dl = bool(dirs[i])
                    best = _Candidate(
                        gain=float(gains[i]),
                        attr=a,
                        pos=i + 1,
                        threshold=_guarded_midpoint(float(vals[i]), float(vals[i + 1])),
                        default_left=dl,
                        left_g=float(gl[i]) + (g_miss if dl else 0.0),
                        left_h=float(hl[i]) + (h_miss if dl else 0.0),
                        left_n=(i + 1) + (n_miss if dl else 0),
                    )
            if n_miss > 0:
                # boundary candidate: all present left | missing right (the
                # mirrored missing|present boundary is the same partition and
                # is not enumerated -- see repro.core.split)
                gain1 = float(
                    quantize_gain(
                        eq2_gain(np.float64(g_present), np.float64(h_present), G, H, lam)
                    )
                )
                if np.isfinite(gain1) and (best is None or gain1 > best.gain):
                    best = _Candidate(
                        gain=gain1,
                        attr=a,
                        pos=L,
                        threshold=float(np.nextafter(vals[-1], -np.inf)),
                        default_left=False,
                        left_g=g_present,
                        left_h=h_present,
                        left_n=L,
                    )
        return best

    # ------------------------------------------------------------- splitting
    def _apply_split(self, tree: DecisionTree, node: _Node, cand: _Candidate) -> Tuple[_Node, _Node]:
        """Route instances positionally and filter every attribute list,
        preserving the descending order (the reference analogue of the GPU's
        order-preserving scatter)."""
        lid, rid = tree.split_node(
            node.tree_id,
            int(self._tree_attrs[cand.attr]),
            cand.threshold,
            cand.default_left,
            cand.gain,
            n_left=cand.left_n,
            n_right=node.inst_ids.size - cand.left_n,
        )
        side = np.full(int(node.inst_ids.max()) + 1, -1, np.int8)
        side[node.inst_ids] = 0 if cand.default_left else 1
        vals_a, inst_a = node.lists[cand.attr]
        side[inst_a[: cand.pos]] = 0
        side[inst_a[cand.pos :]] = 1

        left_lists: List[Tuple[np.ndarray, np.ndarray]] = []
        right_lists: List[Tuple[np.ndarray, np.ndarray]] = []
        for vals, inst in node.lists:
            m = side[inst] == 0
            left_lists.append((vals[m], inst[m]))
            right_lists.append((vals[~m], inst[~m]))

        left_ids = node.inst_ids[side[node.inst_ids] == 0]
        right_ids = node.inst_ids[side[node.inst_ids] == 1]
        left = _Node(
            tree_id=lid,
            depth=node.depth + 1,
            lists=left_lists,
            inst_ids=left_ids,
            g_sum=cand.left_g,
            h_sum=cand.left_h,
        )
        right = _Node(
            tree_id=rid,
            depth=node.depth + 1,
            lists=right_lists,
            inst_ids=right_ids,
            g_sum=node.g_sum - cand.left_g,
            h_sum=node.h_sum - cand.left_h,
        )
        return left, right
