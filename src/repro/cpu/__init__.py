"""CPU-side baselines: the sequential exact-greedy reference (xgbst-1
oracle), the multi-core cost model (xgbst-1 / xgbst-40 timing) and the
dense-representation GPU XGBoost baseline (xgbst-gpu)."""

from .exact_greedy import ReferenceTrainer
from .gpu_xgboost import DenseGpuXgboostTrainer, dense_device_bytes, densify
from .model import CpuLedger, CpuOp, CpuTimeModel, translate_gpu_ledger
from .parallel_model import XGBoostCpuRunner, cpu_work_profile

__all__ = [
    "ReferenceTrainer",
    "DenseGpuXgboostTrainer",
    "dense_device_bytes",
    "densify",
    "CpuLedger",
    "CpuOp",
    "CpuTimeModel",
    "translate_gpu_ledger",
    "XGBoostCpuRunner",
    "cpu_work_profile",
]
