"""The dense-representation GPU XGBoost baseline (xgbst-gpu).

Section II-D describes the GPU plugin of XGBoost the paper compares with:

* **dense data representation** "for the ease of tracking back which
  attribute the best split point belongs to" -- every cell of the n x d
  matrix is materialized, absent entries becoming literal zeros;
* **node interleaving** for node-level parallelism -- one copy of the
  per-instance g/h arrays per node being split.

Both choices are reproduced here, with their Table-II consequences:

* the densified matrix changes which trees are learned on sparse data
  (missing values can no longer take the learned default branch), so RMSE
  drifts -- "probably because of dense representation which considers
  missing values as 0";
* the device-memory footprint is ``8 bytes x n x d`` cells plus
  ``16 bytes x n x 2^(depth-1)`` interleaved gradients, which exceeds the
  Titan X's 12 GB on e2006 / log1p / news20 at full scale and raises
  :class:`~repro.gpusim.memory.DeviceOutOfMemory` -- Table II's "OOM" cells.
"""

from __future__ import annotations

import numpy as np

from ..core.booster_model import GBDTModel
from ..core.params import GBDTParams
from ..core.trainer import GPUGBDTTrainer, TrainReport
from ..data.matrix import CSRMatrix
from ..gpusim.kernel import GpuDevice

__all__ = ["DenseGpuXgboostTrainer", "densify", "dense_device_bytes"]


def densify(X: CSRMatrix) -> CSRMatrix:
    """Materialize every cell: absent entries become present zeros.

    The result has ``nnz == n * d`` -- the whole point of the paper's
    criticism of the dense representation.
    """
    dense = X.to_dense(fill=0.0)
    mask_all = np.ones(dense.values.shape, dtype=bool)
    counts = mask_all.sum(axis=1)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    indices = np.tile(np.arange(X.n_cols, dtype=np.int64), X.n_rows)
    data = dense.values.ravel().astype(np.float64)
    return CSRMatrix(indptr, indices, data, n_cols=X.n_cols)


def dense_device_bytes(n_full: float, d_full: float, max_depth: int) -> float:
    """Full-scale device footprint of the dense baseline (see module doc)."""
    cells = n_full * d_full * 8.0
    interleaved = n_full * 8.0 * (2 ** max(max_depth - 1, 0))
    return cells + interleaved


class DenseGpuXgboostTrainer:
    """Train with xgbst-gpu's representation on the simulated device.

    The caller's ``device`` must carry *cell-based* scales: the functional
    run sees ``n_run * d_run`` cells, the full-scale dataset has
    ``n_full * d_full`` -- density plays no role once everything is
    materialized.  :class:`~repro.bench.harness` sets this up.
    """

    def __init__(
        self,
        params: GBDTParams | None = None,
        device: GpuDevice | None = None,
        *,
        row_scale: float = 1.0,
    ) -> None:
        base = params if params is not None else GBDTParams()
        # dense data has no repetition structure worth compressing, and the
        # plugin predates RLE anyway
        self.params = base.replace(use_rle=False)
        self.device = device if device is not None else GpuDevice()
        self.row_scale = float(row_scale)
        self.report: TrainReport | None = None

    def fit(self, X: CSRMatrix, y: np.ndarray) -> GBDTModel:
        """Densify, then train; may raise ``DeviceOutOfMemory`` during setup
        exactly as the real plugin aborts on large datasets."""
        Xd = densify(X)
        trainer = GPUGBDTTrainer(
            self.params,
            self.device,
            row_scale=self.row_scale,
            dense_memory_model=True,
        )
        model = trainer.fit(Xd, y)
        self.report = trainer.report
        return model
