"""Multi-core CPU cost model for the XGBoost baselines.

The paper compares against sequential XGBoost (``xgbst-1``) and 40-thread
XGBoost (``xgbst-40``) on a dual Xeon E5-2640 v4.  Both run the same
exact-greedy algorithm as GPU-GBDT (the paper verifies the trees are
identical), so the baselines are modeled by *replaying the recorded
operation counts of a functional training run* through a roofline CPU model:

* compute: ``flops / (effective_cores(threads) * clock * flops_per_cycle)``;
* memory: streamed bytes at ``effective_bandwidth(threads)`` and
  data-dependent bytes at a cache-softened fraction of it (one core cannot
  saturate the DRAM controllers -- the reason xgbst-40 is only ~6-10x
  faster than xgbst-1 in Table II);
* Amdahl: a small serial fraction per parallel region plus the region
  fork/join overhead.

:func:`translate_gpu_ledger` converts a simulated-device ledger (kernel
launches) into CPU ops: a kernel's elements/flops/bytes are exactly the
algorithm's work, independent of which silicon executes it; PCIe transfers
are dropped (the CPU reads host memory directly).
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..gpusim.device import XEON_E5_2640V4_X2, CpuSpec
from ..gpusim.kernel import CostLedger

__all__ = ["CpuOp", "CpuLedger", "CpuTimeModel", "translate_gpu_ledger"]


@dataclasses.dataclass(frozen=True)
class CpuOp:
    """One parallel region's resource demand."""

    name: str
    elements: float
    flops_per_element: float
    streamed_bytes: float
    random_bytes: float
    phase: str
    parallel: bool = True

    def __post_init__(self) -> None:
        if self.elements < 0 or self.streamed_bytes < 0 or self.random_bytes < 0:
            raise ValueError("op quantities must be non-negative")


class CpuLedger:
    """Append-only record of CPU ops."""

    def __init__(self) -> None:
        self.ops: List[CpuOp] = []

    def record(
        self,
        name: str,
        elements: float,
        *,
        flops_per_element: float = 1.0,
        streamed_bytes: float = 0.0,
        random_bytes: float = 0.0,
        phase: str = "unphased",
        parallel: bool = True,
    ) -> CpuOp:
        """Append one parallel region's demand and return the record."""
        op = CpuOp(
            name=name,
            elements=elements,
            flops_per_element=flops_per_element,
            streamed_bytes=streamed_bytes,
            random_bytes=random_bytes,
            phase=phase,
            parallel=parallel,
        )
        self.ops.append(op)
        return op

    @property
    def total_elements(self) -> float:
        return sum(op.elements for op in self.ops)

    @property
    def total_bytes(self) -> float:
        return sum(op.streamed_bytes + op.random_bytes for op in self.ops)


class CpuTimeModel:
    """Roofline + Amdahl timing of a :class:`CpuLedger`."""

    def __init__(self, spec: CpuSpec = XEON_E5_2640V4_X2) -> None:
        self.spec = spec

    def _single_thread_time(self, op: CpuOp) -> float:
        spec = self.spec
        compute = op.elements * op.flops_per_element / (
            spec.clock_ghz * 1e9 * spec.flops_per_cycle
        )
        bw = spec.per_thread_bandwidth_gbs * 1e9
        memory = op.streamed_bytes / bw + op.random_bytes / (bw * spec.random_access_efficiency)
        return max(compute, memory)

    def op_time(self, op: CpuOp, threads: int) -> float:
        """Modeled seconds for one op at the given thread count."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        spec = self.spec
        t1 = self._single_thread_time(op)
        if threads == 1 or not op.parallel:
            return t1
        cores = spec.effective_cores(threads)
        compute = op.elements * op.flops_per_element / (
            cores * spec.clock_ghz * 1e9 * spec.flops_per_cycle
        )
        bw = spec.effective_bandwidth(threads) * 1e9
        memory = op.streamed_bytes / bw + op.random_bytes / (bw * spec.random_access_efficiency)
        parallel_part = max(compute, memory)
        # oversubscription: software threads beyond the hardware's add
        # context-switch and cache-thrash overhead -- why the paper found
        # 40 threads faster than 80 on the 40-hardware-thread workstation
        if threads > spec.threads:
            parallel_part *= 1.0 + 0.15 * (threads / spec.threads - 1.0)
        return (
            spec.serial_fraction * t1
            + (1.0 - spec.serial_fraction) * parallel_part
            + spec.parallel_region_us * 1e-6 * max(1.0, threads / spec.threads)
        )

    def total_time(self, ledger: CpuLedger, threads: int) -> float:
        """Modeled wall time of the whole ledger."""
        return sum(self.op_time(op, threads) for op in ledger.ops)

    def phase_times(self, ledger: CpuLedger, threads: int) -> dict[str, float]:
        """Seconds per phase label, first-appearance order."""
        out: dict[str, float] = {}
        for op in ledger.ops:
            out[op.phase] = out.get(op.phase, 0.0) + self.op_time(op, threads)
        return out


def translate_gpu_ledger(ledger: CostLedger) -> CpuLedger:
    """Re-express a simulated-device ledger as CPU ops (see module docstring)."""
    out = CpuLedger()
    for k in ledger.kernels:
        out.record(
            k.name,
            k.work.elements,
            flops_per_element=k.work.flops_per_element,
            streamed_bytes=k.work.coalesced_bytes,
            random_bytes=k.work.irregular_bytes,
            phase=k.phase,
        )
    # PCIe transfers intentionally dropped: host memory is local to the CPU
    return out
