"""Evaluation metrics used in the paper's experimental study (Section IV).

The paper reports root mean squared error (RMSE) on the training sets in
Table II and test error against a time budget in Fig. 10b.  Everything here
operates on plain 1-D NumPy arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rmse", "mse", "error_rate", "accuracy", "mean_abs_error"]


def _check(y: np.ndarray, yhat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y = np.asarray(y, dtype=np.float64).ravel()
    yhat = np.asarray(yhat, dtype=np.float64).ravel()
    if y.shape != yhat.shape:
        raise ValueError(f"shape mismatch: y {y.shape} vs yhat {yhat.shape}")
    if y.size == 0:
        raise ValueError("metrics undefined on empty arrays")
    return y, yhat


def mse(y: np.ndarray, yhat: np.ndarray) -> float:
    """Mean squared error."""
    y, yhat = _check(y, yhat)
    return float(np.mean((y - yhat) ** 2))


def rmse(y: np.ndarray, yhat: np.ndarray) -> float:
    """Root mean squared error -- the "rmse" columns of Table II."""
    return float(np.sqrt(mse(y, yhat)))


def mean_abs_error(y: np.ndarray, yhat: np.ndarray) -> float:
    """Mean absolute error (used by some of the case-study workloads)."""
    y, yhat = _check(y, yhat)
    return float(np.mean(np.abs(y - yhat)))


def error_rate(y: np.ndarray, yhat: np.ndarray, threshold: float = 0.5) -> float:
    """Binary classification error with predictions thresholded at 0.5.

    This is the "test error" metric of Fig. 10b: the paper trains the binary
    susy dataset with MSE loss and 0/1 targets, so a regression output >= 0.5
    counts as a positive prediction.
    """
    y, yhat = _check(y, yhat)
    pred = (yhat >= threshold).astype(np.float64)
    truth = (y >= threshold).astype(np.float64)
    return float(np.mean(pred != truth))


def accuracy(y: np.ndarray, yhat: np.ndarray, threshold: float = 0.5) -> float:
    """1 - error_rate."""
    return 1.0 - error_rate(y, yhat, threshold)
