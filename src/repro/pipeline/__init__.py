"""Continual training: warm-start refreshes, crash-safe checkpoints, drift.

The paper motivates GPU-GBDT with *frequent model refreshes* (Section IV-E
i); this package wires the training side to the serving side as one
pipeline:

``checkpoint``
    Atomic, checksummed, param-guarded checkpoints
    (:class:`CheckpointStore`); resuming from one is bit-identical to never
    having crashed because warm-start boosting is.
``drift``
    Incremental per-feature and prediction-distribution PSI over streaming
    batches (:class:`DriftMonitor`).
``controller``
    The pull-driven loop (:class:`ContinualController`): ingest batches,
    warm-start retrain on drift or schedule, validate on a holdout, publish
    to the :class:`~repro.serve.ModelRegistry`, auto-roll-back on
    validation regression.
``demo``
    ``python -m repro pipeline demo`` -- the whole loop on a simulated
    stream, with an optional fault-injected checkpoint kill/resume.

The warm-start primitive itself lives in the trainers
(``GPUGBDTTrainer.fit(..., init_model=)`` and the CPU reference), where the
differential tests pin down its bit-identity guarantee.
"""

from .checkpoint import (
    Checkpoint,
    CheckpointCorrupt,
    CheckpointError,
    CheckpointMismatch,
    CheckpointStore,
    SimulatedCrash,
    load_checkpoint,
    model_digest,
    params_digest,
    write_checkpoint,
)
from .controller import ContinualController, PipelineEvent, RetrainPolicy
from .demo import PipelineDemoResult, run_pipeline_demo
from .drift import (
    DriftMonitor,
    DriftReport,
    FeatureDriftDetector,
    PredictionDriftDetector,
    psi,
)

__all__ = [
    "Checkpoint",
    "CheckpointCorrupt",
    "CheckpointError",
    "CheckpointMismatch",
    "CheckpointStore",
    "ContinualController",
    "DriftMonitor",
    "DriftReport",
    "FeatureDriftDetector",
    "PipelineDemoResult",
    "PipelineEvent",
    "PredictionDriftDetector",
    "RetrainPolicy",
    "SimulatedCrash",
    "load_checkpoint",
    "model_digest",
    "params_digest",
    "psi",
    "run_pipeline_demo",
    "write_checkpoint",
]
