"""Streaming drift detection: per-feature PSI and prediction-distribution PSI.

The population stability index compares a reference distribution (the data
the serving model was trained on) against what is arriving now::

    PSI = sum_b (a_b - e_b) * ln(a_b / e_b)

over histogram bins ``b`` with expected fraction ``e_b`` and actual
fraction ``a_b``.  The usual reading: < 0.1 stable, 0.1-0.25 drifting,
> 0.25 act.

Everything here is **incremental**: binning is fixed once against the
reference (deciles plus an explicit missing-value bin), and each arriving
batch only bumps integer counts -- scoring a stream of ``B`` batches does
the same total work as scoring their concatenation once, and
``tests/test_pipeline_drift.py`` asserts the scores are identical.

:class:`DriftMonitor` bundles a per-feature detector with a prediction
detector and exports its scores through the shared metrics registry, which
is how the retrain controller's decisions become observable.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from ..obs import get_registry

__all__ = [
    "DriftMonitor",
    "DriftReport",
    "FeatureDriftDetector",
    "PredictionDriftDetector",
    "psi",
]

#: smoothing floor so an empty bin contributes a finite penalty
_EPS = 1e-4


def psi(expected: np.ndarray, actual: np.ndarray) -> float:
    """PSI between two count (or fraction) vectors over the same bins."""
    e = np.asarray(expected, dtype=np.float64)
    a = np.asarray(actual, dtype=np.float64)
    if e.shape != a.shape:
        raise ValueError(f"bin shape mismatch: {e.shape} vs {a.shape}")
    if e.sum() <= 0 or a.sum() <= 0:
        return 0.0
    e = np.clip(e / e.sum(), _EPS, None)
    a = np.clip(a / a.sum(), _EPS, None)
    e = e / e.sum()
    a = a / a.sum()
    return float(np.sum((a - e) * np.log(a / e)))


def _quantile_edges(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Interior bin edges from reference quantiles (deduplicated -- heavily
    tied features get fewer, wider bins rather than empty ones)."""
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return np.empty(0, dtype=np.float64)
    qs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    return np.unique(np.quantile(finite, qs))


def _bin_counts(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Counts per bin: ``len(edges) + 1`` value bins plus a trailing missing
    (NaN) bin."""
    missing = ~np.isfinite(values)
    idx = np.searchsorted(edges, values[~missing], side="right")
    counts = np.bincount(idx, minlength=edges.size + 1).astype(np.float64)
    return np.concatenate([counts, [float(missing.sum())]])


class PredictionDriftDetector:
    """Incremental PSI of a 1-D stream (margins) against a reference."""

    def __init__(self, reference: np.ndarray, n_bins: int = 10) -> None:
        reference = np.asarray(reference, dtype=np.float64).reshape(-1)
        if reference.size < 2:
            raise ValueError("need at least 2 reference values")
        self.edges = _quantile_edges(reference, n_bins)
        self.ref_counts = _bin_counts(reference, self.edges)
        self.cur_counts = np.zeros_like(self.ref_counts)
        self.n_seen = 0

    def update(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        self.cur_counts += _bin_counts(values, self.edges)
        self.n_seen += values.size

    def score(self) -> float:
        return psi(self.ref_counts, self.cur_counts)

    def reset(self) -> None:
        self.cur_counts[:] = 0.0
        self.n_seen = 0


class FeatureDriftDetector:
    """Incremental per-feature PSI over streaming dense batches.

    ``NaN`` cells are missing values and get their own bin, so a feature
    whose *missingness* shifts registers drift even when the observed
    values do not.
    """

    def __init__(self, reference: np.ndarray, n_bins: int = 10) -> None:
        reference = np.asarray(reference, dtype=np.float64)
        if reference.ndim != 2 or reference.shape[0] < 2:
            raise ValueError("reference must be a 2-D matrix with >= 2 rows")
        self.n_features = reference.shape[1]
        self.edges: List[np.ndarray] = []
        self.ref_counts: List[np.ndarray] = []
        self.cur_counts: List[np.ndarray] = []
        for j in range(self.n_features):
            edges = _quantile_edges(reference[:, j], n_bins)
            self.edges.append(edges)
            self.ref_counts.append(_bin_counts(reference[:, j], edges))
            self.cur_counts.append(np.zeros(edges.size + 2, dtype=np.float64))
        self.n_seen = 0

    def update(self, batch: np.ndarray) -> None:
        batch = np.asarray(batch, dtype=np.float64)
        if batch.ndim != 2 or batch.shape[1] != self.n_features:
            raise ValueError(
                f"batch must have {self.n_features} columns, got {batch.shape}"
            )
        for j in range(self.n_features):
            self.cur_counts[j] += _bin_counts(batch[:, j], self.edges[j])
        self.n_seen += batch.shape[0]

    def feature_scores(self) -> np.ndarray:
        """PSI per feature (zeros until the first update)."""
        return np.array(
            [psi(self.ref_counts[j], self.cur_counts[j]) for j in range(self.n_features)]
        )

    def reset(self) -> None:
        for c in self.cur_counts:
            c[:] = 0.0
        self.n_seen = 0


@dataclasses.dataclass
class DriftReport:
    """Snapshot of the monitor's state at one point in the stream."""

    rows_seen: int
    max_feature_psi: float
    mean_feature_psi: float
    prediction_psi: float
    #: feature indices sorted by PSI, worst first (top 5)
    top_features: List[int]

    @property
    def score(self) -> float:
        """The controller's trigger scalar: worst of feature vs prediction."""
        return max(self.max_feature_psi, self.prediction_psi)


class DriftMonitor:
    """Feature + prediction drift against the serving model's training data.

    ``rebase`` re-anchors both references after a retrain is accepted: the
    new model's training window becomes the new "expected" distribution.
    """

    def __init__(
        self,
        reference_X: np.ndarray,
        reference_preds: np.ndarray,
        *,
        n_bins: int = 10,
    ) -> None:
        self.features = FeatureDriftDetector(reference_X, n_bins=n_bins)
        self.predictions = PredictionDriftDetector(reference_preds, n_bins=n_bins)
        self.n_bins = n_bins

    def observe(self, X_batch: np.ndarray, preds: np.ndarray) -> None:
        self.features.update(X_batch)
        self.predictions.update(preds)

    def report(self) -> DriftReport:
        scores = self.features.feature_scores()
        pred_psi = self.predictions.score()
        order = np.argsort(-scores)
        rep = DriftReport(
            rows_seen=self.features.n_seen,
            max_feature_psi=float(scores.max()) if scores.size else 0.0,
            mean_feature_psi=float(scores.mean()) if scores.size else 0.0,
            prediction_psi=pred_psi,
            top_features=[int(j) for j in order[:5]],
        )
        reg = get_registry()
        reg.gauge("pipeline_drift_max_feature_psi", "worst per-feature PSI").set(
            rep.max_feature_psi
        )
        reg.gauge("pipeline_drift_prediction_psi", "prediction-distribution PSI").set(
            rep.prediction_psi
        )
        return rep

    def drifted(self, threshold: float) -> bool:
        return self.report().score >= threshold

    def reset(self) -> None:
        """Clear the current-window counts (after a retrain decision)."""
        self.features.reset()
        self.predictions.reset()

    def rebase(self, reference_X: np.ndarray, reference_preds: np.ndarray) -> None:
        """Re-anchor the reference distributions (accepted model swap)."""
        self.features = FeatureDriftDetector(reference_X, n_bins=self.n_bins)
        self.predictions = PredictionDriftDetector(
            reference_preds, n_bins=self.n_bins
        )

    @classmethod
    def for_model(cls, model, reference_X: np.ndarray, *, n_bins: int = 10) -> "DriftMonitor":
        """Monitor anchored to ``model``'s predictions on its training data."""
        reference_X = np.asarray(reference_X, dtype=np.float64)
        return cls(
            reference_X, model.predict(reference_X), n_bins=n_bins
        )
