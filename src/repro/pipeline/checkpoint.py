"""Crash-safe training checkpoints: atomic writes, checksums, param digests.

A checkpoint freezes a boosting run between rounds: the model payload (the
same canonical JSON the registry content-addresses), the number of boosting
rounds completed, and a digest of every hyper-parameter that shapes tree
growth.  Because warm-start boosting is bit-identical to uninterrupted
training (:meth:`repro.core.trainer.GPUGBDTTrainer.fit` with
``init_model=``), "resume from the last checkpoint" reproduces the exact
model an uninterrupted run would have produced -- the fault-injection tests
assert equal content digests.

Safety properties
-----------------
* **Atomic**: files are written via :func:`repro.ioutil.atomic_write_text`
  (tmp file in the destination directory, fsync, rename).  A kill at any
  point leaves either the previous checkpoint set or the new one, plus at
  most an orphaned ``*.tmp`` the store ignores.
* **Self-verifying**: the envelope carries a SHA-256 checksum of the
  payload; truncated or corrupted files raise :class:`CheckpointCorrupt`
  on load, and :meth:`CheckpointStore.latest` skips them (counting the
  recovery in the metrics registry) and falls back to the newest valid one.
* **Param-guarded**: loading with a params whose growth-relevant fields
  differ from the writer's raises :class:`CheckpointMismatch` -- silently
  resuming under different hyper-parameters would produce a model that
  matches neither run.  ``n_trees`` is deliberately excluded from the
  digest: it is the round *budget*, not a growth parameter, and the round
  count is stored explicitly.

The sampling state needs no separate RNG blob: per-round row/column
sampling is a pure function of ``(params.seed, round_index)``
(:func:`repro.core.sampling.sample_tree`), so the resumed round index *is*
the RNG state.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
from pathlib import Path
from typing import Dict, List, Optional

from ..core.booster_model import GBDTModel
from ..core.params import GBDTParams
from ..ioutil import SimulatedCrash, atomic_write_text
from ..obs import get_registry, span

__all__ = [
    "CHECKPOINT_FORMAT",
    "Checkpoint",
    "CheckpointCorrupt",
    "CheckpointError",
    "CheckpointMismatch",
    "CheckpointStore",
    "SimulatedCrash",
    "load_checkpoint",
    "model_digest",
    "params_digest",
    "write_checkpoint",
]

CHECKPOINT_FORMAT = "repro-ckpt-v1"
_FILE_RE = re.compile(r"^ckpt-(\d{6})\.json$")


class CheckpointError(RuntimeError):
    """Base class for checkpoint load failures."""


class CheckpointCorrupt(CheckpointError):
    """The file is truncated, unparsable, or fails its checksum."""


class CheckpointMismatch(CheckpointError):
    """The checkpoint was written under different training parameters."""


def canonical_model_payload(model: GBDTModel) -> str:
    """Deterministic model JSON -- byte-identical to the serving registry's
    content-addressed form, so checkpoint and registry digests agree."""
    return json.dumps(
        json.loads(model.to_json()), sort_keys=True, separators=(",", ":")
    )


def model_digest(model_or_payload: GBDTModel | str) -> str:
    """12-hex content digest; equals the :class:`~repro.serve.ModelRegistry`
    version id of the same model."""
    payload = (
        model_or_payload
        if isinstance(model_or_payload, str)
        else canonical_model_payload(model_or_payload)
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def params_digest(params: GBDTParams) -> str:
    """Digest of every growth-shaping hyper-parameter (``n_trees`` excluded:
    it budgets rounds, it does not shape them)."""
    config = params.to_config()
    config.pop("n_trees", None)
    text = json.dumps(config, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclasses.dataclass
class Checkpoint:
    """One loaded (or to-be-written) checkpoint."""

    round: int
    model_payload: str
    params_digest: str
    meta: Dict[str, object] = dataclasses.field(default_factory=dict)
    path: Optional[Path] = None

    @property
    def model_digest(self) -> str:
        return model_digest(self.model_payload)

    def restore_model(self, params: GBDTParams | None = None) -> GBDTModel:
        """Rebuild the model; pass the training params so the restored model
        can seed a warm start under the exact same configuration."""
        return GBDTModel.from_json(self.model_payload, params=params)


def write_checkpoint(path: Path | str, ckpt: Checkpoint, *, fault_hook=None) -> Path:
    """Serialize ``ckpt`` to ``path`` atomically; returns the path."""
    payload = json.dumps(
        {
            "round": int(ckpt.round),
            "params_digest": ckpt.params_digest,
            "model": ckpt.model_payload,
            "meta": ckpt.meta,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    envelope = json.dumps(
        {
            "format": CHECKPOINT_FORMAT,
            "checksum": hashlib.sha256(payload.encode("utf-8")).hexdigest(),
            "payload": payload,
        }
    )
    with span("checkpoint_write", round=ckpt.round, bytes=len(envelope)):
        out = atomic_write_text(path, envelope, fault_hook=fault_hook)
    reg = get_registry()
    reg.counter("checkpoint_writes_total", "checkpoints written").inc()
    reg.gauge("checkpoint_bytes", "size of the last checkpoint written").set(
        float(len(envelope))
    )
    return out


def load_checkpoint(
    path: Path | str, params: GBDTParams | None = None
) -> Checkpoint:
    """Load and verify one checkpoint file.

    Raises :class:`CheckpointCorrupt` on truncation/checksum failure and
    :class:`CheckpointMismatch` when ``params`` digests differently from the
    params the checkpoint was written under.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CheckpointCorrupt(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointCorrupt(f"checkpoint {path} is not valid JSON (truncated write?)") from exc
    if not isinstance(envelope, dict) or envelope.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointCorrupt(f"checkpoint {path} has unknown format")
    payload = envelope.get("payload")
    checksum = envelope.get("checksum")
    if not isinstance(payload, str) or not isinstance(checksum, str):
        raise CheckpointCorrupt(f"checkpoint {path} envelope is incomplete")
    if hashlib.sha256(payload.encode("utf-8")).hexdigest() != checksum:
        raise CheckpointCorrupt(f"checkpoint {path} fails its checksum")
    record = json.loads(payload)
    ckpt = Checkpoint(
        round=int(record["round"]),
        model_payload=record["model"],
        params_digest=record["params_digest"],
        meta=dict(record.get("meta", {})),
        path=path,
    )
    if params is not None and params_digest(params) != ckpt.params_digest:
        raise CheckpointMismatch(
            f"checkpoint {path} was written under different training params "
            f"(stored digest {ckpt.params_digest}, requested {params_digest(params)}); "
            "refusing to resume"
        )
    return ckpt


class CheckpointStore:
    """A directory of round-numbered checkpoints with crash recovery.

    Files are named ``ckpt-NNNNNN.json`` by boosting round.  ``latest``
    walks rounds newest-first, skipping corrupt/truncated files (counted as
    recoveries) so a crash mid-write falls back to the last good state; a
    *valid* file written under different params raises instead of being
    silently skipped.
    """

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, round_: int) -> Path:
        return self.directory / f"ckpt-{round_:06d}.json"

    def rounds(self) -> List[int]:
        """Round numbers with a checkpoint file present, ascending."""
        out = []
        for p in self.directory.iterdir():
            m = _FILE_RE.match(p.name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def save(
        self,
        model: GBDTModel,
        params: GBDTParams,
        *,
        round_: Optional[int] = None,
        meta: Optional[Dict[str, object]] = None,
        fault_hook=None,
    ) -> Checkpoint:
        """Checkpoint ``model`` after ``round_`` boosting rounds (defaults
        to ``model.n_trees``); returns the written record."""
        round_ = model.n_trees if round_ is None else int(round_)
        ckpt = Checkpoint(
            round=round_,
            model_payload=canonical_model_payload(model),
            params_digest=params_digest(params),
            meta=dict(meta or {}),
        )
        ckpt.path = write_checkpoint(
            self.path_for(round_), ckpt, fault_hook=fault_hook
        )
        return ckpt

    def latest(self, params: GBDTParams | None = None) -> Optional[Checkpoint]:
        """Newest loadable checkpoint, or ``None`` if the store is empty.

        Corrupt files are skipped (and counted in the
        ``checkpoint_recoveries_total`` metric); a params mismatch on a
        valid file propagates as :class:`CheckpointMismatch`.
        """
        skipped = 0
        found: Optional[Checkpoint] = None
        for round_ in reversed(self.rounds()):
            try:
                found = load_checkpoint(self.path_for(round_), params=params)
                break
            except CheckpointCorrupt:
                skipped += 1
        if skipped:
            get_registry().counter(
                "checkpoint_recoveries_total",
                "corrupt/truncated checkpoints skipped during recovery",
            ).inc(skipped)
        return found

    def prune(self, keep_last: int = 3) -> int:
        """Drop all but the newest ``keep_last`` checkpoints; returns the
        number removed (orphaned ``*.tmp`` files are removed too)."""
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        removed = 0
        for round_ in self.rounds()[:-keep_last]:
            try:
                self.path_for(round_).unlink()
                removed += 1
            except OSError:
                pass
        for tmp in self.directory.glob("*.tmp"):
            try:
                tmp.unlink()
            except OSError:
                pass
        return removed
