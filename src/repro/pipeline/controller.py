"""The continual-training loop: ingest, detect drift, warm-start, publish.

:class:`ContinualController` closes the loop the paper motivates with its
credit-risk case study (Section IV-E i: retrain on a rolling window as
transactions stream in).  It is pull-driven in the same style as
:class:`repro.serve.batcher.MicroBatcher` -- an injectable clock, explicit
``now=`` overrides, and a ``poll`` the host loop calls on every tick:

1. :meth:`ingest` appends arriving ``(X, y)`` batches to a bounded sliding
   window and feeds the :class:`~repro.pipeline.drift.DriftMonitor`;
2. :meth:`poll` decides whether to refresh -- on drift past the policy
   threshold, or on schedule -- and if so **warm-starts** boosting from the
   serving model (``refresh_trees`` new trees on the current window) rather
   than retraining from scratch;
3. the candidate is validated on a fixed holdout and published to the
   :class:`~repro.serve.ModelRegistry` (a hot swap the serving path picks
   up on its next batch);
4. if the validation loss regressed past ``validation_tolerance`` the
   controller **auto-rolls-back** via ``ModelRegistry.rollback`` and keeps
   boosting from the last good model;
5. accepted refreshes are checkpointed crash-safely when a
   :class:`~repro.pipeline.checkpoint.CheckpointStore` is attached.

Every decision is recorded as a :class:`PipelineEvent`, traced as a
``repro.obs`` span, and counted in the metrics registry (drift scores,
retrains by reason, rollbacks, refresh latency).
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..core.booster import as_csr
from ..core.booster_model import GBDTModel
from ..core.params import GBDTParams
from ..core.trainer import GPUGBDTTrainer
from ..gpusim.kernel import GpuDevice
from ..obs import get_registry, span
from ..serve.registry import DEFAULT_NAME, ModelRegistry
from .checkpoint import CheckpointStore
from .drift import DriftMonitor

__all__ = ["ContinualController", "PipelineEvent", "RetrainPolicy"]


@dataclasses.dataclass(frozen=True)
class RetrainPolicy:
    """Knobs governing when the controller refreshes and when it rolls back."""

    #: refresh when the drift score (worst of feature/prediction PSI) reaches this
    drift_threshold: float = 0.25
    #: refresh at least this often (seconds of controller clock); None = drift-only
    schedule_interval: Optional[float] = 3600.0
    #: never refresh more often than this (thrash guard)
    min_retrain_interval: float = 0.0
    #: trees appended per warm-start refresh
    refresh_trees: int = 10
    #: sliding-window capacity in rows (oldest rows fall out)
    max_window_rows: int = 4096
    #: minimum window occupancy before any refresh
    min_window_rows: int = 64
    #: relative validation-loss regression that triggers auto-rollback
    validation_tolerance: float = 0.02
    #: checkpoint every Nth accepted refresh (0 disables)
    checkpoint_every: int = 1
    #: histogram bins per drift detector
    drift_bins: int = 10

    def __post_init__(self) -> None:
        if self.drift_threshold <= 0:
            raise ValueError("drift_threshold must be positive")
        if self.schedule_interval is not None and self.schedule_interval <= 0:
            raise ValueError("schedule_interval must be positive or None")
        if self.refresh_trees < 1:
            raise ValueError("refresh_trees must be >= 1")
        if self.max_window_rows < self.min_window_rows:
            raise ValueError("max_window_rows must be >= min_window_rows")
        if self.min_window_rows < 8:
            raise ValueError("min_window_rows must be >= 8")
        if self.validation_tolerance < 0:
            raise ValueError("validation_tolerance must be >= 0")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.min_retrain_interval < 0:
            raise ValueError("min_retrain_interval must be >= 0")


@dataclasses.dataclass
class PipelineEvent:
    """One controller decision, in clock order."""

    time: float
    kind: str  # "publish" | "rollback" | "skip"
    reason: str
    detail: Dict[str, object] = dataclasses.field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"t={self.time:9.1f}  {self.kind:<8} {self.reason:<9} {extra}"


class ContinualController:
    """Drift-and-schedule-driven warm-start retraining with auto-rollback.

    Parameters
    ----------
    params:
        Base hyper-parameters; ``params.n_trees`` sizes the bootstrap train,
        ``policy.refresh_trees`` sizes each warm-start refresh.
    holdout:
        ``(X_val, y_val)`` used for every publish/rollback decision.  Fixed
        by design: a holdout that drifted with the stream could not detect a
        refresh that made the model worse.
    registry:
        Serving-side registry to hot-swap (a private one when omitted).
    model:
        Optional pre-trained serving model; when omitted the first eligible
        ``poll`` bootstraps one from the window.
    store:
        Optional :class:`CheckpointStore`; accepted refreshes are persisted
        crash-safely.
    clock / now= arguments:
        Same convention as the micro-batcher: injectable for tests and
        simulation, ``time.monotonic`` for real loops.
    device_factory:
        Builds the simulated device each refresh trains against; modeled
        seconds accumulate into ``modeled_train_seconds``.
    """

    def __init__(
        self,
        params: GBDTParams,
        holdout: Tuple[np.ndarray, np.ndarray],
        *,
        registry: Optional[ModelRegistry] = None,
        model: Optional[GBDTModel] = None,
        store: Optional[CheckpointStore] = None,
        policy: Optional[RetrainPolicy] = None,
        model_name: str = DEFAULT_NAME,
        clock: Callable[[], float] = time.monotonic,
        device_factory: Callable[[], GpuDevice] = GpuDevice,
    ) -> None:
        self.params = params
        self.policy = policy if policy is not None else RetrainPolicy()
        self.registry = registry if registry is not None else ModelRegistry()
        self.store = store
        self.model_name = model_name
        self._clock = clock
        self._device_factory = device_factory

        X_val, y_val = holdout
        self._X_val = np.asarray(X_val, dtype=np.float64)
        self._y_val = np.asarray(y_val, dtype=np.float64)

        self._window: Deque[Tuple[np.ndarray, np.ndarray]] = deque()
        self._window_rows = 0
        self.monitor: Optional[DriftMonitor] = None
        self.events: List[PipelineEvent] = []
        self.model: Optional[GBDTModel] = None
        self._active_val: Optional[float] = None
        self._last_refresh: Optional[float] = None
        self._accepted = 0
        self.modeled_train_seconds = 0.0
        if model is not None:
            self._adopt(model, reason="initial", now=self._clock(), publish=True)

    # -------------------------------------------------------------- ingestion
    def ingest(self, X_batch, y_batch, now: Optional[float] = None) -> None:
        """Append one arriving batch to the sliding window and score drift."""
        now = self._clock() if now is None else now
        dense = self._to_dense(X_batch)
        y = np.asarray(y_batch, dtype=np.float64)
        if dense.shape[0] != y.size:
            raise ValueError("batch X/y row mismatch")
        with span("pipeline_ingest", rows=dense.shape[0]):
            self._window.append((dense, y))
            self._window_rows += dense.shape[0]
            while (
                self._window_rows - self._window[0][0].shape[0]
                >= self.policy.max_window_rows
            ):
                old, _ = self._window.popleft()
                self._window_rows -= old.shape[0]
            if self.model is not None:
                if self.monitor is None:
                    # adopted a model before seeing any data: anchor the
                    # drift reference on the first arriving rows
                    if self._window_rows >= 2:
                        X_ref, _ = self._window_matrices()
                        self.monitor = DriftMonitor.for_model(
                            self.model, X_ref, n_bins=self.policy.drift_bins
                        )
                else:
                    self.monitor.observe(dense, self.model.predict(dense))
        get_registry().counter(
            "pipeline_rows_ingested_total", "rows ingested into the training window"
        ).inc(dense.shape[0])

    # ----------------------------------------------------------------- polling
    def poll(self, now: Optional[float] = None) -> List[PipelineEvent]:
        """One controller tick; returns the events it generated (often none)."""
        now = self._clock() if now is None else now
        if self._window_rows < self.policy.min_window_rows:
            return []
        reason = self._due_reason(now)
        if reason is None:
            return []
        before = len(self.events)
        self._refresh(now, reason)
        return self.events[before:]

    def _due_reason(self, now: float) -> Optional[str]:
        if self.model is None:
            return "bootstrap"
        if (
            self._last_refresh is not None
            and now - self._last_refresh < self.policy.min_retrain_interval
        ):
            return None
        if (
            self.monitor is not None
            and self.monitor.report().score >= self.policy.drift_threshold
        ):
            return "drift"
        if (
            self.policy.schedule_interval is not None
            and self._last_refresh is not None
            and now - self._last_refresh >= self.policy.schedule_interval
        ):
            return "schedule"
        return None

    # ---------------------------------------------------------------- refresh
    def _window_matrices(self) -> Tuple[np.ndarray, np.ndarray]:
        X = np.vstack([x for x, _ in self._window])
        y = np.concatenate([y for _, y in self._window])
        return X, y

    def _refresh(self, now: float, reason: str) -> None:
        p = self.policy
        reg = get_registry()
        X_dense, y = self._window_matrices()
        n_new = self.params.n_trees if self.model is None else p.refresh_trees
        t0 = time.perf_counter()
        with span(
            "pipeline_refresh",
            reason=reason,
            rows=X_dense.shape[0],
            new_trees=n_new,
            warm=self.model is not None,
        ):
            device = self._device_factory()
            trainer = GPUGBDTTrainer(
                self.params.replace(n_trees=n_new), device
            )
            candidate = trainer.fit(as_csr(X_dense), y, init_model=self.model)
            self.modeled_train_seconds += device.elapsed_seconds()

            with span("pipeline_validate", rows=self._y_val.size):
                val = float(
                    self.params.loss_fn.value(
                        self._y_val, candidate.predict(self._X_val)
                    )
                )
            version = self.registry.publish(candidate, self.model_name)

            regressed = (
                self._active_val is not None
                and val > self._active_val * (1.0 + p.validation_tolerance) + 1e-12
            )
            if regressed:
                restored = self.registry.rollback(self.model_name)
                reg.counter(
                    "pipeline_rollbacks_total",
                    "published refreshes rolled back on validation regression",
                ).inc()
                self.events.append(
                    PipelineEvent(
                        time=now,
                        kind="rollback",
                        reason=reason,
                        detail={
                            "rejected": version,
                            "restored": restored,
                            "val_loss": round(val, 6),
                            "active_val_loss": round(self._active_val, 6),
                        },
                    )
                )
            else:
                self._adopt(candidate, reason=reason, now=now, publish=False)
                self._active_val = val
                self.events.append(
                    PipelineEvent(
                        time=now,
                        kind="publish",
                        reason=reason,
                        detail={
                            "version": version,
                            "trees": candidate.n_trees,
                            "val_loss": round(val, 6),
                        },
                    )
                )
        wall = time.perf_counter() - t0
        reg.counter(
            "pipeline_retrains_total", "warm-start refreshes attempted", reason=reason
        ).inc()
        reg.histogram(
            "pipeline_refresh_seconds", "wall seconds per refresh attempt"
        ).observe(wall)
        reg.gauge(
            "pipeline_modeled_train_seconds",
            "cumulative modeled device seconds spent refreshing",
        ).set(self.modeled_train_seconds)
        self._last_refresh = now
        if self.monitor is not None:
            self.monitor.reset()

    def _adopt(
        self, model: GBDTModel, *, reason: str, now: float, publish: bool
    ) -> None:
        """Install ``model`` as the serving model and re-anchor drift."""
        self.model = model
        if publish:
            self.registry.publish(model, self.model_name)
            self._active_val = float(
                self.params.loss_fn.value(self._y_val, model.predict(self._X_val))
            )
            self._last_refresh = now
        self._accepted += 1
        if self._window_rows >= 2:
            X_ref, _ = self._window_matrices()
            self.monitor = DriftMonitor.for_model(
                model, X_ref, n_bins=self.policy.drift_bins
            )
        if (
            self.store is not None
            and self.policy.checkpoint_every
            and self._accepted % self.policy.checkpoint_every == 0
        ):
            self.store.save(
                model,
                self.params,
                meta={"reason": reason, "time": now},
            )

    # ----------------------------------------------------------------- status
    @property
    def window_rows(self) -> int:
        return self._window_rows

    @property
    def active_version(self) -> Optional[str]:
        try:
            return self.registry.active(self.model_name).version
        except KeyError:
            return None

    def summary(self) -> Dict[str, float]:
        """Counters for reports and tests."""
        kinds = [e.kind for e in self.events]
        reasons = [e.reason for e in self.events if e.kind == "publish"]
        return {
            "publishes": float(kinds.count("publish")),
            "rollbacks": float(kinds.count("rollback")),
            "drift_refreshes": float(reasons.count("drift")),
            "scheduled_refreshes": float(reasons.count("schedule")),
            "window_rows": float(self._window_rows),
            "modeled_train_seconds": self.modeled_train_seconds,
            "active_val_loss": float("nan")
            if self._active_val is None
            else self._active_val,
        }

    @staticmethod
    def _to_dense(X) -> np.ndarray:
        from ..data.matrix import CSRMatrix, DenseMatrix

        if isinstance(X, CSRMatrix):
            return X.to_dense(fill=np.nan).values
        if isinstance(X, DenseMatrix):
            return X.values
        dense = np.asarray(X, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("expected a 2-D batch")
        return dense
