"""``python -m repro pipeline demo``: the whole continual loop on one stream.

Two phases on a simulated credit-risk-shaped stream:

**Phase A -- checkpointed base training.**  The base model is boosted one
round at a time, checkpointing crash-safely after every round.  With
``kill_at_round=K`` the demo simulates a hard kill *during* the round-K
checkpoint write -- and, to make recovery earn its keep, a torn
(truncated) file is left at the destination the way a non-atomic writer
would.  Re-running with ``resume=True`` refuses the torn file (checksum),
falls back to the newest valid checkpoint, and warm-starts the remaining
rounds; because warm-start boosting is bit-identical, the resumed run ends
on the **same content digest** as an uninterrupted one (the CI smoke step
asserts exactly this).

**Phase B -- drift-triggered continual training.**  Batches are sampled
with weights that slide toward high values of the first feature, so the
arriving distribution shifts (covariate drift) while labels stay consistent
with features, and a mid-stream run of batches carries corrupted labels
(a poisoned upstream join).  The :class:`~repro.pipeline.ContinualController`
ingests batches on a simulated clock, warm-start-refreshes on drift or
schedule, publishes to the serving registry, and auto-rolls-back the
refresh trained on poisoned labels when holdout validation regresses.
"""

from __future__ import annotations

import dataclasses
import tempfile
from pathlib import Path
from typing import List, Optional

import numpy as np

from ..core.params import GBDTParams
from ..core.trainer import GPUGBDTTrainer
from ..data.datasets import make_dataset
from ..gpusim.kernel import GpuDevice
from ..ioutil import SimulatedCrash
from ..obs import span
from ..serve.registry import ModelRegistry
from .checkpoint import CheckpointStore, model_digest
from .controller import ContinualController, PipelineEvent, RetrainPolicy

__all__ = ["PipelineDemoResult", "run_pipeline_demo"]


@dataclasses.dataclass
class PipelineDemoResult:
    """Everything the demo run decided and produced."""

    digest: str  # content digest of the final active model
    base_digest: str  # digest after phase A (base training)
    base_rounds: int
    resumed_from: Optional[int]  # checkpoint round resumed from, if any
    checkpoint_rounds: List[int]
    events: List[PipelineEvent]
    summary: dict
    modeled_train_seconds: float

    @property
    def text(self) -> str:
        lines = [
            "continual-training pipeline demo",
            "=" * 64,
            f"phase A: base model of {self.base_rounds} rounds"
            + (
                f" (resumed from checkpoint round {self.resumed_from})"
                if self.resumed_from is not None
                else " (no resume)"
            ),
            f"  checkpoints on disk: rounds {self.checkpoint_rounds}",
            f"  base model digest: {self.base_digest}",
            "phase B: drifting stream with a poisoned-label window",
        ]
        for e in self.events:
            lines.append(f"  {e}")
        s = self.summary
        lines += [
            f"refreshes published: {int(s['publishes'])} "
            f"(drift={int(s['drift_refreshes'])}, schedule={int(s['scheduled_refreshes'])}); "
            f"rollbacks: {int(s['rollbacks'])}",
            f"modeled device seconds across all refreshes: "
            f"{self.modeled_train_seconds:.3f}",
            f"PIPELINE_DIGEST={self.digest}",
        ]
        return "\n".join(lines)


def _make_torn_file(path: Path) -> None:
    """Leave a torn half-written checkpoint, as a non-atomic writer would."""
    path.write_text('{"format": "repro-ckpt-v1", "checksum": "dead', encoding="utf-8")


def run_pipeline_demo(
    *,
    quick: bool = False,
    ckpt_dir: Optional[Path | str] = None,
    kill_at_round: Optional[int] = None,
    resume: bool = False,
    seed: int = 11,
) -> PipelineDemoResult:
    """Run the demo; raises :class:`SimulatedCrash` when ``kill_at_round``
    is reached (the CLI maps it to exit code 3)."""
    with span("pipeline_demo", quick=quick, resume=resume):
        return _run(quick, ckpt_dir, kill_at_round, resume, seed)


def _run(quick, ckpt_dir, kill_at_round, resume, seed) -> PipelineDemoResult:
    ds = make_dataset("covtype", run_rows=320 if quick else 800, seed=seed)
    params = GBDTParams(n_trees=6 if quick else 12, max_depth=4, seed=3)
    store = CheckpointStore(
        ckpt_dir if ckpt_dir is not None else tempfile.mkdtemp(prefix="repro-ckpt-")
    )

    # ---------------------------------------------- phase A: base training
    model = None
    start_round = 0
    resumed_from: Optional[int] = None
    if resume:
        ck = store.latest(params)
        if ck is not None:
            model = ck.restore_model(params)
            start_round = ck.round
            resumed_from = ck.round
    modeled = 0.0
    for r in range(start_round + 1, params.n_trees + 1):
        device = GpuDevice()
        trainer = GPUGBDTTrainer(params.replace(n_trees=1), device)
        model = trainer.fit(ds.X, ds.y, init_model=model)
        modeled += device.elapsed_seconds()

        fault_hook = None
        if kill_at_round is not None and r == kill_at_round:
            target = store.path_for(r)

            def fault_hook(step: str, _target=target, _r=r) -> None:
                if step == "synced":
                    # a torn write at the destination plus the orphan tmp:
                    # exactly what a kill mid-write on a non-atomic
                    # filesystem leaves behind
                    _make_torn_file(_target)
                    raise SimulatedCrash(
                        f"simulated kill during checkpoint write (round {_r})"
                    )

        store.save(model, params, meta={"phase": "base"}, fault_hook=fault_hook)
    assert model is not None
    base_digest = model_digest(model)

    # ------------------------------------- phase B: drifting stream + poison
    dense = ds.X.to_dense(fill=np.nan).values
    y = ds.y
    # covariate drift that preserves P(y|x): batches are drawn with sampling
    # weights that slide toward high values of the first feature as the
    # stream progresses, so the arriving feature distribution shifts while
    # the labels stay consistent with the features
    key = np.where(np.isnan(dense[:, 0]), 0.0, dense[:, 0])
    rank = np.argsort(np.argsort(key)) / max(key.size - 1, 1)

    batch_rows = 30 if quick else 64
    n_batches = 12
    poison = {5, 6}
    rng = np.random.default_rng(99)

    registry = ModelRegistry()
    # serving-side refreshes checkpoint into their own subdirectory so a
    # later phase-A resume never confuses a refresh for a base round
    serving_store = CheckpointStore(store.directory / "serving")
    policy = RetrainPolicy(
        drift_threshold=0.25,
        schedule_interval=3000.0,
        min_retrain_interval=1100.0,
        refresh_trees=2 if quick else 4,
        max_window_rows=4 * batch_rows,
        min_window_rows=3 * batch_rows,
        validation_tolerance=0.05,
        checkpoint_every=1,
    )
    now = 0.0
    controller = ContinualController(
        params,
        (ds.X_test.to_dense(fill=np.nan).values, ds.y_test),
        registry=registry,
        model=model,
        store=serving_store,
        policy=policy,
        clock=lambda: now,
    )
    for b in range(n_batches):
        # sampling weights slide from uniform to ~e^3:1 in favour of rows
        # with a high first feature -- the drift the monitor should catch
        frac = b / max(n_batches - 1, 1)
        logits = 3.0 * frac * rank
        w = np.exp(logits - logits.max())
        idx = rng.choice(rank.size, size=batch_rows, replace=False, p=w / w.sum())
        yb = y[idx]
        if b in poison:
            # corrupted upstream labels: sign-flipped with heavy noise
            yb = -yb + rng.normal(0.0, 2.0, size=yb.size)
        now += 600.0
        controller.ingest(dense[idx], yb, now=now)
        controller.poll(now=now)
    modeled += controller.modeled_train_seconds

    assert controller.active_version is not None
    return PipelineDemoResult(
        digest=controller.active_version,
        base_digest=base_digest,
        base_rounds=params.n_trees,
        resumed_from=resumed_from,
        checkpoint_rounds=store.rounds(),
        events=list(controller.events),
        summary=controller.summary(),
        modeled_train_seconds=modeled,
    )
