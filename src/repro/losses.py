"""Loss functions and their first/second derivatives (Eq. (1) of the paper).

Training GBDTs minimizes a loss ``l(y_i, yhat_i)``.  The split gain (Eq. (2))
only consumes the per-instance first derivative ``g_i`` and second derivative
``h_i``::

    g_i = d l(y_i, yhat_i) / d yhat_i
    h_i = d^2 l(y_i, yhat_i) / d yhat_i^2

The paper's experiments use mean squared error ``l = (y - yhat)^2`` with
``g_i = 2 (yhat_i - y_i)`` and ``h_i = 2`` (Section III-B).  We follow that
convention exactly (note the factor of 2 -- XGBoost itself drops it, which
only rescales ``lambda``; keeping the paper's form makes the reproduced
trees match the paper's equations literally).

The module also provides logistic loss (the paper mentions cross-entropy as
a common choice in Section II-B) and a hook for user-defined losses, which
the paper lists as a supported feature ("our algorithm supports user defined
loss functions").
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Tuple

import numpy as np

__all__ = [
    "Loss",
    "SquaredErrorLoss",
    "LogisticLoss",
    "HuberLoss",
    "PoissonLoss",
    "CustomLoss",
    "get_loss",
    "goss_weighted_gradients",
]


def goss_weighted_gradients(
    g: np.ndarray,
    h: np.ndarray,
    inst_mask: np.ndarray,
    amplified: np.ndarray,
    factor: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply a GOSS sample's reweighting to a round's ``(g, h)`` in place.

    Rows outside ``inst_mask`` are zeroed (they contribute nothing to any
    histogram or node total, so root sums over the full arrays stay
    correct); ``amplified`` rows -- the sampled low-|g| survivors -- get
    **both** derivatives scaled by ``factor = (1-a)/b``, the standard GOSS
    information-gain correction (scaling g alone would bias leaf values
    ``-G/(H + lambda)``).  Returns the same arrays for convenience.
    """
    excluded = ~inst_mask
    g[excluded] = 0.0
    h[excluded] = 0.0
    g[amplified] *= factor
    h[amplified] *= factor
    return g, h


class Loss:
    """Base class for GBDT losses.

    Subclasses implement :meth:`gradients` returning ``(g, h)`` given true
    targets ``y`` and current predictions ``yhat``, plus :meth:`value` for
    reporting.  All arrays are 1-D ``float64`` of equal length.
    """

    #: short registry name
    name: str = "base"

    def gradients(self, y: np.ndarray, yhat: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return per-instance first and second derivatives ``(g, h)``."""
        raise NotImplementedError

    def gradients_into(
        self, y: np.ndarray, yhat: np.ndarray, g: np.ndarray, h: np.ndarray
    ) -> bool:
        """Write ``(g, h)`` into preallocated float64 buffers, if supported.

        Returns True when the buffers were filled (with values bit-identical
        to :meth:`gradients`); False means the caller must fall back to the
        allocating path.  Losses override this only when the in-place
        formulation preserves the exact elementary-operation order.
        """
        return False

    def value(self, y: np.ndarray, yhat: np.ndarray) -> float:
        """Return the mean loss over the batch (for monitoring)."""
        raise NotImplementedError

    def base_score(self, y: np.ndarray) -> float:
        """Initial prediction before the first tree.

        The paper's Algorithm 1 starts from an empty ensemble; we start all
        predictions at 0.0, matching XGBoost's ``base_score=0`` configuration
        used for exact-tree-identity comparisons.
        """
        return 0.0

    def transform(self, yhat: np.ndarray) -> np.ndarray:
        """Map raw ensemble margins to the output space (identity for MSE)."""
        return yhat


@dataclasses.dataclass
class SquaredErrorLoss(Loss):
    """Mean squared error, the loss used in all of the paper's experiments.

    ``l(y, yhat) = (y - yhat)^2`` so ``g = 2 (yhat - y)`` and ``h = 2``.
    """

    name: str = "squared_error"

    def gradients(self, y: np.ndarray, yhat: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``g = 2 (yhat - y)``, ``h = 2`` -- the paper's Section III-B."""
        y = np.asarray(y, dtype=np.float64)
        yhat = np.asarray(yhat, dtype=np.float64)
        if y.shape != yhat.shape:
            raise ValueError(f"shape mismatch: y {y.shape} vs yhat {yhat.shape}")
        g = 2.0 * (yhat - y)
        h = np.full_like(g, 2.0)
        return g, h

    def gradients_into(
        self, y: np.ndarray, yhat: np.ndarray, g: np.ndarray, h: np.ndarray
    ) -> bool:
        """Allocation-free variant: the same subtract-then-scale sequence as
        :meth:`gradients`, so results are bit-identical."""
        y = np.asarray(y, dtype=np.float64)
        yhat = np.asarray(yhat, dtype=np.float64)
        if y.shape != yhat.shape:
            raise ValueError(f"shape mismatch: y {y.shape} vs yhat {yhat.shape}")
        np.subtract(yhat, y, out=g)
        np.multiply(g, 2.0, out=g)
        h[...] = 2.0
        return True

    def value(self, y: np.ndarray, yhat: np.ndarray) -> float:
        """Mean squared error of the batch."""
        y = np.asarray(y, dtype=np.float64)
        yhat = np.asarray(yhat, dtype=np.float64)
        return float(np.mean((y - yhat) ** 2))


@dataclasses.dataclass
class LogisticLoss(Loss):
    """Binary cross-entropy on logits, for ``y in {0, 1}``.

    ``l = -[y log p + (1-y) log(1-p)]`` with ``p = sigmoid(yhat)``,
    giving ``g = p - y`` and ``h = p (1 - p)``.
    """

    name: str = "logistic"

    @staticmethod
    def _sigmoid(x: np.ndarray) -> np.ndarray:
        # numerically stable logistic
        out = np.empty_like(x, dtype=np.float64)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out

    def gradients(self, y: np.ndarray, yhat: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``g = sigmoid(yhat) - y``, ``h = p (1 - p)``."""
        y = np.asarray(y, dtype=np.float64)
        yhat = np.asarray(yhat, dtype=np.float64)
        if y.shape != yhat.shape:
            raise ValueError(f"shape mismatch: y {y.shape} vs yhat {yhat.shape}")
        p = self._sigmoid(yhat)
        g = p - y
        h = np.maximum(p * (1.0 - p), 1e-16)
        return g, h

    def value(self, y: np.ndarray, yhat: np.ndarray) -> float:
        """Mean binary cross-entropy."""
        y = np.asarray(y, dtype=np.float64)
        yhat = np.asarray(yhat, dtype=np.float64)
        p = np.clip(self._sigmoid(yhat), 1e-15, 1.0 - 1e-15)
        return float(-np.mean(y * np.log(p) + (1.0 - y) * np.log(1.0 - p)))

    def transform(self, yhat: np.ndarray) -> np.ndarray:
        """Margins -> probabilities."""
        return self._sigmoid(yhat)


@dataclasses.dataclass
class CustomLoss(Loss):
    """User-defined loss from callables, per the paper's extensibility claim.

    Parameters
    ----------
    grad_fn:
        ``(y, yhat) -> (g, h)`` returning two arrays.
    value_fn:
        ``(y, yhat) -> float`` mean loss; optional (defaults to MSE for
        monitoring only -- it never affects training).
    """

    grad_fn: Callable[[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]] = None  # type: ignore[assignment]
    value_fn: Callable[[np.ndarray, np.ndarray], float] | None = None
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.grad_fn is None:
            raise ValueError("CustomLoss requires grad_fn")

    def gradients(self, y: np.ndarray, yhat: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Delegate to the user's ``grad_fn`` with shape validation."""
        g, h = self.grad_fn(np.asarray(y, np.float64), np.asarray(yhat, np.float64))
        g = np.asarray(g, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        if g.shape != y.shape or h.shape != y.shape:
            raise ValueError("grad_fn must return arrays shaped like y")
        return g, h

    def value(self, y: np.ndarray, yhat: np.ndarray) -> float:
        """User metric when given; MSE monitoring fallback otherwise."""
        if self.value_fn is not None:
            return float(self.value_fn(y, yhat))
        return float(np.mean((np.asarray(y) - np.asarray(yhat)) ** 2))


@dataclasses.dataclass
class HuberLoss(Loss):
    """Huber loss: quadratic within ``delta`` of the target, linear outside.

    ``g = 2 r`` for ``|r| <= delta`` else ``2 delta sign(r)``; the second
    derivative is 2 inside and a small positive constant outside so leaf
    weights stay bounded (the usual GBDT surrogate for the kinked tail).
    """

    delta: float = 1.0
    tail_hessian: float = 0.2
    name: str = "huber"

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if self.tail_hessian <= 0:
            raise ValueError("tail_hessian must be positive")

    def gradients(self, y: np.ndarray, yhat: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Quadratic gradients inside ``delta``, clipped outside."""
        y = np.asarray(y, dtype=np.float64)
        yhat = np.asarray(yhat, dtype=np.float64)
        if y.shape != yhat.shape:
            raise ValueError(f"shape mismatch: y {y.shape} vs yhat {yhat.shape}")
        r = yhat - y
        inside = np.abs(r) <= self.delta
        g = np.where(inside, 2.0 * r, 2.0 * self.delta * np.sign(r))
        h = np.where(inside, 2.0, self.tail_hessian)
        return g, h

    def value(self, y: np.ndarray, yhat: np.ndarray) -> float:
        """Mean Huber loss."""
        y = np.asarray(y, dtype=np.float64)
        yhat = np.asarray(yhat, dtype=np.float64)
        r = np.abs(yhat - y)
        inside = r <= self.delta
        per = np.where(inside, r**2, 2.0 * self.delta * r - self.delta**2)
        return float(np.mean(per))


@dataclasses.dataclass
class PoissonLoss(Loss):
    """Poisson deviance on log-rate margins, for non-negative count targets.

    ``l = exp(yhat) - y * yhat`` giving ``g = exp(yhat) - y`` and
    ``h = exp(yhat)``.  Margins are clipped to keep ``exp`` finite.
    """

    max_margin: float = 30.0
    name: str = "poisson"

    def gradients(self, y: np.ndarray, yhat: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``g = exp(yhat) - y``, ``h = exp(yhat)`` on clipped margins."""
        y = np.asarray(y, dtype=np.float64)
        yhat = np.asarray(yhat, dtype=np.float64)
        if y.shape != yhat.shape:
            raise ValueError(f"shape mismatch: y {y.shape} vs yhat {yhat.shape}")
        if y.size and y.min() < 0:
            raise ValueError("Poisson targets must be non-negative")
        mu = np.exp(np.clip(yhat, -self.max_margin, self.max_margin))
        return mu - y, np.maximum(mu, 1e-12)

    def value(self, y: np.ndarray, yhat: np.ndarray) -> float:
        """Mean Poisson deviance (up to the y-only term)."""
        y = np.asarray(y, dtype=np.float64)
        yhat = np.clip(np.asarray(yhat, dtype=np.float64), -self.max_margin, self.max_margin)
        return float(np.mean(np.exp(yhat) - y * yhat))

    def transform(self, yhat: np.ndarray) -> np.ndarray:
        """Log-rates -> expected counts."""
        return np.exp(np.clip(yhat, -self.max_margin, self.max_margin))


_REGISTRY = {
    "squared_error": SquaredErrorLoss,
    "mse": SquaredErrorLoss,
    "logistic": LogisticLoss,
    "binary:logistic": LogisticLoss,
    "huber": HuberLoss,
    "poisson": PoissonLoss,
    "count:poisson": PoissonLoss,
}


def get_loss(spec: str | Loss) -> Loss:
    """Resolve a loss by name or pass an instance through.

    >>> get_loss("mse").name
    'squared_error'
    """
    if isinstance(spec, Loss):
        return spec
    try:
        return _REGISTRY[spec]()
    except KeyError:
        raise ValueError(
            f"unknown loss {spec!r}; choose from {sorted(set(_REGISTRY))} "
            "or pass a Loss instance"
        ) from None
