"""Counters, gauges, and fixed-bucket histograms addressable by name+labels.

The serving layer, the trainers, and the benchmark harness all need the same
three primitives; before this module each grew its own ad-hoc counters and
percentile math.  :class:`MetricsRegistry` is the single home:

* :class:`Counter` -- monotonically increasing total;
* :class:`Gauge` -- last-write-wins value;
* :class:`Histogram` -- fixed cumulative buckets (Prometheus ``le``
  semantics: an observation lands in every bucket whose upper bound is
  ``>= value``) plus count/sum/min/max.  Percentiles come from an exact
  bounded sample window while it holds every observation, and degrade to
  linear interpolation inside the bucket once the window overflows -- so
  short test runs get exact p50/p95/p99 while unbounded production streams
  stay O(#buckets) in memory.

Instruments are addressed by ``(name, labels)``; the registry enforces type
consistency per name and guards label cardinality (an unbounded label value,
e.g. a request id, raises :class:`CardinalityError` once the family exceeds
``max_label_sets`` distinct label sets instead of silently eating memory).

Everything is plain Python + threading locks: usable from the serving thread
and the training loop alike, with no dependency beyond the standard library.
"""

from __future__ import annotations

import bisect
import contextlib
import math
import threading
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "CardinalityError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
]


class CardinalityError(ValueError):
    """A metric family exceeded the registry's distinct-label-set budget."""


#: log-spaced seconds from 10us to 60s -- a sensible default for latencies
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared identity for one (name, labels) time series."""

    kind = "abstract"

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()

    @property
    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)

    def sample(self) -> Dict[str, Any]:
        """JSON-safe snapshot (shape depends on the instrument kind)."""
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def sample(self) -> Dict[str, Any]:
        return {
            "kind": "counter", "name": self.name,
            "labels": self.label_dict, "value": self._value,
        }

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value:g})"


class Gauge(_Instrument):
    """Last-write-wins value (queue depth, compression ratio, ...)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def sample(self) -> Dict[str, Any]:
        return {
            "kind": "gauge", "name": self.name,
            "labels": self.label_dict, "value": self._value,
        }

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self._value:g})"


class Histogram(_Instrument):
    """Fixed-bucket distribution with exact-then-approximate percentiles.

    Parameters
    ----------
    buckets:
        Strictly increasing finite upper bounds; a ``+inf`` bucket is always
        appended.  An observation ``v`` counts toward the first bucket with
        ``v <= bound`` (Prometheus ``le`` semantics).
    sample_cap:
        Size of the exact sample window.  While ``count <= sample_cap``,
        :meth:`percentile` matches ``numpy.percentile(..., 'linear')``
        bit-for-bit; beyond it, new observations only update the buckets and
        percentiles interpolate within the owning bucket.  ``0`` disables the
        window entirely (pure bucket math, for tests and tight memory).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        sample_cap: int = 65536,
    ) -> None:
        super().__init__(name, labels)
        bounds = [float(b) for b in buckets]
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be non-empty and strictly increasing")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("explicit bucket bounds must be finite")
        if sample_cap < 0:
            raise ValueError("sample_cap must be >= 0")
        self.bounds: List[float] = bounds  # +inf bucket is implicit at the end
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.sample_cap = sample_cap
        self._samples: List[float] = []
        self._samples_sorted = True

    # -------------------------------------------------------------- recording
    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
            if self.count <= self.sample_cap:
                self._samples.append(value)
                self._samples_sorted = False
            elif self._samples:
                # window overflowed: exact percentiles are no longer possible
                self._samples.clear()

    @property
    def exact(self) -> bool:
        """True while the sample window still holds every observation."""
        return self.count > 0 and len(self._samples) == self.count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    # ------------------------------------------------------------ percentiles
    def percentile(self, q: float) -> float:
        """q-th percentile (0.0 on an empty histogram).

        Exact (numpy 'linear' convention) while the sample window covers
        everything; bucket-interpolated afterwards.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        with self._lock:
            if self.count == 0:
                return 0.0
            if self.exact:
                if not self._samples_sorted:
                    self._samples.sort()
                    self._samples_sorted = True
                pos = (q / 100.0) * (len(self._samples) - 1)
                lo = int(pos)
                hi = min(lo + 1, len(self._samples) - 1)
                frac = pos - lo
                return self._samples[lo] * (1.0 - frac) + self._samples[hi] * frac
            return self._bucket_percentile(q)

    def _bucket_percentile(self, q: float) -> float:
        target = (q / 100.0) * self.count
        cum = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if cum + n >= target:
                # interpolate within bucket i; clamp its edges to the
                # observed extremes so estimates never leave the data range
                lo = self.bounds[i - 1] if i > 0 else self.min
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return hi
                frac = (target - cum) / n
                return lo + (hi - lo) * frac
            cum += n
        return self.max  # pragma: no cover - unreachable (counts sum to count)

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    # ---------------------------------------------------------------- export
    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` pairs, ending at
        ``(+inf, count)``."""
        out: List[Tuple[float, int]] = []
        cum = 0
        for bound, n in zip(self.bounds + [math.inf], self.bucket_counts):
            cum += n
            out.append((bound, cum))
        return out

    def sample(self) -> Dict[str, Any]:
        return {
            "kind": "histogram",
            "name": self.name,
            "labels": self.label_dict,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": [[b if math.isfinite(b) else "+Inf", c]
                        for b, c in self.cumulative_buckets()],
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, p50={self.p50:g})"


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of instruments keyed by ``(name, labels)``.

    Parameters
    ----------
    max_label_sets:
        Distinct label sets allowed per metric name before
        :class:`CardinalityError` -- the guard against accidentally labeling
        by an unbounded value (request id, timestamp, ...).
    """

    def __init__(self, *, max_label_sets: int = 256) -> None:
        if max_label_sets < 1:
            raise ValueError("max_label_sets must be positive")
        self.max_label_sets = max_label_sets
        self._lock = threading.Lock()
        self._families: Dict[str, Dict[str, Any]] = {}  # name -> {kind, help, series}

    # -------------------------------------------------------------- factories
    def _get_or_create(
        self, kind: str, name: str, labels: Dict[str, Any], help: str, **kwargs: Any
    ) -> _Instrument:
        if not name or not name[0].isalpha() or not all(
            c.isalnum() or c in "_:" for c in name
        ):
            raise ValueError(f"invalid metric name {name!r}")
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = {"kind": kind, "help": help, "series": {}}
            elif family["kind"] != kind:
                raise ValueError(
                    f"metric {name!r} is a {family['kind']}, not a {kind}"
                )
            series: Dict[LabelKey, _Instrument] = family["series"]
            inst = series.get(key)
            if inst is None:
                if len(series) >= self.max_label_sets:
                    raise CardinalityError(
                        f"metric {name!r} exceeded {self.max_label_sets} label sets; "
                        "a label value is probably unbounded"
                    )
                inst = _KINDS[kind](name, key, **kwargs)
                series[key] = inst
            if help and not family["help"]:
                family["help"] = help
            return inst

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._get_or_create("counter", name, labels, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._get_or_create("gauge", name, labels, help)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        sample_cap: int = 65536,
        **labels: Any,
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            "histogram", name, labels, help, buckets=buckets, sample_cap=sample_cap
        )

    # ------------------------------------------------------------- inspection
    def families(self) -> List[Tuple[str, str, str, List[_Instrument]]]:
        """``(name, kind, help, series)`` per family, name-sorted, each
        family's series sorted by label key (deterministic export order)."""
        with self._lock:
            return [
                (
                    name,
                    fam["kind"],
                    fam["help"],
                    [fam["series"][k] for k in sorted(fam["series"])],
                )
                for name, fam in sorted(self._families.items())
            ]

    def collect(self) -> List[Dict[str, Any]]:
        """JSON-safe samples of every instrument (deterministic order)."""
        return [
            inst.sample()
            for _, _, _, series in self.families()
            for inst in series
        ]

    def get(self, name: str, **labels: Any) -> Optional[_Instrument]:
        """Look up an existing instrument without creating it."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            return family["series"].get(_label_key(labels))

    def __len__(self) -> int:
        with self._lock:
            return sum(len(f["series"]) for f in self._families.values())

    def clear(self) -> None:
        with self._lock:
            self._families.clear()


# --------------------------------------------------------------------- global
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry built-in instrumentation records into."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the global; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` (reports, tests)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
