"""Trend reports over the benchmark run store (``python -m repro obs history``).

Renders each bench's metric trajectories across submitted runs two ways:

* a **text table** with unicode sparklines -- the terminal view;
* an optional **self-contained HTML** document (no external assets, no
  JavaScript) with inline SVG sparklines, light/dark via CSS custom
  properties, and the full numeric table next to every sparkline so the
  data is always readable without color.

Only *directional* metrics (see :func:`repro.obs.runstore.metric_direction`)
are shown by default -- those are the ones the gate watches -- with
``all_metrics=True`` widening to every numeric leaf.
"""

from __future__ import annotations

import dataclasses
import html as _html
import time
from typing import Dict, List, Optional, Sequence

from .runstore import RunRecord, RunStore, metric_direction

__all__ = ["BenchHistory", "HistoryReport", "TrendRow", "build_history", "sparkline"]

_SPARK = "▁▂▃▄▅▆▇█"  # ▁▂▃▄▅▆▇█


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline; constant series render flat at mid-height."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK[3] * len(values)
    scale = (len(_SPARK) - 1) / (hi - lo)
    return "".join(_SPARK[int(round((v - lo) * scale))] for v in values)


@dataclasses.dataclass(frozen=True)
class TrendRow:
    """One metric's trajectory over the shown runs."""

    key: str
    values: List[float]  # oldest .. newest; one per shown run
    direction: Optional[str]

    @property
    def latest(self) -> float:
        return self.values[-1]

    @property
    def rel_change(self) -> float:
        """Newest value vs the median of the earlier ones (0.0 with <2 runs)."""
        import statistics

        if len(self.values) < 2:
            return 0.0
        med = statistics.median(self.values[:-1])
        return (self.latest - med) / max(abs(med), 1e-12)

    @property
    def worse(self) -> bool:
        if self.direction == "lower":
            return self.rel_change > 0
        if self.direction == "higher":
            return self.rel_change < 0
        return False


@dataclasses.dataclass(frozen=True)
class BenchHistory:
    """All trend rows of one bench."""

    bench: str
    runs: List[RunRecord]
    rows: List[TrendRow]


@dataclasses.dataclass(frozen=True)
class HistoryReport:
    """Trend report over every requested bench."""

    benches: List[BenchHistory]

    @property
    def text(self) -> str:
        if not self.benches:
            return "run store is empty -- submit runs with `python -m repro runs submit`"
        lines: List[str] = []
        for bh in self.benches:
            ids = f"{bh.runs[0].run_id} .. {bh.runs[-1].run_id}"
            lines.append(f"bench: {bh.bench} ({len(bh.runs)} runs, {ids})")
            if not bh.rows:
                lines.append("  (no directional metrics)")
                continue
            width = max(len(r.key) for r in bh.rows)
            for r in bh.rows:
                mark = " !" if r.worse and abs(r.rel_change) > 0.05 else ""
                lines.append(
                    f"  {r.key:<{width}}  {sparkline(r.values):<12}"
                    f" {r.latest:>12.6g}  {r.rel_change:+7.1%}{mark}"
                )
            lines.append("")
        return "\n".join(lines).rstrip()

    def html(self) -> str:
        """One self-contained document: sparkline + numeric table per metric."""
        sections = []
        for bh in self.benches:
            head = (
                f"<h2>{_html.escape(bh.bench)}</h2>"
                f"<p class='meta'>{len(bh.runs)} runs &middot; "
                f"{_html.escape(bh.runs[0].run_id)} &rarr; "
                f"{_html.escape(bh.runs[-1].run_id)}</p>"
            )
            rows = []
            for r in bh.rows:
                badge = (
                    "<span class='delta worse'>&#9650;</span>"
                    if r.worse and abs(r.rel_change) > 0.05
                    else ""
                )
                rows.append(
                    "<tr>"
                    f"<td class='key'>{_html.escape(r.key)}</td>"
                    f"<td class='spark'>{_svg_sparkline(r.values)}</td>"
                    f"<td class='num'>{r.latest:.6g}</td>"
                    f"<td class='num'>{r.rel_change:+.1%} {badge}</td>"
                    "</tr>"
                )
            table = (
                "<table><thead><tr><th>metric</th><th>trend</th>"
                "<th>latest</th><th>vs median</th></tr></thead>"
                f"<tbody>{''.join(rows)}</tbody></table>"
            )
            detail = _numeric_table(bh)
            sections.append(f"<section>{head}{table}{detail}</section>")
        stamp = time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime())
        body = "".join(sections) or "<p>run store is empty</p>"
        return _PAGE.format(body=body, stamp=stamp)

    def bench(self, name: str) -> BenchHistory:
        for bh in self.benches:
            if bh.bench == name:
                return bh
        raise KeyError(name)


def _numeric_table(bh: BenchHistory) -> str:
    """The per-run numeric table (the always-readable data view)."""
    heads = "".join(
        f"<th>{_html.escape(r.run_id)}</th>" for r in bh.runs
    )
    body_rows = []
    for row in bh.rows:
        cells = "".join(f"<td class='num'>{v:.6g}</td>" for v in row.values)
        body_rows.append(
            f"<tr><td class='key'>{_html.escape(row.key)}</td>{cells}</tr>"
        )
    return (
        "<details><summary>data table</summary>"
        f"<table><thead><tr><th>metric</th>{heads}</tr></thead>"
        f"<tbody>{''.join(body_rows)}</tbody></table></details>"
    )


def _svg_sparkline(values: Sequence[float], w: int = 140, h: int = 30) -> str:
    """Inline SVG sparkline: one 2px series-1 line, endpoint dot, native
    ``<title>`` tooltip carrying the values."""
    if not values:
        return ""
    pad = 3.0
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = len(values)
    xs = [pad + (w - 2 * pad) * (i / max(1, n - 1)) for i in range(n)]
    ys = [h - pad - (h - 2 * pad) * ((v - lo) / span) for v in values]
    points = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    title = _html.escape(", ".join(f"{v:.6g}" for v in values))
    return (
        f"<svg viewBox='0 0 {w} {h}' width='{w}' height='{h}'"
        " role='img' aria-label='trend'>"
        f"<title>{title}</title>"
        f"<polyline points='{points}' fill='none' stroke='var(--series-1)'"
        " stroke-width='2' stroke-linecap='round' stroke-linejoin='round'/>"
        f"<circle cx='{xs[-1]:.1f}' cy='{ys[-1]:.1f}' r='2.5'"
        " fill='var(--series-1)'/></svg>"
    )


_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>benchmark run history</title>
<style>
.viz-root {{
  color-scheme: light;
  --surface-1:      #fcfcfb;
  --page:           #f9f9f7;
  --text-primary:   #0b0b0b;
  --text-secondary: #52514e;
  --text-muted:     #898781;
  --grid:           #e1e0d9;
  --series-1:       #2a78d6;
  --bad:            #d03b3b;
}}
@media (prefers-color-scheme: dark) {{
  :root:where(:not([data-theme="light"])) .viz-root {{
    color-scheme: dark;
    --surface-1:      #1a1a19;
    --page:           #0d0d0d;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted:     #898781;
    --grid:           #2c2c2a;
    --series-1:       #3987e5;
    --bad:            #d03b3b;
  }}
}}
:root[data-theme="dark"] .viz-root {{
  color-scheme: dark;
  --surface-1:      #1a1a19;
  --page:           #0d0d0d;
  --text-primary:   #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted:     #898781;
  --grid:           #2c2c2a;
  --series-1:       #3987e5;
  --bad:            #d03b3b;
}}
.viz-root {{
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}}
.viz-root h1 {{ font-size: 1.3rem; margin: 0 0 2px; }}
.viz-root h2 {{ font-size: 1.05rem; margin: 24px 0 2px; }}
.viz-root .meta {{ color: var(--text-secondary); margin: 0 0 10px; font-size: 0.85rem; }}
.viz-root section {{
  background: var(--surface-1);
  border: 1px solid var(--grid);
  border-radius: 8px;
  padding: 12px 16px;
  margin-bottom: 16px;
}}
.viz-root table {{ border-collapse: collapse; width: 100%; font-size: 0.85rem; }}
.viz-root th {{
  text-align: left; color: var(--text-muted); font-weight: 500;
  border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0;
}}
.viz-root td {{ padding: 3px 10px 3px 0; border-bottom: 1px solid var(--grid); }}
.viz-root td.key {{ color: var(--text-secondary); }}
.viz-root td.num {{ font-variant-numeric: tabular-nums; text-align: right; }}
.viz-root td.spark svg {{ display: block; }}
.viz-root .delta.worse {{ color: var(--bad); font-size: 0.75rem; }}
.viz-root details {{ margin-top: 8px; }}
.viz-root summary {{ color: var(--text-muted); cursor: pointer; font-size: 0.8rem; }}
</style>
</head>
<body class="viz-root">
<h1>benchmark run history</h1>
<p class="meta">generated {stamp} &middot; repro perf-regression observatory</p>
{body}
</body>
</html>
"""


def build_history(
    store: RunStore,
    benches: Optional[Sequence[str]] = None,
    *,
    window: int = 20,
    all_metrics: bool = False,
) -> HistoryReport:
    """Assemble the trend report over the last ``window`` runs per bench."""
    names = list(benches) if benches else store.benches()
    out: List[BenchHistory] = []
    for name in names:
        runs = store.latest(name, window)
        if not runs:
            continue
        series: Dict[str, Dict[int, float]] = {}
        for i, run in enumerate(runs):
            for key, value in run.flat_metrics().items():
                series.setdefault(key, {})[i] = value
        rows = []
        for key in sorted(series):
            direction = metric_direction(key)
            if direction is None and not all_metrics:
                continue
            present = series[key]
            if len(present) < len(runs):  # metric must exist in every run shown
                continue
            rows.append(
                TrendRow(
                    key=key,
                    values=[present[i] for i in range(len(runs))],
                    direction=direction,
                )
            )
        out.append(BenchHistory(bench=name, runs=runs, rows=rows))
    return HistoryReport(benches=out)
