"""The ``obs report`` experiment: where does training time go?

Reproduces the paper's Section IV-A profiling argument ("finding the best
split point is ... around 95% of that for GPU-GBDT") from *both* sides of
the substrate at once:

* the span tracer measures where host **wall-clock** time went while a small
  model trained (setup / gradients / find_split / split_node);
* the gpusim cost ledger reports where **modeled device** time was charged
  (:func:`repro.gpusim.timeline.profile`).

The two columns should tell one consistent story -- split finding dominates
-- and printing them side by side is the fastest smoke test that the
instrumentation and the cost model agree about the shape of training.

Run it::

    python -m repro obs report --quick
    python -m repro obs report --trace train.trace.json   # open in Perfetto
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, List, Optional

from ..gpusim.kernel import GpuDevice
from ..gpusim.timeline import profile
from .export import export_merged_chrome_trace, write_jsonl, write_prometheus
from .metrics_registry import MetricsRegistry, use_registry
from .tracer import Tracer, use_tracer

__all__ = ["ObsReport", "run_obs_report", "PHASES"]

#: training phases, in execution order -- span names and device-ledger phase
#: labels are deliberately identical so the two breakdowns join by name
PHASES = ("setup", "gradients", "find_split", "split_node")


@dataclasses.dataclass
class ObsReport:
    """Per-phase breakdown of one instrumented training run."""

    text: str
    #: phase -> {"seconds": wall, "share": fraction, "spans": count}
    wall: Dict[str, Dict[str, float]]
    #: phase -> {"seconds": modeled, "share": fraction, "launches": count}
    modeled: Dict[str, Dict[str, float]]
    n_spans: int
    n_trees: int
    dataset: str
    metrics: Dict[str, float]

    @property
    def wall_dominant(self) -> str:
        return max(self.wall, key=lambda p: self.wall[p]["seconds"])

    @property
    def modeled_dominant(self) -> str:
        return max(self.modeled, key=lambda p: self.modeled[p]["seconds"])

    @property
    def wall_split_share(self) -> float:
        """Fraction of wall time spent on split work (find + apply)."""
        return self.wall["find_split"]["share"] + self.wall["split_node"]["share"]

    @property
    def modeled_split_share(self) -> float:
        """Fraction of modeled device time spent on split work (find + apply)."""
        return self.modeled["find_split"]["share"] + self.modeled["split_node"]["share"]

    @property
    def consistent(self) -> bool:
        """Do the two substrates tell the paper's Section IV-A story?

        Split work must dominate both breakdowns and its share must agree
        within 15 points.  (Which *half* of split work dominates may differ:
        host wall time carries per-node Python bookkeeping in ``split_node``
        that the kernel cost model deliberately does not charge.)
        """
        return (
            self.wall_split_share > 0.5
            and self.modeled_split_share > 0.5
            and abs(self.wall_split_share - self.modeled_split_share) < 0.15
        )


def run_obs_report(
    quick: bool = False,
    *,
    dataset: str = "covtype",
    n_trees: Optional[int] = None,
    max_depth: int = 6,
    trace_path: Path | str | None = None,
    jsonl_path: Path | str | None = None,
    prom_path: Path | str | None = None,
) -> ObsReport:
    """Train a small model with tracing on and report the phase breakdown.

    The run uses a fresh tracer/registry installed as the process globals
    for its duration, so it never mixes with (or clobbers) anything the
    embedding application recorded.
    """
    from ..core.params import GBDTParams
    from ..core.trainer import GPUGBDTTrainer
    from ..data.datasets import make_dataset

    run_rows = 300 if quick else 1500
    trees = n_trees if n_trees is not None else (5 if quick else 20)

    tracer = Tracer(enabled=True)
    registry = MetricsRegistry(max_label_sets=1024)
    device = GpuDevice()
    with use_tracer(tracer), use_registry(registry):
        ds = make_dataset(dataset, run_rows=run_rows, seed=17)
        trainer = GPUGBDTTrainer(GBDTParams(n_trees=trees, max_depth=max_depth), device)
        trainer.fit(ds.X, ds.y)

    agg = tracer.aggregate()
    wall_total = sum(agg[p].total for p in PHASES if p in agg) or 1.0
    wall = {
        p: {
            "seconds": agg[p].total if p in agg else 0.0,
            "share": (agg[p].total if p in agg else 0.0) / wall_total,
            "spans": float(agg[p].count) if p in agg else 0.0,
        }
        for p in PHASES
    }

    modeled_slices = {sl.phase: sl for sl in profile(device)}
    modeled = {
        p: {
            "seconds": modeled_slices[p].seconds if p in modeled_slices else 0.0,
            "share": modeled_slices[p].fraction if p in modeled_slices else 0.0,
            "launches": float(modeled_slices[p].launches) if p in modeled_slices else 0.0,
        }
        for p in PHASES
    }

    metrics = {
        s["name"]: s["value"]
        for s in registry.collect()
        if s["kind"] in ("counter", "gauge")
    }

    report = ObsReport(
        text="",
        wall=wall,
        modeled=modeled,
        n_spans=len(tracer),
        n_trees=trees,
        dataset=dataset,
        metrics=metrics,
    )
    report.text = _format(report)

    if trace_path is not None:
        export_merged_chrome_trace(trace_path, tracer=tracer, device=device)
    if jsonl_path is not None:
        write_jsonl(jsonl_path, tracer=tracer, registry=registry)
    if prom_path is not None:
        write_prometheus(prom_path, registry)
    return report


def _format(r: ObsReport) -> str:
    """The Table-style "where does time go" view."""
    lines: List[str] = [
        f"obs report -- {r.dataset}, {r.n_trees} trees ({r.n_spans} spans recorded)",
        f"{'phase':<14s} {'wall s':>10s} {'wall %':>8s} "
        f"{'modeled s':>11s} {'modeled %':>10s} {'launches':>9s}",
    ]
    for p in PHASES:
        w, m = r.wall[p], r.modeled[p]
        lines.append(
            f"{p:<14s} {w['seconds']:>10.4f} {w['share']:>7.1%} "
            f"{m['seconds']:>11.6f} {m['share']:>9.1%} {int(m['launches']):>9d}"
        )
    wall_total = sum(r.wall[p]["seconds"] for p in PHASES)
    modeled_total = sum(r.modeled[p]["seconds"] for p in PHASES)
    lines.append(
        f"{'total':<14s} {wall_total:>10.4f} {'':>7s} {modeled_total:>12.6f}"
    )
    lines.append(
        f"split work share: wall={r.wall_split_share:.1%}, "
        f"modeled={r.modeled_split_share:.1%}"
        + ("  [consistent]" if r.consistent else "  [DIVERGED]")
    )
    lines.append(
        f"dominant phase: wall={r.wall_dominant!r}, modeled={r.modeled_dominant!r}"
    )
    if r.metrics:
        lines.append("metrics:")
        for name, value in sorted(r.metrics.items()):
            lines.append(f"  {name:<38s} {value:g}")
    return "\n".join(lines)
