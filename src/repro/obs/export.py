"""Exporters: JSONL event log, Prometheus text format, merged Chrome trace.

Three consumers, three formats:

* :func:`write_jsonl` -- one JSON object per line (spans then metric
  samples); greppable, diffable, append-friendly -- the format the benchmark
  harness emits per-run so ``BENCH_*`` trajectories can be compared across
  PRs.
* :func:`prometheus_text` -- the Prometheus exposition format (counters,
  gauges, and cumulative ``_bucket``/``_sum``/``_count`` histogram series)
  for scraping or golden-file assertions.
* :func:`merged_chrome_trace_events` -- **one** Perfetto timeline holding
  both the tracer's wall-clock host spans (pid 1) and the gpusim device
  ledger's modeled kernels/transfers (pid 2), so "what Python did" lines up
  against "what the modeled GPU was charged".  Open the exported file at
  https://ui.perfetto.dev.

All timestamps in the Chrome trace are microseconds, rebased so the earliest
event sits at 0, and the event list is sorted by ``ts`` -- monotonic by
construction, which keeps Perfetto's JSON importer happy.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..gpusim.kernel import GpuDevice
from ..gpusim.trace import chrome_trace_events
from .metrics_registry import MetricsRegistry
from .tracer import Tracer

__all__ = [
    "HOST_PID",
    "DEVICE_PID",
    "RANK_PID_BASE",
    "jsonl_lines",
    "write_jsonl",
    "prometheus_text",
    "write_prometheus",
    "merged_chrome_trace_events",
    "export_merged_chrome_trace",
]

#: pid of the host wall-clock track in the merged trace
HOST_PID = 1
#: pid of the modeled-device track in the merged trace
DEVICE_PID = 2
#: rank ``r`` of a distributed run gets pid ``RANK_PID_BASE + r``
RANK_PID_BASE = 10


# ------------------------------------------------------------------- JSONL
def jsonl_lines(
    tracer: Optional[Tracer] = None, registry: Optional[MetricsRegistry] = None
) -> List[str]:
    """Serialized lines: span events first (start order), then metric
    samples (deterministic registry order)."""
    lines: List[str] = []
    if tracer is not None:
        for event in tracer.snapshot():
            lines.append(json.dumps(event, sort_keys=True, default=str))
    if registry is not None:
        for sample in registry.collect():
            lines.append(json.dumps(sample, sort_keys=True, default=str))
    return lines


def write_jsonl(
    path: Path | str,
    *,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    append: bool = False,
) -> int:
    """Write (or append) the JSONL event log; returns the line count."""
    lines = jsonl_lines(tracer, registry)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    mode = "a" if append else "w"
    with path.open(mode, encoding="utf-8") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


# -------------------------------------------------------------- Prometheus
def _fmt_value(v: float) -> str:
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    # integers print bare (Prometheus convention for counts)
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _escape_label(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    return (
        "{"
        + ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in merged.items())
        + "}"
    )


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every instrument in the Prometheus exposition format."""
    out: List[str] = []
    for name, kind, help_text, series in registry.families():
        if help_text:
            out.append(f"# HELP {name} {help_text}")
        out.append(f"# TYPE {name} {kind}")
        for inst in series:
            labels = inst.label_dict
            if kind in ("counter", "gauge"):
                out.append(f"{name}{_fmt_labels(labels)} {_fmt_value(inst.value)}")
            else:  # histogram
                for le, cum in inst.cumulative_buckets():
                    le_txt = "+Inf" if math.isinf(le) else _fmt_value(le)
                    out.append(
                        f"{name}_bucket{_fmt_labels(labels, {'le': le_txt})} {cum}"
                    )
                out.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(inst.sum)}")
                out.append(f"{name}_count{_fmt_labels(labels)} {inst.count}")
    return "\n".join(out) + ("\n" if out else "")


def write_prometheus(path: Path | str, registry: MetricsRegistry) -> int:
    """Write the exposition text; returns the number of sample lines."""
    text = prometheus_text(registry)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return sum(1 for line in text.splitlines() if line and not line.startswith("#"))


# ----------------------------------------------------------- Chrome trace
RankTracers = Union[Sequence[Tracer], Mapping[int, Tracer]]


def _lockstep_offsets(
    rank_events: Dict[int, List[Dict[str, Any]]],
) -> Dict[int, float]:
    """Per-rank time shifts that align ranks on the lockstep sequence number.

    Every rank executes the same collective program, so the ``dist.*`` span
    with ``seq == k`` on rank r is the *same* collective as ``seq == k`` on
    every other rank -- and a collective completes everywhere at (nearly)
    the same instant.  Ranks whose tracers share one clock need no shift;
    tracers with disjoint (e.g. injected) clocks are aligned so the earliest
    common collective's *end* coincides across ranks.  Waiting before that
    end stays visible as span width, so stragglers are not hidden.
    """
    seq_ends: Dict[int, Dict[int, float]] = {}
    for rank, events in rank_events.items():
        ends: Dict[int, float] = {}
        for e in events:
            seq = e["attrs"].get("seq")
            if (
                seq is not None
                and e["name"].startswith("dist.")
                and e["t_end"] is not None
            ):
                ends.setdefault(int(seq), float(e["t_end"]))
        seq_ends[rank] = ends
    common = (
        set.intersection(*(set(v) for v in seq_ends.values())) if seq_ends else set()
    )
    if not common:
        return {r: 0.0 for r in rank_events}
    s = min(common)
    ref = max(ends[s] for ends in seq_ends.values())
    return {r: ref - ends[s] for r, ends in seq_ends.items()}


def merged_chrome_trace_events(
    tracer: Optional[Tracer] = None,
    device: Optional[GpuDevice] = None,
    rank_tracers: Optional[RankTracers] = None,
) -> List[Dict[str, Any]]:
    """Host spans (pid 1) + modeled device ledger (pid 2) on one timeline.

    The two tracks measure different clocks (wall time vs the cost model),
    so they are not aligned instant-by-instant; both are rebased to start at
    0 so the *shapes* -- phase ordering and relative widths -- compare
    directly in one Perfetto window.

    ``rank_tracers`` merges a distributed run: one extra Perfetto process
    per SPMD rank (pid ``RANK_PID_BASE + rank``), collectives aligned
    across ranks by their lockstep sequence number (see
    :func:`_lockstep_offsets`) so ring imbalance and stragglers read
    directly off the timeline.  Pass the tracers handed out by
    :func:`repro.dist.comms.run_spmd` -- a sequence indexed by rank or a
    ``{rank: tracer}`` mapping.
    """
    slices: List[Dict[str, Any]] = []
    meta: List[Dict[str, Any]] = []

    # (pid, process name, span events, time shift) per wall-clock track
    groups: List[tuple] = []
    if tracer is not None:
        events = tracer.snapshot()
        if events:
            groups.append((HOST_PID, "host (wall-clock spans)", events, 0.0))
    if rank_tracers is not None:
        if isinstance(rank_tracers, Mapping):
            items = [(int(r), tr) for r, tr in sorted(rank_tracers.items())]
        else:
            items = [
                (int(tr.tags.get("rank", i)), tr)
                for i, tr in enumerate(rank_tracers)
            ]
        rank_events = {r: tr.snapshot() for r, tr in items}
        offsets = _lockstep_offsets(rank_events)
        for r, events in rank_events.items():
            if events:
                groups.append(
                    (RANK_PID_BASE + r, f"rank {r} (wall-clock spans)",
                     events, offsets[r])
                )

    if groups:
        t0 = min(
            e["t_start"] + shift for _, _, events, shift in groups for e in events
        )
        for pid, pname, events, shift in groups:
            thread_tids: Dict[int, int] = {}
            for e in events:
                tid = thread_tids.setdefault(e["thread_id"], len(thread_tids) + 1)
                end = e["t_end"] if e["t_end"] is not None else e["t_start"]
                slices.append(
                    {
                        "name": e["name"],
                        "cat": "host",
                        "ph": "X",
                        "ts": round((e["t_start"] + shift - t0) * 1e6, 3),
                        "dur": round(max(0.0, end - e["t_start"]) * 1e6, 3),
                        "pid": pid,
                        "tid": tid,
                        "args": e["attrs"],
                    }
                )
            meta.append(
                {
                    "name": "process_name", "ph": "M", "pid": pid,
                    "args": {"name": pname},
                }
            )
            for ident, tid in thread_tids.items():
                meta.append(
                    {
                        "name": "thread_name", "ph": "M", "pid": pid,
                        "tid": tid, "args": {"name": f"thread-{ident}"},
                    }
                )

    if device is not None:
        dev_events = chrome_trace_events(device)
        if dev_events:
            for e in dev_events:
                e = dict(e)
                e["pid"] = DEVICE_PID
                (slices if e.get("ph") == "X" else meta).append(e)
            meta.append(
                {
                    "name": "process_name", "ph": "M", "pid": DEVICE_PID,
                    "args": {"name": "gpusim (modeled device time)"},
                }
            )

    slices.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))
    return meta + slices


def export_merged_chrome_trace(
    path: Path | str,
    *,
    tracer: Optional[Tracer] = None,
    device: Optional[GpuDevice] = None,
    rank_tracers: Optional[RankTracers] = None,
) -> int:
    """Write the merged trace JSON; returns the number of slice events."""
    events = merged_chrome_trace_events(tracer, device, rank_tracers)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}),
        encoding="utf-8",
    )
    return sum(1 for e in events if e.get("ph") == "X")
