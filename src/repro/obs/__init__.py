"""Unified observability: span tracing, metrics, and exporters.

The paper's whole experimental argument is a profiling argument (Section
IV-A: "finding the best split point ... around 95%"); this package is the
substrate that lets every layer of the reproduction make that argument about
itself:

``tracer``
    :class:`Tracer` -- zero-dependency nested wall-clock spans with a
    context-manager/decorator API cheap enough to leave on
    (``with span("build_tree", depth=d): ...``).
``metrics_registry``
    :class:`MetricsRegistry` -- counters, gauges, and fixed-bucket
    histograms (p50/p95/p99) addressed by name + labels, with a
    label-cardinality guard.
``export``
    JSONL event logs, the Prometheus text format, and a Chrome-trace
    exporter that **merges** host spans with the gpusim kernel ledger onto
    one Perfetto timeline.
``report``
    The ``obs report`` CLI experiment: train a small model, print the
    per-phase wall-vs-modeled breakdown.

Training (:mod:`repro.core`), serving (:mod:`repro.serve`), and the
benchmark harness all record into the process-global tracer/registry;
swap either with :func:`use_tracer` / :func:`use_registry` for isolation.
Set ``REPRO_TRACE=0`` to disable span recording process-wide.
"""

from .export import (
    DEVICE_PID,
    HOST_PID,
    RANK_PID_BASE,
    export_merged_chrome_trace,
    jsonl_lines,
    merged_chrome_trace_events,
    prometheus_text,
    write_jsonl,
    write_prometheus,
)
from .metrics_registry import (
    DEFAULT_LATENCY_BUCKETS,
    CardinalityError,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from .report import ObsReport, run_obs_report
from .tracer import (
    Span,
    SpanStats,
    Tracer,
    current_tracer,
    get_tracer,
    set_tracer,
    span,
    traced,
    use_thread_tracer,
    use_tracer,
)

__all__ = [
    "CardinalityError",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEVICE_PID",
    "Gauge",
    "HOST_PID",
    "Histogram",
    "MetricsRegistry",
    "ObsReport",
    "RANK_PID_BASE",
    "Span",
    "SpanStats",
    "Tracer",
    "current_tracer",
    "export_merged_chrome_trace",
    "get_registry",
    "get_tracer",
    "jsonl_lines",
    "merged_chrome_trace_events",
    "prometheus_text",
    "run_obs_report",
    "set_registry",
    "set_tracer",
    "span",
    "traced",
    "use_registry",
    "use_thread_tracer",
    "use_tracer",
    "write_jsonl",
    "write_prometheus",
]
