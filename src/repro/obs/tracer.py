"""Zero-dependency span tracer: nested wall-clock spans, cheap enough to leave on.

The trainer's modeled time lives in the :mod:`repro.gpusim` cost ledger, but
*host* time -- the Python phases that actually run -- was invisible.  This
module records it as **spans**: named intervals with attributes, parent/child
nesting, and per-thread stacks, mirroring the shape (not the wire format) of
OpenTelemetry tracing without any dependency beyond the standard library.

Usage::

    from repro.obs import span, traced

    with span("build_tree", depth=d):
        ...

    @traced("publish")
    def publish(...): ...

Spans record into the process-global :class:`Tracer` (swap it with
:func:`use_tracer` in tests or reports).  When tracing is disabled the
context manager is a shared no-op object, so instrumentation left in hot
paths costs one attribute lookup and one call.

Design notes
------------
* **Nesting** is tracked per thread (a ``threading.local`` stack), so spans
  from the serving thread and a training thread never corrupt each other.
* **Self time** is maintained incrementally: when a span ends, its duration
  is charged to the parent's child-time accumulator, so phase breakdowns can
  report exclusive time without re-walking the tree.
* **Unclosed spans** (an exception path that skipped ``end``, or a snapshot
  taken mid-flight) are never lost: :meth:`Tracer.snapshot` closes *copies*
  of them at the snapshot instant and tags them ``unclosed=True``.
* **Bounded memory**: after ``max_spans`` finished spans the recorder drops
  new ones (counting the drops) instead of growing without bound.
"""

from __future__ import annotations

import contextlib
import functools
import os
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "SpanStats",
    "Tracer",
    "current_tracer",
    "get_tracer",
    "set_tracer",
    "use_thread_tracer",
    "use_tracer",
    "span",
    "traced",
]


class Span:
    """One named interval.  Created by :meth:`Tracer.start`; immutable once
    ended except through :meth:`set` (attributes are advisory metadata)."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "thread_id",
        "t_start",
        "t_end",
        "attrs",
        "child_time",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        thread_id: int,
        t_start: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.thread_id = thread_id
        self.t_start = t_start
        self.t_end: Optional[float] = None
        self.attrs = attrs
        self.child_time = 0.0

    # ------------------------------------------------------------- inspection
    @property
    def closed(self) -> bool:
        return self.t_end is not None

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return (self.t_end - self.t_start) if self.t_end is not None else 0.0

    @property
    def self_time(self) -> float:
        """Duration minus the time spent in (finished) child spans."""
        return max(0.0, self.duration - self.child_time)

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def to_event(self) -> Dict[str, Any]:
        """JSON-safe dict (times in seconds relative to the tracer clock)."""
        return {
            "kind": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "thread_id": self.thread_id,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "duration": self.duration,
            "self_time": self.self_time,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        state = f"{self.duration * 1e3:.3f}ms" if self.closed else "open"
        return f"Span({self.name!r}, {state}, depth={self.depth})"


class SpanStats:
    """Aggregate over every finished span sharing one name."""

    __slots__ = ("name", "count", "total", "self_total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.self_total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def add(self, sp: Span) -> None:
        d = sp.duration
        self.count += 1
        self.total += d
        self.self_total += sp.self_time
        self.min = min(self.min, d)
        self.max = max(self.max, d)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return (
            f"SpanStats({self.name!r}, count={self.count}, "
            f"total={self.total:.6f}s, self={self.self_total:.6f}s)"
        )


class _NoopSpan:
    """Shared do-nothing context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class _SpanHandle:
    """Context manager binding one live span to a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", sp: Span) -> None:
        self._tracer = tracer
        self._span = sp

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer.end(self._span)
        return False


class Tracer:
    """Thread-safe in-memory span recorder.

    Parameters
    ----------
    enabled:
        When False, :meth:`span` returns a shared no-op context manager and
        nothing is recorded.
    clock:
        0-arg callable returning seconds; ``time.perf_counter`` by default,
        injectable for deterministic tests.
    max_spans:
        Finished-span retention cap; further spans are counted in
        :attr:`dropped` but not stored.
    tags:
        Attributes stamped onto *every* span this tracer records (explicit
        span attributes win on collision).  The distributed runner uses this
        to rank-tag each worker's tracer (``tags={"rank": r}``) so merged
        traces and flight-recorder snapshots stay attributable.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        max_spans: int = 1_000_000,
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be positive")
        self.enabled = enabled
        self.clock = clock
        self.max_spans = max_spans
        self.tags: Dict[str, Any] = dict(tags or {})
        self.dropped = 0
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        self._local = threading.local()
        self._stacks: Dict[int, List[Span]] = {}
        self._next_id = 0

    # ------------------------------------------------------------- internals
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
            with self._lock:
                self._stacks[threading.get_ident()] = stack
        return stack

    # ------------------------------------------------------------ recording
    def span(self, name: str, **attrs: Any):
        """Context manager recording one span (no-op while disabled)."""
        if not self.enabled:
            return _NOOP
        return _SpanHandle(self, self.start(name, **attrs))

    def start(self, name: str, **attrs: Any) -> Span:
        """Manually open a span (pair with :meth:`end`)."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            self._next_id += 1
            sid = self._next_id
        sp = Span(
            name=name,
            span_id=sid,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(stack),
            thread_id=threading.get_ident(),
            t_start=self.clock(),
            attrs={**self.tags, **attrs} if self.tags else attrs,
        )
        stack.append(sp)
        return sp

    def end(self, sp: Span, **attrs: Any) -> Span:
        """Close ``sp``.  Spans opened after it and never closed are popped
        from the stack (they stay open and surface via :meth:`open_spans`)."""
        if sp.closed:
            return sp
        if attrs:
            sp.attrs.update(attrs)
        sp.t_end = self.clock()
        stack = self._stack()
        if sp in stack:
            del stack[stack.index(sp):]
        parent = stack[-1] if stack else None
        if parent is not None and not parent.closed:
            parent.child_time += sp.duration
        with self._lock:
            if len(self._finished) < self.max_spans:
                self._finished.append(sp)
            else:
                self.dropped += 1
        return sp

    def traced(self, name: Optional[str] = None, **attrs: Any):
        """Decorator form of :meth:`span`."""

        def decorate(fn: Callable) -> Callable:
            label = name if name is not None else fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any):
                with self.span(label, **attrs):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    # ------------------------------------------------------------ inspection
    def finished(self) -> List[Span]:
        """Snapshot list of finished spans (recorded order)."""
        with self._lock:
            return list(self._finished)

    def open_spans(self, all_threads: bool = False) -> List[Span]:
        """Spans that have not ended: the calling thread's by default, or --
        for post-mortem inspection (flight recorder, post-crash export) --
        every thread's, including threads that have since died."""
        if not all_threads:
            return [sp for sp in self._stack() if not sp.closed]
        with self._lock:
            stacks = [list(stack) for stack in self._stacks.values()]
        return [sp for stack in stacks for sp in stack if not sp.closed]

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    def snapshot(self, include_open: bool = True) -> List[Dict[str, Any]]:
        """JSON-safe events for every finished span, plus (optionally) a
        closed-at-now copy of each span still open on *any* thread, tagged
        ``unclosed=True`` -- nothing silently disappears, even spans left
        open by a crashed worker thread."""
        events = [sp.to_event() for sp in self.finished()]
        if include_open:
            now = self.clock()
            for sp in self.open_spans(all_threads=True):
                ev = sp.to_event()
                ev["t_end"] = now
                ev["duration"] = now - sp.t_start
                ev["self_time"] = max(0.0, ev["duration"] - sp.child_time)
                ev["attrs"] = {**ev["attrs"], "unclosed": True}
                events.append(ev)
        events.sort(key=lambda e: e["t_start"])
        return events

    def aggregate(self) -> Dict[str, SpanStats]:
        """Per-name totals over finished spans (insertion-ordered)."""
        out: Dict[str, SpanStats] = {}
        for sp in self.finished():
            out.setdefault(sp.name, SpanStats(sp.name)).add(sp)
        return out

    def total_time(self, name: str) -> float:
        """Summed duration of every finished span called ``name``."""
        return sum(sp.duration for sp in self.finished() if sp.name == name)

    def clear(self) -> None:
        """Drop finished spans and reset the drop counter (open spans on
        other threads are untouched; they will simply not be recorded if the
        cap logic drops them later)."""
        with self._lock:
            self._finished.clear()
            self.dropped = 0


# --------------------------------------------------------------------- global
def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "1").lower() not in ("0", "false", "off", "")


_TRACER = Tracer(enabled=_env_enabled())

#: per-thread tracer override (see :func:`use_thread_tracer`)
_THREAD = threading.local()


def get_tracer() -> Tracer:
    """The process-global tracer all built-in instrumentation records into."""
    return _TRACER


def current_tracer() -> Tracer:
    """The tracer module-level :func:`span` records into right now: the
    calling thread's override when one is installed, else the global."""
    override = getattr(_THREAD, "tracer", None)
    return override if override is not None else _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the global; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


@contextlib.contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Temporarily install ``tracer`` (reports, tests)."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextlib.contextmanager
def use_thread_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Route this *thread's* module-level :func:`span` calls into ``tracer``.

    Unlike :func:`use_tracer` (which swaps the process global and therefore
    every thread at once), this override is thread-local: the distributed
    runner wraps each SPMD rank in one so concurrently training workers
    record into disjoint, rank-tagged tracers while the rest of the process
    keeps using the global."""
    previous = getattr(_THREAD, "tracer", None)
    _THREAD.tracer = tracer
    try:
        yield tracer
    finally:
        _THREAD.tracer = previous


def span(name: str, **attrs: Any):
    """Record a span on the current tracer (module-level convenience)."""
    return current_tracer().span(name, **attrs)


def traced(name: Optional[str] = None, **attrs: Any):
    """Decorator recording a span on the *current* tracer per call."""

    def decorate(fn: Callable) -> Callable:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            with current_tracer().span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
