"""Append-only benchmark run store: submit, list, diff, and gate runs.

The paper's core claim is a performance claim, but ``BENCH_<name>.json``
files are overwritten in place -- after two commits nobody can answer "did
commit X make training slower, and which phase regressed?".  This module
keeps the longitudinal record: every benchmark run is **submitted** into
``results/runs/<bench>/`` as one immutable, checksummed envelope

.. code-block:: json

    {"format": "repro-run-v1",
     "checksum": "<sha256 of the payload string>",
     "payload": "<json: bench, run_id, commit, timestamp, env, phases, metrics>"}

written with :func:`repro.ioutil.atomic_write_text` (the checkpoint-store
recipe: readers see the old file or the new file, never a mixture, and a
torn envelope is *skipped and counted*, never trusted).

On top of the store sit three queries, exposed as
``python -m repro runs {submit,list,diff,gate}``:

``diff``
    per-metric deltas between any two runs (list elements are keyed by
    their name-ish field -- ``workload``/``layout``/``workers`` -- so the
    comparison survives workload-set reordering).
``gate``
    a noise-aware regression check of the newest run against the
    **median of the last K** prior runs.  A metric fails only when it
    moves beyond ``max(rel_tol * |median|, abs_tol)`` in its *bad*
    direction (``_s``/``bytes``-like metrics: up is bad;
    ``speedup``/``throughput``-like: down is bad; anything else is
    reported but never fails).  A failure is attributed to the training
    phase (``setup``/``gradients``/``find_split``/``split_node``) whose
    share of the phase breakdown grew the most.
``history``
    the trend table behind ``python -m repro obs history`` (see
    :mod:`repro.obs.history`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import re
import statistics
import subprocess
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..ioutil import atomic_write_text
from .metrics_registry import get_registry

__all__ = [
    "PHASES",
    "GateReport",
    "MetricDelta",
    "RunRecord",
    "RunStore",
    "default_store_root",
    "env_fingerprint",
    "flatten_metrics",
    "metric_direction",
]

RUN_FORMAT = "repro-run-v1"

#: the trainer's phase span names, in execution order (matches the gpusim
#: device phases of :class:`repro.core.trainer.GPUGBDTTrainer`)
PHASES = ("setup", "gradients", "find_split", "split_node")

#: list elements are keyed by the first of these fields they carry, so
#: flattened metric paths stay stable when a workload set is reordered
_KEY_FIELDS = ("workload", "layout", "name", "workers", "devices")

_HIGHER_BETTER = re.compile(r"(speedup|throughput|per_s\b|per_sec|qps|rows_per)")
_LOWER_BETTER = re.compile(
    r"(_s$|_ms$|seconds$|_secs$|bytes$|_mb$|_kb$|steps$|wait|elapsed|latency)"
)


def default_store_root() -> Path:
    """``results/runs`` under the repo root (``$REPRO_RUN_STORE`` overrides)."""
    env = os.environ.get("REPRO_RUN_STORE")
    if env:
        return Path(env)
    for parent in Path(__file__).resolve().parents:
        if (parent / "pyproject.toml").is_file():
            return parent / "results" / "runs"
    return Path.cwd() / "results" / "runs"


def env_fingerprint() -> Dict[str, Any]:
    """What machine/toolchain produced a run (coarse, for run comparisons)."""
    import numpy as np

    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
    }


def _git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


# ----------------------------------------------------------- metric algebra
def flatten_metrics(payload: Any, prefix: str = "") -> Dict[str, float]:
    """``{dotted.path: value}`` for every numeric leaf of a bench payload.

    List elements are keyed by their name-ish field (``workload``,
    ``layout``, ``workers``, ...) instead of position, so adding or
    reordering workloads does not rename every other metric.  Booleans are
    skipped (identity checks are asserted by the benches themselves, not
    trended).
    """
    out: Dict[str, float] = {}
    if isinstance(payload, bool):
        return out
    if isinstance(payload, (int, float)):
        out[prefix or "value"] = float(payload)
        return out
    if isinstance(payload, dict):
        for k in sorted(payload):
            sub = f"{prefix}.{k}" if prefix else str(k)
            out.update(flatten_metrics(payload[k], sub))
        return out
    if isinstance(payload, (list, tuple)):
        for i, item in enumerate(payload):
            label = str(i)
            if isinstance(item, dict):
                for field in _KEY_FIELDS:
                    if field in item and isinstance(item[field], (str, int)):
                        label = f"{field}={item[field]}"
                        break
            sub = f"{prefix}[{label}]" if prefix else f"[{label}]"
            out.update(flatten_metrics(item, sub))
        return out
    return out  # strings / None: not metrics


def metric_direction(key: str) -> Optional[str]:
    """``"lower"`` (up is a regression), ``"higher"``, or ``None`` (neutral:
    trended and diffed, but never gated)."""
    leaf = key.rsplit(".", 1)[-1].lower()
    if _HIGHER_BETTER.search(leaf):
        return "higher"
    if _LOWER_BETTER.search(leaf):
        return "lower"
    return None


# ------------------------------------------------------------------ records
@dataclasses.dataclass(frozen=True)
class RunRecord:
    """One validated run loaded from the store."""

    run_id: str
    bench: str
    commit: str
    timestamp: float
    env: Dict[str, Any]
    phases: Dict[str, float]
    metrics: Dict[str, Any]
    note: str
    path: Path

    @property
    def seq(self) -> int:
        """Submission sequence number (the run-id's numeric prefix)."""
        return int(self.run_id.split("-", 1)[0])

    @property
    def short_commit(self) -> str:
        return self.commit[:10]

    def flat_metrics(self) -> Dict[str, float]:
        return flatten_metrics(self.metrics)


@dataclasses.dataclass(frozen=True)
class MetricDelta:
    """One metric's movement between two runs."""

    key: str
    old: float
    new: float
    direction: Optional[str]

    @property
    def rel(self) -> float:
        denom = max(abs(self.old), 1e-12)
        return (self.new - self.old) / denom

    @property
    def worse(self) -> bool:
        """Did the metric move in its bad direction (any amount)?"""
        if self.direction == "lower":
            return self.new > self.old
        if self.direction == "higher":
            return self.new < self.old
        return False

    def __str__(self) -> str:
        arrow = {"lower": "v good", "higher": "^ good"}.get(self.direction, "      ")
        return (
            f"{self.key}: {self.old:.6g} -> {self.new:.6g}"
            f" ({self.rel:+.1%}) [{arrow}]"
        )


@dataclasses.dataclass(frozen=True)
class GateFinding:
    """One gated metric's verdict against the rolling baseline."""

    key: str
    baseline: float
    value: float
    band: float
    direction: str
    regressed: bool

    def __str__(self) -> str:
        state = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.key}: {self.value:.6g} vs median {self.baseline:.6g}"
            f" (band +/-{self.band:.3g}, {self.direction} is better) {state}"
        )


@dataclasses.dataclass
class GateReport:
    """Verdict of one ``runs gate`` invocation."""

    bench: str
    run: Optional[RunRecord]
    baseline_runs: int
    window: int
    rel_tol: float
    abs_tol: float
    findings: List[GateFinding]
    skipped: Optional[str] = None
    #: phase the worst regression is attributed to (None when passing)
    culprit_phase: Optional[str] = None
    #: per-phase relative growth vs the baseline median (diagnostic)
    phase_growth: Dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not any(f.regressed for f in self.findings)

    @property
    def regressions(self) -> List[GateFinding]:
        return [f for f in self.findings if f.regressed]

    @property
    def text(self) -> str:
        if self.skipped:
            return f"gate[{self.bench}]: SKIPPED ({self.skipped})"
        assert self.run is not None
        head = (
            f"gate[{self.bench}]: run {self.run.run_id}"
            f" vs median of last {self.baseline_runs}"
            f" (rel_tol={self.rel_tol:.0%}, abs_tol={self.abs_tol:g})"
        )
        lines = [head]
        shown = self.regressions if not self.ok else self.findings
        for f in shown:
            lines.append(f"  {f}")
        if self.culprit_phase:
            lines.append(
                f"  culprit phase: {self.culprit_phase} "
                + ", ".join(
                    f"{p}{g:+.0%}" for p, g in self.phase_growth.items()
                )
            )
        lines.append(f"  verdict: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


# -------------------------------------------------------------------- store
class RunStore:
    """Append-only store of benchmark runs under ``root/<bench>/``.

    ``clock`` and ``commit_resolver`` are injectable for deterministic
    tests (mirroring the ``ContinualController`` pattern).
    """

    def __init__(
        self,
        root: Path | str | None = None,
        *,
        clock: Callable[[], float] = time.time,
        commit_resolver: Callable[[], str] = _git_commit,
    ) -> None:
        self.root = Path(root) if root is not None else default_store_root()
        self.clock = clock
        self.commit_resolver = commit_resolver

    # ------------------------------------------------------------ submission
    def submit(
        self,
        bench: str,
        metrics: Dict[str, Any],
        *,
        phases: Optional[Dict[str, float]] = None,
        note: str = "",
    ) -> RunRecord:
        """Record one run as a new immutable envelope; returns the record.

        ``phases`` defaults to a ``"phases"`` key embedded in the metrics
        payload (the hotpath/dist benches put their span breakdown there),
        so submitting a ``BENCH_*.json`` file straight from disk keeps the
        phase attribution.
        """
        if not re.fullmatch(r"[A-Za-z0-9_.-]+", bench):
            raise ValueError(f"invalid bench name: {bench!r}")
        if phases is None:
            embedded = metrics.get("phases") if isinstance(metrics, dict) else None
            phases = dict(embedded) if isinstance(embedded, dict) else {}
        commit = self.commit_resolver()
        seq = self._next_seq(bench)
        run_id = f"{seq:06d}-{commit[:10]}"
        doc = {
            "bench": bench,
            "run_id": run_id,
            "commit": commit,
            "timestamp": float(self.clock()),
            "env": env_fingerprint(),
            "phases": {str(k): float(v) for k, v in (phases or {}).items()},
            "metrics": metrics,
            "note": note,
        }
        payload = json.dumps(doc, sort_keys=True)
        envelope = {
            "format": RUN_FORMAT,
            "checksum": hashlib.sha256(payload.encode("utf-8")).hexdigest(),
            "payload": payload,
        }
        path = self.root / bench / f"{run_id}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, json.dumps(envelope, indent=1, sort_keys=True))
        return self._record(doc, path)

    def _next_seq(self, bench: str) -> int:
        best = 0
        for p in (self.root / bench).glob("*.json"):
            m = re.match(r"(\d+)-", p.name)
            if m:
                best = max(best, int(m.group(1)))
        return best + 1

    # --------------------------------------------------------------- loading
    @staticmethod
    def _record(doc: Dict[str, Any], path: Path) -> RunRecord:
        return RunRecord(
            run_id=str(doc["run_id"]),
            bench=str(doc["bench"]),
            commit=str(doc.get("commit", "unknown")),
            timestamp=float(doc.get("timestamp", 0.0)),
            env=dict(doc.get("env", {})),
            phases={str(k): float(v) for k, v in doc.get("phases", {}).items()},
            metrics=doc.get("metrics", {}),
            note=str(doc.get("note", "")),
            path=path,
        )

    def _load(self, path: Path) -> Optional[RunRecord]:
        """One envelope, or None (counted) when torn/invalid."""
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            payload = envelope["payload"]
            if envelope.get("format") != RUN_FORMAT:
                raise ValueError("unknown format")
            digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
            if digest != envelope.get("checksum"):
                raise ValueError("checksum mismatch")
            return self._record(json.loads(payload), path)
        except (OSError, ValueError, KeyError, TypeError):
            get_registry().counter(
                "runstore_torn_skipped_total",
                "run envelopes skipped because torn or invalid",
            ).inc()
            return None

    def benches(self) -> List[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    def runs(self, bench: str) -> List[RunRecord]:
        """Every valid run of ``bench``, oldest first (torn files skipped)."""
        out = []
        for path in sorted((self.root / bench).glob("*.json")):
            rec = self._load(path)
            if rec is not None:
                out.append(rec)
        out.sort(key=lambda r: r.seq)
        return out

    def latest(self, bench: str, k: int = 1) -> List[RunRecord]:
        """The newest ``k`` valid runs, oldest first."""
        return self.runs(bench)[-k:]

    def get(self, bench: str, run_id: str) -> RunRecord:
        """Look up one run by exact id, unique prefix, or relative index
        (``-1`` = newest, ``-2`` = one before, ...)."""
        runs = self.runs(bench)
        if re.fullmatch(r"-\d+", run_id):
            idx = int(run_id)
            if -len(runs) <= idx <= -1:
                return runs[idx]
            raise KeyError(f"{bench}: no run at index {run_id}")
        hits = [r for r in runs if r.run_id == run_id]
        if not hits:
            hits = [r for r in runs if r.run_id.startswith(run_id)]
        if len(hits) == 1:
            return hits[0]
        if not hits:
            raise KeyError(f"{bench}: no run matching {run_id!r}")
        raise KeyError(
            f"{bench}: {run_id!r} is ambiguous: {[r.run_id for r in hits]}"
        )

    # ------------------------------------------------------------------ diff
    def diff(self, a: RunRecord, b: RunRecord) -> List[MetricDelta]:
        """Per-metric movement from ``a`` (old) to ``b`` (new), shared keys
        only, largest relative move first."""
        fa, fb = a.flat_metrics(), b.flat_metrics()
        deltas = [
            MetricDelta(key=k, old=fa[k], new=fb[k], direction=metric_direction(k))
            for k in sorted(set(fa) & set(fb))
            if fa[k] != fb[k]
        ]
        deltas.sort(key=lambda d: abs(d.rel), reverse=True)
        return deltas

    # ------------------------------------------------------------------ gate
    def gate(
        self,
        bench: str,
        *,
        window: int = 5,
        rel_tol: float = 0.25,
        abs_tol: float = 1e-4,
        min_history: int = 2,
    ) -> GateReport:
        """Check the newest run against the median of the previous ``window``.

        The tolerance band is ``max(rel_tol * |median|, abs_tol)`` per
        metric -- wall-clock benches are noisy, so the default band is
        generous; CI tightens nothing, it only catches step changes.  With
        fewer than ``min_history`` prior runs the gate passes as skipped
        (a rolling baseline needs history before it means anything).
        """
        runs = self.runs(bench)
        if not runs:
            return GateReport(
                bench, None, 0, window, rel_tol, abs_tol, [],
                skipped="no runs submitted",
            )
        newest, history = runs[-1], runs[:-1][-window:]
        if len(history) < min_history:
            return GateReport(
                bench, newest, len(history), window, rel_tol, abs_tol, [],
                skipped=f"only {len(history)} prior run(s), need {min_history}",
            )

        new_metrics = newest.flat_metrics()
        baselines: Dict[str, List[float]] = {}
        for r in history:
            for k, v in r.flat_metrics().items():
                baselines.setdefault(k, []).append(v)

        findings: List[GateFinding] = []
        for key, value in sorted(new_metrics.items()):
            direction = metric_direction(key)
            series = baselines.get(key)
            if direction is None or not series:
                continue
            med = statistics.median(series)
            band = max(rel_tol * abs(med), abs_tol)
            regressed = (
                value > med + band if direction == "lower" else value < med - band
            )
            findings.append(
                GateFinding(
                    key=key, baseline=med, value=value, band=band,
                    direction=direction, regressed=regressed,
                )
            )

        report = GateReport(
            bench, newest, len(history), window, rel_tol, abs_tol, findings
        )
        if not report.ok:
            report.phase_growth, report.culprit_phase = self._attribute_phase(
                newest, history
            )
            get_registry().counter(
                "runstore_gate_failures_total",
                "rolling-baseline perf gate failures",
                bench=bench,
            ).inc()
        return report

    @staticmethod
    def _attribute_phase(
        newest: RunRecord, history: List[RunRecord]
    ) -> Tuple[Dict[str, float], Optional[str]]:
        """Relative per-phase growth vs the baseline median, and the phase
        that grew the most (the regression's likely culprit)."""
        growth: Dict[str, float] = {}
        for phase in PHASES:
            series = [r.phases[phase] for r in history if phase in r.phases]
            if not series or phase not in newest.phases:
                continue
            med = statistics.median(series)
            growth[phase] = (newest.phases[phase] - med) / max(abs(med), 1e-12)
        culprit = max(growth, key=lambda p: growth[p]) if growth else None
        if culprit is not None and growth[culprit] <= 0:
            culprit = None  # nothing grew: the regression is outside the phases
        return growth, culprit
