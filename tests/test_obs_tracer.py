"""Tests for the zero-dependency span tracer (:mod:`repro.obs.tracer`)."""

import threading

import pytest

from repro.obs import Tracer, get_tracer, set_tracer, span, traced, use_tracer
from repro.obs.tracer import _NOOP, _env_enabled


class FakeClock:
    """Deterministic clock: every read advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


class TestNesting:
    def test_parent_child_ids_and_depth(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert (outer.depth, inner.depth) == (0, 1)
        assert outer.parent_id is None
        # LIFO close order: inner finished first
        assert [sp.name for sp in tr.finished()] == ["inner", "outer"]

    def test_self_time_excludes_children(self):
        clock = FakeClock(step=1.0)
        tr = Tracer(clock=clock)
        with tr.span("outer") as outer:  # starts t=1
            with tr.span("inner") as inner:  # starts t=2, ends t=3
                pass
        # outer: t=1..4 (dur 3); inner: t=2..3 (dur 1)
        assert inner.duration == pytest.approx(1.0)
        assert outer.duration == pytest.approx(3.0)
        assert outer.child_time == pytest.approx(1.0)
        assert outer.self_time == pytest.approx(2.0)

    def test_sibling_child_time_accumulates(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("outer") as outer:
            with tr.span("a"):
                pass
            with tr.span("b"):
                pass
        assert outer.child_time == pytest.approx(2.0)

    def test_attrs_and_set(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("s", depth=3) as sp:
            sp.set(nodes=7)
        assert sp.attrs == {"depth": 3, "nodes": 7}

    def test_exception_tags_error_and_closes(self):
        tr = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        (sp,) = tr.finished()
        assert sp.closed
        assert sp.attrs["error"] == "RuntimeError"


class TestUnclosedSpans:
    def test_snapshot_tags_open_spans(self):
        tr = Tracer(clock=FakeClock())
        sp = tr.start("never_ended")
        events = tr.snapshot()
        assert len(events) == 1
        assert events[0]["attrs"]["unclosed"] is True
        assert events[0]["duration"] > 0
        # the real span is untouched: still open, still on the stack
        assert not sp.closed
        assert tr.open_spans() == [sp]
        assert tr.finished() == []

    def test_snapshot_without_open(self):
        tr = Tracer(clock=FakeClock())
        tr.start("open_one")
        assert tr.snapshot(include_open=False) == []

    def test_double_end_is_idempotent(self):
        tr = Tracer(clock=FakeClock())
        sp = tr.start("s")
        tr.end(sp)
        t_end = sp.t_end
        tr.end(sp)
        assert sp.t_end == t_end
        assert len(tr) == 1


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        tr = Tracer(enabled=False)
        cm = tr.span("anything", big_attr=1)
        assert cm is _NOOP
        with cm as sp:
            assert sp is None
        assert len(tr) == 0

    def test_noop_set_chains(self):
        assert _NOOP.set(x=1) is _NOOP

    def test_module_level_span_follows_global(self):
        tr = Tracer(clock=FakeClock())
        with use_tracer(tr):
            with span("global_span"):
                pass
        assert [sp.name for sp in tr.finished()] == ["global_span"]
        assert get_tracer() is not tr

    def test_env_gate_values(self, monkeypatch):
        for off in ("0", "false", "off", ""):
            monkeypatch.setenv("REPRO_TRACE", off)
            assert _env_enabled() is False
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert _env_enabled() is True
        monkeypatch.delenv("REPRO_TRACE")
        assert _env_enabled() is True

    def test_set_tracer_returns_previous(self):
        tr = Tracer()
        prev = set_tracer(tr)
        try:
            assert get_tracer() is tr
        finally:
            assert set_tracer(prev) is tr


class TestDecorator:
    def test_traced_records_and_preserves_value(self):
        tr = Tracer(clock=FakeClock())

        @tr.traced("label", kind="test")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        (sp,) = tr.finished()
        assert (sp.name, sp.attrs) == ("label", {"kind": "test"})

    def test_traced_default_name_is_qualname(self):
        tr = Tracer(clock=FakeClock())

        @tr.traced()
        def my_fn():
            return None

        my_fn()
        assert tr.finished()[0].name.endswith("my_fn")
        assert my_fn.__name__ == "my_fn"  # functools.wraps preserved

    def test_module_traced_follows_swapped_global(self):
        @traced("swappable")
        def fn():
            return 1

        tr = Tracer(clock=FakeClock())
        with use_tracer(tr):
            fn()
        assert [sp.name for sp in tr.finished()] == ["swappable"]


class TestRetention:
    def test_max_spans_drops_and_counts(self):
        tr = Tracer(clock=FakeClock(), max_spans=2)
        for i in range(5):
            with tr.span(f"s{i}"):
                pass
        assert len(tr) == 2
        assert tr.dropped == 3
        tr.clear()
        assert (len(tr), tr.dropped) == (0, 0)

    def test_max_spans_validation(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestAggregate:
    def test_aggregate_totals(self):
        tr = Tracer(clock=FakeClock())
        for _ in range(3):
            with tr.span("work"):
                pass
        agg = tr.aggregate()
        assert agg["work"].count == 3
        assert agg["work"].total == pytest.approx(3.0)
        assert agg["work"].mean == pytest.approx(1.0)
        assert agg["work"].min == pytest.approx(1.0)
        assert agg["work"].max == pytest.approx(1.0)
        assert tr.total_time("work") == pytest.approx(3.0)
        assert tr.total_time("absent") == 0.0


class TestThreads:
    def test_stacks_are_per_thread(self):
        tr = Tracer()  # real clock: cross-thread fake clocks would interleave
        n_threads, per_thread = 4, 25
        errors = []

        def worker(tid: int) -> None:
            try:
                for i in range(per_thread):
                    with tr.span("outer", tid=tid) as outer:
                        with tr.span("inner", tid=tid, i=i) as inner:
                            pass
                        assert inner.parent_id == outer.span_id
                        assert inner.depth == 1
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(tr) == n_threads * per_thread * 2
        # span ids are unique across threads
        ids = [sp.span_id for sp in tr.finished()]
        assert len(set(ids)) == len(ids)
        # each inner's parent lives on the same thread
        by_id = {sp.span_id: sp for sp in tr.finished()}
        for sp in tr.finished():
            if sp.name == "inner":
                assert by_id[sp.parent_id].thread_id == sp.thread_id
