"""Block envelope + spillable LRU store: format, faults, budget discipline.

The block store is the disk tier of out-of-core training, so its failure
modes are filesystem failure modes: torn writes, truncated files, bit rot,
a crash mid-spill.  These tests pin the ``repro-blk-v1`` envelope contract
(exact round-trip, every damage class detected), the cache-budget
arithmetic (hard ceiling, LRU victims, pins never evicted, peak tracking),
and the recovery path (torn file -> counted, deleted, re-materialized).
"""

import numpy as np
import pytest

from repro.gpusim.kernel import GpuDevice
from repro.ioutil import SimulatedCrash, atomic_write_bytes
from repro.obs import MetricsRegistry, use_registry
from repro.stream.blockstore import (
    BLOCK_MAGIC,
    BlockStore,
    ColumnBlock,
    TornBlockError,
    attrs_from_gbin,
)


def _block(block_id=0, n=50, seed=0, use_rle=True):
    rng = np.random.default_rng(seed)
    gbin = np.sort(rng.integers(0, 12, n)).astype(np.int64)
    inst = rng.integers(0, 1000, n).astype(np.int64)
    # build() requires bin-sorted entries; instance order within a bin is free
    order = np.lexsort((inst, gbin))
    return ColumnBlock.build(
        block_id, 0, n, inst[order], gbin[order], use_rle=use_rle
    )


class TestEnvelope:
    @pytest.mark.parametrize("use_rle", [True, False])
    def test_round_trip_exact(self, use_rle):
        blk = _block(3, use_rle=use_rle)
        out = ColumnBlock.from_bytes(blk.to_bytes())
        assert out.block_id == 3
        assert out.n_entries == blk.n_entries
        assert out.is_rle == use_rle
        np.testing.assert_array_equal(out.ent_inst, blk.ent_inst)
        bin_offset = np.array([0, 6, 12], dtype=np.int64)
        for a, b in zip(out.entries(bin_offset), blk.entries(bin_offset)):
            np.testing.assert_array_equal(a, b)

    def test_empty_block_round_trips(self):
        blk = ColumnBlock.build(
            0, 0, 0, np.empty(0, np.int64), np.empty(0, np.int64)
        )
        out = ColumnBlock.from_bytes(blk.to_bytes())
        assert out.n_entries == 0

    def test_rle_smaller_on_runny_bins(self):
        gbin = np.repeat(np.arange(8, dtype=np.int64), 100)
        inst = np.arange(800, dtype=np.int64)
        dense = ColumnBlock.build(0, 0, 800, inst, gbin, use_rle=False)
        rle = ColumnBlock.build(0, 0, 800, inst, gbin, use_rle=True)
        assert rle.nbytes < dense.nbytes

    def test_unsorted_entries_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            ColumnBlock.build(
                0, 0, 2,
                np.array([0, 1], dtype=np.int64),
                np.array([5, 3], dtype=np.int64),
            )

    def test_attr_recovery_is_exact(self):
        bin_offset = np.array([0, 4, 4, 9, 15], dtype=np.int64)  # empty attr 1
        gbin = np.arange(15, dtype=np.int64)
        attrs = attrs_from_gbin(gbin, bin_offset)
        want = np.repeat([0, 2, 3], [4, 5, 6])
        np.testing.assert_array_equal(attrs, want)

    @pytest.mark.parametrize(
        "damage",
        [
            lambda raw: raw[len(raw) // 2 :],  # header gone
            lambda raw: raw.replace(BLOCK_MAGIC.encode(), b"repro-blk-v9"),
            lambda raw: raw[:-4],  # truncated body
            lambda raw: raw + b"XY",  # trailing junk
            lambda raw: raw[: raw.find(b"\n") + 5]
            + b"\xff"
            + raw[raw.find(b"\n") + 6 :],  # flipped body byte
            lambda raw: b"not json\n" + raw,
        ],
    )
    def test_damage_detected(self, damage):
        raw = _block().to_bytes()
        with pytest.raises(TornBlockError):
            ColumnBlock.from_bytes(damage(raw))


class TestBlockStore:
    def test_put_get_hit_without_disk(self, tmp_path):
        store = BlockStore(tmp_path, 1 << 20)
        blk = _block(0)
        store.put(blk)
        assert store.get(0) is blk
        assert not store.block_path(0).exists()  # lazy spill: no IO yet

    def test_unknown_block_raises(self, tmp_path):
        store = BlockStore(tmp_path, 1 << 20)
        with pytest.raises(KeyError):
            store.get(99)

    def test_eviction_spills_then_fetch_reads_back(self, tmp_path):
        reg = MetricsRegistry(max_label_sets=64)
        blocks = [_block(i, seed=i) for i in range(4)]
        budget = blocks[0].nbytes * 2 + 8
        with use_registry(reg):
            store = BlockStore(tmp_path, budget, device=GpuDevice())
            for b in blocks:
                store.put(b)
            assert store.resident_bytes <= budget
            spilled = [b.block_id for b in blocks if store.block_path(b.block_id).exists()]
            assert spilled  # some LRU victims hit disk
            got = store.get(spilled[0])
            assert got.n_entries == blocks[spilled[0]].n_entries
        assert reg.get("blocks_spilled_total").value >= len(spilled)
        assert reg.get("blocks_fetched_total").value >= 1
        # spills and fetches are modeled disk traffic
        assert store.device.ledger.disk_bytes > 0
        assert all(
            t.phase == "stream_io"
            for t in store.device.ledger.transfers
            if t.channel == "disk"
        )

    def test_budget_is_a_hard_ceiling_with_peak_tracking(self, tmp_path):
        blocks = [_block(i, seed=i) for i in range(6)]
        budget = blocks[0].nbytes * 3 + 16
        store = BlockStore(tmp_path, budget)
        for b in blocks:
            store.put(b)
        for b in blocks:
            store.get(b.block_id)
        assert store.peak_resident_bytes <= budget
        assert store.resident_bytes <= budget

    def test_pinned_blocks_never_evicted(self, tmp_path):
        blocks = [_block(i, seed=i) for i in range(4)]
        budget = blocks[0].nbytes * 2 + 8
        store = BlockStore(tmp_path, budget)
        store.put(blocks[0])
        store.get(0, pin=True)
        for b in blocks[1:]:
            store.put(b)
        assert store.get(0) is blocks[0]  # still the same object: never left
        store.release(0)
        store.put(_block(5, seed=5))
        store.put(_block(6, seed=6))
        assert store.block_path(0).exists() or 0 in store._cache

    def test_pinned_set_overflow_raises(self, tmp_path):
        blocks = [_block(i, seed=i) for i in range(3)]
        budget = blocks[0].nbytes * 2 + 8
        store = BlockStore(tmp_path, budget)
        for b in blocks[:2]:
            store.put(b)
            store.get(b.block_id, pin=True)
        with pytest.raises(RuntimeError, match="pinned working set"):
            store.put(blocks[2])

    def test_torn_file_skipped_and_rematerialized(self, tmp_path):
        reg = MetricsRegistry(max_label_sets=64)
        blk = _block(0)
        with use_registry(reg):
            store = BlockStore(tmp_path, 1 << 20)
            store.put(blk)
            store.flush()  # forces the spill
            path = store.block_path(0)
            raw = path.read_bytes()
            path.write_bytes(raw[: len(raw) - 7])  # torn tail
            store.set_materializer(lambda bid: _block(bid))
            got = store.get(0)
        assert got.n_entries == blk.n_entries
        assert reg.get("blockstore_torn_skipped_total").value == 1
        assert reg.get("blocks_rematerialized_total").value == 1
        assert not path.exists() or path.read_bytes() != raw[: len(raw) - 7]

    def test_missing_file_rematerialized(self, tmp_path):
        reg = MetricsRegistry(max_label_sets=64)
        blk = _block(0)
        with use_registry(reg):
            store = BlockStore(tmp_path, 1 << 20)
            store.put(blk)
            store.flush()
            store.block_path(0).unlink()
            store.set_materializer(lambda bid: _block(bid))
            got = store.get(0)
        assert got.n_entries == blk.n_entries
        assert reg.get("blocks_rematerialized_total").value == 1

    def test_torn_file_without_materializer_raises(self, tmp_path):
        store = BlockStore(tmp_path, 1 << 20)
        store.put(_block(0))
        store.flush()
        store.block_path(0).write_bytes(b"garbage, no newline at all")
        with pytest.raises(TornBlockError):
            store.get(0)

    def test_crash_mid_spill_leaves_no_partial_file(self, tmp_path):
        # a hard kill between write and rename must leave at most an
        # orphaned *.tmp -- the destination is either absent or complete
        blk = _block(0)
        raw = blk.to_bytes()
        path = tmp_path / "block-000000.blk"

        def kill_before_rename(step):
            if step == "synced":
                raise SimulatedCrash("kill -9 mid-spill")

        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(path, raw, fault_hook=kill_before_rename)
        assert not path.exists()
        # a fresh store that finds nothing simply rebuilds
        store = BlockStore(tmp_path, 1 << 20)
        store.put(blk)
        store.flush()
        assert ColumnBlock.from_bytes(path.read_bytes()).n_entries == blk.n_entries
