"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings as _hyp_settings

# deterministic hypothesis runs: the suite is a release gate, so property
# tests must not flake across machines; widen exploration locally with
# HYPOTHESIS_PROFILE=explore
_hyp_settings.register_profile("release", derandomize=True)
_hyp_settings.register_profile("explore", derandomize=False, max_examples=200)
import os as _os

_hyp_settings.load_profile(_os.environ.get("HYPOTHESIS_PROFILE", "release"))

from repro import GBDTParams, GpuDevice, TITAN_X_PASCAL
from repro.data import CSRMatrix, make_dataset, table1_example


@pytest.fixture
def device() -> GpuDevice:
    """A fresh simulated Titan X with unit scales."""
    return GpuDevice(TITAN_X_PASCAL)


@pytest.fixture
def small_params() -> GBDTParams:
    """A small training configuration for fast end-to-end tests."""
    return GBDTParams(n_trees=3, max_depth=3)


@pytest.fixture
def table1():
    """The paper's 4-instance worked example."""
    return table1_example()


@pytest.fixture
def covtype_small():
    """A compressible (binary-heavy) dataset at test scale."""
    return make_dataset("covtype", run_rows=250, seed=11)


@pytest.fixture
def susy_small():
    """A dense continuous dataset at test scale."""
    return make_dataset("susy", run_rows=250, seed=12)


@pytest.fixture
def sparse_small():
    """A high-missing-rate dataset at test scale."""
    return make_dataset("real-sim", run_rows=220, run_cols=50, seed=13)


def random_csr(
    rng: np.random.Generator,
    n: int,
    d: int,
    density: float = 0.5,
    levels: int = 0,
) -> CSRMatrix:
    """Helper used across tests: random CSR with optional value quantization."""
    rows, cols, vals = [], [], []
    for j in range(d):
        present = np.flatnonzero(rng.random(n) < density)
        if present.size == 0:
            present = np.array([int(rng.integers(0, n))])
        rows.append(present)
        cols.append(np.full(present.size, j, dtype=np.int64))
        if levels > 0:
            vals.append(rng.choice(np.linspace(0.5, 3.0, levels), size=present.size))
        else:
            vals.append(rng.uniform(-2, 2, size=present.size))
    return CSRMatrix.from_coo(
        np.concatenate(rows), np.concatenate(cols), np.concatenate(vals),
        n_rows=n, n_cols=d,
    )
