"""Differential tests for warm-start boosting.

The pipeline's load-bearing guarantee: training ``k`` rounds, serializing,
and resuming ``m`` more rounds produces a model **byte-identical** (same
``to_json`` text, same content digest) to training ``k + m`` rounds in one
run -- across RLE/non-RLE layouts, row/column sampling, and on both the GPU
trainer and the CPU reference.
"""

import numpy as np
import pytest

from repro import GBDTParams, GPUGBDTTrainer
from repro.core.booster import GradientBoostedTrees
from repro.core.booster_model import GBDTModel
from repro.cpu.exact_greedy import ReferenceTrainer
from repro.pipeline import model_digest

CONFIGS = [
    pytest.param({"use_rle": True}, id="rle"),
    pytest.param({"use_rle": False}, id="no-rle"),
    pytest.param({"subsample": 0.7, "colsample_bytree": 0.8}, id="sampled"),
]


def _params(total: int, **overrides) -> GBDTParams:
    return GBDTParams(n_trees=total, max_depth=3, seed=13).replace(**overrides)


@pytest.mark.parametrize("overrides", CONFIGS)
def test_gpu_resume_is_bit_identical(covtype_small, overrides):
    ds = covtype_small
    k, m = 2, 3
    full = GPUGBDTTrainer(_params(k + m, **overrides)).fit(ds.X, ds.y)
    head = GPUGBDTTrainer(_params(k, **overrides)).fit(ds.X, ds.y)
    resumed = GPUGBDTTrainer(_params(m, **overrides)).fit(
        ds.X, ds.y, init_model=head
    )
    assert resumed.to_json() == full.to_json()
    assert model_digest(resumed) == model_digest(full)


@pytest.mark.parametrize("overrides", CONFIGS)
def test_gpu_resume_through_json_is_bit_identical(covtype_small, overrides):
    """Resuming from a serialized model (the checkpoint path) changes nothing:
    JSON round-trips Python floats exactly."""
    ds = covtype_small
    k, m = 2, 3
    full = GPUGBDTTrainer(_params(k + m, **overrides)).fit(ds.X, ds.y)
    head = GPUGBDTTrainer(_params(k, **overrides)).fit(ds.X, ds.y)
    head = GBDTModel.from_json(head.to_json(), params=_params(k, **overrides))
    resumed = GPUGBDTTrainer(_params(m, **overrides)).fit(
        ds.X, ds.y, init_model=head
    )
    assert resumed.to_json() == full.to_json()


def test_cpu_reference_resume_is_bit_identical(covtype_small):
    ds = covtype_small
    k, m = 2, 2
    full = ReferenceTrainer(_params(k + m)).fit(ds.X, ds.y)
    head = ReferenceTrainer(_params(k)).fit(ds.X, ds.y)
    resumed = ReferenceTrainer(_params(m)).fit(ds.X, ds.y, init_model=head)
    assert resumed.to_json() == full.to_json()


def test_round_by_round_equals_one_shot(covtype_small):
    """The demo's one-round-at-a-time loop lands on the one-shot model."""
    ds = covtype_small
    total = 4
    one_shot = GPUGBDTTrainer(_params(total)).fit(ds.X, ds.y)
    model = None
    for _ in range(total):
        model = GPUGBDTTrainer(_params(1)).fit(ds.X, ds.y, init_model=model)
    assert model.to_json() == one_shot.to_json()


def test_facade_forwards_init_model(covtype_small):
    ds = covtype_small
    head = GradientBoostedTrees(_params(2)).fit(ds.X, ds.y).model_
    full = GradientBoostedTrees(_params(4)).fit(ds.X, ds.y).model_
    resumed = GradientBoostedTrees(_params(2)).fit(ds.X, ds.y, init_model=head).model_
    assert resumed.to_json() == full.to_json()


def test_resume_rejects_wrong_learning_rate(covtype_small):
    ds = covtype_small
    head = GPUGBDTTrainer(_params(2)).fit(ds.X, ds.y)
    with pytest.raises(ValueError, match="learning_rate"):
        GPUGBDTTrainer(_params(2, learning_rate=0.05)).fit(
            ds.X, ds.y, init_model=head
        )


def test_resume_rejects_wrong_base_score(covtype_small):
    """Warm-starting from a model whose base score differs from this run's
    would silently shift every margin -- it must be refused."""
    ds = covtype_small
    head = GPUGBDTTrainer(_params(2)).fit(ds.X, ds.y)
    head = GBDTModel(trees=list(head.trees), params=head.params, base_score=0.5)
    with pytest.raises(ValueError, match="base_score"):
        GPUGBDTTrainer(_params(2)).fit(ds.X, ds.y, init_model=head)


def test_predict_margin_matches_sequential_sum(covtype_small):
    """``predict_margin`` is the replay path: base score plus each tree in
    training order, exactly the accumulation order ``fit`` maintains."""
    ds = covtype_small
    model = GPUGBDTTrainer(_params(5)).fit(ds.X, ds.y)
    dense = ds.X_test.to_dense(fill=np.nan).values
    expected = np.full(dense.shape[0], model.base_score)
    for tree in model.trees:
        expected = expected + tree.predict(dense)
    assert np.array_equal(model.predict_margin(dense), expected)
